"""Shared fixtures: a small-but-real FV deployment reused across the suite.

The fixtures are session-scoped because key generation is the slowest part
of setup and every test only *reads* the key material.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.he import (
    Context,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    ScalarEncoder,
    SymmetricEncryptor,
    small_parameter_options,
)


@pytest.fixture(scope="session")
def params():
    return small_parameter_options()[256]


@pytest.fixture(scope="session")
def context(params):
    return Context(params)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2021)


@pytest.fixture(scope="session")
def keygen(context, rng):
    return KeyGenerator(context, rng)


@pytest.fixture(scope="session")
def keypair(keygen):
    return keygen.generate()


@pytest.fixture(scope="session")
def relin_keys(keygen, keypair):
    return keygen.relin_keys(keypair.secret)


@pytest.fixture(scope="session")
def encoder(context):
    return ScalarEncoder(context)


@pytest.fixture(scope="session")
def encryptor(context, keypair, rng):
    return Encryptor(context, keypair.public, rng)


@pytest.fixture(scope="session")
def sym_encryptor(context, keypair, rng):
    return SymmetricEncryptor(context, keypair.secret, rng)


@pytest.fixture(scope="session")
def decryptor(context, keypair):
    return Decryptor(context, keypair.secret)


@pytest.fixture()
def evaluator(context):
    return Evaluator(context)
