"""Failure injection: the system must fail loudly, not return garbage.

Corrupts ciphertexts, keys and enclave state at various pipeline points and
asserts the failure is *detected* (noise checks, encoder validation, MAC
checks) rather than silently producing wrong predictions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridPipeline, InferenceEnclave
from repro.errors import (
    EncodingError,
    EnclaveError,
    NoiseBudgetExhausted,
    PipelineError,
)
from repro.he import Context, Decryptor, Encryptor, KeyGenerator, ScalarEncoder
from repro.sgx import SgxPlatform


@pytest.fixture()
def pipeline(q_sigmoid, hybrid_params):
    return HybridPipeline(q_sigmoid, hybrid_params, seed=17)


class TestCorruptedCiphertexts:
    def test_stomped_body_fails_noise_check(self, hybrid_params):
        context = Context(hybrid_params)
        rng = np.random.default_rng(0)
        keys = KeyGenerator(context, rng).generate()
        encoder = ScalarEncoder(context)
        ct = Encryptor(context, keys.public, rng).encrypt(encoder.encode(5))
        ct.data[..., 0, :, :] = context.ring.sample_uniform(rng)
        with pytest.raises(NoiseBudgetExhausted):
            Decryptor(context, keys.secret).decrypt(ct, check_noise=True)

    def test_bitflip_detected_by_scalar_decode(self, hybrid_params):
        """A single residue flip scrambles the polynomial, which the scalar
        decoder flags as non-constant coefficients."""
        context = Context(hybrid_params)
        rng = np.random.default_rng(1)
        keys = KeyGenerator(context, rng).generate()
        encoder = ScalarEncoder(context)
        ct = Encryptor(context, keys.public, rng).encrypt(encoder.encode(5))
        ct.data[..., 0, 0, 10] ^= 1  # one bit, one coefficient
        with pytest.raises(EncodingError):
            encoder.decode(Decryptor(context, keys.secret).decrypt(ct))

    def test_enclave_rejects_corrupted_input(self, pipeline, q_sigmoid, models):
        """Corruption *before* the enclave crossing is caught inside it."""
        conv_int = q_sigmoid.conv_stage(
            q_sigmoid.quantize_images(models.dataset.test_images[:1])
        )
        ct = pipeline.encryptor.encrypt(pipeline.encoder.encode(conv_int))
        rng = np.random.default_rng(2)
        ct.data[..., 0, :, :] = pipeline.context.ring.sample_uniform(
            rng, *ct.batch_shape
        )
        with pytest.raises(PipelineError):
            pipeline.enclave.ecall(
                "activation_pool", ct,
                q_sigmoid.conv_output_scale, q_sigmoid.act_scale,
                q_sigmoid.pool_window, "sigmoid", "mean",
            )


class TestKeyFailures:
    def test_wrong_user_decrypts_garbage_detectably(self, pipeline, models, hybrid_params):
        other = KeyGenerator(Context(hybrid_params), np.random.default_rng(3)).generate()
        wrong = Decryptor(pipeline.context, other.secret)
        ct = pipeline.encrypt_images(models.dataset.test_images[:1])
        assert wrong.invariant_noise_budget(ct) < 1.0

    def test_enclave_without_keys_refuses_service(self, hybrid_params):
        platform = SgxPlatform()
        enclave = platform.load_enclave(InferenceEnclave, hybrid_params, 4)
        with pytest.raises(PipelineError):
            enclave.ecall("generate_relin_keys")


class TestEnclaveLifecycleFailures:
    def test_destroyed_enclave_stops_serving(self, pipeline, models):
        pipeline.enclave.destroy()
        from repro.errors import EnclaveNotInitialized

        with pytest.raises(EnclaveNotInitialized):
            pipeline.infer(models.dataset.test_images[:1])

    def test_undecorated_method_not_reachable(self, pipeline):
        with pytest.raises(EnclaveError):
            pipeline.enclave.ecall("_load_crypto_state")

    def test_overflow_guard_on_reencryption(self, pipeline, q_sigmoid, models):
        """If the host lies about scales, the enclave's range guard fires
        instead of silently wrapping values mod t."""
        conv_int = q_sigmoid.conv_stage(
            q_sigmoid.quantize_images(models.dataset.test_images[:1])
        )
        ct = pipeline.encryptor.encrypt(pipeline.encoder.encode(conv_int))
        huge_scale = pipeline.params.plain_modulus * 10
        with pytest.raises(PipelineError):
            pipeline.enclave.ecall(
                "activation_pool", ct,
                q_sigmoid.conv_output_scale, huge_scale,
                q_sigmoid.pool_window, "sigmoid", "mean",
            )


class TestRecovery:
    def test_pipeline_survives_failed_request(self, q_sigmoid, hybrid_params, models):
        """A rejected request must not poison later requests."""
        pipeline = HybridPipeline(q_sigmoid, hybrid_params, seed=18)
        images = models.dataset.test_images[:1]
        conv_int = q_sigmoid.conv_stage(q_sigmoid.quantize_images(images))
        bad_ct = pipeline.encryptor.encrypt(pipeline.encoder.encode(conv_int))
        bad_ct.data[..., 0, :, :] = pipeline.context.ring.sample_uniform(
            np.random.default_rng(5), *bad_ct.batch_shape
        )
        with pytest.raises(PipelineError):
            pipeline.enclave.ecall(
                "activation_pool", bad_ct,
                q_sigmoid.conv_output_scale, q_sigmoid.act_scale,
                q_sigmoid.pool_window, "sigmoid", "mean",
            )
        from repro.core import PlaintextPipeline

        good = pipeline.infer(images)
        expected = PlaintextPipeline(q_sigmoid).infer(images)
        assert np.array_equal(good.logits, expected.logits)
