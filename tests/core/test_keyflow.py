"""Key distribution: TTP baseline weaknesses vs the attested SGX flow."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import (
    InferenceEnclave,
    SgxKeyDistribution,
    TrustedThirdParty,
    UserClient,
    establish_user_keys,
)
from repro.errors import AttestationError
from repro.he import Context, Decryptor, Encryptor, ScalarEncoder
from repro.sgx import AttestationVerificationService, QuotingService, SgxPlatform


@pytest.fixture()
def platform():
    return SgxPlatform(platform_secret=b"\x07" * 32)


@pytest.fixture()
def enclave(platform, hybrid_params):
    handle = platform.load_enclave(InferenceEnclave, hybrid_params, 3)
    handle.ecall("generate_keys")
    return handle


@pytest.fixture()
def quoting(platform):
    return QuotingService(platform, platform_id="edge-1")


@pytest.fixture()
def verifier(quoting):
    service = AttestationVerificationService()
    service.register_platform(quoting)
    return service


class TestTrustedThirdParty:
    def test_issues_working_keys(self, hybrid_params):
        ttp = TrustedThirdParty(hybrid_params, seed=0)
        keys = ttp.issue_keys("alice")
        encoder = ScalarEncoder(ttp.context)
        ct = Encryptor(ttp.context, keys.public, np.random.default_rng(0)).encrypt(
            encoder.encode(5)
        )
        assert encoder.decode(Decryptor(ttp.context, keys.secret).decrypt(ct)) == 5

    def test_ttp_knows_every_secret(self, hybrid_params):
        """The structural weakness the paper removes (Section III-A)."""
        ttp = TrustedThirdParty(hybrid_params, seed=0)
        ttp.issue_keys("alice")
        assert ttp.knows_secret_of("alice")

    def test_channel_is_wiretappable(self, hybrid_params):
        ttp = TrustedThirdParty(hybrid_params, seed=0)
        keys = ttp.issue_keys("alice")
        # The eavesdropper's copy contains the same secret key object.
        _, leaked_pair = ttp.wiretap_log[0]
        assert leaked_pair.secret is keys.secret

    def test_relin_keys_need_extra_round(self, hybrid_params):
        ttp = TrustedThirdParty(hybrid_params, seed=0)
        ttp.issue_keys("alice")
        rounds_before = ttp.communication_rounds
        ttp.issue_relin_keys("alice")
        assert ttp.communication_rounds == rounds_before + 1

    def test_relin_keys_unknown_user_rejected(self, hybrid_params):
        ttp = TrustedThirdParty(hybrid_params, seed=0)
        with pytest.raises(AttestationError):
            ttp.issue_relin_keys("mallory")


class TestAttestedFlow:
    def test_end_to_end_delivery(self, platform, enclave, quoting, verifier, hybrid_params):
        keys = establish_user_keys(
            platform, enclave, quoting, verifier, hybrid_params, b"\x09" * 32
        )
        context = Context(hybrid_params)
        encoder = ScalarEncoder(context)
        ct = Encryptor(context, keys.public, np.random.default_rng(1)).encrypt(
            encoder.encode(-321)
        )
        assert encoder.decode(Decryptor(context, keys.secret).decrypt(ct)) == -321

    def test_delivered_keys_match_enclave_keys(
        self, platform, enclave, quoting, verifier, hybrid_params
    ):
        """The user's keys are the same pair the enclave serves inference
        with -- ciphertexts produced by the enclave must decrypt user-side."""
        keys = establish_user_keys(
            platform, enclave, quoting, verifier, hybrid_params, b"\x0a" * 32
        )
        server_public = enclave.ecall("get_public_key")
        assert np.array_equal(keys.public.p0_ntt, server_public.p0_ntt)

    def test_wrong_measurement_rejected(self, platform, enclave, quoting, verifier, hybrid_params):
        user = UserClient(
            params=hybrid_params,
            verifier=verifier,
            expected_mrenclave="0" * 64,  # expecting different trusted code
            entropy=b"\x0b" * 32,
        )
        service = SgxKeyDistribution(platform=platform, enclave=enclave, quoting=quoting)
        quote, sealed = service.serve_exchange(user.begin_exchange())
        with pytest.raises(AttestationError):
            user.complete_exchange(quote, sealed)

    def test_swapped_payload_rejected(self, platform, enclave, quoting, verifier, hybrid_params):
        """A malicious host cannot substitute its own key payload: the
        attested digest pins the exact bytes."""
        user = UserClient(
            params=hybrid_params,
            verifier=verifier,
            expected_mrenclave=enclave.measurement.mrenclave,
            entropy=b"\x0c" * 32,
        )
        service = SgxKeyDistribution(platform=platform, enclave=enclave, quoting=quoting)
        quote, sealed = service.serve_exchange(user.begin_exchange())
        forged = dataclasses.replace(sealed, ciphertext=bytes(len(sealed.ciphertext)))
        with pytest.raises(AttestationError):
            user.complete_exchange(quote, forged)

    def test_unregistered_platform_rejected(self, platform, enclave, quoting, hybrid_params):
        lone_verifier = AttestationVerificationService()  # never provisioned
        user = UserClient(
            params=hybrid_params,
            verifier=lone_verifier,
            expected_mrenclave=enclave.measurement.mrenclave,
            entropy=b"\x0d" * 32,
        )
        service = SgxKeyDistribution(platform=platform, enclave=enclave, quoting=quoting)
        quote, sealed = service.serve_exchange(user.begin_exchange())
        with pytest.raises(AttestationError):
            user.complete_exchange(quote, sealed)

    def test_no_plaintext_secret_on_the_wire(self, platform, enclave, quoting, verifier, hybrid_params):
        """Unlike the TTP flow, everything the host ever sees is either
        public (quote, public DH shares) or encrypted (sealed payload)."""
        from repro.he.serialize import serialize_secret_key

        user = UserClient(
            params=hybrid_params,
            verifier=verifier,
            expected_mrenclave=enclave.measurement.mrenclave,
            entropy=b"\x0e" * 32,
        )
        service = SgxKeyDistribution(platform=platform, enclave=enclave, quoting=quoting)
        quote, sealed = service.serve_exchange(user.begin_exchange())
        keys = user.complete_exchange(quote, sealed)
        secret_bytes = serialize_secret_key(keys.secret)
        wire = sealed.ciphertext + quote.user_data + quote.signature
        # The serialized secret key must not appear in any on-the-wire blob.
        assert secret_bytes[16:48] not in wire

    def test_no_ecall_returns_the_secret_key(self, enclave):
        """API-surface audit: no trusted entry point leaks SecretKey."""
        from repro.sgx.ecall import is_ecall

        service = type(enclave._instance)
        audited = 0
        for name in dir(service):
            method = getattr(service, name)
            if not is_ecall(method) or name == "key_exchange":
                continue
            annotation = str(method.__annotations__.get("return"))
            assert "SecretKey" not in annotation, f"{name} leaks the secret key"
            audited += 1
        assert audited >= 8  # the audit actually covered the trusted API
