"""Homomorphic CNN ops must match the integer stage functions bit-exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import heops
from repro.errors import PipelineError
from repro.he import (
    Context,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    OperationCounter,
    ScalarEncoder,
)


@pytest.fixture(scope="module")
def rig(hybrid_params):
    context = Context(hybrid_params)
    rng = np.random.default_rng(13)
    keys = KeyGenerator(context, rng).generate()
    counter = OperationCounter()
    return {
        "context": context,
        "counter": counter,
        "evaluator": Evaluator(context, counter),
        "encoder": ScalarEncoder(context),
        "encryptor": Encryptor(context, keys.public, rng),
        "decryptor": Decryptor(context, keys.secret),
    }


def roundtrip(rig, ct):
    return rig["encoder"].decode(rig["decryptor"].decrypt(ct))


class TestHeConv2d:
    def test_matches_integer_conv(self, rig, q_sigmoid, models):
        images = models.dataset.test_images[:2]
        x = q_sigmoid.quantize_images(images)
        expected = q_sigmoid.conv_stage(x)
        weights = heops.encode_conv_weights(
            rig["evaluator"], rig["encoder"], q_sigmoid.conv_weight,
            q_sigmoid.conv_bias, q_sigmoid.stride,
        )
        ct = rig["encryptor"].encrypt(rig["encoder"].encode(x))
        out = heops.he_conv2d(rig["evaluator"], rig["encoder"], ct, weights)
        assert np.array_equal(roundtrip(rig, out), expected)

    def test_stride_two(self, rig):
        rng = np.random.default_rng(3)
        x = rng.integers(-5, 6, size=(1, 1, 6, 6))
        w = rng.integers(-3, 4, size=(2, 1, 2, 2))
        b = rng.integers(-2, 3, size=2)
        from repro.nn.layers import conv2d_forward

        expected = conv2d_forward(x, w, None, 2) + b.reshape(1, 2, 1, 1)
        weights = heops.encode_conv_weights(rig["evaluator"], rig["encoder"], w, b, 2)
        ct = rig["encryptor"].encrypt(rig["encoder"].encode(x))
        out = heops.he_conv2d(rig["evaluator"], rig["encoder"], ct, weights)
        assert np.array_equal(roundtrip(rig, out), expected)

    def test_op_counts_match_formula(self, rig, q_sigmoid):
        """Fig. 4's C x P / C + C structure: k*k*C per output pixel."""
        rig["counter"].reset()
        x = np.ones((1, 1, 6, 6), dtype=np.int64)
        w = np.ones((1, 1, 3, 3), dtype=np.int64)
        weights = heops.encode_conv_weights(
            rig["evaluator"], rig["encoder"], w, np.zeros(1, dtype=np.int64), 1
        )
        ct = rig["encryptor"].encrypt(rig["encoder"].encode(x))
        heops.he_conv2d(rig["evaluator"], rig["encoder"], ct, weights)
        out_pixels = 4 * 4
        assert rig["counter"].get("ct_plain_mul") == 9 * out_pixels
        assert rig["counter"].get("ct_add") == 8 * out_pixels

    def test_rejects_flat_batch(self, rig):
        ct = rig["encryptor"].encrypt(rig["encoder"].encode(np.zeros(4, dtype=np.int64)))
        weights = heops.encode_conv_weights(
            rig["evaluator"], rig["encoder"],
            np.ones((1, 1, 2, 2), dtype=np.int64), np.zeros(1, dtype=np.int64),
        )
        with pytest.raises(PipelineError):
            heops.he_conv2d(rig["evaluator"], rig["encoder"], ct, weights)

    def test_rejects_channel_mismatch(self, rig):
        x = np.zeros((1, 2, 4, 4), dtype=np.int64)
        ct = rig["encryptor"].encrypt(rig["encoder"].encode(x))
        weights = heops.encode_conv_weights(
            rig["evaluator"], rig["encoder"],
            np.ones((1, 1, 2, 2), dtype=np.int64), np.zeros(1, dtype=np.int64),
        )
        with pytest.raises(PipelineError):
            heops.he_conv2d(rig["evaluator"], rig["encoder"], ct, weights)


class TestHeSquareAndPool:
    def test_square_matches(self, rig):
        values = np.arange(-4, 4, dtype=np.int64).reshape(1, 1, 2, 4)
        ct = rig["encryptor"].encrypt(rig["encoder"].encode(values))
        out = heops.he_square(rig["evaluator"], ct)
        assert np.array_equal(roundtrip(rig, out), values * values)

    def test_scaled_pool_matches(self, rig, q_sigmoid):
        values = np.arange(32, dtype=np.int64).reshape(1, 2, 4, 4)
        expected = q_sigmoid.scaled_pool_stage(values)
        ct = rig["encryptor"].encrypt(rig["encoder"].encode(values))
        out = heops.he_scaled_mean_pool(rig["evaluator"], ct, 2)
        assert np.array_equal(roundtrip(rig, out), expected)

    def test_scaled_pool_window_4(self, rig):
        values = np.ones((1, 1, 4, 4), dtype=np.int64)
        out = heops.he_scaled_mean_pool(rig["evaluator"],
                                        rig["encryptor"].encrypt(rig["encoder"].encode(values)), 4)
        assert roundtrip(rig, out)[0, 0, 0, 0] == 16

    def test_pool_rejects_indivisible(self, rig):
        values = np.zeros((1, 1, 5, 5), dtype=np.int64)
        ct = rig["encryptor"].encrypt(rig["encoder"].encode(values))
        with pytest.raises(PipelineError):
            heops.he_scaled_mean_pool(rig["evaluator"], ct, 2)


class TestHeDense:
    def test_matches_integer_fc(self, rig, q_sigmoid, models):
        images = models.dataset.test_images[:2]
        conv = q_sigmoid.conv_stage(q_sigmoid.quantize_images(images))
        hidden = q_sigmoid.enclave_stage(conv)
        expected = q_sigmoid.fc_stage(hidden)
        weights = heops.encode_dense_weights(
            rig["evaluator"], rig["encoder"], q_sigmoid.dense_weight, q_sigmoid.dense_bias
        )
        ct = rig["encryptor"].encrypt(rig["encoder"].encode(hidden))
        out = heops.he_dense(rig["evaluator"], rig["encoder"], ct, weights)
        assert np.array_equal(roundtrip(rig, out), expected)

    def test_rejects_wrong_width(self, rig):
        weights = heops.encode_dense_weights(
            rig["evaluator"], rig["encoder"],
            np.ones((8, 3), dtype=np.int64), np.zeros(3, dtype=np.int64),
        )
        ct = rig["encryptor"].encrypt(
            rig["encoder"].encode(np.zeros((1, 4), dtype=np.int64))
        )
        with pytest.raises(PipelineError):
            heops.he_dense(rig["evaluator"], rig["encoder"], ct, weights)
