"""End-to-end pipeline tests: the paper's central claims in miniature.

* hybrid logits == plaintext quantized logits (no approximation loss);
* pure-HE logits == plaintext integer reference (exact FV arithmetic);
* EncryptFakeSGX computes the same results with zero SGX overhead;
* EncryptSGX(single) pays one crossing per feature value.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CryptonetsPipeline,
    FloatPipeline,
    HybridPipeline,
    PlaintextPipeline,
)
from repro.errors import PipelineError
from repro.sgx import SgxPlatform


@pytest.fixture(scope="module")
def plain_result(q_sigmoid, test_images):
    return PlaintextPipeline(q_sigmoid).infer(test_images)


@pytest.fixture(scope="module")
def hybrid(q_sigmoid, hybrid_params):
    return HybridPipeline(q_sigmoid, hybrid_params, seed=2)


@pytest.fixture(scope="module")
def hybrid_result(hybrid, test_images):
    return hybrid.infer(test_images)


class TestPlaintextPipelines:
    def test_stages_recorded(self, plain_result):
        assert [s.name for s in plain_result.stages] == [
            "quantize", "conv", "activation_pool", "fc",
        ]

    def test_no_sgx_overhead(self, plain_result):
        assert plain_result.total_overhead_s == 0.0

    def test_float_pipeline_agrees_mostly(self, models, q_sigmoid, test_images, plain_result):
        float_result = FloatPipeline(models.sigmoid).infer(test_images)
        assert float_result.logits.shape == plain_result.logits.shape


class TestHybridPipeline:
    def test_matches_plaintext_exactly(self, hybrid_result, plain_result):
        """The paper's accuracy claim: no approximation, bit-exact logits."""
        assert np.array_equal(hybrid_result.logits, plain_result.logits)

    def test_single_enclave_crossing(self, hybrid_result):
        assert hybrid_result.enclave_crossings == 1

    def test_positive_noise_budget_at_decrypt(self, hybrid_result):
        assert hybrid_result.noise_budget_bits > 0

    def test_sgx_overhead_charged(self, hybrid_result):
        sgx_stage = hybrid_result.stage("sgx_activation_pool")
        assert sgx_stage.overhead_s > 0

    def test_linear_stages_have_no_sgx_overhead(self, hybrid_result):
        assert hybrid_result.stage("conv").overhead_s == 0.0
        assert hybrid_result.stage("fc").overhead_s == 0.0

    def test_op_counts_recorded(self, hybrid_result):
        assert hybrid_result.op_counts["ct_plain_mul"] > 0
        assert hybrid_result.op_counts["ct_add"] > 0
        assert "ct_mul" not in hybrid_result.op_counts  # no square, ever

    def test_rejects_square_model(self, q_square, pure_he_params):
        with pytest.raises(PipelineError):
            HybridPipeline(q_square, pure_he_params)

    def test_rejects_undersized_modulus(self, q_sigmoid, hybrid_params):
        import dataclasses

        tiny = dataclasses.replace(hybrid_params, plain_modulus=256, name="tiny")
        with pytest.raises(PipelineError):
            HybridPipeline(q_sigmoid, tiny)

    def test_rejects_unknown_mode(self, q_sigmoid, hybrid_params):
        with pytest.raises(PipelineError):
            HybridPipeline(q_sigmoid, hybrid_params, mode="warp")


class TestFakeSgxMode:
    def test_same_logits_no_overhead(self, q_sigmoid, hybrid_params, test_images, plain_result):
        fake = HybridPipeline(q_sigmoid, hybrid_params, mode="fake", seed=2)
        result = fake.infer(test_images)
        assert np.array_equal(result.logits, plain_result.logits)
        assert result.stage("sgx_activation_pool").overhead_s == 0.0
        assert result.scheme == "EncryptFakeSGX"

    def test_faster_than_trusted(self, hybrid_result, q_sigmoid, hybrid_params, test_images):
        fake = HybridPipeline(q_sigmoid, hybrid_params, mode="fake", seed=2)
        fake_result = fake.infer(test_images)
        assert fake_result.total_overhead_s < hybrid_result.total_overhead_s


class TestPerPixelMode:
    def test_one_crossing_per_value_plus_pool(self, q_sigmoid, hybrid_params, models):
        single = HybridPipeline(q_sigmoid, hybrid_params, mode="per_pixel", seed=2)
        image = models.dataset.test_images[:1]
        result = single.infer(image)
        conv_shape = (1, q_sigmoid.conv_weight.shape[0], 8, 8)  # 10-3+1=8
        expected_crossings = int(np.prod(conv_shape)) + 1  # sigmoids + final pool
        assert result.enclave_crossings == expected_crossings
        assert result.scheme == "EncryptSGX(single)"

    def test_logits_still_close_to_plaintext(self, q_sigmoid, hybrid_params, models):
        """Per-pixel differs only in the pool rounding path (float mean in
        one go vs requantized sigmoid then integer mean), so predictions
        agree even when logits wobble by a few units."""
        single = HybridPipeline(q_sigmoid, hybrid_params, mode="per_pixel", seed=2)
        image = models.dataset.test_images[:1]
        plain = PlaintextPipeline(q_sigmoid).infer(image)
        result = single.infer(image)
        scale = max(1, int(np.abs(plain.logits).max()))
        assert np.abs(result.logits - plain.logits).max() <= 0.1 * scale

    def test_massive_overhead(self, q_sigmoid, hybrid_params, models, hybrid_result):
        """The paper's negative control: per-pixel crossings dwarf batched."""
        single = HybridPipeline(q_sigmoid, hybrid_params, mode="per_pixel", seed=2)
        result = single.infer(models.dataset.test_images[:1])
        assert result.total_overhead_s > hybrid_result.total_overhead_s


class TestCryptonetsPipeline:
    @pytest.fixture(scope="class")
    def cn(self, q_square, pure_he_params):
        return CryptonetsPipeline(q_square, pure_he_params, seed=2)

    @pytest.fixture(scope="class")
    def cn_result(self, cn, test_images):
        return cn.infer(test_images)

    def test_matches_integer_reference(self, cn_result, q_square, test_images):
        expected = PlaintextPipeline(q_square).infer(test_images)
        assert np.array_equal(cn_result.logits, expected.logits)

    def test_stage_order(self, cn_result):
        assert [s.name for s in cn_result.stages] == [
            "encrypt", "conv", "square", "relinearize", "pool", "fc", "decrypt",
        ]

    def test_ct_mult_happens(self, cn_result):
        assert cn_result.op_counts.get("ct_mul", 0) > 0
        assert cn_result.op_counts.get("relinearize", 0) > 0

    def test_noise_budget_survives(self, cn_result):
        assert cn_result.noise_budget_bits > 0

    def test_rejects_sigmoid_model(self, q_sigmoid, hybrid_params):
        with pytest.raises(PipelineError):
            CryptonetsPipeline(q_sigmoid, hybrid_params)

    def test_rejects_undersized_modulus(self, q_square, hybrid_params):
        # The hybrid's modest modulus cannot hold squared intermediates.
        with pytest.raises(PipelineError):
            CryptonetsPipeline(q_square, hybrid_params)


class TestHeadlineComparison:
    @pytest.mark.slow
    def test_hybrid_beats_pure_he(
        self, q_sigmoid, q_square, hybrid_params, pure_he_params, test_images
    ):
        """Fig. 8's shape: EncryptSGX total time < Encrypted total time."""
        hybrid = HybridPipeline(q_sigmoid, hybrid_params, seed=4)
        cn = CryptonetsPipeline(q_square, pure_he_params, seed=4)
        hybrid_time = hybrid.infer(test_images).total_elapsed_s
        cn_time = cn.infer(test_images).total_elapsed_s
        assert hybrid_time < cn_time

    def test_prediction_agreement_across_pipelines(
        self, hybrid_result, plain_result, models, test_images
    ):
        from repro.nn import agreement_rate

        assert agreement_rate(hybrid_result.predictions, plain_result.predictions) == 1.0


class TestDiverseActivations:
    """Paper Section VI-C/VI-D: the enclave serves tanh and max-pool too."""

    @pytest.fixture(scope="class")
    def tanh_max_setup(self, models):
        from repro.core import parameters_for_pipeline
        from repro.nn import QuantizedCNN, scaled_cnn, train

        model = scaled_cnn(image_size=10, channels=2, kernel_size=3,
                           activation="tanh", pool="max",
                           rng=np.random.default_rng(8))
        data = models.dataset
        train(model, data.train_float(), data.train_labels, epochs=2,
              learning_rate=0.05, seed=8)
        quantized = QuantizedCNN.from_float(model)
        params = parameters_for_pipeline(quantized, 256)
        return quantized, params

    def test_tanh_max_hybrid_matches_plaintext(self, tanh_max_setup, test_images):
        quantized, params = tanh_max_setup
        hybrid = HybridPipeline(quantized, params, seed=9)
        plain = PlaintextPipeline(quantized).infer(test_images)
        result = hybrid.infer(test_images)
        assert result.scheme == "EncryptSGX"
        assert np.array_equal(result.logits, plain.logits)

    def test_per_pixel_mode_restricted_to_paper_config(self, tanh_max_setup):
        quantized, params = tanh_max_setup
        with pytest.raises(PipelineError):
            HybridPipeline(quantized, params, mode="per_pixel")

    def test_cryptonets_rejects_exact_models(self, tanh_max_setup):
        quantized, params = tanh_max_setup
        with pytest.raises(PipelineError):
            CryptonetsPipeline(quantized, params)


class TestSideChannelShape:
    def test_trace_independent_of_plaintext(self, q_sigmoid, hybrid_params, models):
        """The observable enclave trace must depend on shapes, not values."""
        platform_a = SgxPlatform(platform_secret=b"\x21" * 32)
        platform_b = SgxPlatform(platform_secret=b"\x21" * 32)
        a = HybridPipeline(q_sigmoid, hybrid_params, platform=platform_a, seed=3)
        b = HybridPipeline(q_sigmoid, hybrid_params, platform=platform_b, seed=3)
        img_a = models.dataset.test_images[:1]
        img_b = 255 - img_a  # same shape, completely different content
        a.infer(img_a)
        b.infer(img_b)
        assert (
            a.enclave.side_channel.trace_signature()
            == b.enclave.side_channel.trace_signature()
        )
