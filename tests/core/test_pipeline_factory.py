"""The unified pipeline API: scheme resolution, factory wiring, protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CryptonetsPipeline,
    HybridPipeline,
    InferencePipeline,
    PlaintextPipeline,
    SCHEME_ALIASES,
    SimdHybridPipeline,
    build_pipeline,
    resolve_scheme,
)
from repro.errors import PipelineError


class TestSchemeResolution:
    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("plaintext", "plaintext"),
            ("cryptonets", "cryptonets"),
            ("encrypted", "cryptonets"),
            ("hybrid", "hybrid"),
            ("encryptsgx", "hybrid"),
            ("EncryptSGX", "hybrid"),
            ("simd", "simd"),
            ("  SIMD  ", "simd"),
            ("deep", "deep"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert resolve_scheme(alias) == canonical

    def test_unknown_scheme(self):
        with pytest.raises(PipelineError):
            resolve_scheme("tfhe")

    def test_alias_table_targets_are_canonical(self):
        assert set(SCHEME_ALIASES.values()) <= set(SCHEME_ALIASES)


class TestFactory:
    def test_plaintext(self, q_sigmoid):
        pipeline = build_pipeline("plaintext", q_sigmoid)
        assert isinstance(pipeline, PlaintextPipeline)
        assert isinstance(pipeline, InferencePipeline)

    def test_hybrid_with_explicit_params(self, q_sigmoid, hybrid_params):
        pipeline = build_pipeline("encryptsgx", q_sigmoid, hybrid_params, seed=7)
        assert isinstance(pipeline, HybridPipeline)
        assert pipeline.scheme == "EncryptSGX"

    def test_hybrid_mode_passthrough(self, q_sigmoid, hybrid_params):
        pipeline = build_pipeline("hybrid", q_sigmoid, hybrid_params, mode="fake", seed=7)
        assert pipeline.scheme == "EncryptFakeSGX"

    def test_hybrid_bad_mode(self, q_sigmoid, hybrid_params):
        with pytest.raises(PipelineError):
            build_pipeline("hybrid", q_sigmoid, hybrid_params, mode="turbo")

    def test_cryptonets(self, q_square, pure_he_params):
        pipeline = build_pipeline("encrypted", q_square, pure_he_params, seed=7)
        assert isinstance(pipeline, CryptonetsPipeline)

    def test_simd_auto_params_support_batching(self, q_sigmoid):
        pipeline = build_pipeline("simd", q_sigmoid, poly_degree=256, seed=7)
        assert isinstance(pipeline, SimdHybridPipeline)
        assert pipeline.params.supports_batching()

    def test_hybrid_auto_params(self, q_sigmoid):
        pipeline = build_pipeline("hybrid", q_sigmoid, poly_degree=256, seed=7)
        assert isinstance(pipeline, HybridPipeline)

    def test_unknown_option_rejected(self, q_sigmoid, hybrid_params):
        with pytest.raises(PipelineError):
            build_pipeline("hybrid", q_sigmoid, hybrid_params, turbo=True)

    def test_option_for_wrong_scheme_rejected(self, q_sigmoid):
        with pytest.raises(PipelineError):
            build_pipeline("plaintext", q_sigmoid, mode="batched")


class TestProtocol:
    def test_all_pipelines_satisfy_protocol(self, q_sigmoid, q_square, hybrid_params, pure_he_params):
        pipelines = [
            build_pipeline("plaintext", q_sigmoid),
            build_pipeline("hybrid", q_sigmoid, hybrid_params, seed=7),
            build_pipeline("cryptonets", q_square, pure_he_params, seed=7),
            build_pipeline("simd", q_sigmoid, seed=7, poly_degree=256),
        ]
        for pipeline in pipelines:
            assert isinstance(pipeline, InferencePipeline)
            assert isinstance(pipeline.scheme, str)

    def test_plaintext_encrypt_images_is_quantization(self, q_sigmoid, models):
        images = models.dataset.test_images[:2]
        pipeline = build_pipeline("plaintext", q_sigmoid)
        assert np.array_equal(
            pipeline.encrypt_images(images), q_sigmoid.quantize_images(images)
        )

    def test_factory_output_infers(self, q_sigmoid, models):
        images = models.dataset.test_images[:2]
        result = build_pipeline("plaintext", q_sigmoid).infer(images)
        assert result.logits.shape[0] == 2
