"""Parameter sizing and trained-model factory tests."""

from __future__ import annotations

import pytest

from repro.core import parameters_for_pipeline, required_budget_bits, train_paper_models
from repro.errors import ParameterError
from repro.he import NoiseEstimator


class TestParametersForPipeline:
    def test_hybrid_fits_model(self, q_sigmoid):
        params = parameters_for_pipeline(q_sigmoid, 256)
        assert q_sigmoid.fits_plain_modulus(params.plain_modulus)

    def test_pure_he_needs_more_modulus(self, q_sigmoid, q_square):
        hybrid = parameters_for_pipeline(q_sigmoid, 256)
        pure = parameters_for_pipeline(q_square, 256)
        # The asymmetry the hybrid framework exploits: the square pipeline
        # needs a dramatically larger coefficient modulus.
        assert pure.coeff_modulus > hybrid.coeff_modulus
        assert pure.plain_modulus > hybrid.plain_modulus

    def test_budget_margin_respected(self, q_square):
        params = parameters_for_pipeline(q_square, 256, margin_bits=8.0)
        estimator = NoiseEstimator(params)
        assert estimator.budget_after(multiplies=1, plain_multiplies=2) >= 8.0

    def test_impossible_request_raises(self, q_square):
        # At degree 256 a huge margin cannot be met with <= 12 primes.
        with pytest.raises(ParameterError):
            parameters_for_pipeline(q_square, 256, margin_bits=400.0)

    def test_name_override(self, q_sigmoid):
        params = parameters_for_pipeline(q_sigmoid, 256, name="bench")
        assert params.name == "bench"

    def test_required_budget_positive_for_pure_he(self, q_square):
        params = parameters_for_pipeline(q_square, 256)
        assert required_budget_bits(params, pure_he=True) > required_budget_bits(
            params, pure_he=False
        )


class TestTrainPaperModels:
    def test_scaled_models_shapes(self, models):
        assert models.sigmoid.layer_shapes[0] == (1, 10, 10)
        assert models.square.layer_shapes[0] == (1, 10, 10)

    def test_dataset_cropped(self, models):
        assert models.dataset.train_images.shape[-2:] == (10, 10)

    def test_models_learn_something(self, models):
        from repro.nn import accuracy

        acc = accuracy(
            models.sigmoid, models.dataset.test_float(), models.dataset.test_labels
        )
        assert acc > 0.2  # small data, small model, still far above chance

    def test_quantized_accessors(self, models):
        q = models.quantized_sigmoid(weight_bits=5, act_scale=31)
        assert abs(q.conv_weight).max() <= 15
        assert q.act_scale == 31
        q2 = models.quantized_square(weight_bits=3, input_scale=7)
        assert abs(q2.conv_weight).max() <= 3
        assert q2.input_scale == 7

    @pytest.mark.slow
    def test_full_size_paper_model(self):
        models = train_paper_models(train_size=200, test_size=50, epochs=2)
        assert models.sigmoid.layer_shapes[0] == (1, 28, 28)
        assert models.sigmoid.layer_shapes[1] == (6, 24, 24)
