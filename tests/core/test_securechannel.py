"""Secure-channel primitives: DH handshake, AE layer, user_data binding."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import securechannel as sc
from repro.errors import AttestationError


class TestDiffieHellman:
    def test_shared_secret_agrees(self):
        a = sc.DhKeyPair.generate(b"a" * 32)
        b = sc.DhKeyPair.generate(b"b" * 32)
        assert a.shared_secret(b.public) == b.shared_secret(a.public)

    def test_different_peers_different_secrets(self):
        a = sc.DhKeyPair.generate(b"a" * 32)
        b = sc.DhKeyPair.generate(b"b" * 32)
        c = sc.DhKeyPair.generate(b"c" * 32)
        assert a.shared_secret(b.public) != a.shared_secret(c.public)

    def test_entropy_too_short_rejected(self):
        with pytest.raises(AttestationError):
            sc.DhKeyPair.generate(b"short")

    def test_degenerate_peer_share_rejected(self):
        a = sc.DhKeyPair.generate(b"a" * 32)
        for bad in (0, 1, sc.RFC3526_PRIME - 1, sc.RFC3526_PRIME):
            with pytest.raises(AttestationError):
                a.shared_secret(bad)

    def test_public_share_in_group(self):
        a = sc.DhKeyPair.generate(b"x" * 40)
        assert 2 <= a.public <= sc.RFC3526_PRIME - 2


class TestAuthenticatedEncryption:
    def test_roundtrip(self):
        key = b"k" * 32
        msg = sc.encrypt_message(key, b"homomorphic keys", b"n" * 16)
        assert sc.decrypt_message(key, msg) == b"homomorphic keys"

    def test_ciphertext_hides_plaintext(self):
        msg = sc.encrypt_message(b"k" * 32, b"secret key material", b"n" * 16)
        assert b"secret" not in msg.ciphertext

    def test_wrong_key_rejected(self):
        msg = sc.encrypt_message(b"k" * 32, b"payload", b"n" * 16)
        with pytest.raises(AttestationError):
            sc.decrypt_message(b"w" * 32, msg)

    def test_tampering_rejected(self):
        msg = sc.encrypt_message(b"k" * 32, b"payload", b"n" * 16)
        flipped = bytes([msg.ciphertext[0] ^ 1]) + msg.ciphertext[1:]
        with pytest.raises(AttestationError):
            sc.decrypt_message(b"k" * 32, dataclasses.replace(msg, ciphertext=flipped))

    def test_bad_nonce_length_rejected(self):
        with pytest.raises(AttestationError):
            sc.encrypt_message(b"k" * 32, b"x", b"short")

    def test_large_payload(self):
        payload = bytes(range(256)) * 4096  # ~1 MiB of key material
        msg = sc.encrypt_message(b"k" * 32, payload, b"n" * 16)
        assert sc.decrypt_message(b"k" * 32, msg) == payload


class TestUserDataBinding:
    def test_roundtrip(self):
        dh = sc.DhKeyPair.generate(b"e" * 32)
        digest = sc.payload_digest(b"payload-bytes")
        share, recovered = sc.split_user_data(sc.bind_user_data(dh.public, digest))
        assert share == dh.public
        assert recovered == digest

    def test_short_user_data_rejected(self):
        with pytest.raises(AttestationError):
            sc.split_user_data(b"too short")
