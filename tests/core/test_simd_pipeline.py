"""SIMD-packed hybrid pipeline: slot packing, exactness, throughput shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    HybridPipeline,
    PlaintextPipeline,
    SimdHybridPipeline,
    SlotCodec,
    parameters_for_pipeline,
)
from repro.errors import PipelineError
from repro.he import Context


@pytest.fixture(scope="module")
def simd_params(q_sigmoid):
    return parameters_for_pipeline(q_sigmoid, 256, batching=True)


@pytest.fixture(scope="module")
def simd_pipeline(q_sigmoid, simd_params):
    return SimdHybridPipeline(q_sigmoid, simd_params, seed=5)


class TestSlotCodec:
    def test_roundtrip(self, simd_params, rng):
        codec = SlotCodec(Context(simd_params))
        values = rng.integers(-100, 100, size=(5, 2, 4, 4))
        plain = codec.encode(values)
        assert plain.batch_shape == (1, 2, 4, 4)
        assert np.array_equal(codec.decode(plain, 5), values)

    def test_rejects_oversized_batch(self, simd_params, rng):
        codec = SlotCodec(Context(simd_params))
        too_many = codec.slot_count + 1
        with pytest.raises(PipelineError):
            codec.encode(np.zeros((too_many, 1, 2, 2), dtype=np.int64))

    def test_rejects_wrong_rank(self, simd_params):
        codec = SlotCodec(Context(simd_params))
        with pytest.raises(PipelineError):
            codec.encode(np.zeros((4, 4), dtype=np.int64))


class TestSimdHybrid:
    def test_matches_plaintext_exactly(self, simd_pipeline, q_sigmoid, models):
        images = models.dataset.test_images[:5]
        plain = PlaintextPipeline(q_sigmoid).infer(images)
        result = simd_pipeline.infer(images)
        assert np.array_equal(result.logits, plain.logits)

    def test_matches_unpacked_hybrid(self, simd_pipeline, q_sigmoid, simd_params, models):
        images = models.dataset.test_images[:3]
        unpacked = HybridPipeline(q_sigmoid, simd_params, seed=6).infer(images)
        packed = simd_pipeline.infer(images)
        assert np.array_equal(packed.logits, unpacked.logits)

    def test_single_enclave_crossing(self, simd_pipeline, models):
        result = simd_pipeline.infer(models.dataset.test_images[:4])
        assert result.enclave_crossings == 1

    def test_ciphertext_count_independent_of_batch(self, simd_pipeline, models):
        small = simd_pipeline.encrypt_images(models.dataset.test_images[:1])
        large = simd_pipeline.encrypt_images(models.dataset.test_images[:8])
        assert small.data.shape == large.data.shape

    def test_per_image_time_collapses(self, simd_pipeline, q_sigmoid, simd_params, models):
        """The Section VIII claim: batch 8 images for ~the cost of 1."""
        one = simd_pipeline.infer(models.dataset.test_images[:1])
        eight = simd_pipeline.infer(models.dataset.test_images[:8])
        # Same ciphertext work modulo noise: allow 2x slack.
        assert eight.total_elapsed_s < 2 * one.total_elapsed_s

    def test_positive_noise_budget(self, simd_pipeline, models):
        result = simd_pipeline.infer(models.dataset.test_images[:2])
        assert result.noise_budget_bits > 0

    def test_rejects_non_batching_modulus(self, q_sigmoid, hybrid_params):
        with pytest.raises(PipelineError):
            SimdHybridPipeline(q_sigmoid, hybrid_params)

    def test_rejects_square_model(self, q_square, simd_params):
        with pytest.raises(PipelineError):
            SimdHybridPipeline(q_square, simd_params)

    def test_tanh_max_variant(self, models, test_images):
        from repro.nn import QuantizedCNN, scaled_cnn, train

        model = scaled_cnn(image_size=10, channels=2, kernel_size=3,
                           activation="tanh", pool="max",
                           rng=np.random.default_rng(12))
        data = models.dataset
        train(model, data.train_float(), data.train_labels, epochs=1,
              learning_rate=0.05, seed=12)
        quantized = QuantizedCNN.from_float(model)
        params = parameters_for_pipeline(quantized, 256, batching=True)
        pipeline = SimdHybridPipeline(quantized, params, seed=12)
        plain = PlaintextPipeline(quantized).infer(test_images)
        assert np.array_equal(pipeline.infer(test_images).logits, plain.logits)


class TestBatchingParameterOption:
    def test_prime_and_congruent(self, q_sigmoid):
        params = parameters_for_pipeline(q_sigmoid, 256, batching=True)
        assert params.supports_batching()
        assert params.plain_modulus >= q_sigmoid.required_plain_modulus()

    def test_oversized_bound_rejected(self, q_square):
        from repro.errors import ParameterError

        if q_square.required_plain_modulus() < 1 << 30:
            pytest.skip("square model unexpectedly small")
        with pytest.raises(ParameterError):
            parameters_for_pipeline(q_square, 256, batching=True)