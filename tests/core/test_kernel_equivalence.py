"""Fused vs reference kernels: end-to-end bit-identity regression.

The acceptance bar for the hot-path kernel layer is not "same argmax" but
*bit-identical ciphertext bytes* at every pipeline boundary: encryption,
the homomorphic conv, the FC logits, and the decrypted values, plus
identical :class:`OperationCounter` tallies.  Any divergence means a fused
kernel silently changed the arithmetic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CryptonetsPipeline, HybridPipeline, heops
from repro.he import kernels


def _run_hybrid(profile, quantized, params, images):
    prev = kernels.configure(profile)
    try:
        pipe = HybridPipeline(quantized, params, seed=7)
        result = pipe.infer(images)
        ct = pipe.encrypt_images(images)
        conv = heops.he_conv2d(pipe.evaluator, pipe.encoder, ct, pipe.conv_weights)
        return pipe, result, ct, conv
    finally:
        kernels.configure(prev)


class TestHybridEquivalence:
    @pytest.fixture(scope="class")
    def runs(self, q_sigmoid, hybrid_params, test_images):
        ref = _run_hybrid(kernels.REFERENCE, q_sigmoid, hybrid_params, test_images)
        fus = _run_hybrid(kernels.FUSED, q_sigmoid, hybrid_params, test_images)
        return ref, fus

    def test_logits_bit_identical(self, runs):
        (_, ref, _, _), (_, fus, _, _) = runs
        assert np.array_equal(ref.logits, fus.logits)

    def test_encrypted_input_bit_identical(self, runs):
        (_, _, ref_ct, _), (_, _, fus_ct, _) = runs
        assert ref_ct.is_ntt == fus_ct.is_ntt
        assert np.array_equal(ref_ct.data, fus_ct.data)

    def test_conv_output_bit_identical(self, runs):
        (_, _, _, ref_conv), (_, _, _, fus_conv) = runs
        assert np.array_equal(ref_conv.to_ntt().data, fus_conv.to_ntt().data)

    def test_operation_tallies_identical(self, runs):
        (ref_pipe, _, _, _), (fus_pipe, _, _, _) = runs
        assert dict(ref_pipe.counter.counts) == dict(fus_pipe.counter.counts)

    def test_kernel_mode_recorded_in_trace(self, runs):
        (_, ref, _, _), (_, fus, _, _) = runs
        assert ref.trace.attrs["kernel_mode"] == "reference"
        assert fus.trace.attrs["kernel_mode"] == "fused"


class TestDenseAndPoolEquivalence:
    def test_dense_bit_identical(self, q_sigmoid, hybrid_params, test_images):
        ref_pipe, _, ref_ct, ref_conv = _run_hybrid(
            kernels.REFERENCE, q_sigmoid, hybrid_params, test_images
        )
        with kernels.use(kernels.REFERENCE):
            pooled = heops.he_scaled_mean_pool(
                ref_pipe.evaluator, ref_conv, q_sigmoid.pool_window
            )
            ref_dense = heops.he_dense(
                ref_pipe.evaluator, ref_pipe.encoder, pooled, ref_pipe.dense_weights
            )
        with kernels.use(kernels.FUSED):
            pooled_f = heops.he_scaled_mean_pool(
                ref_pipe.evaluator, ref_conv, q_sigmoid.pool_window
            )
            fus_dense = heops.he_dense(
                ref_pipe.evaluator, ref_pipe.encoder, pooled_f, ref_pipe.dense_weights
            )
        assert np.array_equal(pooled.to_ntt().data, pooled_f.to_ntt().data)
        assert np.array_equal(ref_dense.to_ntt().data, fus_dense.to_ntt().data)

    def test_conv_scalar_kernel_recovered(self, q_sigmoid, hybrid_params, test_images):
        pipe, _, _, _ = _run_hybrid(
            kernels.FUSED, q_sigmoid, hybrid_params, test_images
        )
        # Quantized CNN weights are scalar encodings, so the fused layers
        # must have recovered the signed integer fast path.
        assert pipe.conv_weights.weight_taps is not None
        assert pipe.dense_weights.weight_matrix is not None
        f, c, kh, kw = q_sigmoid.conv_weight.shape
        assert pipe.conv_weights.weight_taps.shape == (f, c * kh * kw)


class TestCryptonetsEquivalence:
    def test_logits_and_tallies_match(self, q_square, pure_he_params, test_images):
        outs = {}
        for name, profile in (
            ("reference", kernels.REFERENCE),
            ("fused", kernels.FUSED),
        ):
            prev = kernels.configure(profile)
            try:
                pipe = CryptonetsPipeline(q_square, pure_he_params, seed=21)
                outs[name] = (pipe.infer(test_images), dict(pipe.counter.counts))
            finally:
                kernels.configure(prev)
        ref, fus = outs["reference"], outs["fused"]
        assert np.array_equal(ref[0].logits, fus[0].logits)
        assert ref[1] == fus[1]
