"""Result/timing record types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InferenceResult, StageTiming


@pytest.fixture()
def result():
    return InferenceResult(
        logits=np.array([[1, 5, 2], [9, 0, 3]]),
        stages=[
            StageTiming("encrypt", real_s=1.0),
            StageTiming("sgx", real_s=2.0, overhead_s=0.5),
        ],
        scheme="TestScheme",
        noise_budget_bits=12.5,
        op_counts={"ct_add": 7},
        enclave_crossings=3,
    )


class TestStageTiming:
    def test_elapsed_is_sum(self):
        stage = StageTiming("x", real_s=1.5, overhead_s=0.25)
        assert stage.elapsed_s == pytest.approx(1.75)

    def test_default_overhead_zero(self):
        assert StageTiming("x", real_s=1.0).overhead_s == 0.0


class TestInferenceResult:
    def test_predictions_argmax(self, result):
        assert result.predictions.tolist() == [1, 0]

    def test_totals(self, result):
        assert result.total_real_s == pytest.approx(3.0)
        assert result.total_overhead_s == pytest.approx(0.5)
        assert result.total_elapsed_s == pytest.approx(3.5)

    def test_stage_lookup(self, result):
        assert result.stage("sgx").overhead_s == 0.5

    def test_stage_missing(self, result):
        with pytest.raises(KeyError):
            result.stage("nonexistent")

    def test_describe_mentions_everything(self, result):
        text = result.describe()
        assert "TestScheme" in text
        assert "encrypt" in text and "sgx" in text
        assert "12.5 bits" in text

    def test_describe_without_budget(self):
        result = InferenceResult(logits=np.zeros((1, 2)), scheme="S")
        assert "bits" not in result.describe()
