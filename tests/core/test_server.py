"""EdgeServer facade: provisioning, sealed models, enrollment, serving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EdgeServer, PlaintextPipeline
from repro.errors import PipelineError, SealingError
from repro.sgx import AttestationVerificationService, SgxPlatform


@pytest.fixture()
def verifier_for(request):
    def make(server):
        service = AttestationVerificationService()
        service.register_platform(server.quoting)
        return service

    return make


@pytest.fixture()
def server(hybrid_params, q_sigmoid):
    srv = EdgeServer(hybrid_params, seed=13)
    srv.provision_model("digits", q_sigmoid)
    return srv


@pytest.fixture()
def session(server, verifier_for):
    return server.enroll_user(entropy=b"\x42" * 32, verifier=verifier_for(server))


class TestProvisioning:
    def test_models_listed(self, server):
        assert server.models() == ["digits"]

    def test_rejects_square_model(self, hybrid_params, q_square):
        srv = EdgeServer(hybrid_params, seed=13)
        with pytest.raises(PipelineError):
            srv.provision_model("cn", q_square)

    def test_rejects_oversized_model(self, q_sigmoid):
        import dataclasses

        from repro.core import parameters_for_pipeline

        params = parameters_for_pipeline(q_sigmoid, 256)
        tiny = dataclasses.replace(params, plain_modulus=64, name="tiny")
        srv = EdgeServer(tiny, seed=13)
        with pytest.raises(PipelineError):
            srv.provision_model("digits", q_sigmoid)

    def test_unknown_model_rejected(self, server, session, models):
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        with pytest.raises(PipelineError):
            server.infer("faces", ct)


class TestSealedModels:
    def test_seal_restore_roundtrip(self, server, hybrid_params, q_sigmoid):
        blob = server.seal_model("digits")
        # A restarted enclave instance of the same code on the same platform:
        fresh = EdgeServer(hybrid_params, platform=server.platform, seed=14)
        assert fresh.models() == []
        name = fresh.restore_model(blob)
        assert name == "digits"
        assert fresh.models() == ["digits"]

    def test_other_platform_cannot_restore(self, server, hybrid_params):
        blob = server.seal_model("digits")
        other = EdgeServer(hybrid_params, platform=SgxPlatform(), seed=15)
        with pytest.raises(SealingError):
            other.restore_model(blob)

    def test_tampered_blob_rejected(self, server):
        import dataclasses

        blob = server.seal_model("digits")
        flipped = bytes([blob.ciphertext[0] ^ 1]) + blob.ciphertext[1:]
        with pytest.raises(SealingError):
            server.restore_model(dataclasses.replace(blob, ciphertext=flipped))


class TestServing:
    def test_end_to_end_matches_plaintext(self, server, session, q_sigmoid, models):
        images = models.dataset.test_images[:3]
        ct = session.encrypt("digits", images)
        result = server.infer("digits", ct)
        logits = session.decrypt_logits(result)
        expected = PlaintextPipeline(q_sigmoid).infer(images)
        assert np.array_equal(logits, expected.logits)

    def test_decrypt_returns_predictions(self, server, session, q_sigmoid, models):
        images = models.dataset.test_images[:3]
        result = server.infer("digits", session.encrypt("digits", images))
        predictions = session.decrypt(result)
        expected = PlaintextPipeline(q_sigmoid).infer(images)
        assert np.array_equal(predictions, expected.predictions)

    def test_server_never_sees_plaintext(self, server, session, models):
        """The returned logits are a ciphertext; only the session decrypts."""
        result = server.infer("digits", session.encrypt("digits", models.dataset.test_images[:1]))
        from repro.he import Ciphertext

        assert isinstance(result.logits_ct, Ciphertext)

    def test_timing_stages_present(self, server, session, models):
        result = server.infer("digits", session.encrypt("digits", models.dataset.test_images[:1]))
        names = [s.name for s in result.timing.stages]
        assert names == ["conv", "sgx_activation_pool", "fc"]
        assert result.timing.stage("sgx_activation_pool").overhead_s > 0

    def test_two_users_same_keys_share_service(self, server, verifier_for, models):
        """Every enrolled user of this edge node shares the service key pair
        (the enclave is the single key authority)."""
        a = server.enroll_user(entropy=b"\x01" * 32, verifier=verifier_for(server))
        b = server.enroll_user(entropy=b"\x02" * 32, verifier=verifier_for(server))
        images = models.dataset.test_images[:1]
        result = server.infer("digits", a.encrypt("digits", images))
        # User B can decrypt user A's result under this deployment model.
        assert b.decrypt(result).shape == (1,)

    def test_session_rejects_unknown_model(self, session, models):
        with pytest.raises(PipelineError):
            session.encrypt("faces", models.dataset.test_images[:1])
