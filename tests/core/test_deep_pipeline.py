"""Deep (multi-block) hybrid pipeline: depth scalability of the framework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DeepHybridPipeline,
    parameters_for_pipeline,
    pure_he_modulus_bits_for_depth,
)
from repro.errors import ModelError, PipelineError
from repro.nn import DeepQuantizedCNN, deep_cnn, train
from repro.nn.layers import Dense, ReLU, Sigmoid
from repro.nn.model import Sequential


@pytest.fixture(scope="module")
def deep_setup(models):
    # 18x18 inputs survive two (k=3, pool 2) blocks: 18->16->8->6->3.
    rng = np.random.default_rng(31)
    model = deep_cnn(image_size=18, block_channels=(3, 4), kernel_size=3, rng=rng)
    data = models.dataset  # 10x10 crop -- rebuild an 18x18 crop instead
    from repro.nn import synthetic_mnist

    full = synthetic_mnist(train_size=200, test_size=40, seed=31)
    lo = (28 - 18) // 2
    images = full.train_images[:, :, lo : lo + 18, lo : lo + 18]
    test_images = full.test_images[:, :, lo : lo + 18, lo : lo + 18]
    train(model, images.astype(np.float64) / 255.0, full.train_labels,
          epochs=2, learning_rate=0.1, seed=31)
    quantized = DeepQuantizedCNN.from_float(model)
    params = parameters_for_pipeline(quantized, 256)
    return model, quantized, params, test_images


class TestDeepQuantizedCNN:
    def test_depth(self, deep_setup):
        _, quantized, _, _ = deep_setup
        assert quantized.depth == 2

    def test_forward_int_shape(self, deep_setup):
        _, quantized, _, test_images = deep_setup
        assert quantized.forward_int(test_images[:3]).shape == (3, 10)

    def test_tracks_float_predictions(self, deep_setup):
        model, quantized, _, test_images = deep_setup
        float_preds = model.predict(test_images.astype(np.float64) / 255.0)
        int_preds = quantized.predict(test_images)
        assert (float_preds == int_preds).mean() > 0.8

    def test_bound_depth_independent(self, deep_setup):
        """The defining property: a 1-block and a 2-block model of the same
        widths need the same order of plaintext modulus."""
        _, quantized, _, _ = deep_setup
        single = deep_cnn(image_size=18, block_channels=(3,), kernel_size=3,
                          rng=np.random.default_rng(32))
        q_single = DeepQuantizedCNN.from_float(single)
        ratio = quantized.required_plain_modulus() / q_single.required_plain_modulus()
        assert ratio < 8  # same ballpark, NOT the squaring a pure-HE level costs

    def test_rejects_relu_blocks(self):
        model = Sequential([
            *deep_cnn(image_size=18, block_channels=(2,)).layers[:1],
            ReLU(),
            *deep_cnn(image_size=18, block_channels=(2,)).layers[2:],
        ])
        with pytest.raises(ModelError):
            DeepQuantizedCNN.from_float(model)

    def test_rejects_headless_model(self):
        layers = deep_cnn(image_size=18, block_channels=(2,)).layers[:-1]
        with pytest.raises(ModelError):
            DeepQuantizedCNN.from_float(Sequential(layers))

    def test_rejects_ragged_body(self):
        good = deep_cnn(image_size=18, block_channels=(2,))
        ragged = Sequential(good.layers[:2] + [good.layers[-1]])
        with pytest.raises(ModelError):
            DeepQuantizedCNN.from_float(ragged)

    def test_factory_rejects_collapsing_dims(self):
        with pytest.raises(ModelError):
            deep_cnn(image_size=10, block_channels=(2, 2, 2, 2))


class TestDeepHybridPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self, deep_setup):
        _, quantized, params, _ = deep_setup
        return DeepHybridPipeline(quantized, params, seed=33)

    def test_matches_integer_reference(self, pipeline, deep_setup):
        _, quantized, _, test_images = deep_setup
        images = test_images[:2]
        result = pipeline.infer(images)
        assert np.array_equal(result.logits, quantized.forward_int(images))

    def test_one_crossing_per_block(self, pipeline, deep_setup):
        _, quantized, _, test_images = deep_setup
        result = pipeline.infer(test_images[:1])
        assert result.enclave_crossings == quantized.depth

    def test_noise_budget_positive_at_any_depth(self, pipeline, deep_setup):
        _, _, _, test_images = deep_setup
        result = pipeline.infer(test_images[:1])
        assert result.noise_budget_bits > 0

    def test_stage_names_per_block(self, pipeline, deep_setup):
        _, quantized, _, test_images = deep_setup
        result = pipeline.infer(test_images[:1])
        names = [s.name for s in result.stages]
        for i in range(quantized.depth):
            assert f"conv_{i}" in names
            assert f"sgx_block_{i}" in names

    def test_rejects_undersized_modulus(self, deep_setup):
        import dataclasses

        _, quantized, params, _ = deep_setup
        tiny = dataclasses.replace(params, plain_modulus=64, name="tiny")
        with pytest.raises(PipelineError):
            DeepHybridPipeline(quantized, tiny)


class TestDepthAsymmetry:
    def test_pure_he_modulus_grows_with_depth(self):
        bits = [pure_he_modulus_bits_for_depth(d, plain_bits=20, poly_degree=1024)
                for d in (1, 2, 3, 4)]
        assert bits == sorted(bits)
        # Each extra level costs ~ log2(t) + log2(n) + c ~= 33 bits.
        assert bits[1] - bits[0] > 25

    def test_hybrid_modulus_flat_with_depth(self, deep_setup):
        _, quantized, params, _ = deep_setup
        # The 2-block hybrid runs at the same q as the single-block preset
        # family (log2 q ~ 60-90), far below the pure-HE requirement at the
        # same depth.
        pure_bits = pure_he_modulus_bits_for_depth(
            quantized.depth, params.plain_modulus.bit_length(), params.poly_degree
        )
        assert params.coeff_modulus.bit_length() < pure_bits
