"""The inference enclave's trusted operations, checked against plaintext."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InferenceEnclave
from repro.errors import EnclaveError, PipelineError
from repro.he import Context, Decryptor, Encryptor, Evaluator, ScalarEncoder
from repro.nn.layers import Sigmoid
from repro.sgx import SgxPlatform


@pytest.fixture()
def platform():
    return SgxPlatform(platform_secret=b"\x11" * 32)


@pytest.fixture()
def enclave(platform, hybrid_params):
    handle = platform.load_enclave(InferenceEnclave, hybrid_params, 5)
    handle.ecall("generate_keys")
    return handle


@pytest.fixture()
def userland(enclave, hybrid_params):
    """User-side crypto objects under the enclave's public key."""
    context = Context(hybrid_params)
    public = enclave.ecall("get_public_key")
    rng = np.random.default_rng(8)
    # Re-anchor the key to the user's context object (same parameters).
    from repro.he.keys import PublicKey

    public = PublicKey(context, public.p0_ntt, public.p1_ntt)
    return {
        "context": context,
        "encoder": ScalarEncoder(context),
        "encryptor": Encryptor(context, public, rng),
        "evaluator": Evaluator(context),
    }


def encrypt_values(userland, values):
    return userland["encryptor"].encrypt(userland["encoder"].encode(values))


def decrypt_with_enclave(enclave, userland, ct):
    """Tests may peek via the enclave's own refresh-free decrypt path."""
    plain = enclave._instance._decryptor.decrypt(ct)
    return userland["encoder"].decode(plain)


class TestKeyAuthority:
    def test_generate_before_use_enforced(self, platform, hybrid_params):
        fresh = platform.load_enclave(InferenceEnclave, hybrid_params, 1)
        with pytest.raises(PipelineError):
            fresh.ecall("get_public_key")

    def test_relin_keys_work_for_outside_evaluator(self, enclave, userland):
        relin = enclave.ecall("generate_relin_keys")
        ct = userland["evaluator"].square(encrypt_values(userland, np.array([7])))
        relined = userland["evaluator"].relinearize(ct, relin)
        assert decrypt_with_enclave(enclave, userland, relined)[0] == 49

    def test_private_helpers_not_callable(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.ecall("_decrypt_values", None)


class TestActivationPool:
    def test_matches_quantized_stage(self, enclave, userland, q_sigmoid, models):
        images = models.dataset.test_images[:2]
        conv_int = q_sigmoid.conv_stage(q_sigmoid.quantize_images(images))
        expected = q_sigmoid.enclave_stage(conv_int)
        ct = encrypt_values(userland, conv_int)
        out = enclave.ecall(
            "activation_pool",
            ct,
            q_sigmoid.conv_output_scale,
            q_sigmoid.act_scale,
            q_sigmoid.pool_window,
            "sigmoid",
        )
        assert np.array_equal(decrypt_with_enclave(enclave, userland, out), expected)

    @pytest.mark.parametrize("activation", ["relu", "tanh", "leaky_relu"])
    def test_other_activations_supported(self, enclave, userland, activation):
        values = np.arange(-8, 8).reshape(1, 1, 4, 4) * 10
        ct = encrypt_values(userland, values)
        out = enclave.ecall("activation_pool", ct, 10.0, 100, 2, activation)
        assert out.batch_shape == (1, 1, 2, 2)

    def test_unknown_activation_rejected(self, enclave, userland):
        ct = encrypt_values(userland, np.zeros((1, 1, 2, 2), dtype=np.int64))
        with pytest.raises(PipelineError):
            enclave.ecall("activation_pool", ct, 1.0, 1, 2, "softmax")


class TestSigmoidEcall:
    def test_exact_sigmoid(self, enclave, userland):
        raw = np.array([-20, -5, 0, 5, 20], dtype=np.int64)
        ct = encrypt_values(userland, raw)
        out = enclave.ecall("sigmoid", ct, 10.0, 1000)
        expected = np.rint(Sigmoid.apply(raw / 10.0) * 1000).astype(np.int64)
        assert np.array_equal(decrypt_with_enclave(enclave, userland, out), expected)


class TestPoolingEcalls:
    def test_divide(self, enclave, userland):
        ct = encrypt_values(userland, np.array([[100, 101], [7, -9]]))
        out = enclave.ecall("divide", ct, 4)
        assert np.array_equal(
            decrypt_with_enclave(enclave, userland, out), [[25, 25], [2, -2]]
        )

    def test_divide_rejects_nonpositive(self, enclave, userland):
        ct = encrypt_values(userland, np.array([1]))
        with pytest.raises(PipelineError):
            enclave.ecall("divide", ct, 0)

    def test_mean_pool(self, enclave, userland):
        values = np.arange(16, dtype=np.int64).reshape(1, 1, 4, 4)
        out = enclave.ecall("mean_pool", encrypt_values(userland, values), 2)
        # Window means: [[2.5, 4.5], [10.5, 12.5]] -> banker's rounding.
        got = decrypt_with_enclave(enclave, userland, out)
        assert got.shape == (1, 1, 2, 2)
        assert np.abs(got - np.array([[[[2.5, 4.5], [10.5, 12.5]]]])).max() <= 0.5

    def test_max_pool(self, enclave, userland):
        values = np.arange(16, dtype=np.int64).reshape(1, 1, 4, 4)
        out = enclave.ecall("max_pool", encrypt_values(userland, values), 2)
        assert np.array_equal(
            decrypt_with_enclave(enclave, userland, out),
            [[[[5, 7], [13, 15]]]],
        )

    def test_pool_shape_mismatch_rejected(self, enclave, userland):
        values = np.zeros((1, 1, 5, 5), dtype=np.int64)
        with pytest.raises(PipelineError):
            enclave.ecall("mean_pool", encrypt_values(userland, values), 2)


class TestRefresh:
    def test_restores_noise_budget(self, enclave, userland, hybrid_params):
        evaluator = userland["evaluator"]
        encoder = userland["encoder"]
        ct = encrypt_values(userland, np.array([9]))
        squared = evaluator.square(ct)  # size 3, heavy noise
        refreshed = enclave.ecall("refresh", squared)
        decryptor = enclave._instance._decryptor
        assert refreshed.size == 2
        assert decryptor.invariant_noise_budget(refreshed) > (
            decryptor.invariant_noise_budget(squared)
        )
        assert encoder.decode(decryptor.decrypt(refreshed))[0] == 81

    def test_preserves_batch_shape(self, enclave, userland):
        ct = encrypt_values(userland, np.arange(12).reshape(3, 4))
        refreshed = enclave.ecall("refresh", ct)
        assert refreshed.batch_shape == (3, 4)


class TestValueGuards:
    def test_overflowing_reencryption_rejected(self, enclave, userland, hybrid_params):
        huge = hybrid_params.plain_modulus  # sigmoid output scaled too far
        ct = encrypt_values(userland, np.array([1000]))
        with pytest.raises(PipelineError):
            enclave.ecall("sigmoid", ct, 0.0001, huge * 10)

    def test_non_scalar_ciphertext_rejected(self, enclave, userland):
        from repro.he import IntegerEncoder

        encoder = IntegerEncoder(userland["context"], base=3)
        ct = userland["encryptor"].encrypt(encoder.encode(12345))
        with pytest.raises(PipelineError):
            enclave.ecall("divide", ct, 2)
