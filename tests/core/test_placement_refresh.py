"""Pooling placement (Fig. 6) and noise-refresh policy (Table V) tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    InferenceEnclave,
    MeasuredChoice,
    PoolStrategy,
    PoolingPlacementPolicy,
    RefreshPolicy,
    measure_placement,
    pool_with_strategy,
    refresh,
    relinearize_refresh,
    sgx_refresh,
    sgx_refresh_one_by_one,
)
from repro.errors import PipelineError
from repro.he import (
    Context,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    ScalarEncoder,
)
from repro.he.keys import PublicKey
from repro.sgx import SgxPlatform


@pytest.fixture()
def rig(hybrid_params):
    platform = SgxPlatform(platform_secret=b"\x31" * 32)
    enclave = platform.load_enclave(InferenceEnclave, hybrid_params, 9)
    enclave.ecall("generate_keys")
    context = Context(hybrid_params)
    public = enclave.ecall("get_public_key")
    public = PublicKey(context, public.p0_ntt, public.p1_ntt)
    rng = np.random.default_rng(17)
    return {
        "platform": platform,
        "enclave": enclave,
        "context": context,
        "encoder": ScalarEncoder(context),
        "encryptor": Encryptor(context, public, rng),
        "evaluator": Evaluator(context),
        "decryptor": enclave._instance._decryptor,
    }


def encrypt(rig, values):
    return rig["encryptor"].encrypt(rig["encoder"].encode(values))


def decode(rig, ct):
    return rig["encoder"].decode(rig["decryptor"].decrypt(ct))


class TestPlacementPolicy:
    def test_paper_crossover(self):
        policy = PoolingPlacementPolicy()
        assert policy.choose(2) is PoolStrategy.SGX_POOL
        assert policy.choose(3) is PoolStrategy.SGX_DIV
        assert policy.choose(6) is PoolStrategy.SGX_DIV

    def test_rejects_bad_window(self):
        with pytest.raises(PipelineError):
            PoolingPlacementPolicy().choose(0)

    def test_custom_crossover(self):
        assert PoolingPlacementPolicy(crossover_window=5).choose(4) is PoolStrategy.SGX_POOL


class TestPoolStrategies:
    @pytest.mark.parametrize("strategy", [PoolStrategy.SGX_POOL, PoolStrategy.SGX_DIV])
    def test_both_strategies_compute_the_mean(self, rig, strategy):
        values = (np.arange(16, dtype=np.int64) * 4).reshape(1, 1, 4, 4)
        ct = encrypt(rig, values)
        out = pool_with_strategy(rig["evaluator"], rig["enclave"], ct, 2, strategy)
        got = decode(rig, out)
        reference = values.reshape(1, 1, 2, 2, 2, 2).mean(axis=(3, 5))
        assert got.shape == (1, 1, 2, 2)
        assert np.abs(got - reference).max() <= 1

    def test_sgx_div_shrinks_boundary_traffic(self, rig):
        """SGXDiv ships (H/k)^2 sums instead of H^2 values: bytes crossed
        must be ~window^2 smaller, the mechanism behind Fig. 6."""
        values = np.arange(64, dtype=np.int64).reshape(1, 1, 8, 8)
        log = rig["enclave"].side_channel
        pool_with_strategy(rig["evaluator"], rig["enclave"], encrypt(rig, values), 4,
                           PoolStrategy.SGX_POOL)
        pool_events = [e for e in log.events if e.kind == "ecall"]
        full_bytes = pool_events[-1].bytes_in
        pool_with_strategy(rig["evaluator"], rig["enclave"], encrypt(rig, values), 4,
                           PoolStrategy.SGX_DIV)
        div_events = [e for e in log.events if e.kind == "ecall"]
        shrunk_bytes = div_events[-1].bytes_in
        assert shrunk_bytes * 8 < full_bytes

    def test_measure_placement_reports_both(self, rig):
        values = np.arange(64, dtype=np.int64).reshape(1, 1, 8, 8)
        choice = measure_placement(rig["evaluator"], rig["enclave"], encrypt(rig, values), 4)
        assert isinstance(choice, MeasuredChoice)
        assert choice.sgx_pool_s > 0 and choice.sgx_div_s > 0
        assert choice.best in (PoolStrategy.SGX_DIV, PoolStrategy.SGX_POOL)

    def test_large_window_favors_div(self, rig):
        """With the paper cost model, a big window makes SGXDiv win."""
        values = np.arange(144, dtype=np.int64).reshape(1, 1, 12, 12)
        choice = measure_placement(rig["evaluator"], rig["enclave"], encrypt(rig, values), 6)
        assert choice.best is PoolStrategy.SGX_DIV


class TestRefresh:
    def _squared(self, rig, value=11):
        ct = encrypt(rig, np.full(6, value, dtype=np.int64))
        return rig["evaluator"].square(ct)

    def test_sgx_refresh_resets_noise(self, rig):
        squared = self._squared(rig)
        outcome = sgx_refresh(rig["enclave"], squared)
        dec = rig["decryptor"]
        assert dec.invariant_noise_budget(outcome.ciphertext) > dec.invariant_noise_budget(squared) + 5
        assert np.array_equal(decode(rig, outcome.ciphertext), np.full(6, 121))

    def test_relinearize_refresh_keeps_value(self, rig):
        relin = rig["enclave"].ecall("generate_relin_keys")
        squared = self._squared(rig)
        outcome = relinearize_refresh(
            rig["evaluator"], squared, relin, rig["platform"].clock
        )
        assert outcome.ciphertext.size == 2
        assert np.array_equal(decode(rig, outcome.ciphertext), np.full(6, 121))

    def test_batched_refresh_amortizes(self, rig):
        """Table V: one crossing for a batch beats one crossing per item."""
        batched = sgx_refresh(rig["enclave"], self._squared(rig))
        single = sgx_refresh_one_by_one(rig["enclave"], self._squared(rig))
        assert batched.per_item_s < single.per_item_s
        assert np.array_equal(
            decode(rig, single.ciphertext), decode(rig, batched.ciphertext)
        )

    def test_policy_prefers_no_keys(self):
        policy = RefreshPolicy()
        assert policy.choose(1, relin_keys_available=True) == "sgx_refresh"

    def test_policy_relin_for_lone_ct(self):
        policy = RefreshPolicy(prefer_no_keys=False)
        assert policy.choose(1, relin_keys_available=True) == "relinearization"
        assert policy.choose(100, relin_keys_available=True) == "sgx_refresh"

    def test_policy_no_keys_forces_sgx(self):
        policy = RefreshPolicy(prefer_no_keys=False)
        assert policy.choose(1, relin_keys_available=False) == "sgx_refresh"

    def test_refresh_dispatch(self, rig):
        squared = self._squared(rig)
        outcome = refresh(rig["evaluator"], squared, enclave=rig["enclave"])
        assert outcome.method == "sgx_refresh"

    def test_refresh_requires_some_route(self, rig):
        with pytest.raises(PipelineError):
            refresh(rig["evaluator"], self._squared(rig))
