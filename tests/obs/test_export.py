"""Trace export tests: JSON schema roundtrip and the flat metrics dict."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Span,
    metrics_from_trace,
    render_prometheus,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)


@pytest.fixture()
def trace():
    return Span(
        name="EncryptSGX",
        kind="pipeline",
        real_s=1.0,
        overhead_s=0.5,
        overhead_by_category={"sgx_transition": 0.3, "sgx_marshalling": 0.2},
        op_counts={"ct_add": 7, "ct_plain_mul": 3},
        crossings=2,
        attrs={"batch": 2},
        children=[
            Span("encrypt", kind="stage", real_s=0.2),
            Span(
                "sgx_activation_pool",
                kind="stage",
                real_s=0.5,
                overhead_s=0.5,
                crossings=2,
                children=[
                    Span("activation_pool", kind="ecall", real_s=0.4, crossings=1,
                         attrs={"bytes_in": 100, "bytes_out": 40}),
                    Span("mean_pool", kind="ecall", real_s=0.1, crossings=1,
                         attrs={"bytes_in": 10, "bytes_out": 5}),
                ],
            ),
            Span("fc", kind="stage", real_s=0.3),
        ],
    )


class TestJsonExport:
    def test_schema_fields(self, trace):
        doc = trace_to_dict(trace)
        assert doc["name"] == "EncryptSGX"
        assert doc["kind"] == "pipeline"
        assert doc["elapsed_s"] == pytest.approx(1.5)
        assert doc["overhead_by_category"]["sgx_transition"] == pytest.approx(0.3)
        assert doc["op_counts"] == {"ct_add": 7, "ct_plain_mul": 3}
        assert doc["crossings"] == 2
        assert [c["name"] for c in doc["children"]] == [
            "encrypt", "sgx_activation_pool", "fc",
        ]

    def test_json_roundtrip(self, trace):
        text = trace_to_json(trace)
        json.loads(text)  # valid JSON document
        back = trace_from_json(text)
        assert back.to_dict() == trace.to_dict()

    def test_roundtrip_preserves_nesting(self, trace):
        back = trace_from_json(trace_to_json(trace))
        assert back.find("mean_pool").attrs["bytes_in"] == 10
        assert [s.name for s in back.ecalls()] == ["activation_pool", "mean_pool"]


class TestMetrics:
    def test_pipeline_totals(self, trace):
        m = metrics_from_trace(trace)
        assert m['repro_pipeline_real_seconds{pipeline="EncryptSGX"}'] == pytest.approx(1.0)
        assert m['repro_pipeline_overhead_seconds{pipeline="EncryptSGX"}'] == pytest.approx(0.5)
        assert m['repro_pipeline_crossings_total{pipeline="EncryptSGX"}'] == 2

    def test_stage_families(self, trace):
        m = metrics_from_trace(trace)
        key = 'repro_stage_real_seconds{pipeline="EncryptSGX",stage="sgx_activation_pool"}'
        assert m[key] == pytest.approx(0.5)

    def test_category_decomposition(self, trace):
        m = metrics_from_trace(trace)
        key = 'repro_overhead_seconds{category="sgx_marshalling",pipeline="EncryptSGX"}'
        assert m[key] == pytest.approx(0.2)

    def test_he_op_counts(self, trace):
        m = metrics_from_trace(trace)
        assert m['repro_he_ops_total{op="ct_add",pipeline="EncryptSGX"}'] == 7

    def test_ecall_aggregation(self, trace):
        m = metrics_from_trace(trace)
        assert m['repro_ecall_count{ecall="activation_pool",pipeline="EncryptSGX"}'] == 1
        assert (
            m['repro_ecall_bytes_total{ecall="activation_pool",pipeline="EncryptSGX"}']
            == 140
        )

    def test_custom_prefix(self, trace):
        m = metrics_from_trace(trace, prefix="edge")
        assert any(k.startswith("edge_pipeline_real_seconds") for k in m)

    def test_render_prometheus_lines(self, trace):
        metrics = metrics_from_trace(trace)
        text = render_prometheus(metrics)
        lines = text.splitlines()
        samples = [l for l in lines if not l.startswith("#")]
        assert len(samples) == len(metrics)
        sample = next(l for l in lines if l.startswith("repro_pipeline_real_seconds"))
        assert sample.endswith(" 1")

    def test_render_prometheus_metadata(self, trace):
        text = render_prometheus(metrics_from_trace(trace))
        lines = text.splitlines()
        # One HELP and one TYPE line per family, HELP immediately before TYPE,
        # TYPE immediately before the family's first sample.
        assert "# HELP repro_pipeline_real_seconds " in text
        type_idx = lines.index("# TYPE repro_pipeline_real_seconds counter")
        assert lines[type_idx - 1].startswith("# HELP repro_pipeline_real_seconds")
        assert lines[type_idx + 1].startswith("repro_pipeline_real_seconds{")
        # Families are annotated exactly once even with many samples.
        assert text.count("# TYPE repro_stage_real_seconds counter") == 1

    def test_render_prometheus_escapes_label_values(self):
        rendered = render_prometheus({'m{name="tricky"}': 1.0})
        assert rendered.splitlines()[-1] == 'm{name="tricky"} 1'
        from repro.obs.export import _labels

        formatted = _labels(name='evil"} 1\nfake_metric 2')
        assert formatted == '{name="evil\\"} 1\\nfake_metric 2"}'
        assert "\n" not in formatted


class TestTraceFromDictValidation:
    def test_rejects_unknown_kind(self, trace):
        from repro.errors import TraceFormatError

        doc = trace_to_dict(trace)
        doc["kind"] = "interpretive-dance"
        with pytest.raises(TraceFormatError, match="kind"):
            trace_from_json(json.dumps(doc))

    def test_rejects_missing_fields(self, trace):
        from repro.errors import TraceFormatError

        doc = trace_to_dict(trace)
        del doc["real_s"]
        with pytest.raises(TraceFormatError, match="real_s"):
            trace_from_json(json.dumps(doc))

    def test_rejects_non_dict(self):
        from repro.errors import TraceFormatError
        from repro.obs import trace_from_dict

        with pytest.raises(TraceFormatError):
            trace_from_dict(["not", "a", "span"])

    def test_error_is_repro_error(self):
        from repro.errors import ReproError, TraceFormatError

        assert issubclass(TraceFormatError, ReproError)
        assert issubclass(TraceFormatError, ValueError)
