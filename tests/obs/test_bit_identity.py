"""Observability must be a read-only plane: flipping the flight recorder
and trace context on or off cannot perturb a single ciphertext byte or
logit (PR 10 acceptance).

The deployment's entropy (platform secrets, sealing nonces, client
encryption noise) is pinned to deterministic streams so two fresh
servers are byte-for-byte comparable; the only variable left is whether
the telemetry plane is live.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core import EdgeServer
from repro.he.serialize import serialize_ciphertext
from repro.obs.recorder import use_recorder
from repro.serve import LoopConfig, ServingLoop
from repro.sgx import AttestationVerificationService


class _FixedStream:
    """Deterministic ``os.urandom`` stand-in: a counter-mode hash stream."""

    def __init__(self) -> None:
        self._block = 0

    def __call__(self, size: int) -> bytes:
        out = b""
        while len(out) < size:
            out += hashlib.sha256(b"pinned-entropy:%d" % self._block).digest()
            self._block += 1
        return out[:size]


def _serve_once(monkeypatch, batching_params, q_sigmoid, image):
    """One full attested serve through the event loop -- the instrumented
    path that admits requests, stamps spans, and fires recorder events."""
    monkeypatch.setattr("os.urandom", _FixedStream())
    srv = EdgeServer(batching_params, seed=13)
    srv.provision_model("digits", q_sigmoid)
    verifier = AttestationVerificationService()
    verifier.register_platform(srv.quoting)
    session = srv.enroll_user(entropy=b"\x42" * 32, verifier=verifier)
    session.encryptor.rng = np.random.default_rng(7)  # pin client HE noise
    ct = session.encrypt("digits", image)
    loop = ServingLoop(srv, LoopConfig(window_s=0.005))
    ticket = loop.submit("digits", ct)
    loop.run()
    result = ticket.result()
    return {
        "input_ct": serialize_ciphertext(ct),
        "logits_ct": serialize_ciphertext(result.logits_ct),
        "logits": session.decrypt_logits(result),
    }


class TestObservabilityIsReadOnly:
    def test_recorder_and_context_do_not_change_bytes(
        self, monkeypatch, batching_params, q_sigmoid, test_images
    ):
        image = test_images[:1]
        baseline = _serve_once(monkeypatch, batching_params, q_sigmoid, image)
        with use_recorder() as rec:
            observed = _serve_once(monkeypatch, batching_params, q_sigmoid, image)
            assert rec.enabled and "serve.admit" in rec.kinds()  # recorder was live
        assert observed["input_ct"] == baseline["input_ct"]
        assert observed["logits_ct"] == baseline["logits_ct"]
        assert observed["logits"].tobytes() == baseline["logits"].tobytes()
        assert np.array_equal(observed["logits"], baseline["logits"])
