"""Graph-attributed profiler tests: keys, reconciliation, merge, rendering."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.obs import (
    ProfileReport,
    Span,
    profile_from_trace,
    profile_from_traces,
    render_timeline,
)


def _pipeline(scale: float = 1.0, signature: str = "('conv', 'conv', 1)") -> Span:
    return Span(
        "EncryptSGX",
        kind="pipeline",
        real_s=1.0 * scale,
        overhead_s=0.5 * scale,
        children=[
            Span(
                "conv",
                kind="stage",
                real_s=0.6 * scale,
                attrs={
                    "node_signature": signature,
                    "node_op": "conv",
                    "node_level": 1,
                    "node_headroom_bits": 12.5,
                },
            ),
            Span(
                "sgx_activation_pool",
                kind="stage",
                real_s=0.3 * scale,
                overhead_s=0.5 * scale,
                attrs={"node_signature": "('crossing', ...)", "node_op": "crossing"},
                children=[
                    Span(
                        "activation_pool",
                        kind="ecall",
                        real_s=0.25 * scale,
                        attrs={"bytes_in": 100, "bytes_out": 40},
                    )
                ],
            ),
            Span(
                "decrypt",
                kind="stage",
                real_s=0.1 * scale,
                attrs={"node_op": "decrypt", "noise_budget_bits": 7.0},
            ),
        ],
    )


class TestNodeKeys:
    def test_signature_keys_and_fallback(self):
        report = profile_from_trace(_pipeline())
        assert "('conv', 'conv', 1)" in report.nodes
        assert "('crossing', ...)" in report.nodes
        assert "stage:decrypt" in report.nodes  # no signature -> stage fallback

    def test_node_fields(self):
        report = profile_from_trace(_pipeline())
        conv = report.nodes["('conv', 'conv', 1)"]
        assert conv.op == "conv" and conv.level == 1
        assert conv.headroom_bits == pytest.approx(12.5)
        crossing = report.nodes["('crossing', ...)"]
        assert crossing.ecalls == 1 and crossing.ecall_bytes == 140
        decrypt = report.nodes["stage:decrypt"]
        assert decrypt.noise_budget_bits == pytest.approx(7.0)

    def test_headroom_watermark_is_min(self):
        a = _pipeline()
        b = _pipeline()
        b.children[2].attrs["noise_budget_bits"] = 3.0
        report = profile_from_traces([a, b])
        assert report.nodes["stage:decrypt"].noise_budget_bits == pytest.approx(3.0)


class TestReconciliation:
    def test_attributed_sums_to_wall(self):
        report = profile_from_trace(_pipeline())
        report.reconcile()
        assert report.attributed_real_s == pytest.approx(1.0)
        assert report.attributed_overhead_s == pytest.approx(0.5)
        assert report.coverage() == pytest.approx(1.0)

    def test_over_attribution_rejected(self):
        trace = _pipeline()
        trace.children[0].real_s = 5.0  # stage claims more than the pipeline
        with pytest.raises(ReproError, match="attributed real"):
            profile_from_trace(trace).reconcile()

    def test_under_attribution_allowed_coverage_below_one(self):
        trace = _pipeline()
        trace.children[0].real_s = 0.0  # work outside any stage
        report = profile_from_trace(trace)
        report.reconcile()
        assert report.coverage() < 1.0


class TestMergeAndViews:
    def test_merge_matches_from_traces(self):
        merged = profile_from_trace(_pipeline()).merge(profile_from_trace(_pipeline()))
        direct = profile_from_traces([_pipeline(), _pipeline()])
        assert merged.pipelines == direct.pipelines == 2
        assert merged.attributed_real_s == pytest.approx(direct.attributed_real_s)
        assert merged.wall_real_s == pytest.approx(direct.wall_real_s)
        assert {k: n.count for k, n in merged.nodes.items()} == {
            k: n.count for k, n in direct.nodes.items()
        }
        assert merged.nodes["('conv', 'conv', 1)"].count == 2

    def test_rows_sorted_most_expensive_first(self):
        rows = profile_from_trace(_pipeline()).rows()
        assert [r.elapsed_s for r in rows] == sorted(
            (r.elapsed_s for r in rows), reverse=True
        )

    def test_per_op_folds(self):
        ops = profile_from_trace(_pipeline()).per_op()
        assert set(ops) == {"conv", "crossing", "decrypt"}
        assert ops["crossing"]["ecalls"] == 1

    def test_savings_vs_normalizes_per_pipeline(self):
        fast = profile_from_traces([_pipeline(scale=0.5)] * 2)
        slow = profile_from_trace(_pipeline(scale=1.0))
        savings = fast.savings_vs(slow)
        assert savings["conv"] == pytest.approx(0.3)  # 0.6 - 0.3 per pipeline
        assert all(s > 0 for s in savings.values())

    def test_savings_needs_pipelines(self):
        with pytest.raises(ReproError):
            ProfileReport().savings_vs(profile_from_trace(_pipeline()))

    def test_fold_key_mismatch_rejected(self):
        a = profile_from_trace(_pipeline()).nodes["('conv', 'conv', 1)"]
        b = profile_from_trace(_pipeline(signature="other")).nodes["other"]
        with pytest.raises(ReproError):
            a.fold(b)


class TestRendering:
    def test_table_smoke(self):
        report = profile_from_traces([_pipeline()])
        table = report.render_table(top=2)
        assert "conv" in table and "100.00% coverage" in table
        assert len(table.splitlines()) == 2 + 2 + 1  # header+rule, 2 rows, footer

    def test_timeline_offsets_accumulate(self):
        trace = _pipeline()
        trace.attrs["trace_id"] = "ab" * 8
        text = render_timeline(trace)
        lines = text.splitlines()
        assert lines[0].startswith("[    0.000ms")
        assert "trace_id=abababababababab" in lines[0]
        # second stage starts where the first ended (0.6s -> 600ms)
        assert any(line.lstrip().startswith("[  600.000ms") for line in lines)
