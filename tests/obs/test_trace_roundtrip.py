"""Property test: trace JSON round-trip preserves the full span tree,
including the PR-10 context (``trace_id``/``trace_ids``/``trace_parent``)
and profiler (``node_*``/``noise_budget_bits``) attrs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.obs import (
    SPAN_KINDS,
    Span,
    TraceContext,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)

_trace_ids = st.text(alphabet="0123456789abcdef", min_size=16, max_size=16)

_context_attrs = st.one_of(
    st.fixed_dictionaries({"trace_id": _trace_ids, "trace_parent": st.text(max_size=12)}),
    st.fixed_dictionaries({"trace_ids": st.lists(_trace_ids, max_size=3)}),
    st.just({}),
)

_profile_attrs = st.one_of(
    st.fixed_dictionaries(
        {
            "node_signature": st.text(max_size=24),
            "node_op": st.sampled_from(["conv", "crossing", "fc", "decrypt"]),
            "node_level": st.integers(min_value=0, max_value=4),
            "node_headroom_bits": st.floats(0, 64, allow_nan=False),
        }
    ),
    st.fixed_dictionaries({"noise_budget_bits": st.floats(0, 64, allow_nan=False)}),
    st.just({}),
)

_names = st.sampled_from(["pipe", "conv", "serve/request", "activation_pool"])
_seconds = st.floats(min_value=0, max_value=1e3, allow_nan=False)


@st.composite
def _spans(draw, depth: int = 0) -> Span:
    context = dict(draw(_context_attrs))
    context.update(draw(_profile_attrs))
    children = []
    if depth < 2:
        children = draw(
            st.lists(_spans(depth=depth + 1), max_size=3 if depth == 0 else 2)
        )
    return Span(
        name=draw(_names),
        kind=draw(st.sampled_from(SPAN_KINDS)),
        real_s=draw(_seconds),
        overhead_s=draw(_seconds),
        overhead_by_category=draw(
            st.dictionaries(
                st.sampled_from(["sgx_transition", "sgx_marshalling"]),
                _seconds,
                max_size=2,
            )
        ),
        op_counts=draw(
            st.dictionaries(
                st.sampled_from(["ct_add", "ct_mul"]),
                st.integers(min_value=0, max_value=99),
                max_size=2,
            )
        ),
        crossings=draw(st.integers(min_value=0, max_value=9)),
        attrs=context,
        children=children,
    )


def _equal(a: Span, b: Span) -> bool:
    return (
        a.name == b.name
        and a.kind == b.kind
        and a.real_s == b.real_s
        and a.overhead_s == b.overhead_s
        and a.overhead_by_category == b.overhead_by_category
        and a.op_counts == b.op_counts
        and a.crossings == b.crossings
        and a.attrs == b.attrs
        and len(a.children) == len(b.children)
        and all(_equal(x, y) for x, y in zip(a.children, b.children))
    )


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(_spans())
    def test_json_roundtrip_preserves_tree(self, span):
        assert _equal(trace_from_json(trace_to_json(span)), span)

    @settings(max_examples=60, deadline=None)
    @given(_spans())
    def test_dict_roundtrip_preserves_tree(self, span):
        assert _equal(trace_from_dict(trace_to_dict(span)), span)

    @settings(max_examples=30, deadline=None)
    @given(_spans())
    def test_context_attrs_survive(self, span):
        back = trace_from_json(trace_to_json(span))
        for orig, restored in zip(span.walk(), back.walk()):
            for key in ("trace_id", "trace_ids", "trace_parent",
                        "node_signature", "noise_budget_bits"):
                assert orig.attrs.get(key) == restored.attrs.get(key)


class TestMalformedContext:
    @pytest.mark.parametrize(
        "payload",
        [
            [],
            {"trace_id": "zz" * 8},
            {"trace_id": "abc"},
            {"trace_id": "ab" * 8, "junk": 1},
            {"parent_id": "orphan"},
        ],
    )
    def test_from_wire_rejects_typed(self, payload):
        with pytest.raises(TraceFormatError):
            TraceContext.from_wire(payload)

    def test_trace_format_error_on_bad_trace_doc(self):
        with pytest.raises(TraceFormatError):
            trace_from_dict({"name": "x", "kind": "nope", "real_s": 0, "overhead_s": 0})
        with pytest.raises(TraceFormatError):
            trace_from_dict({"kind": "span", "real_s": 0, "overhead_s": 0})
