"""Regression tests for the stage-timing invariant across every pipeline.

For each pipeline variant the paper benchmarks (Encrypted, hybrid
batched/per_pixel/fake, SIMD, EdgeServer, Deep, Plaintext) we assert:

* the per-stage ``real_s + overhead_s`` totals reconcile exactly with the
  :class:`~repro.sgx.clock.SimClock` deltas across the run -- no stage
  accounting blind spots;
* enclave-crossing counts match the adversary-visible ``side_channel``
  tallies and the number of ecall spans in the trace;
* the span tree satisfies :func:`repro.obs.reconcile` (children never
  exceed their parent).

These are exactly the properties the old hand-rolled ``ClockWindow``
bookkeeping could silently violate (the per_pixel host reassembly loop did,
under-reporting the negative control's dominant cost).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CryptonetsPipeline,
    HybridPipeline,
    PlaintextPipeline,
    SimdHybridPipeline,
)
from repro.obs import reconcile

REL = 1e-6


def assert_reconciles(result, clock, real_before, overhead_before, side_channel=None,
                      crossings_before=0):
    """The shared invariant: stages == root trace == clock deltas."""
    clock_real = clock.real_s - real_before
    clock_overhead = clock.overhead_s - overhead_before
    trace = result.trace
    assert trace is not None, "pipeline did not attach a trace"
    # Root span vs clock.
    assert trace.real_s == pytest.approx(clock_real, rel=REL, abs=1e-12)
    assert trace.overhead_s == pytest.approx(clock_overhead, rel=REL, abs=1e-12)
    # Stage sums vs clock (this is what hand-rolled windows got wrong: any
    # clock activity outside a stage breaks it).
    assert result.total_real_s == pytest.approx(clock_real, rel=REL, abs=1e-12)
    assert result.total_overhead_s == pytest.approx(clock_overhead, rel=REL, abs=1e-12)
    # Stages mirror the trace's stage children.
    assert [s.name for s in result.stages] == [s.name for s in trace.stages()]
    # Crossings: result == trace == side-channel tally == ecall span count.
    assert result.enclave_crossings == trace.crossings
    assert len(trace.ecalls()) == trace.crossings
    if side_channel is not None:
        assert (
            side_channel.count("ecall") - crossings_before == result.enclave_crossings
        )
    reconcile(trace)


class TestPlaintext:
    def test_reconciles(self, q_sigmoid, test_images):
        pipe = PlaintextPipeline(q_sigmoid)
        result = pipe.infer(test_images)
        assert_reconciles(result, pipe.clock, 0.0, 0.0)
        assert result.total_overhead_s == 0.0


class TestEncrypted:
    def test_reconciles(self, q_square, pure_he_params, test_images):
        pipe = CryptonetsPipeline(q_square, pure_he_params, seed=5)
        r0, o0 = pipe.clock.real_s, pipe.clock.overhead_s
        result = pipe.infer(test_images)
        assert_reconciles(result, pipe.clock, r0, o0)
        assert result.total_overhead_s == 0.0  # no enclave anywhere


@pytest.mark.parametrize("mode", ["batched", "fake"])
class TestHybridModes:
    def test_reconciles(self, q_sigmoid, hybrid_params, test_images, mode):
        pipe = HybridPipeline(q_sigmoid, hybrid_params, mode=mode, seed=5)
        r0, o0 = pipe.clock.real_s, pipe.clock.overhead_s
        before = pipe.enclave.side_channel.count("ecall")
        result = pipe.infer(test_images)
        assert_reconciles(
            result, pipe.clock, r0, o0, pipe.enclave.side_channel, before
        )
        assert result.enclave_crossings == 1

    def test_repeated_inference_still_reconciles(
        self, q_sigmoid, hybrid_params, test_images, mode
    ):
        pipe = HybridPipeline(q_sigmoid, hybrid_params, mode=mode, seed=5)
        for _ in range(2):
            r0, o0 = pipe.clock.real_s, pipe.clock.overhead_s
            before = pipe.enclave.side_channel.count("ecall")
            result = pipe.infer(test_images)
            assert_reconciles(
                result, pipe.clock, r0, o0, pipe.enclave.side_channel, before
            )


class TestPerPixel:
    @pytest.fixture(scope="class")
    def run(self, q_sigmoid, hybrid_params, models):
        pipe = HybridPipeline(q_sigmoid, hybrid_params, mode="per_pixel", seed=5)
        r0, o0 = pipe.clock.real_s, pipe.clock.overhead_s
        before = pipe.enclave.side_channel.count("ecall")
        result = pipe.infer(models.dataset.test_images[:1])
        return pipe, result, r0, o0, before

    def test_reconciles(self, run):
        pipe, result, r0, o0, before = run
        assert_reconciles(
            result, pipe.clock, r0, o0, pipe.enclave.side_channel, before
        )

    def test_host_reassembly_is_measured(self, run):
        """The fixed blind spot: the quadruple loop + np.stack reassembly
        around the per-value ECALLs must appear in the stage's real time,
        so stage real strictly exceeds the summed in-enclave compute."""
        _, result, *_ = run
        stage_span = result.trace.find("sgx_activation_pool")
        in_enclave = sum(e.real_s for e in stage_span.ecalls())
        assert stage_span.real_s > in_enclave > 0.0
        assert result.stage("sgx_activation_pool").real_s == pytest.approx(
            stage_span.real_s
        )

    def test_one_ecall_span_per_feature_value(self, run):
        _, result, *_ = run
        names = [e.name for e in result.trace.ecalls()]
        assert names.count("sigmoid") == result.enclave_crossings - 1
        assert names.count("mean_pool") == 1


class TestSimd:
    def test_reconciles(self, q_sigmoid, batching_params, test_images):
        pipe = SimdHybridPipeline(q_sigmoid, batching_params, seed=5)
        r0, o0 = pipe.clock.real_s, pipe.clock.overhead_s
        before = pipe.enclave.side_channel.count("ecall")
        result = pipe.infer(test_images)
        assert_reconciles(
            result, pipe.clock, r0, o0, pipe.enclave.side_channel, before
        )
        assert result.enclave_crossings == 1


class TestEdgeServer:
    def test_reconciles(self, q_sigmoid, hybrid_params, test_images):
        from repro.core import EdgeServer
        from repro.sgx import AttestationVerificationService

        server = EdgeServer(hybrid_params, seed=5)
        server.provision_model("digits", q_sigmoid)
        verifier = AttestationVerificationService()
        verifier.register_platform(server.quoting)
        session = server.enroll_user(entropy=b"\x07" * 32, verifier=verifier)
        ct = session.encrypt("digits", test_images)

        clock = server.platform.clock
        r0, o0 = clock.real_s, clock.overhead_s
        before = server.enclave.side_channel.count("ecall")
        served = server.infer("digits", ct)
        assert_reconciles(
            served.timing, clock, r0, o0, server.enclave.side_channel, before
        )
        assert served.timing.enclave_crossings == 1


class TestDeep:
    def test_reconciles(self):
        from repro.core import DeepHybridPipeline, parameters_for_pipeline
        from repro.nn.deep import DeepQuantizedCNN, deep_cnn

        # 18x18 survives two (k=3, pool 2) blocks; weights need no training
        # for a timing-reconciliation check.
        model = deep_cnn(image_size=18, block_channels=(2, 3), kernel_size=3,
                         rng=np.random.default_rng(5))
        quantized = DeepQuantizedCNN.from_float(model)
        params = parameters_for_pipeline(quantized, 256)
        pipe = DeepHybridPipeline(quantized, params, seed=5)
        r0, o0 = pipe.clock.real_s, pipe.clock.overhead_s
        before = pipe.enclave.side_channel.count("ecall")
        images = np.zeros((1, 1, 18, 18), dtype=np.uint8)
        result = pipe.infer(images)
        assert_reconciles(
            result, pipe.clock, r0, o0, pipe.enclave.side_channel, before
        )
        assert result.enclave_crossings == quantized.depth


class TestSharedPlatformTraces:
    def test_platform_tracer_retains_pipeline_traces(
        self, q_sigmoid, hybrid_params, test_images
    ):
        pipe = HybridPipeline(q_sigmoid, hybrid_params, seed=5)
        pipe.infer(test_images)
        pipe.infer(test_images)
        schemes = [t.name for t in pipe.platform.tracer.traces if t.kind == "pipeline"]
        assert schemes.count("EncryptSGX") == 2
