"""Flight recorder tests: ring bound, ordering, dumps, process accessor."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ReproError
from repro.obs import recorder as flight
from repro.obs.recorder import DEFAULT_CAPACITY, FlightRecorder


class TestRing:
    def test_capacity_bound_keeps_newest(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("tick", i=i)
        assert len(rec) == 4
        assert [e.fields["i"] for e in rec.events()] == [6, 7, 8, 9]
        # seq keeps counting across evictions
        assert [e.seq for e in rec.events()] == [7, 8, 9, 10]

    def test_seq_strictly_monotone(self):
        rec = FlightRecorder()
        for _ in range(5):
            rec.record("tick")
        seqs = [e.seq for e in rec.events()]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ReproError):
            FlightRecorder(capacity=0)

    def test_bad_severity_rejected(self):
        rec = FlightRecorder()
        with pytest.raises(ReproError):
            rec.record("tick", severity="catastrophic")

    def test_timestamps_are_caller_supplied(self):
        rec = FlightRecorder()
        rec.record("a", t_s=1.25)
        rec.record("b")
        assert [e.t_s for e in rec.events()] == [1.25, None]

    def test_kinds_and_clear(self):
        rec = FlightRecorder()
        rec.record("a")
        rec.record("b", severity="warn")
        assert rec.kinds() == ["a", "b"]
        rec.clear()
        assert rec.kinds() == [] and len(rec) == 0


class TestDump:
    def test_dump_json_parses_ordered(self):
        rec = FlightRecorder()
        rec.record("serve.admit", t_s=0.0, request_id=1)
        rec.record("fleet.failover", severity="warn", t_s=0.5, from_replica=0)
        doc = json.loads(rec.dump_json())
        assert [e["kind"] for e in doc] == ["serve.admit", "fleet.failover"]
        assert doc[0]["request_id"] == 1
        assert doc[1]["severity"] == "warn"
        assert [e["seq"] for e in doc] == [1, 2]

    def test_terminal_dumps_when_armed(self):
        rec = FlightRecorder(dump_on_error=True)
        rec.record("serve.admit")
        out = io.StringIO()
        rec.terminal("recovery.exhausted", stream=out, replica=0)
        text = out.getvalue()
        assert "flight recorder dump" in text
        dumped = json.loads(text.split("===\n", 1)[1])
        assert [e["kind"] for e in dumped] == ["serve.admit", "recovery.exhausted"]
        assert dumped[-1]["severity"] == "error"

    def test_terminal_silent_by_default(self):
        rec = FlightRecorder()
        out = io.StringIO()
        rec.terminal("recovery.exhausted", stream=out)
        assert out.getvalue() == ""
        assert rec.kinds() == ["recovery.exhausted"]


class TestProcessAccessor:
    def test_disabled_recorder_is_null_noop(self):
        # Neutralize any env-armed recorder (REPRO_FLIGHT_RECORDER=1 in
        # CI's telemetry job) so we observe the disabled state.
        previous = flight.set_recorder(None)
        try:
            assert not flight.recorder().enabled
            assert flight.record("anything", severity="error") is None
            assert flight.recorder().dump() == []
            assert flight.recorder().dump_json() == "[]"
        finally:
            flight.set_recorder(previous)

    def test_use_recorder_scopes_install(self):
        before = flight.recorder()
        with flight.use_recorder() as rec:
            assert flight.recorder() is rec
            flight.record("scoped", t_s=1.0)
            assert rec.kinds() == ["scoped"]
        assert flight.recorder() is before

    def test_enable_disable_roundtrip(self):
        before = flight.set_recorder(None)
        try:
            rec = flight.enable(capacity=8, dump_on_error=True)
            assert flight.recorder() is rec
            assert rec.capacity == 8 and rec.dump_on_error
            assert flight.disable() is rec
            assert not flight.recorder().enabled
        finally:
            flight.set_recorder(before)

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY
