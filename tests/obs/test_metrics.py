"""Metrics registry tests: primitives, exposition and the trace bridge."""

from __future__ import annotations

import math

import pytest

from repro.errors import MetricsError
from repro.obs import Span, metrics_from_trace
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    format_labels,
    use_registry,
)


@pytest.fixture()
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_monotone(self, reg):
        c = reg.counter("requests_total", "Requests.")
        c.inc()
        c.inc(2.5)
        assert reg.collect().flat()["requests_total"] == pytest.approx(3.5)

    def test_negative_increment_rejected(self, reg):
        c = reg.counter("requests_total", "Requests.")
        with pytest.raises(MetricsError, match="monotone"):
            c.inc(-1)
        assert reg.collect().flat()["requests_total"] == 0.0

    def test_get_or_create_returns_same_family(self, reg):
        assert reg.counter("x", "a") is reg.counter("x", "a")

    def test_type_mismatch_rejected(self, reg):
        reg.counter("x", "a")
        with pytest.raises(MetricsError, match="already registered"):
            reg.gauge("x", "a")

    def test_labelnames_mismatch_rejected(self, reg):
        reg.counter("x", "a", ("model",))
        with pytest.raises(MetricsError, match="already registered"):
            reg.counter("x", "a", ("site",))


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("depth", "Queue depth.")
        g.set(4)
        g.inc()
        g.dec(2)
        assert reg.collect().flat()["depth"] == pytest.approx(3.0)


class TestLabels:
    def test_child_identity(self, reg):
        family = reg.counter("ecalls", "", ("name",))
        a = family.labels(name="activation_pool")
        b = family.labels(name="activation_pool")
        assert a is b
        assert a is not family.labels(name="generate_keys")

    def test_wrong_labelnames_rejected(self, reg):
        family = reg.counter("ecalls", "", ("name",))
        with pytest.raises(MetricsError, match="takes labels"):
            family.labels(model="digits")
        with pytest.raises(MetricsError, match="takes labels"):
            family.labels()

    def test_unlabeled_convenience_rejected_on_labeled_family(self, reg):
        family = reg.counter("ecalls", "", ("name",))
        with pytest.raises(MetricsError, match="labeled"):
            family.inc()

    def test_escaping(self):
        assert escape_label_value('evil"} 1\nfake 2') == 'evil\\"} 1\\nfake 2'
        assert escape_label_value("back\\slash") == "back\\\\slash"
        formatted = format_labels({"name": 'a"b', "z": "c", "empty": ""})
        assert formatted == '{name="a\\"b",z="c"}'
        assert format_labels({}) == ""


class TestHistogram:
    def test_bucket_boundaries_le_inclusive(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 2.0, 4.0, 99.0):
            h.observe(v)
        assert h.bucket_counts() == {"1": 2, "2": 4, "4": 5, "+Inf": 6}
        assert h.count == 6
        assert h.sum == pytest.approx(108.0)

    def test_latency_buckets_are_log_scaled(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        for lo, hi in zip(LATENCY_BUCKETS, LATENCY_BUCKETS[1:]):
            assert hi == pytest.approx(2 * lo)

    def test_quantile_interpolation(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)  # all in the (1, 2] bucket
        # Any quantile interpolates inside that bucket's (1.0, 2.0) range.
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert h.quantile(0.0) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_empty_is_nan(self):
        assert math.isnan(Histogram(buckets=(1.0,)).quantile(0.5))

    def test_unlabeled_family_delegates_quantile(self, reg):
        family = reg.histogram("h", "", buckets=(1.0, 2.0))
        family.observe(1.5)
        assert 1.0 <= family.quantile(0.5) <= 2.0

    def test_quantile_clamps_to_highest_finite_bound(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(100.0)  # +Inf bucket
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(MetricsError):
            Histogram(buckets=(1.0,)).quantile(1.5)

    def test_unsorted_buckets_rejected(self, reg):
        with pytest.raises(MetricsError, match="increasing"):
            reg.histogram("h", "", buckets=(2.0, 1.0))


class TestDisabledRegistry:
    def test_null_metric_is_shared_and_inert(self):
        reg = MetricsRegistry(enabled=False)
        a = reg.counter("x", "")
        b = reg.histogram("y", "", ("model",))
        assert a is b  # one shared null object: no per-call allocation
        assert a.labels(model="digits") is a
        a.inc()
        a.observe(1.0)
        a.set(2.0)
        assert reg.collect().families == []

    def test_disable_enable_roundtrip(self, reg):
        reg.counter("x", "").inc()
        reg.disable()
        reg.counter("x", "").inc()  # dropped
        reg.enable()
        reg.counter("x", "").inc()
        assert reg.collect().flat()["x"] == 2.0


class TestExposition:
    def test_golden(self, reg):
        reg.counter("repro_demo_total", "Demo events.", ("site",)).labels(
            site="sgx.ecall"
        ).inc(3)
        reg.gauge("repro_depth", "Queue depth.").set(2)
        reg.histogram("repro_wait_seconds", "Waits.", buckets=(0.5, 1.0)).observe(0.25)
        assert reg.render_prometheus() == "\n".join(
            [
                "# HELP repro_demo_total Demo events.",
                "# TYPE repro_demo_total counter",
                'repro_demo_total{site="sgx.ecall"} 3',
                "# HELP repro_depth Queue depth.",
                "# TYPE repro_depth gauge",
                "repro_depth 2",
                "# HELP repro_wait_seconds Waits.",
                "# TYPE repro_wait_seconds histogram",
                'repro_wait_seconds_bucket{le="0.5"} 1',
                'repro_wait_seconds_bucket{le="1"} 1',
                'repro_wait_seconds_bucket{le="+Inf"} 1',
                "repro_wait_seconds_sum 0.25",
                "repro_wait_seconds_count 1",
            ]
        )

    def test_hostile_label_values_stay_on_one_line(self, reg):
        reg.counter("m", "", ("model",)).labels(model='evil"} 1\nfake 2').inc()
        lines = reg.render_prometheus().splitlines()
        assert lines[2] == 'm{model="evil\\"} 1\\nfake 2"} 1'
        assert len(lines) == 3

    def test_snapshot_json_roundtrip(self, reg):
        import json

        reg.counter("x", "help text").inc(5)
        doc = json.loads(reg.collect().to_json())
        assert doc["families"][0] == {
            "name": "x",
            "type": "counter",
            "help": "help text",
            "samples": [{"labels": {}, "value": 5.0}],
        }


class TestTraceBridge:
    @pytest.fixture()
    def trace(self):
        return Span(
            name="EncryptSGX",
            kind="pipeline",
            real_s=1.0,
            overhead_s=0.5,
            overhead_by_category={"sgx_transition": 0.3, "sgx_marshalling": 0.2},
            op_counts={"ct_add": 7, "ct_plain_mul": 3},
            crossings=2,
            children=[
                Span("encrypt", kind="stage", real_s=0.2),
                Span(
                    "sgx_activation_pool",
                    kind="stage",
                    real_s=0.5,
                    overhead_s=0.5,
                    crossings=2,
                    children=[
                        Span("activation_pool", kind="ecall", real_s=0.4,
                             crossings=1, attrs={"bytes_in": 100, "bytes_out": 40}),
                    ],
                ),
            ],
        )

    def test_record_trace_reconciles_with_flat_view(self, reg, trace):
        """The reconciliation invariant: a fresh registry fed one trace
        agrees sample-for-sample with the single-trace flat view."""
        reg.record_trace(trace)
        flat = reg.collect().flat()
        expected = metrics_from_trace(trace)
        assert flat == pytest.approx(expected)

    def test_record_trace_accumulates(self, reg, trace):
        reg.record_trace(trace)
        reg.record_trace(trace)
        flat = reg.collect().flat()
        for key, value in metrics_from_trace(trace).items():
            assert flat[key] == pytest.approx(2 * value)

    def test_tracer_rolls_up_pipeline_spans(self):
        from repro.obs.tracer import Tracer
        from repro.sgx.clock import SimClock

        with use_registry() as fresh:
            tracer = Tracer(SimClock())
            with tracer.span("EncryptSGX", kind="pipeline"):
                pass
            flat = fresh.collect().flat()
        assert 'repro_pipeline_real_seconds{pipeline="EncryptSGX"}' in flat

    def test_disabled_registry_ignores_traces(self, trace):
        reg = MetricsRegistry(enabled=False)
        reg.record_trace(trace)
        assert reg.collect().families == []


class TestUseRegistry:
    def test_swaps_and_restores(self):
        from repro.obs import metrics as metrics_mod

        before = metrics_mod.registry()
        with use_registry() as fresh:
            assert metrics_mod.registry() is fresh
            fresh.counter("inner", "").inc()
        assert metrics_mod.registry() is before
        assert "inner" not in {f["name"] for f in before.collect().families}
