"""Deterministic trace-context tests: derivation, wire format, resolution."""

from __future__ import annotations

import pytest

from repro.errors import TraceFormatError
from repro.obs import Span, TraceContext, resolve_trace_ids, spans_without_context
from repro.obs import context as obs_context


class TestDerivation:
    def test_deterministic_from_seed_and_counter(self):
        a = TraceContext.derive(b"\x42" * 32, 1)
        b = TraceContext.derive(b"\x42" * 32, 1)
        assert a == b
        assert a.trace_id == b.trace_id

    def test_distinct_counters_distinct_ids(self):
        ids = {TraceContext.derive(b"\x42" * 32, i).trace_id for i in range(32)}
        assert len(ids) == 32

    def test_distinct_seeds_distinct_ids(self):
        assert (
            TraceContext.derive(b"a", 1).trace_id
            != TraceContext.derive(b"b", 1).trace_id
        )

    def test_string_and_int_seeds(self):
        assert TraceContext.derive("scheduler:digits", 3).trace_id
        assert TraceContext.derive(7, 3).trace_id

    def test_id_shape(self):
        ctx = TraceContext.derive(b"seed", 1)
        assert len(ctx.trace_id) == obs_context.TRACE_ID_HEX
        int(ctx.trace_id, 16)  # hex

    def test_child_chains_parentage(self):
        parent = TraceContext.derive(b"seed", 1)
        child = parent.child("flush-4")
        assert child.trace_id == parent.trace_id
        assert child.parent_id == "flush-4"


class TestWire:
    def test_roundtrip(self):
        ctx = TraceContext.derive(b"\x42" * 32, 9)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    @pytest.mark.parametrize(
        "payload",
        [
            "not-a-dict",
            42,
            None,
            {},
            {"parent_id": "x"},
            {"trace_id": "zzzz"},
            {"trace_id": "abc"},
            {"trace_id": "ab" * 8, "parent_id": "x", "extra": 1},
            {"trace_id": 123},
        ],
    )
    def test_malformed_rejected_typed(self, payload):
        with pytest.raises(TraceFormatError):
            TraceContext.from_wire(payload)

    def test_bad_constructor_args_typed(self):
        with pytest.raises(TraceFormatError):
            TraceContext(trace_id="nothex!")
        with pytest.raises(TraceFormatError):
            TraceContext(trace_id="ab" * 8, parent_id=7)  # type: ignore[arg-type]


class TestAmbientStack:
    def test_activate_and_current(self):
        assert obs_context.current() == ()
        ctx = TraceContext.derive(b"s", 1)
        with obs_context.activate(ctx):
            assert obs_context.current() == (ctx,)
            assert obs_context.current_trace_ids() == (ctx.trace_id,)
        assert obs_context.current() == ()

    def test_none_entries_dropped(self):
        with obs_context.activate(None, None) as group:
            assert group == ()
            assert obs_context.current() == ()

    def test_stamp_single_and_group(self):
        a = TraceContext.derive(b"s", 1)
        b = TraceContext.derive(b"s", 2)
        attrs: dict = {}
        with obs_context.activate(a):
            obs_context.stamp(attrs)
        assert attrs["trace_id"] == a.trace_id
        shared: dict = {}
        with obs_context.activate(a, b):
            obs_context.stamp(shared)
        assert shared["trace_ids"] == [a.trace_id, b.trace_id]

    def test_wire_current(self):
        ctx = TraceContext.derive(b"s", 1)
        with obs_context.activate(ctx):
            assert obs_context.wire_current() == [ctx.to_wire()]


class TestResolution:
    def test_children_inherit_nearest_ancestor(self):
        a = TraceContext.derive(b"s", 1)
        b = TraceContext.derive(b"s", 2)
        root = Span(
            "pipe",
            kind="pipeline",
            attrs={"trace_ids": [a.trace_id, b.trace_id]},
            children=[
                Span("stage", kind="stage", children=[Span("ecall", kind="ecall")]),
                Span("req", kind="span", attrs={"trace_id": a.trace_id}),
            ],
        )
        resolved = dict((s.name, ids) for s, ids in resolve_trace_ids(root))
        assert resolved["pipe"] == (a.trace_id, b.trace_id)
        assert resolved["stage"] == (a.trace_id, b.trace_id)
        assert resolved["ecall"] == (a.trace_id, b.trace_id)
        assert resolved["req"] == (a.trace_id,)
        assert spans_without_context(root) == []

    def test_unannotated_tree_flagged(self):
        root = Span("pipe", kind="pipeline", children=[Span("stage", kind="stage")])
        assert len(spans_without_context(root)) == 2
