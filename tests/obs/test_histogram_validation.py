"""Histogram validation pass: both render paths refuse corrupt samples."""

from __future__ import annotations

import pytest

from repro.errors import MetricsError
from repro.obs import MetricsRegistry, render_prometheus, validate_histograms


def _flat_histogram(counts=(1.0, 3.0, 4.0), total=4.0, labels='model="digits",'):
    return {
        f'repro_latency_bucket{{le="0.1",{labels.rstrip(",")}}}'.replace(",}", "}"): counts[0],
        f'repro_latency_bucket{{le="1",{labels.rstrip(",")}}}'.replace(",}", "}"): counts[1],
        f'repro_latency_bucket{{le="+Inf",{labels.rstrip(",")}}}'.replace(",}", "}"): counts[2],
        f'repro_latency_count{{{labels.rstrip(",")}}}': total,
        f'repro_latency_sum{{{labels.rstrip(",")}}}': 2.5,
    }


class TestFlatValidation:
    def test_valid_passes_and_renders(self):
        metrics = _flat_histogram()
        validate_histograms(metrics)
        text = render_prometheus(metrics)
        assert 'repro_latency_bucket{le="+Inf",model="digits"} 4' in text

    def test_non_monotone_buckets_rejected(self):
        metrics = _flat_histogram(counts=(3.0, 1.0, 4.0))
        with pytest.raises(MetricsError, match="not monotone"):
            validate_histograms(metrics)
        with pytest.raises(MetricsError, match="not monotone"):
            render_prometheus(metrics)

    def test_count_mismatch_rejected(self):
        metrics = _flat_histogram(total=7.0)
        with pytest.raises(MetricsError, match="top bucket"):
            render_prometheus(metrics)

    def test_bucket_without_le_rejected(self):
        with pytest.raises(MetricsError, match="without le"):
            validate_histograms({'repro_latency_bucket{model="digits"}': 1.0})

    def test_unlabeled_histogram_checked(self):
        metrics = {
            'repro_wait_bucket{le="1"}': 2.0,
            'repro_wait_bucket{le="+Inf"}': 2.0,
            "repro_wait_count": 2.0,
        }
        validate_histograms(metrics)
        metrics["repro_wait_count"] = 9.0
        with pytest.raises(MetricsError, match="top bucket"):
            validate_histograms(metrics)

    def test_non_histogram_families_ignored(self):
        validate_histograms({"repro_requests_total": 5.0, "repro_gauge": 1.0})


class TestRegistryValidation:
    def _registry_with_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_request_latency_seconds",
            "Latency.",
            buckets=(0.1, 1.0),
            labelnames=("model",),
        ).labels(model="digits")
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        return registry, hist

    def test_clean_registry_renders(self):
        registry, _ = self._registry_with_histogram()
        text = registry.render_prometheus()
        assert 'repro_request_latency_seconds_bucket{le="+Inf",model="digits"} 3' in text
        assert 'repro_request_latency_seconds_count{model="digits"} 3' in text

    def test_corrupt_bucket_counts_rejected(self):
        registry, hist = self._registry_with_histogram()
        hist._counts[1] = -5  # cumulative sequence now decreases
        with pytest.raises(MetricsError, match="not monotone"):
            registry.render_prometheus()

    def test_corrupt_total_rejected(self):
        registry, hist = self._registry_with_histogram()
        hist._count = 99
        with pytest.raises(MetricsError, match="top bucket"):
            registry.render_prometheus()
