"""Unit tests for the tracing layer: spans, deltas, and the stage measure."""

from __future__ import annotations

import time

import pytest

from repro.errors import ReproError
from repro.he.evaluator import OperationCounter
from repro.obs import Span, Tracer, reconcile
from repro.sgx.clock import SimClock
from repro.sgx.sidechannel import SideChannelLog


@pytest.fixture()
def clock():
    return SimClock()


@pytest.fixture()
def tracer(clock):
    return Tracer(clock)


class TestSpanCapture:
    def test_clock_deltas(self, clock, tracer):
        clock.charge(1.0, "before")
        with tracer.span("work") as span:
            clock.elapse_real(0.5)
            clock.charge(0.25, "sgx_transition")
        assert span.real_s == pytest.approx(0.5)
        assert span.overhead_s == pytest.approx(0.25)
        assert span.elapsed_s == pytest.approx(0.75)
        assert span.overhead_by_category == {"sgx_transition": pytest.approx(0.25)}

    def test_category_excludes_pre_span_charges(self, clock, tracer):
        clock.charge(9.0, "sgx_transition")
        with tracer.span("work") as span:
            clock.charge(1.0, "sgx_transition")
        assert span.overhead_by_category == {"sgx_transition": pytest.approx(1.0)}

    def test_nesting_attaches_children(self, clock, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner_a"):
                clock.elapse_real(0.1)
            with tracer.span("inner_b"):
                clock.elapse_real(0.2)
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert outer.real_s == pytest.approx(0.3)
        assert tracer.traces == [outer]

    def test_counter_deltas(self, clock):
        counter = OperationCounter()
        counter.record("ct_add", 5)
        tracer = Tracer(clock, counter=counter)
        with tracer.span("work") as span:
            counter.record("ct_add", 2)
            counter.record("ct_mul", 1)
        assert span.op_counts == {"ct_add": 2, "ct_mul": 1}

    def test_crossing_deltas(self, clock):
        log = SideChannelLog()
        log.record("ecall", "earlier")
        tracer = Tracer(clock, side_channel=log)
        with tracer.span("work") as span:
            log.record("ecall", "f")
            log.record("page_fault", "x")
            log.record("ecall", "g")
        assert span.crossings == 2

    def test_per_span_overrides_beat_tracer_defaults(self, clock):
        default = OperationCounter()
        override = OperationCounter()
        tracer = Tracer(clock, counter=default)
        with tracer.span("work", counter=override) as span:
            default.record("ct_add")
            override.record("ct_mul")
        assert span.op_counts == {"ct_mul": 1}

    def test_attrs_stored(self, tracer):
        with tracer.span("f", kind="ecall", bytes_in=10) as span:
            span.attrs["bytes_out"] = 20
        assert span.attrs == {"bytes_in": 10, "bytes_out": 20}

    def test_rejects_unknown_kind(self, tracer):
        with pytest.raises(ReproError):
            with tracer.span("x", kind="mystery"):
                pass

    def test_exception_still_closes_span(self, clock, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                clock.elapse_real(0.5)
                raise RuntimeError("boom")
        assert tracer.current is None
        assert tracer.last_trace().real_s == pytest.approx(0.5)

    def test_current_tracks_stack(self, tracer):
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
        assert tracer.current is None

    def test_last_trace_requires_one(self, tracer):
        with pytest.raises(ReproError):
            tracer.last_trace()

    def test_max_traces_bounds_retention(self, clock):
        tracer = Tracer(clock, max_traces=3)
        for i in range(10):
            with tracer.span(f"t{i}"):
                pass
        assert [t.name for t in tracer.traces] == ["t7", "t8", "t9"]

    def test_rejects_silly_max_traces(self, clock):
        with pytest.raises(ReproError):
            Tracer(clock, max_traces=0)


class TestStageMeasurement:
    def test_stage_measures_wall_time(self, clock, tracer):
        with tracer.stage("host_work") as span:
            time.sleep(0.01)
        assert span.real_s >= 0.009
        assert clock.real_s == span.real_s

    def test_stage_does_not_double_count_inner_measures(self, clock, tracer):
        """An ECALL measures its own body; the stage must add only the host
        time around it -- the per_pixel reassembly fix in miniature."""
        with tracer.stage("stage") as span:
            time.sleep(0.005)  # host-side work
            with clock.measure_real():  # what an ecall body does
                time.sleep(0.01)
            time.sleep(0.005)  # more host-side work
        # Total is wall time counted once: ~0.02s, never ~0.03s.
        assert 0.018 <= span.real_s <= 0.028
        assert clock.real_s == pytest.approx(span.real_s)

    def test_exclusive_measure_never_negative(self, clock):
        with clock.measure_real_exclusive():
            # Inner measurement may slightly exceed the outer window's own
            # wall estimate; the exclusive measure clamps at zero.
            clock.elapse_real(10.0)
        assert clock.real_s >= 10.0


class TestSpanNavigation:
    def test_walk_depth_first(self):
        tree = Span("root", children=[
            Span("a", children=[Span("a1")]),
            Span("b"),
        ])
        assert [s.name for s in tree.walk()] == ["root", "a", "a1", "b"]

    def test_find(self):
        tree = Span("root", children=[Span("a", children=[Span("target", kind="ecall")])])
        assert tree.find("target").kind == "ecall"
        with pytest.raises(KeyError):
            tree.find("missing")

    def test_stages_and_ecalls(self):
        tree = Span("root", kind="pipeline", children=[
            Span("encrypt", kind="stage"),
            Span("sgx", kind="stage", children=[Span("f", kind="ecall")]),
        ])
        assert [s.name for s in tree.stages()] == ["encrypt", "sgx"]
        assert [s.name for s in tree.ecalls()] == ["f"]


class TestReconcile:
    def test_accepts_consistent_tree(self):
        reconcile(Span("root", real_s=1.0, overhead_s=0.5, children=[
            Span("a", kind="stage", real_s=0.6, overhead_s=0.5),
            Span("b", kind="stage", real_s=0.4),
        ]))

    def test_rejects_children_exceeding_parent_real(self):
        with pytest.raises(ReproError):
            reconcile(Span("root", real_s=1.0, children=[
                Span("a", kind="stage", real_s=1.5),
            ]))

    def test_rejects_children_exceeding_parent_overhead(self):
        with pytest.raises(ReproError):
            reconcile(Span("root", overhead_s=0.1, children=[
                Span("a", kind="stage", overhead_s=0.2),
            ]))

    def test_rejects_excess_child_crossings(self):
        with pytest.raises(ReproError):
            reconcile(Span("root", crossings=1, children=[
                Span("a", kind="ecall", crossings=2),
            ]))
