"""Fixtures for the observability tests: a tiny trained deployment.

Mirrors ``tests/core/conftest.py`` (session-scoped, read-only models) so the
reconciliation tests can run every pipeline variant.
"""

from __future__ import annotations

import pytest

from repro.core import parameters_for_pipeline, train_paper_models


@pytest.fixture(scope="session")
def models():
    return train_paper_models(
        train_size=300, test_size=60, epochs=4, image_size=10, channels=2, kernel_size=3
    )


@pytest.fixture(scope="session")
def q_sigmoid(models):
    return models.quantized_sigmoid()


@pytest.fixture(scope="session")
def q_square(models):
    return models.quantized_square()


@pytest.fixture(scope="session")
def hybrid_params(q_sigmoid):
    return parameters_for_pipeline(q_sigmoid, 256)


@pytest.fixture(scope="session")
def pure_he_params(q_square):
    return parameters_for_pipeline(q_square, 256)


@pytest.fixture(scope="session")
def batching_params(q_sigmoid):
    return parameters_for_pipeline(q_sigmoid, 256, batching=True)


@pytest.fixture(scope="session")
def test_images(models):
    return models.dataset.test_images[:2]
