"""Regression: refresh-free depth exhausts the budget at a *pinned* layer.

The paper's central noise argument (Sections III-A / IV-E) is quantitative:
without SGX refresh, a multiply chain survives only a bounded number of
layers before :class:`~repro.errors.NoiseBudgetExhausted`.  This test pins
the measured exhaustion layer for the deterministic 256-degree deployment
and cross-checks it against :class:`~repro.he.noise.NoiseEstimator`, so a
silent change to either the noise accounting or the estimator formulas
fails loudly instead of shifting results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NoiseBudgetExhausted
from repro.he import (
    Context,
    Decryptor,
    Evaluator,
    KeyGenerator,
    ScalarEncoder,
    SymmetricEncryptor,
    small_parameter_options,
)
from repro.he.noise import NoiseEstimator

#: Plaintext multiplier per layer; its magnitude drives per-layer noise cost.
LAYER_WEIGHT = 3
#: Measured exhaustion layer for params=test_256, seed=2024, weight=3.
#: If an intentional noise-model change moves this, re-pin it here AND
#: revisit the estimator cross-check below.
PINNED_EXHAUSTION_LAYER = 23


@pytest.fixture(scope="module")
def deployment():
    """A deterministic local deployment, independent of session fixtures
    (whose RNG draws depend on test execution order)."""
    params = small_parameter_options()[256]
    context = Context(params)
    rng = np.random.default_rng(2024)
    keys = KeyGenerator(context, rng).generate()
    return {
        "params": params,
        "context": context,
        "encryptor": SymmetricEncryptor(context, keys.secret, rng),
        "decryptor": Decryptor(context, keys.secret),
        "evaluator": Evaluator(context),
        "encoder": ScalarEncoder(context),
    }


def exhaustion_layer(deployment) -> int:
    """Depth of the first multiply_plain layer whose decrypt (with noise
    checking) fails; mirrors a refresh-free deep pipeline's layer loop."""
    encoder = deployment["encoder"]
    evaluator = deployment["evaluator"]
    decryptor = deployment["decryptor"]
    ct = deployment["encryptor"].encrypt(encoder.encode(np.int64(1)))
    weight = encoder.encode(np.int64(LAYER_WEIGHT))
    for layer in range(1, 64):
        ct = evaluator.multiply_plain(ct, weight)
        try:
            decryptor.decrypt(ct, check_noise=True)
        except NoiseBudgetExhausted:
            return layer
    raise AssertionError("budget never exhausted within 64 layers")


class TestRefreshFreeDepthLimit:
    def test_exhaustion_layer_is_pinned(self, deployment):
        assert exhaustion_layer(deployment) == PINNED_EXHAUSTION_LAYER

    def test_budget_decreases_monotonically_until_exhaustion(self, deployment):
        encoder = deployment["encoder"]
        evaluator = deployment["evaluator"]
        decryptor = deployment["decryptor"]
        ct = deployment["encryptor"].encrypt(encoder.encode(np.int64(1)))
        weight = encoder.encode(np.int64(LAYER_WEIGHT))
        budgets = [decryptor.invariant_noise_budget(ct)]
        for _ in range(PINNED_EXHAUSTION_LAYER):
            ct = evaluator.multiply_plain(ct, weight)
            budgets.append(decryptor.invariant_noise_budget(ct))
        assert all(b2 < b1 for b1, b2 in zip(budgets, budgets[1:]))
        # Below is_decryptable's 0.5-bit margin: the next decrypt refuses.
        assert budgets[-1] < 0.5

    def test_estimator_predicts_the_measured_layer(self, deployment):
        """The estimator is an upper bound on noise (lower bound on depth):
        it must not promise layers the measured chain cannot deliver, and it
        must land within a small constant of the truth."""
        estimator = NoiseEstimator(deployment["params"])
        predicted = 0
        while estimator.budget_after(
            plain_multiplies=predicted + 1, plain_norm=LAYER_WEIGHT
        ) > 0:
            predicted += 1
        # First failing layer according to the estimate:
        predicted_exhaustion = predicted + 1
        assert predicted_exhaustion <= PINNED_EXHAUSTION_LAYER
        assert PINNED_EXHAUSTION_LAYER - predicted_exhaustion <= 6

    def test_fresh_budget_estimate_brackets_measurement(self, deployment):
        estimator = NoiseEstimator(deployment["params"])
        encoder = deployment["encoder"]
        ct = deployment["encryptor"].encrypt(encoder.encode(np.int64(1)))
        measured = deployment["decryptor"].invariant_noise_budget(ct)
        estimated = estimator.fresh_budget()
        assert estimated <= measured  # upper-bound noise => conservative budget
        assert measured - estimated <= 15.0


def _toy_model(activation: str) -> "QuantizedCNN":
    from repro.nn.quantize import QuantizedCNN

    rng = np.random.default_rng(99)
    conv = rng.integers(-5, 6, size=(2, 2, 3, 3))
    dense = rng.integers(-7, 8, size=(32, 3))
    dense[0, 0] = 7  # pin the norm to the dense layer
    return QuantizedCNN(
        conv_weight=conv,
        conv_bias=np.zeros(2, dtype=np.int64),
        dense_weight=dense,
        dense_bias=np.zeros(3, dtype=np.int64),
        input_scale=15,
        conv_weight_scale=5.0,
        dense_weight_scale=7.0,
        act_scale=15,
        activation=activation,
        pool="scaled_mean" if activation == "square" else "mean",
        pool_window=2,
    )


class TestNoiseProfileAccounting:
    """Regression for the latent ``QuantizedCNN.noise_profile`` bug: the
    profile under-counted the conv fan-in (it read only one spatial axis)
    and ignored the dense weights entirely, so parameter sizing could
    hand out too little budget.  Pins the corrected convention against
    ``NoiseEstimator.layer_headroom`` and the graph IR annotations."""

    def test_hybrid_counts_widest_single_layer(self):
        q = _toy_model("sigmoid")
        pure_he, norm, additions = q.noise_profile()
        assert not pure_he
        # conv fan-in = k*k*in_channels = 18; fc fan-in = 32; the enclave
        # refresh between them means only the widest layer counts.
        assert additions == 32
        assert norm == 7.0  # max over BOTH weight layers, not just conv

    def test_pure_he_carries_fanin_through_the_circuit(self):
        q = _toy_model("square")
        pure_he, norm, additions = q.noise_profile()
        assert pure_he
        # One encrypted circuit: conv taps (18) x pool window sum (4) x fc
        # terms (32), no refresh anywhere to reset the accumulation.
        assert additions == 18 * 4 * 32
        assert norm == 7.0

    def test_profile_matches_layer_headroom_convention(self):
        """The hybrid profile must describe the same worst layer the
        estimator's per-layer headroom uses, so ``parameters_for_pipeline``
        sizes for exactly that layer."""
        from repro.core import parameters_for_pipeline

        q = _toy_model("sigmoid")
        params = parameters_for_pipeline(q, 256)
        estimator = NoiseEstimator(params)
        _, norm, additions = q.noise_profile()
        headroom = estimator.layer_headroom(q)
        worst = min(headroom.values())
        sized = estimator.budget_after(
            plain_multiplies=1, plain_norm=norm, additions=additions
        )
        assert sized == pytest.approx(worst)
        assert worst > 0

    def test_graph_ir_budgets_agree_with_layer_headroom(self):
        from repro.core import parameters_for_pipeline
        from repro.graph import ir

        q = _toy_model("sigmoid")
        params = parameters_for_pipeline(q, 256)
        graph = ir.build_hybrid_graph(q, params)
        headroom = NoiseEstimator(params).layer_headroom(q)
        assert graph.node("conv").budget_bits == pytest.approx(headroom["conv"])
        assert graph.node("fc").budget_bits == pytest.approx(headroom["fc"])
