"""Homomorphic-operation tests: the paper's Add / Multiply / relinearization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.he import (
    Context,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    OperationCounter,
    ScalarEncoder,
    small_parameter_options,
)

small_ints = st.integers(min_value=-100, max_value=100)


class TestAdditive:
    def test_add(self, encryptor, decryptor, encoder, evaluator):
        ct = evaluator.add(
            encryptor.encrypt(encoder.encode(30)),
            encryptor.encrypt(encoder.encode(12)),
        )
        assert encoder.decode(decryptor.decrypt(ct)) == 42

    def test_sub(self, encryptor, decryptor, encoder, evaluator):
        ct = evaluator.sub(
            encryptor.encrypt(encoder.encode(30)),
            encryptor.encrypt(encoder.encode(12)),
        )
        assert encoder.decode(decryptor.decrypt(ct)) == 18

    def test_negate(self, encryptor, decryptor, encoder, evaluator):
        ct = evaluator.negate(encryptor.encrypt(encoder.encode(7)))
        assert encoder.decode(decryptor.decrypt(ct)) == -7

    def test_add_plain(self, encryptor, decryptor, encoder, evaluator):
        ct = evaluator.add_plain(encryptor.encrypt(encoder.encode(40)), encoder.encode(2))
        assert encoder.decode(decryptor.decrypt(ct)) == 42

    def test_add_many(self, encryptor, decryptor, encoder, evaluator):
        cts = [encryptor.encrypt(encoder.encode(i)) for i in range(5)]
        assert encoder.decode(decryptor.decrypt(evaluator.add_many(cts))) == 10

    def test_add_many_empty_rejected(self, evaluator):
        with pytest.raises(ParameterError):
            evaluator.add_many([])

    def test_sum_batch(self, encryptor, decryptor, encoder, evaluator, rng):
        values = rng.integers(-20, 20, size=(4, 5))
        ct = encryptor.encrypt(encoder.encode(values))
        summed = evaluator.sum_batch(ct, axis=1)
        assert np.array_equal(encoder.decode(decryptor.decrypt(summed)), values.sum(axis=1))

    def test_sum_batch_axis0(self, encryptor, decryptor, encoder, evaluator, rng):
        values = rng.integers(-20, 20, size=(4, 5))
        ct = encryptor.encrypt(encoder.encode(values))
        summed = evaluator.sum_batch(ct, axis=0)
        assert np.array_equal(encoder.decode(decryptor.decrypt(summed)), values.sum(axis=0))

    def test_sum_batch_rejects_scalar(self, encryptor, encoder, evaluator):
        with pytest.raises(ParameterError):
            evaluator.sum_batch(encryptor.encrypt(encoder.encode(1)))

    @settings(max_examples=15, deadline=None)
    @given(small_ints, small_ints)
    def test_add_homomorphism_property(self, a, b):
        context = Context(small_parameter_options()[256])
        rng = np.random.default_rng(abs(a) * 1000 + abs(b))
        keys = KeyGenerator(context, rng).generate()
        encoder = ScalarEncoder(context)
        encryptor = Encryptor(context, keys.public, rng)
        decryptor = Decryptor(context, keys.secret)
        ct = Evaluator(context).add(
            encryptor.encrypt(encoder.encode(a)), encryptor.encrypt(encoder.encode(b))
        )
        assert encoder.decode(decryptor.decrypt(ct)) == a + b


class TestMultiplicative:
    def test_multiply_plain(self, encryptor, decryptor, encoder, evaluator):
        ct = evaluator.multiply_plain(
            encryptor.encrypt(encoder.encode(6)), encoder.encode(7)
        )
        assert encoder.decode(decryptor.decrypt(ct)) == 42

    def test_multiply_plain_negative(self, encryptor, decryptor, encoder, evaluator):
        ct = evaluator.multiply_plain(
            encryptor.encrypt(encoder.encode(-6)), encoder.encode(7)
        )
        assert encoder.decode(decryptor.decrypt(ct)) == -42

    def test_multiply_plain_precomputed_operand(
        self, encryptor, decryptor, encoder, evaluator
    ):
        operand = evaluator.transform_plain(encoder.encode(5))
        ct = evaluator.multiply_plain(encryptor.encrypt(encoder.encode(8)), operand)
        assert encoder.decode(decryptor.decrypt(ct)) == 40

    def test_multiply_plain_batched_weights(
        self, encryptor, decryptor, encoder, evaluator, rng
    ):
        values = rng.integers(-10, 10, size=6)
        weights = rng.integers(-10, 10, size=6)
        ct = evaluator.multiply_plain(
            encryptor.encrypt(encoder.encode(values)),
            evaluator.transform_plain(encoder.encode(weights)),
        )
        assert np.array_equal(
            encoder.decode(decryptor.decrypt(ct)), values * weights
        )

    def test_multiply_scalar(self, encryptor, decryptor, encoder, evaluator):
        ct = evaluator.multiply_scalar(encryptor.encrypt(encoder.encode(-21)), 2)
        assert encoder.decode(decryptor.decrypt(ct)) == -42

    def test_multiply(self, encryptor, decryptor, encoder, evaluator):
        ct = evaluator.multiply(
            encryptor.encrypt(encoder.encode(21)), encryptor.encrypt(encoder.encode(-2))
        )
        assert ct.size == 3
        assert encoder.decode(decryptor.decrypt(ct)) == -42

    def test_square(self, encryptor, decryptor, encoder, evaluator):
        ct = evaluator.square(encryptor.encrypt(encoder.encode(-13)))
        assert encoder.decode(decryptor.decrypt(ct)) == 169

    def test_multiply_batched(self, encryptor, decryptor, encoder, evaluator, rng):
        a = rng.integers(-30, 30, size=5)
        b = rng.integers(-30, 30, size=5)
        ct = evaluator.multiply(
            encryptor.encrypt(encoder.encode(a)), encryptor.encrypt(encoder.encode(b))
        )
        assert np.array_equal(encoder.decode(decryptor.decrypt(ct)), a * b)

    def test_multiply_requires_size_two(
        self, encryptor, decryptor, encoder, evaluator
    ):
        ct3 = evaluator.multiply(
            encryptor.encrypt(encoder.encode(2)), encryptor.encrypt(encoder.encode(3))
        )
        with pytest.raises(ParameterError):
            evaluator.multiply(ct3, encryptor.encrypt(encoder.encode(1)))

    def test_add_mixed_sizes(self, encryptor, decryptor, encoder, evaluator):
        ct3 = evaluator.multiply(
            encryptor.encrypt(encoder.encode(6)), encryptor.encrypt(encoder.encode(7))
        )
        mixed = evaluator.add(ct3, encryptor.encrypt(encoder.encode(8)))
        assert encoder.decode(decryptor.decrypt(mixed)) == 50
        mixed_rev = evaluator.add(encryptor.encrypt(encoder.encode(8)), ct3)
        assert encoder.decode(decryptor.decrypt(mixed_rev)) == 50

    @settings(max_examples=10, deadline=None)
    @given(small_ints, small_ints)
    def test_multiply_homomorphism_property(self, a, b):
        context = Context(small_parameter_options()[256])
        rng = np.random.default_rng(abs(a) * 507 + abs(b) + 3)
        keys = KeyGenerator(context, rng).generate()
        encoder = ScalarEncoder(context)
        encryptor = Encryptor(context, keys.public, rng)
        decryptor = Decryptor(context, keys.secret)
        ct = Evaluator(context).multiply(
            encryptor.encrypt(encoder.encode(a)), encryptor.encrypt(encoder.encode(b))
        )
        assert encoder.decode(decryptor.decrypt(ct)) == a * b


class TestRelinearization:
    def test_preserves_value(self, encryptor, decryptor, encoder, evaluator, relin_keys):
        ct = evaluator.square(encryptor.encrypt(encoder.encode(15)))
        relined = evaluator.relinearize(ct, relin_keys)
        assert relined.size == 2
        assert encoder.decode(decryptor.decrypt(relined)) == 225

    def test_enables_further_multiplication(self):
        # Depth 2 needs a smaller plaintext modulus than the shared fixture's
        # 65537 (each multiply costs ~log2(t) + log2(n) bits of budget).
        from repro.he.params import EncryptionParams
        from repro.he import small_parameter_options

        base = small_parameter_options()[256]
        params = EncryptionParams(
            poly_degree=base.poly_degree,
            coeff_primes=base.coeff_primes,
            plain_modulus=257,
        )
        context = Context(params)
        rng = np.random.default_rng(11)
        keygen = KeyGenerator(context, rng)
        keys = keygen.generate()
        relin_keys = keygen.relin_keys(keys.secret)
        encoder = ScalarEncoder(context)
        encryptor = Encryptor(context, keys.public, rng)
        decryptor = Decryptor(context, keys.secret)
        evaluator = Evaluator(context)
        ct = evaluator.square(encryptor.encrypt(encoder.encode(3)))
        relined = evaluator.relinearize(ct, relin_keys)
        ct4 = evaluator.multiply(relined, encryptor.encrypt(encoder.encode(2)))
        assert decryptor.invariant_noise_budget(ct4) > 0
        assert encoder.decode(decryptor.decrypt(ct4)) == 18

    def test_size_two_is_noop(self, encryptor, encoder, evaluator, relin_keys):
        ct = encryptor.encrypt(encoder.encode(5))
        assert evaluator.relinearize(ct, relin_keys) is ct

    def test_batched(self, encryptor, decryptor, encoder, evaluator, relin_keys, rng):
        values = rng.integers(-15, 15, size=4)
        ct = evaluator.square(encryptor.encrypt(encoder.encode(values)))
        relined = evaluator.relinearize(ct, relin_keys)
        assert np.array_equal(encoder.decode(decryptor.decrypt(relined)), values**2)

    def test_noise_cost_is_modest(
        self, encryptor, decryptor, encoder, evaluator, relin_keys
    ):
        ct = evaluator.square(encryptor.encrypt(encoder.encode(15)))
        before = decryptor.invariant_noise_budget(ct)
        after = decryptor.invariant_noise_budget(evaluator.relinearize(ct, relin_keys))
        assert after > before - 4  # relinearization adds only a few bits


class TestOperationCounter:
    def test_counts_batch_expanded_ops(self, context, encryptor, encoder, rng):
        counter = OperationCounter()
        evaluator = Evaluator(context, counter)
        values = rng.integers(-5, 5, size=10)
        ct = encryptor.encrypt(encoder.encode(values))
        evaluator.multiply_plain(ct, encoder.encode(3))
        evaluator.add(ct, ct)
        assert counter.get("ct_plain_mul") == 10
        assert counter.get("ct_add") == 10

    def test_sum_batch_counts_folds(self, context, encryptor, encoder, rng):
        counter = OperationCounter()
        evaluator = Evaluator(context, counter)
        ct = encryptor.encrypt(encoder.encode(rng.integers(0, 5, size=(4, 5))))
        evaluator.sum_batch(ct, axis=1)
        assert counter.get("ct_add") == 4 * 4  # (5-1) folds in 4 lanes

    def test_reset(self):
        counter = OperationCounter()
        counter.record("x", 3)
        counter.reset()
        assert counter.get("x") == 0


class TestNoiseGrowth:
    def test_budget_shrinks_monotonically(
        self, encryptor, decryptor, encoder, evaluator, relin_keys
    ):
        ct = encryptor.encrypt(encoder.encode(2))
        b0 = decryptor.invariant_noise_budget(ct)
        ct = evaluator.multiply_plain(ct, encoder.encode(9))
        b1 = decryptor.invariant_noise_budget(ct)
        ct = evaluator.relinearize(evaluator.square(ct), relin_keys)
        b2 = decryptor.invariant_noise_budget(ct)
        assert b0 >= b1 >= b2
        assert b2 > 0  # still decryptable at this depth
