"""Encryption/decryption round-trips, noise budgets, and key handling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyMismatchError, NoiseBudgetExhausted, ParameterError
from repro.he import (
    Context,
    Decryptor,
    Encryptor,
    KeyGenerator,
    Plaintext,
    ScalarEncoder,
    small_parameter_options,
)


class TestRoundTrip:
    def test_scalar(self, encoder, encryptor, decryptor):
        ct = encryptor.encrypt(encoder.encode(1234))
        assert encoder.decode(decryptor.decrypt(ct)) == 1234

    def test_negative(self, encoder, encryptor, decryptor):
        ct = encryptor.encrypt(encoder.encode(-999))
        assert encoder.decode(decryptor.decrypt(ct)) == -999

    def test_zero(self, encoder, encryptor, decryptor):
        ct = encryptor.encrypt(encoder.encode(0))
        assert encoder.decode(decryptor.decrypt(ct)) == 0

    def test_batched_matrix(self, encoder, encryptor, decryptor, rng):
        values = rng.integers(-1000, 1000, size=(4, 6))
        ct = encryptor.encrypt(encoder.encode(values))
        assert np.array_equal(encoder.decode(decryptor.decrypt(ct)), values)

    def test_encrypt_zero_helper(self, encryptor, decryptor, encoder):
        ct = encryptor.encrypt_zero(3)
        assert np.array_equal(encoder.decode(decryptor.decrypt(ct)), np.zeros(3))

    def test_full_polynomial_plaintext(self, context, encryptor, decryptor, rng):
        coeffs = rng.integers(0, context.plain_modulus, size=context.poly_degree)
        plain = Plaintext(context, coeffs)
        ct = encryptor.encrypt(plain)
        assert np.array_equal(decryptor.decrypt(ct).coeffs, plain.coeffs)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=-32768, max_value=32768))
    def test_roundtrip_property(self, value):
        params = small_parameter_options()[256]
        context = Context(params)
        rng = np.random.default_rng(abs(value) + 1)
        keys = KeyGenerator(context, rng).generate()
        encoder = ScalarEncoder(context)
        ct = Encryptor(context, keys.public, rng).encrypt(encoder.encode(value))
        assert encoder.decode(Decryptor(context, keys.secret).decrypt(ct)) == value


class TestSymmetric:
    def test_roundtrip(self, sym_encryptor, decryptor, encoder):
        ct = sym_encryptor.encrypt(encoder.encode(77))
        assert encoder.decode(decryptor.decrypt(ct)) == 77

    def test_less_noise_than_public(self, encryptor, sym_encryptor, decryptor, encoder):
        plain = encoder.encode(42)
        pk_budget = decryptor.invariant_noise_budget(encryptor.encrypt(plain))
        sk_budget = decryptor.invariant_noise_budget(sym_encryptor.encrypt(plain))
        assert sk_budget >= pk_budget

    def test_randomized(self, sym_encryptor, encoder):
        a = sym_encryptor.encrypt(encoder.encode(1))
        b = sym_encryptor.encrypt(encoder.encode(1))
        assert not np.array_equal(a.data, b.data)


class TestNoiseBudget:
    def test_fresh_budget_positive(self, encryptor, decryptor, encoder):
        ct = encryptor.encrypt(encoder.encode(5))
        assert decryptor.invariant_noise_budget(ct) > 10

    def test_budget_of_garbage_is_zero(self, context, decryptor, encryptor, encoder, rng):
        ct = encryptor.encrypt(encoder.encode(5))
        # Stomp the ciphertext body with uniform junk: noise budget collapses.
        ct.data[..., 0, :, :] = context.ring.sample_uniform(rng)
        # A uniform body leaves at most a sliver of budget (max residue is
        # within a hair of q/2 almost surely).
        assert decryptor.invariant_noise_budget(ct) < 1.0

    def test_check_noise_raises_on_garbage(self, context, decryptor, encryptor, encoder):
        ct = encryptor.encrypt(encoder.encode(5))
        # Stomp the body with uniform junk: residues become uniform, so the
        # measured budget collapses below the statistical threshold.
        rng = np.random.default_rng(99)
        ct.data[..., 0, :, :] = context.ring.sample_uniform(rng)
        with pytest.raises(NoiseBudgetExhausted):
            decryptor.decrypt(ct, check_noise=True)

    def test_decrypt_without_check_succeeds_on_fresh(self, encryptor, decryptor, encoder):
        ct = encryptor.encrypt(encoder.encode(5))
        decryptor.decrypt(ct, check_noise=True)  # must not raise


class TestRandomization:
    def test_same_plaintext_different_ciphertexts(self, encryptor, encoder):
        a = encryptor.encrypt(encoder.encode(1))
        b = encryptor.encrypt(encoder.encode(1))
        assert not np.array_equal(a.data, b.data)

    def test_batch_elements_independently_randomized(self, encryptor, encoder):
        ct = encryptor.encrypt(encoder.encode(np.array([1, 1])))
        assert not np.array_equal(ct.data[0], ct.data[1])


class TestKeyAndContextSafety:
    def test_wrong_secret_key_garbles(self, context, encryptor, encoder, rng):
        other = KeyGenerator(context, rng).generate()
        wrong = Decryptor(context, other.secret)
        ct = encryptor.encrypt(encoder.encode(1234))
        assert wrong.invariant_noise_budget(ct) < 1.0

    def test_cross_context_rejected(self, encryptor, encoder):
        other_params = small_parameter_options()[512]
        other = Context(other_params)
        keys = KeyGenerator(other, np.random.default_rng(0)).generate()
        with pytest.raises(KeyMismatchError):
            Decryptor(other, keys.secret).decrypt(
                encryptor.encrypt(encoder.encode(1))
            )

    def test_ciphertext_shape_validation(self, context):
        from repro.he import Ciphertext

        with pytest.raises(ParameterError):
            Ciphertext(context, np.zeros((2, 3, 7), dtype=np.int64))


class TestDomainsAndViews:
    def test_ntt_coeff_roundtrip(self, encryptor, decryptor, encoder):
        ct = encryptor.encrypt(encoder.encode(31))
        back = ct.to_coeff().to_ntt()
        assert encoder.decode(decryptor.decrypt(back)) == 31

    def test_reshape_and_index(self, encryptor, decryptor, encoder, rng):
        values = rng.integers(-50, 50, size=12)
        ct = encryptor.encrypt(encoder.encode(values)).reshape(3, 4)
        assert ct.batch_shape == (3, 4)
        row = ct[1]
        assert np.array_equal(
            encoder.decode(decryptor.decrypt(row)), values.reshape(3, 4)[1]
        )

    def test_copy_is_deep(self, encryptor, encoder):
        ct = encryptor.encrypt(encoder.encode(9))
        dup = ct.copy()
        dup.data[...] = 0
        assert ct.data.any()

    def test_byte_size_positive(self, encryptor, encoder):
        ct = encryptor.encrypt(encoder.encode(9))
        assert ct.byte_size() == ct.data.nbytes > 0
