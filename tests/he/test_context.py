"""Context and value-type behaviours not covered by the crypto tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KeyMismatchError, ParameterError
from repro.he import Ciphertext, Context, Plaintext, small_parameter_options


class TestContext:
    def test_properties_mirror_params(self, context, params):
        assert context.poly_degree == params.poly_degree
        assert context.plain_modulus == params.plain_modulus
        assert context.coeff_modulus == params.coeff_modulus

    def test_check_same_accepts_self(self, context):
        context.check_same(context)

    def test_check_same_accepts_equal_params(self, context, params):
        context.check_same(Context(params))

    def test_check_same_rejects_different(self, context):
        other = Context(small_parameter_options()[512])
        with pytest.raises(KeyMismatchError):
            context.check_same(other)


class TestPlaintextType:
    def test_rejects_wrong_degree(self, context):
        with pytest.raises(ParameterError):
            Plaintext(context, np.zeros(context.poly_degree // 2, dtype=np.int64))

    def test_batch_shape(self, context):
        plain = Plaintext(context, np.zeros((3, 4, context.poly_degree), dtype=np.int64))
        assert plain.batch_shape == (3, 4)

    def test_signed_coeffs_centered_range(self, context, rng):
        coeffs = rng.integers(0, context.plain_modulus, size=context.poly_degree)
        signed = Plaintext(context, coeffs).signed_coeffs()
        t = context.plain_modulus
        assert signed.min() >= -(t // 2)
        assert signed.max() <= t // 2


class TestCiphertextType:
    def test_rejects_low_rank(self, context):
        with pytest.raises(ParameterError):
            Ciphertext(context, np.zeros((2, context.poly_degree), dtype=np.int64))

    def test_rejects_wrong_ring_shape(self, context):
        with pytest.raises(ParameterError):
            Ciphertext(
                context,
                np.zeros((2, context.ring.k + 1, context.poly_degree), dtype=np.int64),
            )

    def test_size_and_batch(self, encryptor, encoder, rng):
        ct = encryptor.encrypt(encoder.encode(rng.integers(0, 9, size=(2, 3))))
        assert ct.size == 2
        assert ct.batch_shape == (2, 3)
        assert ct.batch_count == 6

    def test_scalar_index_rejected(self, encryptor, encoder):
        ct = encryptor.encrypt(encoder.encode(7))
        with pytest.raises(IndexError):
            ct[0]

    def test_to_ntt_idempotent(self, encryptor, encoder):
        ct = encryptor.encrypt(encoder.encode(7))
        assert ct.to_ntt() is ct  # already NTT-resident

    def test_to_coeff_roundtrip_values(self, encryptor, encoder, decryptor):
        ct = encryptor.encrypt(encoder.encode(19))
        coeff = ct.to_coeff()
        assert coeff.to_coeff() is coeff
        assert encoder.decode(decryptor.decrypt(coeff)) == 19
