"""Noise-estimator sanity: predictions must bound the measured budgets."""

from __future__ import annotations

import pytest

from repro.he import NoiseEstimator


@pytest.fixture(scope="module")
def estimator(params):
    return NoiseEstimator(params)


class TestFreshBudget:
    def test_positive(self, estimator):
        assert estimator.fresh_budget() > 0

    def test_is_lower_bound_on_measured(self, estimator, encryptor, encoder, decryptor):
        ct = encryptor.encrypt(encoder.encode(1))
        measured = decryptor.invariant_noise_budget(ct)
        assert estimator.fresh_budget() <= measured


class TestOperationCosts:
    def test_multiply_cost_dominates_plain(self, estimator):
        assert estimator.multiply_cost() > estimator.plain_multiply_cost(100.0)

    def test_add_cost_logarithmic(self, estimator):
        assert estimator.add_cost(1) == 0
        assert estimator.add_cost(1024) == pytest.approx(10.0)

    def test_relinearize_cost_nonnegative(self, estimator):
        assert estimator.relinearize_cost() >= 0

    def test_multiply_estimate_bounds_measurement(
        self, estimator, encryptor, encoder, decryptor, evaluator
    ):
        ct = encryptor.encrypt(encoder.encode(100))
        fresh = decryptor.invariant_noise_budget(ct)
        squared = evaluator.square(ct)
        measured_cost = fresh - decryptor.invariant_noise_budget(squared)
        assert measured_cost <= estimator.multiply_cost() + 2.0


class TestCircuitPlanning:
    def test_budget_after_monotone_in_depth(self, estimator):
        assert estimator.budget_after(multiplies=1) > estimator.budget_after(multiplies=2)

    def test_supports_shallow_circuit(self, estimator):
        assert estimator.supports_circuit(plain_multiplies=1, plain_norm=16.0, additions=25)

    def test_rejects_absurd_depth(self, estimator):
        assert not estimator.supports_circuit(multiplies=50)
