"""Property-based tests: FV must be a homomorphism on random circuits.

A random arithmetic circuit (adds, plain-multiplies, scalar multiplies,
negations, one optional square) is evaluated both over the integers and
homomorphically; the results must agree exactly whenever the integer result
fits the plaintext space -- the defining property everything else in this
repository builds on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he import (
    Context,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    ScalarEncoder,
    small_parameter_options,
)

# Shared deployment for all property runs (session-level state is fine:
# every operation is pure with respect to the keys).
_PARAMS = small_parameter_options()[256]
_CONTEXT = Context(_PARAMS)
_RNG = np.random.default_rng(99)
_KEYS = KeyGenerator(_CONTEXT, _RNG).generate()
_RELIN = KeyGenerator(_CONTEXT, _RNG).relin_keys(_KEYS.secret)
_ENCODER = ScalarEncoder(_CONTEXT)
_ENCRYPTOR = Encryptor(_CONTEXT, _KEYS.public, _RNG)
_DECRYPTOR = Decryptor(_CONTEXT, _KEYS.secret)
_EVALUATOR = Evaluator(_CONTEXT)

_LIMIT = _PARAMS.plain_modulus // 2

operations = st.lists(
    st.sampled_from(["add", "sub", "neg", "plain_mul", "scalar_mul"]),
    min_size=0,
    max_size=6,
)
small = st.integers(min_value=-40, max_value=40)
tiny = st.integers(min_value=-5, max_value=5)


def _apply(op, ct, value, operand):
    """Apply one circuit op homomorphically and over the integers."""
    if op == "add":
        return (
            _EVALUATOR.add(ct, _ENCRYPTOR.encrypt(_ENCODER.encode(operand))),
            value + operand,
        )
    if op == "sub":
        return (
            _EVALUATOR.sub(ct, _ENCRYPTOR.encrypt(_ENCODER.encode(operand))),
            value - operand,
        )
    if op == "neg":
        return _EVALUATOR.negate(ct), -value
    if op == "plain_mul":
        return (
            _EVALUATOR.multiply_plain(ct, _ENCODER.encode(operand)),
            value * operand,
        )
    if op == "scalar_mul":
        return _EVALUATOR.multiply_scalar(ct, operand), value * operand
    raise AssertionError(op)


class TestCircuitHomomorphism:
    @settings(max_examples=40, deadline=None)
    @given(start=small, ops=operations, operands=st.lists(tiny, min_size=6, max_size=6))
    def test_linear_circuits(self, start, ops, operands):
        ct = _ENCRYPTOR.encrypt(_ENCODER.encode(start))
        value = start
        for op, operand in zip(ops, operands):
            if op in ("plain_mul", "scalar_mul") and abs(value * operand) > _LIMIT:
                return  # circuit would overflow the plaintext space
            if op in ("add", "sub") and abs(value) + abs(operand) > _LIMIT:
                return
            ct, value = _apply(op, ct, value, operand)
        assert _ENCODER.decode(_DECRYPTOR.decrypt(ct)) == value

    @settings(max_examples=15, deadline=None)
    @given(a=st.integers(min_value=-100, max_value=100), b=tiny, c=tiny)
    def test_affine_then_square(self, a, b, c):
        """(a * b + c)^2 with relinearization, vs integer arithmetic."""
        inner = a * b + c
        if inner * inner > _LIMIT:
            return
        ct = _ENCRYPTOR.encrypt(_ENCODER.encode(a))
        ct = _EVALUATOR.multiply_plain(ct, _ENCODER.encode(b))
        ct = _EVALUATOR.add_plain(ct, _ENCODER.encode(c))
        ct = _EVALUATOR.relinearize(_EVALUATOR.square(ct), _RELIN)
        assert _ENCODER.decode(_DECRYPTOR.decrypt(ct)) == inner * inner

    @settings(max_examples=20, deadline=None)
    @given(values=st.lists(small, min_size=2, max_size=12))
    def test_batched_dot_product(self, values):
        weights = list(range(1, len(values) + 1))
        expected = sum(v * w for v, w in zip(values, weights))
        if abs(expected) > _LIMIT:
            return
        ct = _ENCRYPTOR.encrypt(_ENCODER.encode(np.array(values)))
        products = _EVALUATOR.multiply_plain(
            ct, _EVALUATOR.transform_plain(_ENCODER.encode(np.array(weights)))
        )
        total = _EVALUATOR.sum_batch(products, axis=0)
        assert int(_ENCODER.decode(_DECRYPTOR.decrypt(total))) == expected

    @settings(max_examples=20, deadline=None)
    @given(a=small, b=small)
    def test_add_commutes_with_encryption_order(self, a, b):
        ct_ab = _EVALUATOR.add(
            _ENCRYPTOR.encrypt(_ENCODER.encode(a)), _ENCRYPTOR.encrypt(_ENCODER.encode(b))
        )
        ct_ba = _EVALUATOR.add(
            _ENCRYPTOR.encrypt(_ENCODER.encode(b)), _ENCRYPTOR.encrypt(_ENCODER.encode(a))
        )
        assert _ENCODER.decode(_DECRYPTOR.decrypt(ct_ab)) == _ENCODER.decode(
            _DECRYPTOR.decrypt(ct_ba)
        )

    @settings(max_examples=10, deadline=None)
    @given(v=small)
    def test_refreshed_ciphertext_is_equivalent(self, v):
        """Decrypt/re-encrypt (the enclave's refresh) preserves the value and
        improves (or at least preserves) the noise budget."""
        from repro.he import SymmetricEncryptor

        sym = SymmetricEncryptor(_CONTEXT, _KEYS.secret, _RNG)
        ct = _EVALUATOR.multiply_plain(
            _ENCRYPTOR.encrypt(_ENCODER.encode(v)), _ENCODER.encode(3)
        )
        refreshed = sym.encrypt(_DECRYPTOR.decrypt(ct))
        assert _ENCODER.decode(_DECRYPTOR.decrypt(refreshed)) == int(
            _ENCODER.decode(_DECRYPTOR.decrypt(ct))
        )
        assert _DECRYPTOR.invariant_noise_budget(refreshed) >= (
            _DECRYPTOR.invariant_noise_budget(ct) - 1.0
        )


class TestQuantizedPipelineProperty:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_he_conv_matches_integer_conv(self, seed):
        """Random small conv instances: HE path == integer path, always."""
        from repro.core import encode_conv_weights, he_conv2d

        rng = np.random.default_rng(seed)
        x = rng.integers(-6, 7, size=(1, 1, 5, 5))
        w = rng.integers(-4, 5, size=(2, 1, 2, 2))
        b = rng.integers(-3, 4, size=2)
        from repro.nn.layers import conv2d_forward

        expected = conv2d_forward(x, w, None, 1) + b.reshape(1, 2, 1, 1)
        ct = _ENCRYPTOR.encrypt(_ENCODER.encode(x))
        weights = encode_conv_weights(_EVALUATOR, _ENCODER, w, b, 1)
        out = he_conv2d(_EVALUATOR, _ENCODER, ct, weights)
        assert np.array_equal(_ENCODER.decode(_DECRYPTOR.decrypt(out)), expected)
