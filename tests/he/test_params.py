"""Tests for encryption parameter validation and presets."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.he import modmath
from repro.he.params import (
    EncryptionParams,
    default_parameter_options,
    functional_parameters,
    paper_parameters,
    small_parameter_options,
)

GOOD_PRIMES = tuple(modmath.ntt_primes(28, 256, 2))


def make(**overrides):
    base = dict(
        poly_degree=256,
        coeff_primes=GOOD_PRIMES,
        plain_modulus=65537,
    )
    base.update(overrides)
    return EncryptionParams(**base)


class TestValidation:
    def test_valid_construction(self):
        params = make()
        assert params.coeff_modulus == GOOD_PRIMES[0] * GOOD_PRIMES[1]

    def test_rejects_non_power_of_two_degree(self):
        with pytest.raises(ParameterError):
            make(poly_degree=300)

    def test_rejects_tiny_degree(self):
        with pytest.raises(ParameterError):
            make(poly_degree=4)

    def test_rejects_composite_prime(self):
        with pytest.raises(ParameterError):
            make(coeff_primes=(GOOD_PRIMES[0], GOOD_PRIMES[1] + 2))

    def test_rejects_unfriendly_prime(self):
        with pytest.raises(ParameterError):
            make(coeff_primes=(1_000_003,))

    def test_rejects_duplicate_primes(self):
        with pytest.raises(ParameterError):
            make(coeff_primes=(GOOD_PRIMES[0], GOOD_PRIMES[0]))

    def test_rejects_empty_primes(self):
        with pytest.raises(ParameterError):
            make(coeff_primes=())

    def test_rejects_tiny_plain_modulus(self):
        with pytest.raises(ParameterError):
            make(plain_modulus=1)

    def test_rejects_plain_ge_coeff(self):
        with pytest.raises(ParameterError):
            make(plain_modulus=GOOD_PRIMES[0] * GOOD_PRIMES[1])

    def test_rejects_bad_stddev(self):
        with pytest.raises(ParameterError):
            make(noise_stddev=0.0)

    def test_rejects_bad_decomposition(self):
        with pytest.raises(ParameterError):
            make(decomposition_bits=40)


class TestDerivedQuantities:
    def test_delta(self):
        params = make(plain_modulus=16)
        assert params.delta == params.coeff_modulus // 16

    def test_decomposition_count_covers_q(self):
        params = make(decomposition_bits=16)
        w = params.decomposition_base
        assert w ** params.decomposition_count > params.coeff_modulus

    def test_supports_batching_true(self):
        assert make(plain_modulus=65537).supports_batching()  # 65537 ≡ 1 mod 512

    def test_supports_batching_false_for_composite(self):
        assert not make(plain_modulus=512 * 9 + 1 + 1).supports_batching()

    def test_describe_mentions_name(self):
        assert "custom" in make().describe()


class TestPresets:
    def test_paper_preset_matches_section_v(self):
        params = paper_parameters()
        assert params.poly_degree == 1024
        assert params.plain_modulus == 4  # the paper's quoted t
        # SEAL 2.1's ~48-bit default coefficient modulus for n=1024.
        assert 44 <= params.coeff_modulus.bit_length() <= 50

    def test_default_options_keyed_by_degree(self):
        options = default_parameter_options()
        for degree, preset in options.items():
            assert preset.poly_degree == degree

    def test_functional_presets_support_batching(self):
        options = default_parameter_options()
        assert options[2048].supports_batching()
        assert options[4096].supports_batching()

    def test_functional_parameters_picks_wide_enough_t(self):
        params = functional_parameters(plain_bits=18)
        assert params.plain_modulus.bit_length() >= 18

    def test_functional_parameters_impossible_request(self):
        with pytest.raises(ParameterError):
            functional_parameters(plain_bits=40)

    def test_small_presets_are_fast_but_valid(self):
        for preset in small_parameter_options().values():
            assert preset.poly_degree <= 512

    def test_security_estimate_monotone(self):
        options = default_parameter_options()
        # n=1024 with a 48-bit q is far past the 128-bit table entry (27 bits).
        assert options[1024].estimated_security_bits() < 128
        # n=4096 with ~120-bit q is within its 109-bit budget only if smaller;
        # either way the estimate must be a sane value.
        assert 0 <= options[4096].estimated_security_bits() <= 128
