"""Encoder round-trips and overflow detection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.he import (
    FractionalEncoder,
    IntegerEncoder,
    ScalarEncoder,
)


class TestScalarEncoder:
    def test_roundtrip(self, context):
        encoder = ScalarEncoder(context)
        for v in (0, 1, -1, 1000, -32768, 32768):
            assert encoder.decode(encoder.encode(v)) == v

    def test_array_roundtrip(self, context, rng):
        encoder = ScalarEncoder(context)
        values = rng.integers(-30000, 30000, size=(3, 4))
        assert np.array_equal(encoder.decode(encoder.encode(values)), values)

    def test_rejects_out_of_range(self, context):
        encoder = ScalarEncoder(context)
        with pytest.raises(EncodingError):
            encoder.encode(context.plain_modulus)

    def test_decode_rejects_polluted_plaintext(self, context):
        encoder = ScalarEncoder(context)
        plain = encoder.encode(5)
        plain.coeffs[..., 3] = 1
        with pytest.raises(EncodingError):
            encoder.decode(plain)

    @given(st.integers(min_value=-32768, max_value=32768))
    def test_roundtrip_property(self, context, v):
        encoder = ScalarEncoder(context)
        assert encoder.decode(encoder.encode(v)) == v


class TestIntegerEncoder:
    @pytest.mark.parametrize("base", [2, 3])
    def test_roundtrip(self, context, base):
        encoder = IntegerEncoder(context, base=base)
        for v in (0, 1, -1, 255, -255, 123456789, -987654321):
            assert encoder.decode(encoder.encode(v)) == v

    def test_rejects_bad_base(self, context):
        with pytest.raises(EncodingError):
            IntegerEncoder(context, base=10)

    def test_balanced_ternary_digits_are_small(self, context):
        encoder = IntegerEncoder(context, base=3)
        plain = encoder.encode(10**12)
        assert set(plain.signed_coeffs().tolist()) <= {-1, 0, 1}

    def test_values_beyond_t_survive(self, context):
        # The whole point of digit encoding: values >> t are representable.
        encoder = IntegerEncoder(context, base=3)
        big = context.plain_modulus * 1000 + 17
        assert encoder.decode(encoder.encode(big)) == big

    def test_overflow_detection(self, context):
        encoder = IntegerEncoder(context, base=3)
        plain = encoder.encode(7)
        t = context.plain_modulus
        plain.coeffs[0] = t // 2  # forged saturated digit
        with pytest.raises(EncodingError):
            encoder.decode(plain)

    @settings(max_examples=50)
    @given(st.integers(min_value=-(10**15), max_value=10**15), st.sampled_from([2, 3]))
    def test_roundtrip_property(self, context, v, base):
        encoder = IntegerEncoder(context, base=base)
        assert encoder.decode(encoder.encode(v)) == v

    def test_additive_structure(self, context):
        # encode(a) + encode(b) decodes to a + b while digits stay small.
        encoder = IntegerEncoder(context, base=3)
        a, b = 1234, 5678
        pa, pb = encoder.encode(a), encoder.encode(b)
        summed = type(pa)(context, (pa.coeffs + pb.coeffs) % context.plain_modulus)
        assert encoder.decode(summed) == a + b


class TestFractionalEncoder:
    def test_roundtrip_close(self, context):
        encoder = FractionalEncoder(context, integer_coeffs=32, fraction_coeffs=32)
        for v in (0.0, 1.0, -1.0, 3.14159, -2.71828, 1234.5678):
            assert encoder.decode(encoder.encode(v)) == pytest.approx(v, abs=1e-6)

    def test_rejects_oversized_layout(self, context):
        n = context.poly_degree
        with pytest.raises(EncodingError):
            FractionalEncoder(context, integer_coeffs=n, fraction_coeffs=1)

    def test_rejects_huge_integer_part(self, context):
        encoder = FractionalEncoder(context, integer_coeffs=4, fraction_coeffs=4)
        with pytest.raises(EncodingError):
            encoder.encode(3.0**10)

    @settings(max_examples=40)
    @given(st.floats(min_value=-1000, max_value=1000, allow_nan=False))
    def test_roundtrip_property(self, context, v):
        encoder = FractionalEncoder(context, integer_coeffs=32, fraction_coeffs=48)
        assert encoder.decode(encoder.encode(v)) == pytest.approx(v, abs=1e-4)


class TestEncodersThroughEncryption:
    def test_integer_encoder_homomorphic_add(
        self, context, encryptor, decryptor, evaluator
    ):
        encoder = IntegerEncoder(context, base=3)
        ct = evaluator.add(
            encryptor.encrypt(encoder.encode(1200)),
            encryptor.encrypt(encoder.encode(34)),
        )
        assert encoder.decode(decryptor.decrypt(ct)) == 1234

    def test_integer_encoder_homomorphic_multiply(
        self, context, encryptor, decryptor, evaluator
    ):
        encoder = IntegerEncoder(context, base=3)
        ct = evaluator.multiply(
            encryptor.encrypt(encoder.encode(56)), encryptor.encrypt(encoder.encode(-78))
        )
        assert encoder.decode(decryptor.decrypt(ct)) == -4368

    def test_fractional_encoder_homomorphic_add(
        self, context, encryptor, decryptor, evaluator
    ):
        encoder = FractionalEncoder(context, integer_coeffs=32, fraction_coeffs=32)
        ct = evaluator.add(
            encryptor.encrypt(encoder.encode(1.5)),
            encryptor.encrypt(encoder.encode(2.25)),
        )
        assert encoder.decode(decryptor.decrypt(ct)) == pytest.approx(3.75, abs=1e-6)
