"""Unit and property tests for the RNS polynomial context."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.he import modmath
from repro.he.polyring import PolyContext

N = 64
PRIMES = modmath.ntt_primes(28, N, 2)


@pytest.fixture(scope="module")
def ring():
    return PolyContext(N, PRIMES)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(7)


class TestConstruction:
    def test_q_is_product(self, ring):
        assert ring.q == PRIMES[0] * PRIMES[1]

    def test_rejects_duplicate_primes(self):
        with pytest.raises(ParameterError):
            PolyContext(N, [PRIMES[0], PRIMES[0]])

    def test_zeros_shape(self, ring):
        assert ring.zeros(3, 4).shape == (3, 4, 2, N)

    def test_from_int_coeffs_rejects_bad_degree(self, ring):
        with pytest.raises(ParameterError):
            ring.from_int_coeffs(np.zeros(N + 1, dtype=np.int64))


class TestBigintBridge:
    def test_roundtrip(self, ring, rng):
        values = np.array([int(v) for v in rng.integers(0, 1 << 50, size=N)], dtype=object)
        values %= ring.q
        back = ring.to_bigint(ring.from_int_coeffs(values))
        assert np.array_equal(back, values)

    def test_centered_range(self, ring, rng):
        a = ring.sample_uniform(rng)
        centered = ring.to_bigint_centered(a)
        assert all(-ring.q // 2 <= int(c) <= ring.q // 2 for c in centered)

    def test_from_scalar(self, ring):
        lifted = ring.to_bigint(ring.from_scalar(12345))
        assert lifted[0] == 12345
        assert not lifted[1:].any()

    def test_negative_scalar(self, ring):
        lifted = ring.to_bigint_centered(ring.from_scalar(-5))
        assert lifted[0] == -5


class TestRingOps:
    def test_add_sub_inverse(self, ring, rng):
        a = ring.sample_uniform(rng)
        b = ring.sample_uniform(rng)
        assert np.array_equal(ring.sub(ring.add(a, b), b), a)

    def test_neg(self, ring, rng):
        a = ring.sample_uniform(rng)
        zero = ring.add(a, ring.neg(a))
        assert not zero.any()

    def test_mul_scalar_matches_bigint(self, ring, rng):
        a = ring.sample_uniform(rng)
        scaled = ring.to_bigint(ring.mul_scalar(a, 12345))
        expected = (ring.to_bigint(a) * 12345) % ring.q
        assert np.array_equal(scaled, expected)

    def test_mul_commutative(self, ring, rng):
        a = ring.sample_uniform(rng)
        b = ring.sample_uniform(rng)
        assert np.array_equal(ring.mul(a, b), ring.mul(b, a))

    def test_mul_identity(self, ring, rng):
        a = ring.sample_uniform(rng)
        one = ring.from_scalar(1)
        assert np.array_equal(ring.mul(a, one), a)

    def test_mul_matches_exact_convolution(self, ring, rng):
        a = ring.sample_uniform(rng)
        b = ring.sample_uniform(rng)
        got = ring.to_bigint(ring.mul(a, b))
        exact = ring.convolve_exact(
            ring.to_bigint_centered(a), ring.to_bigint_centered(b)
        )
        assert np.array_equal(got, exact % ring.q)

    def test_ntt_roundtrip_batched(self, ring, rng):
        a = ring.sample_uniform(rng, 3, 2)
        assert np.array_equal(ring.intt(ring.ntt(a)), a)

    def test_ntt_is_ring_homomorphism(self, ring, rng):
        a = ring.sample_uniform(rng)
        b = ring.sample_uniform(rng)
        via_ntt = ring.intt(ring.pointwise_mul(ring.ntt(a), ring.ntt(b)))
        assert np.array_equal(via_ntt, ring.mul(a, b))

    def test_reduce_sum_matches_add_fold(self, ring, rng):
        batch = ring.sample_uniform(rng, 5, 3)
        folded = batch[0]
        for i in range(1, 5):
            folded = ring.add(folded, batch[i])
        assert np.array_equal(ring.reduce_sum(batch, axis=0), folded)

    def test_reduce_sum_inner_axis(self, ring, rng):
        batch = ring.sample_uniform(rng, 2, 4)
        out = ring.reduce_sum(batch, axis=1)
        assert out.shape == (2, ring.k, ring.n)
        assert np.array_equal(out[0], ring.reduce_sum(batch[0], axis=0))

    def test_reduce_sum_rejects_residue_axes(self, ring, rng):
        batch = ring.sample_uniform(rng, 3)
        for axis in (-1, -2, 1, 2):
            with pytest.raises(ParameterError):
                ring.reduce_sum(batch, axis=axis)


class TestSampling:
    def test_ternary_values(self, ring, rng):
        raw = ring.to_bigint_centered(ring.sample_ternary(rng, 10))
        assert set(int(v) for v in raw.ravel()) <= {-1, 0, 1}

    def test_noise_is_bounded(self, ring, rng):
        stddev = 3.2
        raw = ring.to_bigint_centered(ring.sample_noise(rng, stddev, 20))
        bound = int(6 * stddev)
        assert all(abs(int(v)) <= bound for v in raw.ravel())

    def test_uniform_in_range(self, ring, rng):
        a = ring.sample_uniform(rng, 5)
        for i, p in enumerate(ring.primes):
            assert (a[..., i, :] >= 0).all() and (a[..., i, :] < p).all()


class TestScaleAndRound:
    @settings(max_examples=30)
    @given(st.integers(min_value=-(10**9), max_value=10**9))
    def test_matches_true_rounding(self, value):
        ring = PolyContext(N, PRIMES)
        coeffs = np.zeros(N, dtype=object)
        coeffs[0] = value
        out = ring.to_bigint_centered(ring.scale_and_round(coeffs, 7, 13))
        # Nearest integer to value*7/13; ties are impossible for odd 13.
        scaled = value * 7
        expected = (2 * abs(scaled) + 13) // 26
        if scaled < 0:
            expected = -expected
        assert int(out[0]) == expected
