"""Unit and property tests for repro.he.modmath."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.he import modmath


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 65537, 786433):
            assert modmath.is_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 6, 9, 15, 91, 65536, 561, 41041):  # incl. Carmichael
            assert not modmath.is_prime(c)

    def test_negative(self):
        assert not modmath.is_prime(-7)

    def test_large_prime_and_neighbour(self):
        p = (1 << 31) - 1  # Mersenne prime
        assert modmath.is_prime(p)
        assert not modmath.is_prime(p - 1)

    @given(st.integers(min_value=2, max_value=10_000))
    def test_matches_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1))
        assert modmath.is_prime(n) == by_trial


class TestNttPrimes:
    def test_shape_and_congruence(self):
        primes = modmath.ntt_primes(30, 1024, 3)
        assert len(primes) == 3
        assert len(set(primes)) == 3
        for p in primes:
            assert modmath.is_prime(p)
            assert p < 1 << 30
            assert (p - 1) % 2048 == 0

    def test_rejects_non_power_of_two_degree(self):
        with pytest.raises(ParameterError):
            modmath.ntt_primes(30, 1000, 1)

    def test_rejects_impossible_request(self):
        with pytest.raises(ParameterError):
            modmath.ntt_primes(12, 1024, 5)  # primes below 2^12 with p≡1 mod 2048


class TestRoots:
    def test_primitive_root_generates_group(self):
        p = 257
        g = modmath.primitive_root(p)
        assert len({pow(g, k, p) for k in range(p - 1)}) == p - 1

    def test_primitive_root_rejects_composite(self):
        with pytest.raises(ParameterError):
            modmath.primitive_root(100)

    def test_root_of_unity_has_exact_order(self):
        p = modmath.ntt_primes(28, 256, 1)[0]
        w = modmath.root_of_unity(512, p)
        assert pow(w, 512, p) == 1
        assert pow(w, 256, p) != 1

    def test_root_of_unity_rejects_bad_order(self):
        with pytest.raises(ParameterError):
            modmath.root_of_unity(7, 257)  # 7 does not divide 256


class TestInvertMod:
    @given(st.integers(min_value=1, max_value=10**6))
    def test_inverse_property(self, a):
        p = 1_000_003
        if a % p == 0:
            return
        inv = modmath.invert_mod(a, p)
        assert a * inv % p == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ParameterError):
            modmath.invert_mod(6, 12)


class TestCrt:
    def test_known_value(self):
        assert modmath.crt_reconstruct([2, 3], [3, 5]) == 8

    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=3 * 5 * 7 * 11 - 1))
    def test_roundtrip(self, x):
        moduli = [3, 5, 7, 11]
        residues = [x % m for m in moduli]
        assert modmath.crt_reconstruct(residues, moduli) == x

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            modmath.crt_reconstruct([1], [3, 5])


class TestCentered:
    def test_boundaries(self):
        assert modmath.centered(0, 10) == 0
        assert modmath.centered(5, 10) == 5
        assert modmath.centered(6, 10) == -4
        assert modmath.centered(9, 10) == -1

    @given(st.integers(), st.integers(min_value=2, max_value=10**9))
    def test_range_and_congruence(self, v, m):
        c = modmath.centered(v, m)
        assert -m // 2 <= c <= m // 2
        assert (c - v) % m == 0


def test_product():
    assert modmath.product([]) == 1
    assert modmath.product([3, 5, 7]) == 105
