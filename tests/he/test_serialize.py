"""Serialization round-trips for key material and ciphertexts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.he import serialize as ser


class TestKeyRoundTrips:
    def test_secret_key(self, context, keypair, decryptor, encryptor, encoder):
        blob = ser.serialize_secret_key(keypair.secret)
        restored = ser.deserialize_secret_key(blob, context)
        assert np.array_equal(restored.s_ntt, keypair.secret.s_ntt)
        # A decryptor built from the restored key actually works.
        from repro.he import Decryptor

        ct = encryptor.encrypt(encoder.encode(77))
        assert encoder.decode(Decryptor(context, restored).decrypt(ct)) == 77

    def test_public_key(self, context, keypair, encoder, decryptor):
        blob = ser.serialize_public_key(keypair.public)
        restored = ser.deserialize_public_key(blob, context)
        from repro.he import Encryptor

        ct = Encryptor(context, restored, np.random.default_rng(5)).encrypt(
            encoder.encode(-12)
        )
        assert encoder.decode(decryptor.decrypt(ct)) == -12

    def test_relin_keys(self, context, relin_keys, encryptor, decryptor, encoder, evaluator):
        blob = ser.serialize_relin_keys(relin_keys)
        restored = ser.deserialize_relin_keys(blob, context)
        assert restored.decomposition_bits == relin_keys.decomposition_bits
        ct = evaluator.square(encryptor.encrypt(encoder.encode(9)))
        relined = evaluator.relinearize(ct, restored)
        assert encoder.decode(decryptor.decrypt(relined)) == 81


class TestCiphertextRoundTrip:
    def test_scalar(self, context, encryptor, decryptor, encoder):
        ct = encryptor.encrypt(encoder.encode(31))
        restored = ser.deserialize_ciphertext(ser.serialize_ciphertext(ct), context)
        assert restored.is_ntt == ct.is_ntt
        assert encoder.decode(decryptor.decrypt(restored)) == 31

    def test_batched_coeff_domain(self, context, encryptor, decryptor, encoder, rng):
        values = rng.integers(-9, 9, size=(2, 3))
        ct = encryptor.encrypt(encoder.encode(values)).to_coeff()
        restored = ser.deserialize_ciphertext(ser.serialize_ciphertext(ct), context)
        assert not restored.is_ntt
        assert np.array_equal(encoder.decode(decryptor.decrypt(restored)), values)


class TestZeroCopyPayload:
    """The arena's serialization dividend: contiguous int64 arrays go to
    the wire as buffer slices, never through ``ascontiguousarray``."""

    def test_contiguous_array_payload_is_a_memoryview(self, rng):
        arr = rng.integers(-(1 << 40), 1 << 40, size=(3, 4, 5)).astype(np.int64)
        payload = ser._array_payload(arr)
        assert isinstance(payload, memoryview)
        assert bytes(payload) == arr.tobytes()

    def test_non_contiguous_array_falls_back_to_copy(self, rng):
        arr = rng.integers(-100, 100, size=(4, 6)).astype(np.int64)
        transposed = arr.T
        assert not transposed.flags.c_contiguous
        payload = ser._array_payload(transposed)
        assert isinstance(payload, bytes)
        assert payload == np.ascontiguousarray(transposed).tobytes()

    def test_serialize_makes_no_copies_for_contiguous_data(
        self, context, encryptor, encoder, monkeypatch
    ):
        """Pinned no-copy regression: serializing a freshly-built ciphertext
        (contiguous int64 data) must not call ``ascontiguousarray`` at all,
        and the blob must equal the copying path's byte-for-byte."""
        ct = encryptor.encrypt(encoder.encode(55)).to_ntt()
        reference = ser.serialize_ciphertext(ct)
        calls = []
        real = np.ascontiguousarray

        def spy(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(ser.np, "ascontiguousarray", spy)
        blob = ser.serialize_ciphertext(ct)
        assert calls == []
        assert blob == reference

    def test_fortran_order_data_still_serializes_identically(self, rng):
        values = rng.integers(-50, 50, size=(3, 4)).astype(np.int64)
        fortran = np.asfortranarray(values)
        assert ser.serialize_int64_arrays([fortran]) == ser.serialize_int64_arrays(
            [np.ascontiguousarray(values)]
        )


class TestCiphertextBatch:
    def test_round_trip(self, context, encryptor, decryptor, encoder):
        cts = [encryptor.encrypt(encoder.encode(v)).to_ntt() for v in (3, -8, 21)]
        blob = ser.serialize_ciphertext_batch(cts)
        restored = ser.deserialize_ciphertext_batch(blob, context)
        assert len(restored) == 3
        for original, back, value in zip(cts, restored, (3, -8, 21)):
            assert back.is_ntt
            assert np.array_equal(back.data, original.data)
            assert encoder.decode(decryptor.decrypt(back)) == value

    def test_empty_batch_rejected(self):
        from repro.errors import SerializationError

        with pytest.raises(SerializationError):
            ser.serialize_ciphertext_batch([])

    def test_mixed_domains_rejected(self, context, encryptor, encoder):
        from repro.errors import SerializationError

        ct = encryptor.encrypt(encoder.encode(1))
        with pytest.raises(SerializationError):
            ser.serialize_ciphertext_batch([ct.to_ntt(), ct.to_coeff()])

    def test_batch_bytes_walk_the_headers_only(self, context, encryptor, encoder):
        """The batch blob is the per-ciphertext (ndim, shape, payload)
        frames under one header -- payload bytes appear verbatim."""
        cts = [encryptor.encrypt(encoder.encode(v)).to_ntt() for v in (7, 9)]
        blob = ser.serialize_ciphertext_batch(cts)
        for ct in cts:
            assert ct.data.tobytes() in blob


class TestFormatSafety:
    def test_bad_magic_rejected(self, context):
        with pytest.raises(ParameterError):
            ser.deserialize_secret_key(b"XXXX" + bytes(64), context)

    def test_kind_mismatch_rejected(self, context, keypair):
        blob = ser.serialize_secret_key(keypair.secret)
        with pytest.raises(ParameterError):
            ser.deserialize_public_key(blob, context)
