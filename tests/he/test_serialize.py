"""Serialization round-trips for key material and ciphertexts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.he import serialize as ser


class TestKeyRoundTrips:
    def test_secret_key(self, context, keypair, decryptor, encryptor, encoder):
        blob = ser.serialize_secret_key(keypair.secret)
        restored = ser.deserialize_secret_key(blob, context)
        assert np.array_equal(restored.s_ntt, keypair.secret.s_ntt)
        # A decryptor built from the restored key actually works.
        from repro.he import Decryptor

        ct = encryptor.encrypt(encoder.encode(77))
        assert encoder.decode(Decryptor(context, restored).decrypt(ct)) == 77

    def test_public_key(self, context, keypair, encoder, decryptor):
        blob = ser.serialize_public_key(keypair.public)
        restored = ser.deserialize_public_key(blob, context)
        from repro.he import Encryptor

        ct = Encryptor(context, restored, np.random.default_rng(5)).encrypt(
            encoder.encode(-12)
        )
        assert encoder.decode(decryptor.decrypt(ct)) == -12

    def test_relin_keys(self, context, relin_keys, encryptor, decryptor, encoder, evaluator):
        blob = ser.serialize_relin_keys(relin_keys)
        restored = ser.deserialize_relin_keys(blob, context)
        assert restored.decomposition_bits == relin_keys.decomposition_bits
        ct = evaluator.square(encryptor.encrypt(encoder.encode(9)))
        relined = evaluator.relinearize(ct, restored)
        assert encoder.decode(decryptor.decrypt(relined)) == 81


class TestCiphertextRoundTrip:
    def test_scalar(self, context, encryptor, decryptor, encoder):
        ct = encryptor.encrypt(encoder.encode(31))
        restored = ser.deserialize_ciphertext(ser.serialize_ciphertext(ct), context)
        assert restored.is_ntt == ct.is_ntt
        assert encoder.decode(decryptor.decrypt(restored)) == 31

    def test_batched_coeff_domain(self, context, encryptor, decryptor, encoder, rng):
        values = rng.integers(-9, 9, size=(2, 3))
        ct = encryptor.encrypt(encoder.encode(values)).to_coeff()
        restored = ser.deserialize_ciphertext(ser.serialize_ciphertext(ct), context)
        assert not restored.is_ntt
        assert np.array_equal(encoder.decode(decryptor.decrypt(restored)), values)


class TestFormatSafety:
    def test_bad_magic_rejected(self, context):
        with pytest.raises(ParameterError):
            ser.deserialize_secret_key(b"XXXX" + bytes(64), context)

    def test_kind_mismatch_rejected(self, context, keypair):
        blob = ser.serialize_secret_key(keypair.secret)
        with pytest.raises(ParameterError):
            ser.deserialize_public_key(blob, context)
