"""The shared-memory worker pool: byte-identity, config knobs, fallback.

The determinism contract (DESIGN.md §15): the pool's assembled output is
byte-identical to the in-process unit executor run serially over the same
arena, for every worker count and both split axes (batch rows when B > 1,
conv output rows / FC classes for the slot-packed B == 1 flush).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParallelError, PipelineError, ServeError
from repro.he import parallel
from repro.he.arena import Arena
from repro.he.parallel import WorkerPool, _execute_unit, _unit_ranges
from repro.serve import ServiceTimeModel

PRIMES = [1032193, 1030151]


@pytest.fixture(autouse=True)
def pristine_parallel_state():
    """Every test starts and ends at the in-process default, pool down."""
    parallel.configure(None)
    parallel.shutdown()
    yield
    parallel.configure(None)
    parallel.shutdown()


@pytest.fixture(scope="module")
def pool3():
    pool = WorkerPool(3, capacity_words=1 << 16)
    yield pool
    pool.close()


def conv_case(rng, b):
    """A small fused-conv case: data ``(B, C, H, W, size, k, n)`` plus the
    flattened tap matrix ``(F, C*k*k)``."""
    c, h, w, k, s = 2, 6, 6, 3, 2
    oh = ow = (h - k) // s + 1
    data = rng.integers(0, 1 << 20, size=(b, c, h, w, 2, len(PRIMES), 4), dtype=np.int64)
    wtaps = rng.integers(0, 1 << 16, size=(3, c * k * k), dtype=np.int64)
    return data, wtaps, dict(k=k, s=s, oh=oh, ow=ow, primes=PRIMES, chunk=5)


def dense_case(rng, b):
    fd = rng.integers(0, 1 << 20, size=(b, 7, 2, len(PRIMES), 4), dtype=np.int64)
    wmat = rng.integers(0, 1 << 16, size=(5, 7), dtype=np.int64)
    return fd, wmat


def run_serial(kind, data, weights, out_shape, axis, length, common):
    """The authoritative reference: the identical unit executor over a
    private arena, one unit spanning the whole split axis."""
    arena = Arena(1 << 16, shared=False)
    in_view = arena.place(data)
    w_view = arena.place(weights)
    out_view = arena.alloc(out_shape)
    task = {
        "kind": kind,
        "in_off": in_view.offset,
        "in_shape": in_view.shape,
        "w_off": w_view.offset,
        "w_shape": w_view.shape,
        "out_off": out_view.offset,
        "out_shape": out_view.shape,
        "axis": axis,
        "rows": (0, length),
        "primes": tuple(common.get("primes", PRIMES)),
        **{k: v for k, v in common.items() if k != "primes"},
    }
    _execute_unit(task, arena.buffer)
    return out_view.array.copy()


class TestUnitRanges:
    def test_covers_range_contiguously(self):
        for length in (1, 2, 5, 16, 33):
            for units in (1, 2, 4, 7, 40):
                ranges = _unit_ranges(length, units)
                assert ranges[0][0] == 0 and ranges[-1][1] == length
                for (_, a1), (b0, _) in zip(ranges, ranges[1:]):
                    assert a1 == b0
                assert len(ranges) == min(length, units)

    def test_deterministic(self):
        assert _unit_ranges(10, 3) == _unit_ranges(10, 3)


class TestPoolByteIdentity:
    @pytest.mark.parametrize("b", [1, 4])
    def test_conv_matches_serial(self, rng, pool3, b):
        data, wtaps, common = conv_case(rng, b)
        oh, ow = common["oh"], common["ow"]
        out_shape = (b, wtaps.shape[0], oh, ow, *data.shape[-3:])
        axis, length = ("batch", b) if b > 1 else ("rows", oh)
        expected = run_serial("conv", data, wtaps, out_shape, axis, length, common)
        pooled = pool3.run_conv(data, wtaps, **common)
        assert pooled is not None
        assert pooled.dtype == np.int64
        assert np.array_equal(pooled, expected)
        assert pooled.tobytes() == expected.tobytes()

    @pytest.mark.parametrize("b", [1, 4])
    def test_dense_matches_serial(self, rng, pool3, b):
        fd, wmat = dense_case(rng, b)
        out_shape = (b, wmat.shape[0], *fd.shape[2:])
        axis, length = ("batch", b) if b > 1 else ("classes", wmat.shape[0])
        expected = run_serial(
            "dense", fd, wmat, out_shape, axis, length, {"primes": PRIMES}
        )
        pooled = pool3.run_dense(fd, wmat, primes=PRIMES)
        assert pooled is not None
        assert pooled.tobytes() == expected.tobytes()

    def test_repeated_runs_are_stable(self, rng, pool3):
        data, wtaps, common = conv_case(rng, 3)
        first = pool3.run_conv(data, wtaps, **common)
        second = pool3.run_conv(data, wtaps, **common)
        assert first.tobytes() == second.tobytes()

    def test_counters_advance(self, rng, pool3):
        before = pool3.dispatched_units
        pool3.run_dense(*dense_case(rng, 4), primes=PRIMES)
        assert pool3.dispatched_units > before

    def test_nothing_to_split_returns_none(self, rng, pool3):
        fd = rng.integers(0, 10, size=(1, 1, 2, len(PRIMES), 4), dtype=np.int64)
        wmat = rng.integers(0, 10, size=(1, 1), dtype=np.int64)
        assert pool3.run_dense(fd, wmat, primes=PRIMES) is None

    def test_pool_rejects_single_worker(self):
        with pytest.raises(ParallelError):
            WorkerPool(1)


class TestConfiguration:
    def test_default_workers_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert parallel.default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert parallel.default_workers() == 4
        assert parallel.active_workers() == 4
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert parallel.default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "garbage")
        assert parallel.default_workers() == 1

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        previous = parallel.configure(2)
        assert parallel.active_workers() == 2
        parallel.configure(previous)
        assert parallel.active_workers() == 4

    def test_configure_rejects_zero(self):
        with pytest.raises(ParallelError):
            parallel.configure(0)

    def test_use_restores_previous(self):
        parallel.configure(3)
        with parallel.use(2):
            assert parallel.active_workers() == 2
        assert parallel.active_workers() == 3

    def test_no_pool_below_two_workers(self):
        parallel.configure(1)
        assert parallel.active_pool() is None

    def test_dispatch_falls_back_in_process(self, rng):
        parallel.configure(1)
        assert parallel.dispatch_dense(*dense_case(rng, 4), primes=PRIMES) is None

    def test_dispatch_uses_pool_when_configured(self, rng):
        fd, wmat = dense_case(rng, 4)
        out_shape = (4, wmat.shape[0], *fd.shape[2:])
        expected = run_serial(
            "dense", fd, wmat, out_shape, "batch", 4, {"primes": PRIMES}
        )
        with parallel.use(2):
            pooled = parallel.dispatch_dense(fd, wmat, primes=PRIMES)
            assert pooled is not None
            assert pooled.tobytes() == expected.tobytes()

    def test_width_change_rebuilds_pool(self):
        with parallel.use(2):
            first = parallel.active_pool()
            assert first.workers == 2
            with parallel.use(3):
                second = parallel.active_pool()
                assert second is not first
                assert second.workers == 3


class TestStageBatch:
    def test_single_array_passes_through(self, rng):
        arr = rng.integers(0, 10, size=(1, 3), dtype=np.int64)
        assert parallel.stage_batch([arr]) is arr

    def test_matches_concatenate(self, rng):
        parts = [
            rng.integers(0, 1 << 30, size=(n, 2, 3), dtype=np.int64)
            for n in (1, 2, 1)
        ]
        staged = parallel.stage_batch(parts)
        assert np.array_equal(staged, np.concatenate(parts, axis=0))
        # The staging arena is reused: the next flush overwrites the view.
        again = parallel.stage_batch(parts)
        assert np.array_equal(again, np.concatenate(parts, axis=0))


class TestPipelineSpecWiring:
    def test_spec_rejects_zero_workers(self):
        from repro.core.pipeline import PipelineSpec

        with pytest.raises(PipelineError):
            PipelineSpec(scheme="hybrid", workers=0)

    def test_apply_workers_configures_process(self):
        from repro.core.pipeline import PipelineSpec

        PipelineSpec(scheme="hybrid", workers=2).apply_workers()
        assert parallel.active_workers() == 2

    def test_none_workers_inherits(self):
        from repro.core.pipeline import PipelineSpec

        parallel.configure(3)
        PipelineSpec(scheme="hybrid").apply_workers()
        assert parallel.active_workers() == 3


class TestServiceTimeModelWorkers:
    def test_single_worker_is_exact_legacy_formula(self):
        model = ServiceTimeModel(base_s=4e-3, per_image_s=5e-4)
        assert model.flush_s(16) == 4e-3 + 5e-4 * 16

    def test_amdahl_split(self):
        model = ServiceTimeModel(
            base_s=4e-3, per_image_s=5e-4, workers=4, dispatch_s=1e-4
        )
        assert model.flush_s(16) == pytest.approx(4e-3 + 5e-4 * 16 / 4 + 3e-4)

    def test_more_workers_never_slower_at_scale(self):
        kwargs = dict(base_s=4e-3, per_image_s=5e-4, dispatch_s=1.5e-4)
        times = [
            ServiceTimeModel(workers=w, **kwargs).flush_s(16) for w in (1, 2, 4)
        ]
        assert times[0] > times[1] > times[2]

    def test_validation(self):
        with pytest.raises(ServeError):
            ServiceTimeModel(workers=0)
        with pytest.raises(ServeError):
            ServiceTimeModel(dispatch_s=-1.0)
