"""Property and regression tests for the fused hot-path kernel layer.

Everything the fused profile changes must be *bit-identical* to the
reference kernels: the stacked NTT against per-prime :class:`NttPlan`, the
lazy conditional-subtract arithmetic against full ``%``, the Garner int64
CRT lift against the object-dtype sum, the probe-based constant decrypt
against full decrypt + decode, and the fused multiply-reduce against the
composed primitives.  The overflow-bound regression pins the deferred
reduction's safety margin at the largest supported configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EncodingError, ParameterError
from repro.he import kernels, modmath
from repro.he.context import Context
from repro.he.decryptor import Decryptor, decrypt_scalar_values
from repro.he.encoders import ScalarEncoder
from repro.he.encryptor import Encryptor, SymmetricEncryptor
from repro.he.evaluator import Evaluator
from repro.he.keys import KeyGenerator
from repro.he.ntt import NttPlan, StackedNttPlan
from repro.he.params import small_parameter_options
from repro.he.polyring import PolyContext

N = 64
PRIMES = modmath.ntt_primes(28, N, 2)


@pytest.fixture(scope="module")
def ring():
    return PolyContext(N, PRIMES)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(42)


@pytest.fixture()
def fused():
    prev = kernels.configure(kernels.FUSED)
    yield
    kernels.configure(prev)


@pytest.fixture()
def reference():
    prev = kernels.configure(kernels.REFERENCE)
    yield
    kernels.configure(prev)


class TestKernelProfile:
    def test_default_is_fused(self):
        assert kernels.FUSED.mode_name == "fused"
        assert kernels.REFERENCE.mode_name == "reference"

    def test_configure_returns_previous(self):
        prev = kernels.configure(kernels.REFERENCE)
        try:
            assert kernels.active() is kernels.REFERENCE
        finally:
            kernels.configure(prev)
        assert kernels.active() is prev

    def test_use_context_manager_restores(self):
        before = kernels.active()
        with kernels.use(kernels.REFERENCE):
            assert not kernels.active().stacked_ntt
        assert kernels.active() is before

    def test_custom_profile_name(self):
        mixed = kernels.KernelProfile(stacked_ntt=False)
        assert mixed.mode_name == "custom"


class TestStackedNttEquivalence:
    """Stacked (k, n) transforms == per-prime NttPlan, both domains."""

    @pytest.mark.parametrize("batch", [(), (1,), (5,), (3, 4), (0, 3)])
    def test_forward_matches_per_prime(self, ring, rng, batch):
        x = ring.sample_uniform(rng, *batch)
        stacked = ring.stacked.forward(x)
        expected = np.empty_like(x)
        for i, plan in enumerate(ring.plans):
            expected[..., i, :] = plan.forward(x[..., i, :])
        assert np.array_equal(stacked, expected)

    @pytest.mark.parametrize("batch", [(), (1,), (5,), (3, 4), (0, 3)])
    def test_inverse_matches_per_prime(self, ring, rng, batch):
        x = ring.sample_uniform(rng, *batch)
        stacked = ring.stacked.inverse(x)
        expected = np.empty_like(x)
        for i, plan in enumerate(ring.plans):
            expected[..., i, :] = plan.inverse(x[..., i, :])
        assert np.array_equal(stacked, expected)

    def test_roundtrip(self, ring, rng):
        x = ring.sample_uniform(rng, 7)
        assert np.array_equal(ring.stacked.inverse(ring.stacked.forward(x)), x)

    def test_ring_dispatch_matches_both_modes(self, ring, rng):
        x = ring.sample_uniform(rng, 3)
        with kernels.use(kernels.FUSED):
            fast = ring.ntt(x)
            fast_inv = ring.intt(fast)
        with kernels.use(kernels.REFERENCE):
            slow = ring.ntt(x)
            slow_inv = ring.intt(slow)
        assert np.array_equal(fast, slow)
        assert np.array_equal(fast_inv, slow_inv)

    def test_inverse_coeff_weights_match_full_intt(self, ring, rng):
        """Probe weights compute single coefficients of the inverse NTT."""
        x = ring.sample_uniform(rng, 4)
        full = ring.intt(x)
        for index in (0, 1, ring.n // 2, ring.n - 1):
            w = ring.stacked.inverse_coeff_weights(index)  # (k, n)
            prod = x * w
            for i, p in enumerate(ring.primes):
                prod[..., i, :] %= int(p)
            coeff = np.add.reduce(prod, axis=-1) % ring.primes
            assert np.array_equal(coeff, full[..., index])


class TestOverflowBounds:
    """Regression-pin the deferred-reduction safety analysis."""

    def test_largest_supported_config(self):
        """31-bit primes at n=8192: the stacked plan's multiply-safe bound
        must still admit at least one full butterfly stage (>= 2^32 lanes)."""
        n = 8192
        primes = modmath.ntt_primes(31, n, 3)
        plan = StackedNttPlan(n, np.array(primes, dtype=np.int64))
        p_max = max(primes)
        assert plan._mult_safe == ((1 << 63) - 1) // (p_max - 1)
        assert plan._mult_safe >= 1 << 32

    def test_reduce_sum_rejects_overflowing_axis(self, ring):
        terms = ring.max_sum_terms + 1
        fake = np.lib.stride_tricks.as_strided(
            np.zeros((1, ring.k, ring.n), dtype=np.int64),
            shape=(terms, ring.k, ring.n),
            strides=(0, ring.n * 8, 8),
        )
        with pytest.raises(ParameterError, match="deferred reduction overflow"):
            ring.reduce_sum(fake, axis=0)

    def test_pointwise_mul_sum_rejects_overflowing_axis(self, ring):
        terms = ring.max_sum_terms + 1
        fake = np.lib.stride_tricks.as_strided(
            np.zeros((1, ring.k, ring.n), dtype=np.int64),
            shape=(terms, ring.k, ring.n),
            strides=(0, ring.n * 8, 8),
        )
        with pytest.raises(ParameterError, match="deferred reduction overflow"):
            ring.pointwise_mul_sum(fake, fake, axis=0)

    def test_max_sum_terms_large_enough_for_layers(self, ring):
        # Any realistic conv/dense tap count is tiny next to the bound.
        assert ring.max_sum_terms >= 1 << 32


class TestLazyArithmetic:
    """Conditional-subtract add/sub and scalarized products == full ``%``."""

    def test_add_matches_reference(self, ring, rng):
        a = ring.sample_uniform(rng, 6)
        b = ring.sample_uniform(rng, 6)
        with kernels.use(kernels.FUSED):
            fast = ring.add(a, b)
        with kernels.use(kernels.REFERENCE):
            slow = ring.add(a, b)
        assert np.array_equal(fast, slow)
        assert fast.max() < ring.primes.max()

    def test_sub_matches_reference(self, ring, rng):
        a = ring.sample_uniform(rng, 6)
        b = ring.sample_uniform(rng, 6)
        with kernels.use(kernels.FUSED):
            fast = ring.sub(a, b)
        with kernels.use(kernels.REFERENCE):
            slow = ring.sub(a, b)
        assert np.array_equal(fast, slow)
        assert fast.min() >= 0

    def test_pointwise_mul_matches_reference(self, ring, rng):
        a = ring.sample_uniform(rng, 6)
        b = ring.sample_uniform(rng, 6)
        with kernels.use(kernels.FUSED):
            fast = ring.pointwise_mul(a, b)
        with kernels.use(kernels.REFERENCE):
            slow = ring.pointwise_mul(a, b)
        assert np.array_equal(fast, slow)

    def test_from_signed_small_matches_reference(self, ring, rng):
        raw = rng.integers(-1000, 1000, size=(5, ring.n))
        with kernels.use(kernels.FUSED):
            fast = ring.from_signed_small(raw)
        with kernels.use(kernels.REFERENCE):
            slow = ring.from_signed_small(raw)
        assert np.array_equal(fast, slow)

    def test_reduce_sum_matches_folded_add(self, ring, rng):
        stack = ring.sample_uniform(rng, 500)
        folded = stack[0]
        for i in range(1, stack.shape[0]):
            folded = ring.add(folded, stack[i])
        assert np.array_equal(ring.reduce_sum(stack, axis=0), folded)


class TestScalarCache:
    def test_mul_scalar_uses_cached_residues(self, ring, rng):
        ring._scalar_cache.clear()
        a = ring.sample_uniform(rng, 3)
        first = ring.mul_scalar(a, 12345)
        assert 12345 in ring._scalar_cache
        cached = ring.scalar_residues(12345)
        assert cached is ring.scalar_residues(12345)
        assert not cached.flags.writeable
        assert np.array_equal(first, ring.mul_scalar(a, 12345))

    def test_mul_scalar_matches_reference(self, ring, rng):
        a = ring.sample_uniform(rng, 3)
        with kernels.use(kernels.FUSED):
            fast = ring.mul_scalar(a, -77)
        with kernels.use(kernels.REFERENCE):
            slow = ring.mul_scalar(a, -77)
        assert np.array_equal(fast, slow)


class TestPointwiseMulSum:
    def test_matches_composed_primitives(self, ring, rng):
        a = ring.sample_uniform(rng, 4, 9)
        b = ring.sample_uniform(rng, 9)
        fused_out = ring.pointwise_mul_sum(a, b, axis=1)
        composed = ring.reduce_sum(ring.pointwise_mul(a, b), axis=1)
        assert np.array_equal(fused_out, composed)

    def test_chunked_path_matches(self, ring, rng, monkeypatch):
        import repro.he.polyring as polyring_mod

        a = ring.sample_uniform(rng, 3, 17)
        b = ring.sample_uniform(rng, 17)
        expected = ring.pointwise_mul_sum(a, b, axis=1)
        monkeypatch.setattr(polyring_mod, "_MUL_SUM_CHUNK_ELEMS", 1)
        chunked = ring.pointwise_mul_sum(a, b, axis=1)
        assert np.array_equal(chunked, expected)

    def test_rejects_residue_axes(self, ring, rng):
        a = ring.sample_uniform(rng, 3)
        with pytest.raises(ParameterError, match="batch axis"):
            ring.pointwise_mul_sum(a, a, axis=-1)


class TestGarnerLift:
    def test_matches_bigint_centered(self, ring, rng):
        a = ring.sample_uniform(rng, 8)
        fast = ring.to_int64_centered(a)
        slow = ring.to_bigint_centered(a)
        assert np.array_equal(fast.astype(object), slow)

    def test_rejects_wide_modulus(self):
        n = 64
        primes = modmath.ntt_primes(31, n, 3)  # 93-bit q
        wide = PolyContext(n, primes)
        assert not wide.q_fits_int64
        with pytest.raises(ParameterError, match="int64 CRT lift"):
            wide.to_int64_centered(wide.zeros(1))


class TestFastDecrypt:
    @pytest.fixture(scope="class")
    def deployment(self):
        params = small_parameter_options()[256]
        context = Context(params)
        keys = KeyGenerator(context, np.random.default_rng(3)).generate()
        return {
            "context": context,
            "encoder": ScalarEncoder(context),
            "encryptor": Encryptor(context, keys.public, np.random.default_rng(5)),
            "decryptor": Decryptor(context, keys.secret),
        }

    def test_decrypt_constants_matches_decode(self, deployment):
        enc = deployment["encoder"]
        values = np.arange(-12, 12).reshape(4, 6)
        ct = deployment["encryptor"].encrypt(enc.encode(values))
        fast = deployment["decryptor"].decrypt_constants(ct)
        slow = enc.decode(deployment["decryptor"].decrypt(ct))
        assert np.array_equal(fast, slow)
        assert np.array_equal(fast, values)

    def test_decrypt_scalar_values_dispatches_both_modes(self, deployment):
        enc = deployment["encoder"]
        values = np.array([7, -3, 11])
        ct = deployment["encryptor"].encrypt(enc.encode(values))
        with kernels.use(kernels.FUSED):
            fast = decrypt_scalar_values(deployment["decryptor"], enc, ct)
        with kernels.use(kernels.REFERENCE):
            slow = decrypt_scalar_values(deployment["decryptor"], enc, ct)
        assert np.array_equal(fast, slow)
        assert np.array_equal(fast, values)

    def test_decrypt_constants_rejects_non_scalar_plaintext(self, deployment):
        context = deployment["context"]
        coeffs = np.zeros((context.poly_degree,), dtype=np.int64)
        coeffs[0], coeffs[1] = 5, 9  # non-constant polynomial
        from repro.he.context import Plaintext

        ct = deployment["encryptor"].encrypt(Plaintext(context, coeffs))
        with pytest.raises(EncodingError, match="non-constant"):
            deployment["decryptor"].decrypt_constants(ct)

    def test_noise_budget_matches_reference(self, deployment):
        enc = deployment["encoder"]
        ct = deployment["encryptor"].encrypt(enc.encode(np.arange(5)))
        with kernels.use(kernels.FUSED):
            fast = deployment["decryptor"].invariant_noise_budget(ct)
        with kernels.use(kernels.REFERENCE):
            slow = deployment["decryptor"].invariant_noise_budget(ct)
        assert fast == slow


class TestEncryptorBitIdentity:
    """Merged-NTT encryption must emit bit-identical ciphertexts."""

    @pytest.fixture(scope="class")
    def setup(self):
        params = small_parameter_options()[256]
        context = Context(params)
        keys = KeyGenerator(context, np.random.default_rng(11)).generate()
        return context, keys

    def test_public_encrypt_matches(self, setup):
        context, keys = setup
        enc = ScalarEncoder(context)
        plain = enc.encode(np.arange(10))
        with kernels.use(kernels.FUSED):
            fast = Encryptor(context, keys.public, np.random.default_rng(9)).encrypt(plain)
        with kernels.use(kernels.REFERENCE):
            slow = Encryptor(context, keys.public, np.random.default_rng(9)).encrypt(plain)
        assert np.array_equal(fast.data, slow.data)

    def test_symmetric_encrypt_matches(self, setup):
        context, keys = setup
        enc = ScalarEncoder(context)
        plain = enc.encode(np.arange(6))
        with kernels.use(kernels.FUSED):
            fast = SymmetricEncryptor(
                context, keys.secret, np.random.default_rng(9)
            ).encrypt(plain)
        with kernels.use(kernels.REFERENCE):
            slow = SymmetricEncryptor(
                context, keys.secret, np.random.default_rng(9)
            ).encrypt(plain)
        assert np.array_equal(fast.data, slow.data)


class TestEvaluatorAddMany:
    @pytest.fixture(scope="class")
    def setup(self):
        params = small_parameter_options()[256]
        context = Context(params)
        keys = KeyGenerator(context, np.random.default_rng(17)).generate()
        encryptor = Encryptor(context, keys.public, np.random.default_rng(19))
        encoder = ScalarEncoder(context)
        decryptor = Decryptor(context, keys.secret)
        return context, encoder, encryptor, decryptor

    def test_uniform_operands_sum_matches_reference(self, setup):
        context, encoder, encryptor, decryptor = setup
        cts = [encryptor.encrypt(encoder.encode(np.full((3,), v))) for v in (1, 2, 3, 4)]
        with kernels.use(kernels.FUSED):
            fast = Evaluator(context).add_many(cts)
        with kernels.use(kernels.REFERENCE):
            slow = Evaluator(context).add_many(cts)
        assert np.array_equal(fast.data, slow.data)
        assert np.array_equal(encoder.decode(decryptor.decrypt(fast)), np.full((3,), 10))
