"""SIMD batching: slot packing and slot-wise homomorphic semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.he import (
    BatchEncoder,
    Context,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    small_parameter_options,
)
from repro.he.params import EncryptionParams


@pytest.fixture(scope="module")
def batch_encoder(context):
    return BatchEncoder(context)


class TestSlotCodec:
    def test_slot_count(self, batch_encoder, context):
        assert batch_encoder.slot_count == context.poly_degree

    def test_full_roundtrip(self, batch_encoder, context, rng):
        t = context.plain_modulus
        values = rng.integers(-(t // 2), t // 2, size=batch_encoder.slot_count)
        assert np.array_equal(batch_encoder.decode(batch_encoder.encode(values)), values)

    def test_partial_vector_zero_pads(self, batch_encoder):
        decoded = batch_encoder.decode(batch_encoder.encode(np.array([1, 2, 3])))
        assert decoded[:3].tolist() == [1, 2, 3]
        assert not decoded[3:].any()

    def test_rejects_oversized_vector(self, batch_encoder):
        with pytest.raises(EncodingError):
            batch_encoder.encode(np.zeros(batch_encoder.slot_count + 1))

    def test_rejects_non_batching_modulus(self):
        params = small_parameter_options()[256]
        bad = EncryptionParams(
            poly_degree=params.poly_degree,
            coeff_primes=params.coeff_primes,
            plain_modulus=257,  # prime but 256 !≡ 0 mod 512
        )
        with pytest.raises(EncodingError):
            BatchEncoder(Context(bad))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=64))
    def test_roundtrip_property(self, context, values):
        encoder = BatchEncoder(context)
        decoded = encoder.decode(encoder.encode(np.array(values)))
        assert decoded[: len(values)].tolist() == values


class TestSlotwiseHomomorphism:
    def test_add_is_slotwise(
        self, batch_encoder, encryptor, decryptor, evaluator, rng
    ):
        a = rng.integers(-100, 100, size=16)
        b = rng.integers(-100, 100, size=16)
        ct = evaluator.add(
            encryptor.encrypt(batch_encoder.encode(a)),
            encryptor.encrypt(batch_encoder.encode(b)),
        )
        decoded = batch_encoder.decode(decryptor.decrypt(ct))
        assert np.array_equal(decoded[:16], a + b)

    def test_multiply_is_slotwise(
        self, batch_encoder, encryptor, decryptor, evaluator, rng
    ):
        a = rng.integers(-50, 50, size=16)
        b = rng.integers(-50, 50, size=16)
        ct = evaluator.multiply(
            encryptor.encrypt(batch_encoder.encode(a)),
            encryptor.encrypt(batch_encoder.encode(b)),
        )
        decoded = batch_encoder.decode(decryptor.decrypt(ct))
        assert np.array_equal(decoded[:16], a * b)

    def test_plain_multiply_is_slotwise(
        self, batch_encoder, encryptor, decryptor, evaluator, rng
    ):
        a = rng.integers(-50, 50, size=16)
        w = rng.integers(-50, 50, size=16)
        ct = evaluator.multiply_plain(
            encryptor.encrypt(batch_encoder.encode(a)), batch_encoder.encode(w)
        )
        decoded = batch_encoder.decode(decryptor.decrypt(ct))
        assert np.array_equal(decoded[:16], a * w)

    def test_throughput_amplification(self, batch_encoder, encryptor, decryptor, evaluator):
        """One ciphertext carries slot_count independent values -- the paper's
        Section VIII claim that SIMD multiplies throughput by n."""
        n = batch_encoder.slot_count
        values = np.arange(n) % 97 - 48
        ct = encryptor.encrypt(batch_encoder.encode(values))
        doubled = evaluator.add(ct, ct)
        assert np.array_equal(
            batch_encoder.decode(decryptor.decrypt(doubled)), values * 2
        )
