"""Unit and property tests for the negacyclic NTT engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.he import modmath
from repro.he.ntt import NttPlan, bit_reverse_indices, negacyclic_convolve_exact

N = 64
PRIME = modmath.ntt_primes(28, N, 1)[0]


@pytest.fixture(scope="module")
def plan():
    return NttPlan(N, PRIME)


def naive_negacyclic(a, b, n, p):
    """Schoolbook negacyclic convolution used as the reference."""
    out = [0] * n
    for i, ai in enumerate(a):
        for j, bj in enumerate(b):
            k = i + j
            term = int(ai) * int(bj)
            if k < n:
                out[k] = (out[k] + term) % p
            else:
                out[k - n] = (out[k - n] - term) % p
    return np.array(out, dtype=np.int64)


class TestBitReverse:
    def test_length_8(self):
        assert bit_reverse_indices(8).tolist() == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_is_involution(self):
        rev = bit_reverse_indices(256)
        assert np.array_equal(rev[rev], np.arange(256))


class TestPlanValidation:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ParameterError):
            NttPlan(48, PRIME)

    def test_rejects_wide_prime(self):
        with pytest.raises(ParameterError):
            NttPlan(N, (1 << 31) + 11)

    def test_rejects_unfriendly_prime(self):
        with pytest.raises(ParameterError):
            NttPlan(N, 1_000_003)

    def test_rejects_wrong_length_input(self, plan):
        with pytest.raises(ParameterError):
            plan.forward(np.zeros(N // 2, dtype=np.int64))


class TestRoundTrip:
    def test_inverse_of_forward(self, plan):
        rng = np.random.default_rng(1)
        a = rng.integers(0, PRIME, size=N)
        assert np.array_equal(plan.inverse(plan.forward(a)), a)

    def test_batched_roundtrip(self, plan):
        rng = np.random.default_rng(2)
        a = rng.integers(0, PRIME, size=(3, 5, N))
        assert np.array_equal(plan.inverse(plan.forward(a)), a)

    def test_does_not_mutate_input(self, plan):
        a = np.arange(N, dtype=np.int64)
        original = a.copy()
        plan.forward(a)
        assert np.array_equal(a, original)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=PRIME - 1), min_size=N, max_size=N))
    def test_roundtrip_property(self, coeffs):
        plan = NttPlan(N, PRIME)
        a = np.array(coeffs, dtype=np.int64)
        assert np.array_equal(plan.inverse(plan.forward(a)), a)


class TestMultiply:
    def test_x_times_x(self, plan):
        x = np.zeros(N, dtype=np.int64)
        x[1] = 1
        result = plan.multiply(x, x)
        expected = np.zeros(N, dtype=np.int64)
        expected[2] = 1
        assert np.array_equal(result, expected)

    def test_negacyclic_wraparound_sign(self, plan):
        """x^(n-1) * x = x^n = -1 in the ring."""
        a = np.zeros(N, dtype=np.int64)
        a[N - 1] = 1
        x = np.zeros(N, dtype=np.int64)
        x[1] = 1
        result = plan.multiply(a, x)
        expected = np.zeros(N, dtype=np.int64)
        expected[0] = PRIME - 1
        assert np.array_equal(result, expected)

    def test_matches_schoolbook(self, plan):
        rng = np.random.default_rng(3)
        a = rng.integers(0, PRIME, size=N)
        b = rng.integers(0, PRIME, size=N)
        assert np.array_equal(plan.multiply(a, b), naive_negacyclic(a, b, N, PRIME))

    def test_linearity(self, plan):
        rng = np.random.default_rng(4)
        a, b, c = (rng.integers(0, PRIME, size=N) for _ in range(3))
        lhs = plan.multiply((a + b) % PRIME, c)
        rhs = (plan.multiply(a, c) + plan.multiply(b, c)) % PRIME
        assert np.array_equal(lhs, rhs)


class TestExactConvolve:
    def test_matches_schoolbook_bigint(self):
        rng = np.random.default_rng(5)
        bound = 1 << 40
        a = np.array([int(v) for v in rng.integers(-bound + 1, bound, size=N)], dtype=object)
        b = np.array([int(v) for v in rng.integers(-bound + 1, bound, size=N)], dtype=object)
        result = negacyclic_convolve_exact(a, b, N, bound)
        expected = np.zeros(N, dtype=object)
        for i in range(N):
            for j in range(N):
                term = int(a[i]) * int(b[j])
                if i + j < N:
                    expected[i + j] += term
                else:
                    expected[i + j - N] -= term
        assert np.array_equal(result, expected)

    def test_batched(self):
        rng = np.random.default_rng(6)
        bound = 1 << 20
        a = rng.integers(-bound + 1, bound, size=(2, N)).astype(object)
        b = rng.integers(-bound + 1, bound, size=(2, N)).astype(object)
        result = negacyclic_convolve_exact(a, b, N, bound)
        for lane in range(2):
            single = negacyclic_convolve_exact(a[lane], b[lane], N, bound)
            assert np.array_equal(result[lane], single)
