"""Seeded property tests for the hardened wire format.

The parser contract (serialize.py): any serialize -> deserialize round-trip
is exact, and *any* malformed payload -- truncated at an arbitrary point,
any single bit flipped, or a hostile hand-crafted header that passes the
CRC -- raises :class:`~repro.errors.SerializationError`.  Never garbage
objects, never a raw ``struct.error`` and never an allocation bomb.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro import faults
from repro.errors import ReproError, SerializationError
from repro.faults import FaultPlan, FaultRule
from repro.he.serialize import (
    deserialize_ciphertext,
    deserialize_int64_arrays,
    deserialize_public_key,
    deserialize_relin_keys,
    deserialize_secret_key,
    serialize_ciphertext,
    serialize_int64_arrays,
    serialize_public_key,
    serialize_relin_keys,
    serialize_secret_key,
)

FUZZ_SEED = 20210610  # the paper's conference date; any fixed seed works
TRIALS = 40


def forge(kind: int, count: int, extra: int, raw: bytes) -> bytes:
    """Hand-craft a payload with a *valid* CRC over hostile contents."""
    body = struct.pack("<BBI", kind, count, extra) + raw
    return b"RPRO" + struct.pack("<I", zlib.crc32(body)) + body


@pytest.fixture(scope="module")
def payloads(context, keypair, relin_keys, sym_encryptor, encoder):
    """One serialized payload per object kind, with its deserializer."""
    ct = sym_encryptor.encrypt(encoder.encode(np.arange(-3, 3, dtype=np.int64)))
    arrays = [np.arange(12, dtype=np.int64).reshape(3, 4), np.int64([7])]
    return {
        "secret_key": (
            serialize_secret_key(keypair.secret),
            lambda d: deserialize_secret_key(d, context),
        ),
        "public_key": (
            serialize_public_key(keypair.public),
            lambda d: deserialize_public_key(d, context),
        ),
        "relin_keys": (
            serialize_relin_keys(relin_keys),
            lambda d: deserialize_relin_keys(d, context),
        ),
        "ciphertext": (
            serialize_ciphertext(ct),
            lambda d: deserialize_ciphertext(d, context),
        ),
        "int64_arrays": (serialize_int64_arrays(arrays, extra=9), deserialize_int64_arrays),
    }


class TestRoundTrips:
    def test_every_kind_round_trips_exactly(
        self, context, keypair, relin_keys, sym_encryptor, encoder, decryptor
    ):
        sk = deserialize_secret_key(serialize_secret_key(keypair.secret), context)
        assert np.array_equal(sk.s_ntt, keypair.secret.s_ntt)
        pk = deserialize_public_key(serialize_public_key(keypair.public), context)
        assert np.array_equal(pk.p0_ntt, keypair.public.p0_ntt)
        assert np.array_equal(pk.p1_ntt, keypair.public.p1_ntt)
        rk = deserialize_relin_keys(serialize_relin_keys(relin_keys), context)
        assert rk.decomposition_bits == relin_keys.decomposition_bits
        values = np.arange(-3, 3, dtype=np.int64)
        ct = sym_encryptor.encrypt(encoder.encode(values))
        back = deserialize_ciphertext(serialize_ciphertext(ct), context)
        assert np.array_equal(
            encoder.decode(decryptor.decrypt(back)), values
        )

    def test_random_array_shapes_round_trip(self):
        rng = np.random.default_rng(FUZZ_SEED)
        for _ in range(TRIALS):
            # rank >= 1: _pack's ascontiguousarray promotes 0-d to 1-d, so
            # rank-0 is outside the format (and no payload ever uses it).
            ndim = int(rng.integers(1, 5))
            shape = tuple(int(d) for d in rng.integers(1, 5, size=ndim))
            arrays = [
                rng.integers(-(2**62), 2**62, size=shape, dtype=np.int64)
                for _ in range(int(rng.integers(1, 4)))
            ]
            extra = int(rng.integers(0, 2**32))
            back, back_extra = deserialize_int64_arrays(
                serialize_int64_arrays(arrays, extra=extra)
            )
            assert back_extra == extra
            assert len(back) == len(arrays)
            for a, b in zip(arrays, back):
                assert np.array_equal(a, b)


class TestSeededCorruption:
    def test_any_truncation_point_raises_typed(self, payloads):
        rng = np.random.default_rng(FUZZ_SEED)
        for name, (data, load) in payloads.items():
            cuts = rng.integers(0, len(data), size=TRIALS)
            for cut in cuts:
                with pytest.raises(SerializationError):
                    load(data[: int(cut)])

    def test_any_single_bitflip_raises_typed(self, payloads):
        """CRC32 detects every single-bit error, whether it lands in the
        magic, the CRC field itself, the header or the body."""
        rng = np.random.default_rng(FUZZ_SEED + 1)
        for name, (data, load) in payloads.items():
            for _ in range(TRIALS):
                position = int(rng.integers(0, len(data)))
                bit = int(rng.integers(0, 8))
                flipped = bytearray(data)
                flipped[position] ^= 1 << bit
                with pytest.raises(SerializationError):
                    load(bytes(flipped))

    def test_serialization_error_is_a_repro_error(self):
        assert issubclass(SerializationError, ReproError)


class TestHostileHeaders:
    """CRC-valid payloads whose *contents* lie: the parser must reject them
    with a typed error instead of allocating or crashing inside numpy."""

    def test_wrong_kind_rejected(self):
        data = forge(kind=2, count=0, extra=0, raw=b"")
        with pytest.raises(SerializationError, match="kind"):
            deserialize_int64_arrays(data)

    def test_implausible_rank_rejected(self):
        data = forge(kind=5, count=1, extra=0, raw=struct.pack("<B", 200))
        with pytest.raises(SerializationError, match="rank"):
            deserialize_int64_arrays(data)

    def test_negative_dimension_rejected(self):
        raw = struct.pack("<B", 1) + struct.pack("<q", -8)
        with pytest.raises(SerializationError, match="negative"):
            deserialize_int64_arrays(forge(kind=5, count=1, extra=0, raw=raw))

    def test_allocation_bomb_rejected_cheaply(self):
        """A claimed 2^60-element array must fail the bounds check, not
        attempt a petabyte allocation."""
        raw = struct.pack("<B", 1) + struct.pack("<q", 2**60)
        with pytest.raises(SerializationError, match="overruns"):
            deserialize_int64_arrays(forge(kind=5, count=1, extra=0, raw=raw))

    def test_body_overrun_rejected(self):
        raw = struct.pack("<B", 1) + struct.pack("<q", 4) + b"\x00" * 8  # claims 32
        with pytest.raises(SerializationError, match="overruns"):
            deserialize_int64_arrays(forge(kind=5, count=1, extra=0, raw=raw))

    def test_trailing_bytes_rejected(self):
        raw = struct.pack("<B", 0) + b"\x00" * 8 + b"junk"
        with pytest.raises(SerializationError, match="trailing"):
            deserialize_int64_arrays(forge(kind=5, count=1, extra=0, raw=raw))

    def test_count_without_bodies_rejected(self):
        data = forge(kind=5, count=3, extra=0, raw=b"")
        with pytest.raises(SerializationError):
            deserialize_int64_arrays(data)


class TestInjectedChannelFaults:
    """The he.serialize.deserialize fault site models corruption in the
    untrusted channel; the hardened parser is the recovery mechanism."""

    @pytest.fixture(autouse=True)
    def disarmed(self):
        faults.disarm()
        yield
        faults.disarm()

    @pytest.mark.parametrize("action", ["bitflip", "truncate"])
    def test_injected_corruption_is_caught_by_the_parser(self, action):
        data = serialize_int64_arrays([np.arange(6, dtype=np.int64)])
        plan = FaultPlan(
            5, rules=[FaultRule(site="he.serialize.deserialize", action=action)]
        )
        with faults.armed(plan):
            with pytest.raises(SerializationError):
                deserialize_int64_arrays(data)
            # Rule spent: the same bytes now parse fine.
            back, _ = deserialize_int64_arrays(data)
        assert np.array_equal(back[0], np.arange(6))
        assert plan.fires("he.serialize.deserialize") == 1

    def test_injected_error_rule_raises_directly(self):
        data = serialize_int64_arrays([np.arange(3, dtype=np.int64)])
        plan = FaultPlan(
            5,
            rules=[
                FaultRule(site="he.serialize.deserialize", error=SerializationError)
            ],
        )
        with faults.armed(plan):
            with pytest.raises(SerializationError, match="injected"):
                deserialize_int64_arrays(data)
