"""Property suite for the contiguous ciphertext arena (DESIGN.md §15).

Covers the three load-bearing contracts: alloc/free/compaction round-trips
preserve block contents, the view aliasing rules (headers survive
compaction, raw arrays captured earlier do not; freed views raise), and
serialize(view) == serialize(copy) at the byte level -- the zero-copy
serialization path must be indistinguishable on the wire.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ArenaError
from repro.he import serialize as ser
from repro.he.arena import Arena, stacked_view
from repro.he.context import Ciphertext


def fill(view, rng):
    """Stamp a view's block with reproducible values; returns a copy."""
    values = rng.integers(0, 1 << 40, size=view.shape, dtype=np.int64)
    np.copyto(view.array, values)
    return values


class TestAllocFree:
    def test_alloc_round_trip(self, rng):
        arena = Arena(1 << 10)
        views, expected = [], []
        for shape in [(4, 3), (2, 2, 5), (7,), ()]:
            view = arena.alloc(shape)
            views.append(view)
            expected.append(fill(view, rng))
        for view, values in zip(views, expected):
            assert view.shape == values.shape
            assert np.array_equal(view.array, values)
        assert arena.live_words == sum(v.words for v in views)

    def test_blocks_are_adjacent_in_allocation_order(self):
        arena = Arena(1 << 10)
        a = arena.alloc((3, 4))
        b = arena.alloc((5,))
        assert a.offset == 0
        assert b.offset == a.words == 12

    def test_place_copies_content(self, rng):
        arena = Arena(1 << 10)
        src = rng.integers(-100, 100, size=(3, 5), dtype=np.int64)
        view = arena.place(src)
        assert np.array_equal(view.array, src)
        src[0, 0] = 999  # place copies: later source mutation is invisible
        assert view.array[0, 0] != 999

    def test_free_then_access_raises(self):
        arena = Arena(64)
        view = arena.alloc((8,))
        arena.free(view)
        assert not view.live
        with pytest.raises(ArenaError):
            _ = view.array
        with pytest.raises(ArenaError):
            view.payload()

    def test_double_free_raises(self):
        arena = Arena(64)
        view = arena.alloc((8,))
        arena.free(view)
        with pytest.raises(ArenaError):
            arena.free(view)

    def test_foreign_view_free_raises(self):
        view = Arena(64).alloc((4,))
        with pytest.raises(ArenaError):
            Arena(64).free(view)

    def test_negative_shape_raises(self):
        with pytest.raises(ArenaError):
            Arena(64).alloc((2, -1))

    def test_exhaustion_raises_without_auto_grow(self):
        arena = Arena(16, auto_grow=False)
        arena.alloc((10,))
        with pytest.raises(ArenaError):
            arena.alloc((10,))

    def test_reset_rewinds_and_kills_views(self, rng):
        arena = Arena(64)
        view = arena.alloc((8,))
        fill(view, rng)
        arena.reset()
        assert arena.live_words == 0
        with pytest.raises(ArenaError):
            _ = view.array
        assert arena.alloc((8,)).offset == 0


class TestCompaction:
    def test_compact_preserves_survivors(self, rng):
        arena = Arena(1 << 10)
        keep1 = arena.alloc((6, 2))
        hole = arena.alloc((30,))
        keep2 = arena.alloc((4, 4))
        v1, v2 = fill(keep1, rng), fill(keep2, rng)
        arena.free(hole)
        reclaimed = arena.compact()
        assert reclaimed == 30
        assert keep1.offset == 0
        assert keep2.offset == keep1.words  # slid down over the hole
        assert np.array_equal(keep1.array, v1)
        assert np.array_equal(keep2.array, v2)
        assert arena.fragmentation_words == 0

    def test_raw_array_captured_before_compact_goes_stale(self, rng):
        """The aliasing rule: headers survive compaction, captured raw
        arrays do not -- they keep pointing at the old offsets."""
        arena = Arena(1 << 10)
        hole = arena.alloc((16,))
        view = arena.alloc((16,))
        values = fill(view, rng)
        stale = view.array  # captured before the slide
        arena.free(hole)
        arena.compact()
        assert np.array_equal(view.array, values)  # header re-derives
        # The stale alias still addresses offset 16, now past the cursor.
        assert not np.shares_memory(stale, view.array)

    def test_overlapping_slide_is_exact(self, rng):
        """A block sliding into a range that overlaps itself must copy."""
        arena = Arena(1 << 10)
        hole = arena.alloc((3,))
        big = arena.alloc((64,))
        values = fill(big, rng)
        arena.free(hole)
        arena.compact()
        assert big.offset == 0
        assert np.array_equal(big.array, values)

    def test_alloc_compacts_before_growing(self, rng):
        arena = Arena(32, auto_grow=False)
        hole = arena.alloc((20,))
        keep = arena.alloc((8,))
        values = fill(keep, rng)
        arena.free(hole)
        view = arena.alloc((20,))  # only fits after compaction
        assert arena.capacity_words == 32
        assert np.array_equal(keep.array, values)
        assert view.words == 20


class TestGrowth:
    def test_auto_grow_preserves_content(self, rng):
        arena = Arena(16)
        small = arena.alloc((8,))
        values = fill(small, rng)
        big = arena.alloc((100,))  # forces growth
        assert arena.capacity_words >= 108
        assert np.array_equal(small.array, values)
        assert big.words == 100

    def test_grow_invalidates_captured_raw_arrays(self, rng):
        arena = Arena(16)
        view = arena.alloc((8,))
        values = fill(view, rng)
        stale = view.array
        arena.grow(1 << 10)
        assert np.array_equal(view.array, values)
        assert not np.shares_memory(stale, view.array)


class TestConcat:
    def test_concat_matches_numpy(self, rng):
        arena = Arena(1 << 10)
        parts = [
            rng.integers(0, 1 << 30, size=(n, 3, 2), dtype=np.int64)
            for n in (1, 4, 2)
        ]
        view = arena.concat(parts)
        assert np.array_equal(view.array, np.concatenate(parts, axis=0))

    def test_concat_rejects_mismatched_tails(self, rng):
        arena = Arena(1 << 10)
        with pytest.raises(ArenaError):
            arena.concat([np.zeros((2, 3), np.int64), np.zeros((2, 4), np.int64)])

    def test_concat_rejects_other_axes_and_empty(self):
        arena = Arena(64)
        with pytest.raises(ArenaError):
            arena.concat([np.zeros((2, 2), np.int64)], axis=1)
        with pytest.raises(ArenaError):
            arena.concat([])


class TestSharedArena:
    def test_named_segment_attaches_with_same_content(self, rng):
        from multiprocessing import shared_memory

        arena = Arena(1 << 8, shared=True)
        try:
            view = arena.alloc((16,))
            values = fill(view, rng)
            assert arena.name is not None
            peer = shared_memory.SharedMemory(name=arena.name)
            try:
                mirrored = np.frombuffer(peer.buf, dtype=np.int64)[
                    view.offset : view.offset + view.words
                ].copy()
            finally:
                peer.close()
            assert np.array_equal(mirrored, values)
        finally:
            arena.close()

    def test_close_unlinks_segment(self):
        from multiprocessing import shared_memory

        arena = Arena(64, shared=True)
        name = arena.name
        arena.close()
        assert arena.name is None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_private_arena_has_no_name_and_close_is_noop(self):
        arena = Arena(64)
        assert arena.name is None
        arena.close()


class TestSerializeEquivalence:
    def test_view_and_copy_serialize_to_identical_bytes(
        self, context, encryptor, encoder
    ):
        """The wire must not know whether a ciphertext lives in the arena."""
        ct = encryptor.encrypt(encoder.encode(123)).to_ntt()
        arena = Arena(1 << 12)
        view = arena.place(ct.data)
        ct_view = Ciphertext(context, view.array, is_ntt=True)
        ct_copy = Ciphertext(context, np.ascontiguousarray(ct.data), is_ntt=True)
        assert ser.serialize_ciphertext(ct_view) == ser.serialize_ciphertext(ct_copy)

    def test_payload_is_the_buffer_slice(self, rng):
        arena = Arena(1 << 8)
        view = arena.alloc((4, 4))
        values = fill(view, rng)
        assert bytes(view.payload()) == values.tobytes()


class TestStackedView:
    def test_adjacent_rows_stack_without_copy(self, rng):
        base = rng.integers(0, 1 << 30, size=(5, 3, 2), dtype=np.int64)
        rows = [base[i] for i in range(5)]
        stacked = stacked_view(rows)
        assert stacked is not None
        assert np.array_equal(stacked, np.stack(rows))
        assert np.shares_memory(stacked, base)
        base[2, 0, 0] = -7  # a view: writes to the base show through
        assert stacked[2, 0, 0] == -7

    def test_strided_rows_stack(self, rng):
        base = rng.integers(0, 1 << 30, size=(8, 4), dtype=np.int64)
        rows = [base[i] for i in (1, 3, 5, 7)]  # constant step of 2 rows
        stacked = stacked_view(rows)
        assert stacked is not None
        assert np.array_equal(stacked, np.stack(rows))

    def test_irregular_spacing_returns_none(self, rng):
        base = rng.integers(0, 10, size=(8, 4), dtype=np.int64)
        assert stacked_view([base[0], base[1], base[4]]) is None

    def test_foreign_bases_return_none(self, rng):
        a = rng.integers(0, 10, size=(2, 4), dtype=np.int64)
        b = rng.integers(0, 10, size=(2, 4), dtype=np.int64)
        assert stacked_view([a[0], b[1]]) is None

    def test_shape_mismatch_and_short_lists_return_none(self, rng):
        base = rng.integers(0, 10, size=(4, 4), dtype=np.int64)
        assert stacked_view([base[0], base[1][:3]]) is None
        assert stacked_view([base[0]]) is None
        assert stacked_view([]) is None

    def test_non_int64_returns_none(self):
        base = np.zeros((3, 4), dtype=np.float64)
        assert stacked_view([base[0], base[1]]) is None

    def test_arena_sibling_blocks_stack(self, rng):
        arena = Arena(1 << 8)
        views = [arena.alloc((2, 3)) for _ in range(3)]
        expected = [fill(v, rng) for v in views]
        stacked = stacked_view([v.array for v in views])
        assert stacked is not None
        assert np.array_equal(stacked, np.stack(expected))
