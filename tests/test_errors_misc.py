"""Error hierarchy and small cross-cutting behaviours."""

from __future__ import annotations

import numpy as np
import pytest

from repro import errors


class TestErrorHierarchy:
    ALL_ERRORS = [
        errors.ParameterError,
        errors.EncodingError,
        errors.NoiseBudgetExhausted,
        errors.KeyMismatchError,
        errors.EnclaveError,
        errors.EnclaveMemoryError,
        errors.EnclaveNotInitialized,
        errors.AttestationError,
        errors.SealingError,
        errors.ModelError,
        errors.PipelineError,
    ]

    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_dual_inheritance_for_stdlib_catches(self):
        # Library users catching stdlib categories still see our errors.
        assert issubclass(errors.ParameterError, ValueError)
        assert issubclass(errors.NoiseBudgetExhausted, ArithmeticError)
        assert issubclass(errors.EnclaveMemoryError, MemoryError)
        assert issubclass(errors.EnclaveError, RuntimeError)

    def test_one_except_clause_catches_everything(self):
        caught = []
        for exc in self.ALL_ERRORS:
            try:
                raise exc("boom")
            except errors.ReproError as e:
                caught.append(e)
        assert len(caught) == len(self.ALL_ERRORS)


class TestPlaintextNormalization:
    def test_negative_coeffs_reduced_mod_t(self, context):
        from repro.he import Plaintext

        coeffs = np.zeros(context.poly_degree, dtype=np.int64)
        coeffs[0] = -1
        plain = Plaintext(context, coeffs)
        assert plain.coeffs[0] == context.plain_modulus - 1
        assert plain.signed_coeffs()[0] == -1

    def test_oversized_coeffs_wrapped(self, context):
        from repro.he import Plaintext

        coeffs = np.full(context.poly_degree, context.plain_modulus + 3, dtype=np.int64)
        plain = Plaintext(context, coeffs)
        assert (plain.coeffs == 3).all()

    def test_byte_size(self, context):
        from repro.he import Plaintext

        plain = Plaintext(context, np.zeros(context.poly_degree, dtype=np.int64))
        assert plain.byte_size() == context.poly_degree * 8


class TestEncodedWeightAccessors:
    def test_conv_weight_table(self, context):
        from repro.core import encode_conv_weights
        from repro.he import Evaluator, ScalarEncoder

        evaluator, encoder = Evaluator(context), ScalarEncoder(context)
        w = np.ones((3, 2, 4, 4), dtype=np.int64)
        table = encode_conv_weights(evaluator, encoder, w, np.zeros(3, dtype=np.int64), 2)
        assert table.out_channels == 3
        assert table.kernel_size == 4
        assert table.stride == 2

    def test_dense_weight_table(self, context):
        from repro.core import encode_dense_weights
        from repro.he import Evaluator, ScalarEncoder

        evaluator, encoder = Evaluator(context), ScalarEncoder(context)
        w = np.ones((6, 4), dtype=np.int64)
        table = encode_dense_weights(evaluator, encoder, w, np.zeros(4, dtype=np.int64))
        assert table.out_features == 4


class TestPackageSurface:
    def test_version_defined(self):
        import repro

        assert repro.__version__

    def test_public_api_importable(self):
        # Everything advertised in __all__ must resolve.
        import repro.core
        import repro.he
        import repro.nn
        import repro.sgx

        for module in (repro.he, repro.sgx, repro.nn, repro.core):
            for name in module.__all__:
                assert getattr(module, name) is not None, f"{module.__name__}.{name}"
