"""Table/series printers and the benchmark workload registry."""

from __future__ import annotations

import pytest

from repro.bench import (
    SCALES,
    current_scale,
    format_series,
    format_table,
    markdown_table,
)
from repro.bench.workloads import BenchScale
from repro.errors import ReproError


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["a", "1"], ["long-name", "22"]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title_included(self):
        assert format_table(["x"], [["1"]], title="Table I").startswith("Table I")

    def test_empty_rows_rejected(self):
        with pytest.raises(ReproError):
            format_table(["x"], [])

    def test_width_mismatch_rejected(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [["only-one"]])


class TestFormatSeries:
    def test_columns_per_series(self):
        text = format_series("k", [1, 2], {"t": [0.1, 0.2], "ops": [5.0, 6.0]})
        assert "0.1000" in text and "6.0000" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            format_series("k", [1, 2], {"t": [0.1]})

    def test_digits(self):
        text = format_series("k", [1], {"t": [0.123456]}, digits=2)
        assert "0.12" in text


class TestMarkdownTable:
    def test_structure(self):
        text = markdown_table(["a", "b"], [["1", "2"]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestScales:
    def test_registry_names_match_keys(self):
        for name, scale in SCALES.items():
            assert scale.name == name

    def test_paper_scale_is_table_vi(self):
        paper = SCALES["paper"]
        assert paper.image_size == 28
        assert paper.channels == 6
        assert paper.kernel_size == 5
        assert paper.batch_size == 10
        assert paper.poly_degree == 1024  # the paper's x^1024 + 1

    def test_conv_output(self):
        assert SCALES["paper"].conv_output == 24  # 28 - 5 + 1

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert current_scale().name == "tiny"

    def test_current_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_scale().name == "small"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ReproError):
            current_scale()

    def test_scales_ordered_by_cost(self):
        tiny, small, paper = SCALES["tiny"], SCALES["small"], SCALES["paper"]
        assert tiny.image_size <= small.image_size <= paper.image_size
        assert tiny.train_size <= small.train_size <= paper.train_size

    def test_benchscale_is_frozen(self):
        with pytest.raises(AttributeError):
            SCALES["tiny"].image_size = 99

    def test_custom_scale_construction(self):
        scale = BenchScale(
            name="x", poly_degree=256, image_size=8, channels=1, kernel_size=3,
            batch_size=1, repeats=2, train_size=50, epochs=1,
        )
        assert scale.conv_output == 6
