"""Benchmark statistics: paper-format summaries and measurement helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench import Summary, measure_repeated, measure_simulated, t_quantile_96
from repro.errors import ReproError
from repro.sgx.clock import SimClock

_T_96_NORMAL_FLOOR = 2.054


class TestTQuantile:
    def test_known_values(self):
        assert t_quantile_96(1) == pytest.approx(15.895)
        assert t_quantile_96(9) == pytest.approx(2.398)

    def test_interpolation_monotone(self):
        assert t_quantile_96(10) > t_quantile_96(11) > t_quantile_96(12)

    def test_large_df_approaches_normal(self):
        assert t_quantile_96(10_000) == pytest.approx(2.054, abs=1e-3)
        assert t_quantile_96(10_000_000) == pytest.approx(2.054, abs=1e-6)

    def test_no_drop_at_df_120_boundary(self):
        """Regression: df=121 used to jump to the normal limit (2.054),
        *below* the tabulated df=120 value (2.076)."""
        assert t_quantile_96(121) < t_quantile_96(120)
        assert t_quantile_96(121) > 2.054

    @given(st.integers(min_value=1, max_value=100_000))
    def test_monotone_decreasing_everywhere(self, df):
        assert t_quantile_96(df) >= t_quantile_96(df + 1) >= _T_96_NORMAL_FLOOR

    def test_rejects_zero_df(self):
        with pytest.raises(ReproError):
            t_quantile_96(0)


class TestSummary:
    def test_known_sample(self):
        s = Summary.of([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.count == 3
        half = t_quantile_96(2) * 1.0 / math.sqrt(3)
        assert s.ci_low == pytest.approx(2.0 - half)
        assert s.ci_high == pytest.approx(2.0 + half)

    def test_single_sample(self):
        s = Summary.of([5.0])
        assert s.mean == 5.0
        assert s.std == 0.0
        assert (s.ci_low, s.ci_high) == (5.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            Summary.of([])

    def test_row_formatting(self):
        row = Summary.of([0.001, 0.002, 0.003]).row(unit_scale=1e3)
        assert row[0] == "2.000"
        assert row[2].startswith("[") and row[2].endswith("]")

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_ci_contains_mean(self, samples):
        s = Summary.of(samples)
        assert s.ci_low <= s.mean <= s.ci_high

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=30))
    def test_std_nonnegative(self, samples):
        assert Summary.of(samples).std >= 0


class TestMeasurement:
    def test_measure_repeated_counts(self):
        calls = []
        samples = measure_repeated(lambda: calls.append(1), 5)
        assert len(samples) == 5
        assert len(calls) == 5
        assert all(t >= 0 for t in samples)

    def test_measure_repeated_rejects_zero(self):
        with pytest.raises(ReproError):
            measure_repeated(lambda: None, 0)

    def test_measure_simulated_includes_overhead(self):
        clock = SimClock()

        def op():
            clock.charge(0.5, "sgx")

        samples = measure_simulated(op, clock, 3)
        assert all(t >= 0.5 for t in samples)

    def test_measure_simulated_tracks_real_time(self):
        clock = SimClock()
        samples = measure_simulated(lambda: sum(range(100_000)), clock, 2)
        assert all(t > 0 for t in samples)

    def test_measure_simulated_no_double_count(self):
        """Overhead charged before the window must not leak into samples."""
        clock = SimClock()
        clock.charge(100.0, "earlier")
        samples = measure_simulated(lambda: None, clock, 2)
        assert all(t < 1.0 for t in samples)
