"""Bench gate tests: synthetic reports through the real CLI."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
GATE = REPO_ROOT / "tools" / "bench_gate.py"


def _hotpath_report(speedup=3.0, fused_s=0.2, bit_identical=True):
    return {
        "config": {"mode": "smoke"},
        "ntt": {"forward_speedup": 2.0, "inverse_speedup": 2.0},
        "fused": {"simulated_s": fused_s},
        "speedup": speedup,
        "bit_identical": {
            "logits": bit_identical,
            "encrypted_input": bit_identical,
            "op_tallies": bit_identical,
        },
    }


def _serving_report(speedup=2.0, mode="smoke"):
    return {
        "config": {"mode": mode},
        "packed": {"images_per_s": 40.0 * speedup, "simulated_s": 0.4 / speedup},
        "speedup": speedup,
        "predictions_match": True,
    }


def _slo_report(ratio=1.05, p99_bounded=True, shed_bounded=True):
    return {
        "config": {"mode": "smoke"},
        "continuous": {
            "images_per_s": 580.0 * ratio,
            "occupancy_mean": 0.8,
            "p99_queue_wait_s": 0.06,
        },
        "throughput_ratio": ratio,
        "slo": {
            "p99_bounded": p99_bounded,
            "shed_rate_bounded": shed_bounded,
            "all_tickets_resolved": True,
        },
        "bit_identical": {"logits": True},
    }


def _fleet_report(ratio_4x=3.5, bit_identical=True):
    return {
        "config": {"mode": "smoke"},
        "fleets": {
            "4": {"images_per_s": 900.0 * ratio_4x / 3.5, "p99_queue_wait_s": 0.05},
        },
        "scaling": {"ratio_2x": 1.9, "ratio_4x": ratio_4x},
        "invariants": {
            "bit_identical": bit_identical,
            "all_tickets_resolved": True,
            "failover_resolved": True,
            "failover_bit_identical": bit_identical,
        },
    }


def _parallel_report(ratio_4x=1.8, byte_identical=True):
    return {
        "config": {"mode": "smoke"},
        "runs": {
            "4": {"images_per_s": 2400.0 * ratio_4x / 1.8, "p99_queue_wait_s": 0.11},
        },
        "scaling": {"ratio_2x": 1.45, "ratio_4x": ratio_4x},
        "invariants": {
            "speedup_floor": ratio_4x >= 1.5,
            "byte_identical": byte_identical,
            "bit_identical": byte_identical,
            "all_tickets_resolved": True,
            "chaos_recovered": True,
            "chaos_byte_identical": byte_identical,
        },
    }


def _graph_report(speedup_safe=1.8, bit_identical=True):
    return {
        "config": {"mode": "smoke"},
        "hybrid": {
            "speedup_safe": speedup_safe,
            "speedup_aggressive": speedup_safe * 1.05,
            "safe_simulated_s": 0.17 / speedup_safe,
        },
        "cryptonets": {"speedup_safe": 1.0},
        "invariants": {
            "bit_identical": bit_identical,
            "speedup_floor": speedup_safe >= 1.3,
        },
    }


def _write_pair(
    directory: Path,
    hotpath: dict,
    serving: dict,
    slo: dict | None = None,
    fleet: dict | None = None,
    parallel: dict | None = None,
    graph: dict | None = None,
) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_hotpath.json").write_text(json.dumps(hotpath))
    (directory / "BENCH_serving.json").write_text(json.dumps(serving))
    (directory / "BENCH_slo.json").write_text(
        json.dumps(slo if slo is not None else _slo_report())
    )
    (directory / "BENCH_fleet.json").write_text(
        json.dumps(fleet if fleet is not None else _fleet_report())
    )
    (directory / "BENCH_parallel.json").write_text(
        json.dumps(parallel if parallel is not None else _parallel_report())
    )
    (directory / "BENCH_graph.json").write_text(
        json.dumps(graph if graph is not None else _graph_report())
    )


def _gate(baseline_dir: Path, current_dir: Path, *extra: str):
    return subprocess.run(
        [sys.executable, str(GATE), "--baseline-dir", str(baseline_dir),
         "--current-dir", str(current_dir), *extra],
        capture_output=True, text=True,
    )


class TestBenchGate:
    def test_identical_reports_pass(self, tmp_path):
        _write_pair(tmp_path / "base", _hotpath_report(), _serving_report())
        _write_pair(tmp_path / "cur", _hotpath_report(), _serving_report())
        proc = _gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all metrics within tolerance" in proc.stdout

    def test_drop_within_tolerance_passes(self, tmp_path):
        _write_pair(tmp_path / "base", _hotpath_report(speedup=3.0), _serving_report())
        _write_pair(tmp_path / "cur", _hotpath_report(speedup=2.5), _serving_report())
        assert _gate(tmp_path / "base", tmp_path / "cur").returncode == 0

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        _write_pair(tmp_path / "base", _hotpath_report(speedup=3.0), _serving_report())
        _write_pair(tmp_path / "cur", _hotpath_report(speedup=1.0), _serving_report())
        proc = _gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 1
        assert "REGRESSION DETECTED" in proc.stderr
        assert "FAIL speedup" in proc.stdout

    def test_tightened_baseline_fails_current(self, tmp_path):
        """The ISSUE's acceptance demo: tightening a checked-in baseline
        must flip the gate from pass to fail on the same current run."""
        _write_pair(tmp_path / "base", _hotpath_report(), _serving_report(speedup=2.0))
        _write_pair(tmp_path / "cur", _hotpath_report(), _serving_report(speedup=2.0))
        assert _gate(tmp_path / "base", tmp_path / "cur").returncode == 0
        _write_pair(
            tmp_path / "base", _hotpath_report(), _serving_report(speedup=20.0)
        )
        assert _gate(tmp_path / "base", tmp_path / "cur").returncode == 1

    def test_timing_blowup_fails(self, tmp_path):
        _write_pair(tmp_path / "base", _hotpath_report(fused_s=0.2), _serving_report())
        _write_pair(tmp_path / "cur", _hotpath_report(fused_s=2.0), _serving_report())
        proc = _gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 1
        assert "fused.simulated_s" in proc.stdout

    def test_invariant_violation_fails_regardless_of_tolerance(self, tmp_path):
        _write_pair(tmp_path / "base", _hotpath_report(), _serving_report())
        _write_pair(
            tmp_path / "cur", _hotpath_report(bit_identical=False), _serving_report()
        )
        proc = _gate(tmp_path / "base", tmp_path / "cur", "--tolerance", "0.99",
                     "--timing-tolerance", "99")
        assert proc.returncode == 1
        assert "violated" in proc.stdout

    def test_mode_mismatch_fails_with_regenerate_hint(self, tmp_path):
        _write_pair(tmp_path / "base", _hotpath_report(), _serving_report(mode="full"))
        _write_pair(tmp_path / "cur", _hotpath_report(), _serving_report(mode="smoke"))
        proc = _gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 1
        assert "config.mode mismatch" in proc.stdout
        assert "regenerate" in proc.stdout

    def test_missing_report_fails(self, tmp_path):
        _write_pair(tmp_path / "base", _hotpath_report(), _serving_report())
        (tmp_path / "cur").mkdir()
        proc = _gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 1
        assert "missing report" in proc.stdout

    def test_report_json_written(self, tmp_path):
        _write_pair(tmp_path / "base", _hotpath_report(), _serving_report())
        _write_pair(tmp_path / "cur", _hotpath_report(), _serving_report())
        report = tmp_path / "gate.json"
        _gate(tmp_path / "base", tmp_path / "cur", "--report", str(report))
        doc = json.loads(report.read_text())
        assert doc["ok"] is True
        assert set(doc["benches"]) == {
            "hotpath", "serving", "slo", "fleet", "parallel", "graph"
        }

    def test_slo_invariant_violation_fails(self, tmp_path):
        _write_pair(tmp_path / "base", _hotpath_report(), _serving_report())
        _write_pair(
            tmp_path / "cur", _hotpath_report(), _serving_report(),
            slo=_slo_report(p99_bounded=False),
        )
        proc = _gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 1
        assert "slo.p99_bounded" in proc.stdout

    def test_fleet_invariant_violation_fails(self, tmp_path):
        _write_pair(tmp_path / "base", _hotpath_report(), _serving_report())
        _write_pair(
            tmp_path / "cur", _hotpath_report(), _serving_report(),
            fleet=_fleet_report(bit_identical=False),
        )
        proc = _gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 1
        assert "invariants.bit_identical" in proc.stdout

    def test_fleet_scaling_regression_fails(self, tmp_path):
        _write_pair(
            tmp_path / "base", _hotpath_report(), _serving_report(),
            fleet=_fleet_report(ratio_4x=3.5),
        )
        _write_pair(
            tmp_path / "cur", _hotpath_report(), _serving_report(),
            fleet=_fleet_report(ratio_4x=1.0),
        )
        proc = _gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 1
        assert "scaling.ratio_4x" in proc.stdout

    def test_parallel_byte_identity_violation_fails(self, tmp_path):
        _write_pair(tmp_path / "base", _hotpath_report(), _serving_report())
        _write_pair(
            tmp_path / "cur", _hotpath_report(), _serving_report(),
            parallel=_parallel_report(byte_identical=False),
        )
        proc = _gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 1
        assert "invariants.byte_identical" in proc.stdout

    def test_parallel_speedup_floor_violation_fails(self, tmp_path):
        """The 1.5x floor is a hard invariant: a current run below it fails
        even when the ratio drop is inside --tolerance."""
        _write_pair(tmp_path / "base", _hotpath_report(), _serving_report())
        _write_pair(
            tmp_path / "cur", _hotpath_report(), _serving_report(),
            parallel=_parallel_report(ratio_4x=1.4),
        )
        proc = _gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 1
        assert "invariants.speedup_floor" in proc.stdout

    def test_graph_bit_identity_violation_fails(self, tmp_path):
        _write_pair(tmp_path / "base", _hotpath_report(), _serving_report())
        _write_pair(
            tmp_path / "cur", _hotpath_report(), _serving_report(),
            graph=_graph_report(bit_identical=False),
        )
        proc = _gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 1
        assert "invariants.bit_identical" in proc.stdout

    def test_graph_speedup_floor_violation_fails(self, tmp_path):
        """The 1.3x hybrid-safe floor is a hard invariant: a current run
        below it fails even when the ratio drop is inside --tolerance."""
        _write_pair(tmp_path / "base", _hotpath_report(), _serving_report())
        _write_pair(
            tmp_path / "cur", _hotpath_report(), _serving_report(),
            graph=_graph_report(speedup_safe=1.2),
        )
        proc = _gate(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 1
        assert "invariants.speedup_floor" in proc.stdout

    def test_bench_selection_scopes_the_gate(self, tmp_path):
        """--bench gates only the named benches: a broken slo report is
        invisible to a hotpath+serving-scoped run and fatal to an
        slo-scoped one."""
        _write_pair(tmp_path / "base", _hotpath_report(), _serving_report())
        _write_pair(
            tmp_path / "cur", _hotpath_report(), _serving_report(),
            slo=_slo_report(shed_bounded=False),
        )
        scoped = _gate(
            tmp_path / "base", tmp_path / "cur",
            "--bench", "hotpath", "--bench", "serving",
        )
        assert scoped.returncode == 0, scoped.stdout + scoped.stderr
        slo_only = _gate(tmp_path / "base", tmp_path / "cur", "--bench", "slo")
        assert slo_only.returncode == 1
        assert "slo.shed_rate_bounded" in slo_only.stdout

    def test_checked_in_baselines_self_compare(self):
        """The shipped baselines must pass against themselves."""
        baselines = REPO_ROOT / "benchmarks" / "baselines"
        proc = _gate(baselines, baselines)
        assert proc.returncode == 0, proc.stdout + proc.stderr
