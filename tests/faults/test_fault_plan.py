"""Unit semantics of FaultPlan/FaultRule: determinism, counting, arming."""

from __future__ import annotations

import pytest

from repro import faults
from repro.errors import EnclaveCrashed, ReproError
from repro.faults import FaultPlan, FaultRule


class TestRuleValidation:
    def test_probability_bounds(self):
        with pytest.raises(ReproError):
            FaultRule(site="x", probability=1.5)
        with pytest.raises(ReproError):
            FaultRule(site="x", probability=-0.1)

    def test_counters_validate(self):
        with pytest.raises(ReproError):
            FaultRule(site="x", after=-1)
        with pytest.raises(ReproError):
            FaultRule(site="x", max_fires=0)

    def test_action_and_error_validate(self):
        with pytest.raises(ReproError):
            FaultRule(site="x", action="explode")
        with pytest.raises(ReproError):
            FaultRule(site="x", error="not a type")


class TestCountingSemantics:
    def test_after_skips_then_max_fires_caps(self):
        plan = FaultPlan(seed=0, rules=[FaultRule(site="s", after=2, max_fires=2)])
        outcomes = [plan.poll("s") is not None for _ in range(6)]
        assert outcomes == [False, False, True, True, False, False]
        assert plan.fires("s") == 2

    def test_unlimited_fires(self):
        plan = FaultPlan(seed=0, rules=[FaultRule(site="s", max_fires=None)])
        assert all(plan.poll("s") is not None for _ in range(5))

    def test_site_and_name_patterns(self):
        plan = FaultPlan(
            seed=0,
            rules=[FaultRule(site="sgx.*", name="activation*", max_fires=None)],
        )
        assert plan.poll("sgx.ecall", name="activation_pool") is not None
        assert plan.poll("sgx.ecall", name="refresh") is None
        assert plan.poll("he.noise.decrypt", name="activation_pool") is None

    def test_first_matching_rule_wins(self):
        first = FaultRule(site="s", max_fires=None, error=EnclaveCrashed)
        second = FaultRule(site="s", max_fires=None)
        plan = FaultPlan(seed=0, rules=[first, second])
        event = plan.poll("s")
        assert event.rule is first

    def test_event_records_hit_fire_and_context(self):
        plan = FaultPlan(seed=0, rules=[FaultRule(site="s", after=1, max_fires=1)])
        assert plan.poll("s", name="a") is None
        event = plan.poll("s", name="b")
        assert (event.hit, event.fire) == (2, 1)
        assert event.context == {"name": "b"}
        assert plan.events == [event]


class TestDeterminism:
    def test_same_seed_same_fire_pattern(self):
        def run(seed):
            plan = FaultPlan(
                seed, rules=[FaultRule(site="s", probability=0.5, max_fires=None)]
            )
            return [plan.poll("s") is not None for _ in range(64)]

        assert run(123) == run(123)
        assert run(123) != run(321)  # astronomically unlikely to collide

    def test_probabilistic_rules_fire_sometimes(self):
        pattern = [
            FaultPlan(9, [FaultRule(site="s", probability=0.5, max_fires=None)]).poll("s")
            is not None
            for _ in range(1)
        ]
        plan = FaultPlan(9, [FaultRule(site="s", probability=0.5, max_fires=None)])
        fired = sum(plan.poll("s") is not None for _ in range(64))
        assert 0 < fired < 64
        assert pattern  # the single-draw plan above is itself deterministic


class TestArming:
    def test_disarmed_poll_is_none(self):
        assert faults.poll("s") is None
        assert not faults.is_armed()

    def test_armed_context_restores_previous(self):
        outer = FaultPlan(1, [])
        inner = FaultPlan(2, [])
        with faults.armed(outer):
            assert faults.active_plan() is outer
            with faults.armed(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_inject_raises_default_and_custom_error(self):
        class Custom(ReproError):
            pass

        with faults.armed(
            FaultPlan(0, [FaultRule(site="a"), FaultRule(site="b", error=Custom)])
        ):
            with pytest.raises(EnclaveCrashed):
                faults.inject("a", EnclaveCrashed)
            with pytest.raises(Custom):
                faults.inject("b", EnclaveCrashed)
            faults.inject("a", EnclaveCrashed)  # max_fires=1 spent: no raise

    def test_arm_disarm_roundtrip(self):
        plan = faults.arm(FaultPlan(0, []))
        assert faults.is_armed()
        assert faults.disarm() is plan
        assert faults.disarm() is None
