"""Chaos against the serving loop: killed flushes, timer storms, and lost
completion events must never hang a ticket or corrupt a logit.

The loop's liveness contract (DESIGN.md §13): after ``run()`` drains the
event heap, every admitted request holds exactly one outcome -- a
:class:`~repro.core.server.ServedResult` or a typed error.  The chaos
here attacks all three places that contract could break: the HE flush
itself (scheduler-level isolation), the deadline timers (duplicated by a
storm), and the flush-completion event (lost, re-delivered by the
always-armed watchdog).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.core import EdgeServer, PlaintextPipeline
from repro.errors import NoiseBudgetExhausted, RequestFailedError
from repro.faults import FaultPlan, FaultRule
from repro.serve import LoopConfig, ServeConfig, ServingLoop
from repro.sgx import AttestationVerificationService

from .conftest import chaos_seeds


def make_loop(batching_params, q_sigmoid, *, max_batch=4, **cfg):
    srv = EdgeServer(
        batching_params, seed=13, serve_config=ServeConfig(max_batch=max_batch)
    )
    srv.provision_model("digits", q_sigmoid)
    verifier = AttestationVerificationService()
    verifier.register_platform(srv.quoting)
    session = srv.enroll_user(entropy=b"\x42" * 32, verifier=verifier)
    cfg.setdefault("window_s", 0.005)
    return ServingLoop(srv, LoopConfig(**cfg)), session


class TestKilledFlushMidLoop:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_every_admitted_request_resolves_and_retry_is_bit_identical(
        self, batching_params, q_sigmoid, models, seed
    ):
        """A fault kills the packed flush mid-loop: the poisoned request
        fails typed, its batch-mates recover in place, no ticket hangs --
        and resubmitting the poisoned request yields logits bit-identical
        to the plaintext reference."""
        loop, session = make_loop(batching_params, q_sigmoid, max_batch=4)
        images = models.dataset.test_images[:3]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        cts = [session.encrypt("digits", images[i : i + 1]) for i in range(3)]
        tickets = [loop.submit("digits", cts[i], at_s=0.001 * i) for i in range(3)]
        # Fire 1 kills the packed flush; fire 2 kills the first request's
        # isolated re-run; the batch-mates' re-runs see a spent rule.
        plan = FaultPlan(seed, rules=[FaultRule(site="he.noise.decrypt", max_fires=2)])
        with faults.armed(plan):
            loop.run()
        assert all(t.done() for t in tickets)
        assert loop.queue_depth == 0 and not loop._inflight
        assert isinstance(tickets[0].error, RequestFailedError)
        assert isinstance(tickets[0].error.__cause__, NoiseBudgetExhausted)
        assert loop.stats.failed == 1 and loop.stats.served == 2
        for i in (1, 2):
            logits = session.decrypt_logits(tickets[i].result())
            assert np.array_equal(logits, expected[i : i + 1])
        # Retry of the poisoned request, fault layer healthy again: the
        # loop keeps running (it is not poisoned either) and the logits
        # come back bit-identical to plaintext.
        retry = loop.submit("digits", cts[0])
        loop.run()
        assert np.array_equal(
            session.decrypt_logits(retry.result()), expected[0:1]
        )

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_killed_flush_composes_with_lost_completion(
        self, batching_params, q_sigmoid, models, seed
    ):
        """Worst case both layers at once: the flush dies AND its completion
        event is lost.  The watchdog still delivers every typed outcome."""
        loop, session = make_loop(batching_params, q_sigmoid, max_batch=4)
        images = models.dataset.test_images[:2]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        tickets = [
            loop.submit(
                "digits", session.encrypt("digits", images[i : i + 1]), at_s=0.0
            )
            for i in range(2)
        ]
        plan = FaultPlan(
            seed,
            rules=[
                FaultRule(site="he.noise.decrypt", max_fires=2),
                FaultRule(site="serve.loop.flush_done", max_fires=1),
            ],
        )
        with faults.armed(plan):
            loop.run()
        assert all(t.done() for t in tickets)
        assert loop.stats.lost_completions == 1
        assert loop.stats.recovered_completions == 1
        assert isinstance(tickets[0].error, RequestFailedError)
        assert np.array_equal(
            session.decrypt_logits(tickets[1].result()), expected[1:2]
        )


class TestTimerStorm:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_storm_duplicates_dispatch_as_noops(
        self, batching_params, q_sigmoid, models, seed
    ):
        """``serve.loop.timer`` duplicates a deadline timer 8x: dispatch is
        idempotent, so the served outcomes -- and the whole SLO report --
        are identical to the storm-free run."""
        reports = []
        for storm in (False, True):
            loop, session = make_loop(batching_params, q_sigmoid, max_batch=8)
            ct = session.encrypt("digits", models.dataset.test_images[:1])
            tickets = [loop.submit("digits", ct, at_s=0.001 * i) for i in range(3)]
            plan = FaultPlan(
                seed,
                rules=(
                    [FaultRule(site="serve.loop.timer", max_fires=None)]
                    if storm
                    else []
                ),
            )
            with faults.armed(plan):
                loop.run()
            assert all(t.served for t in tickets)
            if storm:
                assert plan.fires("serve.loop.timer") == 3
                # Each fired storm adds 8 duplicates; all but one timer per
                # record dispatches stale.
                assert loop.stats.stale_events >= 8
            reports.append(loop.report())
        assert reports[0] == reports[1]


class TestLostCompletion:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_watchdog_redelivers_after_grace(
        self, batching_params, q_sigmoid, models, seed
    ):
        """A lost ``flush_done`` delays delivery by exactly the watchdog
        grace -- late, never lost, and the loop keeps batching afterwards."""
        grace = 0.004
        loop, session = make_loop(
            batching_params, q_sigmoid, max_batch=2, watchdog_grace_s=grace
        )
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        first = [loop.submit("digits", ct, at_s=0.0) for _ in range(2)]
        second = [loop.submit("digits", ct, at_s=0.001) for _ in range(2)]
        plan = FaultPlan(
            seed, rules=[FaultRule(site="serve.loop.flush_done", max_fires=1)]
        )
        with faults.armed(plan):
            loop.run()
        assert loop.stats.lost_completions == 1
        assert loop.stats.recovered_completions == 1
        assert all(t.served for t in first + second)
        done_at = loop.flush_log[0]["done_at_s"]
        assert first[0].completed_at_s == pytest.approx(done_at + grace)
        # The backlog flush rides the watchdog's continuation, healthy
        # completion path restored.
        assert loop.stats.flushes == 2
        assert second[0].completed_at_s is not None
