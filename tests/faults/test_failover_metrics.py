"""Failover metrics drift: a whole-batch retry must not double-count.

Before PR 10 a failed-over flush observed per-request latency once per
*attempt*, so every failover inflated the e2e histogram and skewed its
mean.  Retries now land on a dedicated counter
(``repro_fleet_retried_requests_total``) and every resolved request gets
exactly one sample per latency phase.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.obs.metrics import use_registry

from .conftest import chaos_seeds
from .test_chaos_fleet import make_fleet_loop

_E2E = 'repro_serve_request_latency_seconds_count{model="digits",phase="e2e"}'


class TestFailoverAccounting:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_one_e2e_sample_per_resolved_request(
        self, batching_params, q_sigmoid, models, seed
    ):
        with use_registry() as reg:
            loop, session = make_fleet_loop(batching_params, q_sigmoid)
            images = models.dataset.test_images[:3]
            tickets = [
                loop.submit(
                    "digits",
                    session.encrypt("digits", images[i : i + 1]),
                    at_s=0.001 * i,
                )
                for i in range(3)
            ]
            plan = FaultPlan(
                seed,
                rules=[FaultRule(site="serve.fleet.replica", name="0", max_fires=1)],
            )
            with faults.armed(plan):
                loop.run()
            assert all(t.served for t in tickets)

            stats = loop.server.scheduler.stats
            flat = reg.collect().flat()
            # The batch was dispatched twice but resolved once: the three
            # requests show up as retries, not as extra latency samples.
            assert stats.retried_requests == 3
            assert flat['repro_fleet_retried_requests_total{model="digits"}'] == 3.0
            assert flat['repro_fleet_failovers_total{model="digits"}'] == 1.0
            assert flat[_E2E] == float(stats.served) == 3.0
            for phase in ("queue", "compute"):
                key = _E2E.replace('phase="e2e"', f'phase="{phase}"')
                assert flat[key] == 3.0
            assert stats.failed == 0 and stats.isolated_requests == 0
            # The corrected histograms still pass the render-time validator.
            text = reg.render_prometheus()
            assert 'phase="e2e"' in text

    def test_no_failover_means_no_retries(self, batching_params, q_sigmoid, models):
        with use_registry() as reg:
            loop, session = make_fleet_loop(batching_params, q_sigmoid)
            loop.submit(
                "digits", session.encrypt("digits", models.dataset.test_images[:1])
            )
            loop.run()
            stats = loop.server.scheduler.stats
            assert stats.retried_requests == 0
            flat = reg.collect().flat()
            assert 'repro_fleet_retried_requests_total{model="digits"}' not in flat
            assert flat[_E2E] == 1.0
