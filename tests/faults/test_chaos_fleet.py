"""Chaos against the fleet: replica loss at dispatch and in-flight retry
exhaustion must fail whole batches over to a survivor -- every ticket
resolves and every logit stays bit-identical to the plaintext reference.

The fleet's failover contract (DESIGN.md §14): when a replica dies,
:meth:`FleetScheduler.run_batch` retires it and re-dispatches the batch to
a surviving replica.  Because every replica restored the authority's sealed
key pair, the survivor's results are bit-for-bit what the dead replica
would have produced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.core import EdgeServer, PlaintextPipeline
from repro.faults import FaultPlan, FaultRule
from repro.obs.metrics import use_registry
from repro.serve import LoopConfig, ServeConfig, ServingLoop
from repro.sgx import AttestationVerificationService

from .conftest import chaos_seeds


def make_fleet_loop(batching_params, q_sigmoid, *, fleet_size=2, max_batch=4, **cfg):
    srv = EdgeServer(
        batching_params,
        seed=13,
        serve_config=ServeConfig(max_batch=max_batch),
        fleet_size=fleet_size,
    )
    srv.provision_model("digits", q_sigmoid)
    verifier = AttestationVerificationService()
    verifier.register_platform(srv.quoting)
    session = srv.enroll_user(entropy=b"\x42" * 32, verifier=verifier)
    cfg.setdefault("window_s", 0.005)
    return ServingLoop(srv, LoopConfig(**cfg)), session


class TestReplicaKilledAtDispatch:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_failover_resolves_every_ticket_bit_identically(
        self, batching_params, q_sigmoid, models, seed
    ):
        """``serve.fleet.replica`` destroys replica 0's handle the moment a
        flush is dispatched to it: the batch fails over to replica 1, every
        ticket is served (not isolated, not failed), the dead replica is
        retired, and the logits match plaintext bit-for-bit."""
        with use_registry() as reg:
            loop, session = make_fleet_loop(batching_params, q_sigmoid)
            images = models.dataset.test_images[:3]
            expected = PlaintextPipeline(q_sigmoid).infer(images).logits
            tickets = [
                loop.submit(
                    "digits",
                    session.encrypt("digits", images[i : i + 1]),
                    at_s=0.001 * i,
                )
                for i in range(3)
            ]
            plan = FaultPlan(
                seed,
                rules=[FaultRule(site="serve.fleet.replica", name="0", max_fires=1)],
            )
            with faults.armed(plan):
                loop.run()
            assert plan.fires("serve.fleet.replica") == 1
            assert all(t.served for t in tickets)
            assert loop.queue_depth == 0 and not loop._inflight
            for i, ticket in enumerate(tickets):
                logits = session.decrypt_logits(ticket.result())
                assert np.array_equal(logits, expected[i : i + 1])
            fleet = loop.server.fleet
            assert fleet.live_replicas() == [1]
            assert 0 in fleet.retired_replicas()
            assert fleet.authority_id == 1
            flat = reg.collect().flat()
            assert flat['repro_fleet_failovers_total{model="digits"}'] == 1.0
            assert flat['repro_fleet_retirements_total{replica="0"}'] == 1.0

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_fleet_survives_losing_all_but_one(
        self, batching_params, q_sigmoid, models, seed
    ):
        """Kill three of four replicas across successive flushes: each loss
        fails over, the last replica serves everything, and the decrypted
        stream equals the plaintext reference throughout."""
        loop, session = make_fleet_loop(
            batching_params, q_sigmoid, fleet_size=4, max_batch=2
        )
        images = models.dataset.test_images[:4]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        tickets = [
            loop.submit(
                "digits", session.encrypt("digits", images[i : i + 1]), at_s=0.002 * i
            )
            for i in range(4)
        ]
        plan = FaultPlan(
            seed,
            rules=[
                FaultRule(site="serve.fleet.replica", name=str(rid), max_fires=1)
                for rid in (0, 1, 2)
            ],
        )
        with faults.armed(plan):
            loop.run()
        assert all(t.served for t in tickets)
        fleet = loop.server.fleet
        assert fleet.live_replicas() == [3]
        for i, ticket in enumerate(tickets):
            assert np.array_equal(
                session.decrypt_logits(ticket.result()), expected[i : i + 1]
            )


class TestRetryExhaustionFailsOver:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_exhausted_replica_retires_and_survivor_serves(
        self, batching_params, q_sigmoid, models, seed
    ):
        """An ECALL fault that outlasts the supervisor's retry budget
        (``RecoveryExhausted``) is replica *loss*, not request poison: the
        batch fails over whole and still decrypts bit-identically.  The
        fault rule is spent by the first replica's retries, so the survivor
        runs clean."""
        srv = EdgeServer(
            batching_params,
            seed=13,
            serve_config=ServeConfig(max_batch=4),
            fleet_size=2,
        )
        srv.provision_model("digits", q_sigmoid)
        verifier = AttestationVerificationService()
        verifier.register_platform(srv.quoting)
        session = srv.enroll_user(entropy=b"\x42" * 32, verifier=verifier)
        loop = ServingLoop(srv, LoopConfig(window_s=0.005))
        images = models.dataset.test_images[:2]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        tickets = [
            loop.submit(
                "digits", session.encrypt("digits", images[i : i + 1]), at_s=0.0
            )
            for i in range(2)
        ]
        # RetryPolicy default allows 3 attempts; 3 fires exhaust exactly one
        # replica's supervisor.  The restart path's restore_keys ECALLs do
        # not match the name filter, so recovery itself is not poisoned.
        plan = FaultPlan(
            seed,
            rules=[
                FaultRule(site="sgx.ecall", name="activation_pool_simd", max_fires=3)
            ],
        )
        with faults.armed(plan):
            loop.run()
        assert all(t.served for t in tickets)
        fleet = srv.fleet
        assert fleet.live_replicas() == [1]
        assert 0 in fleet.retired_replicas()
        for i, ticket in enumerate(tickets):
            assert np.array_equal(
                session.decrypt_logits(ticket.result()), expected[i : i + 1]
            )

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_single_replica_fleet_falls_back_to_isolation(
        self, batching_params, q_sigmoid, models, seed
    ):
        """With no survivor to fail over to, replica loss degrades to the
        legacy per-request isolation path: tickets resolve with typed
        errors instead of hanging."""
        from repro.errors import RequestFailedError

        loop, session = make_fleet_loop(
            batching_params, q_sigmoid, fleet_size=1, max_batch=2
        )
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        tickets = [loop.submit("digits", ct, at_s=0.0) for _ in range(2)]
        plan = FaultPlan(
            seed,
            rules=[FaultRule(site="serve.fleet.replica", name="0", max_fires=1)],
        )
        with faults.armed(plan):
            loop.run()
        assert all(t.done() for t in tickets)
        assert all(isinstance(t.error, RequestFailedError) for t in tickets)
        assert not loop._inflight
