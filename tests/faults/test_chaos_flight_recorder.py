"""Chaos + flight recorder: seeded replica failover pins an exact event
sequence.

The recorder's timestamps come from the loop's virtual clock and the
platform ``SimClock`` -- never a wall clock -- so the same seeded chaos run
must produce byte-identical dumps, and the ordered kind sequence is a
stable contract chaos tests can pin (DESIGN.md §17).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import faults
from repro.core import PlaintextPipeline
from repro.faults import FaultPlan, FaultRule
from repro.obs.metrics import use_registry
from repro.obs.recorder import use_recorder

from .conftest import chaos_seeds
from .test_chaos_fleet import make_fleet_loop

#: The pinned event sequence for one replica-0 loss at dispatch: three
#: admissions, the flush starts on the doomed replica, the fault fires,
#: the fleet retires it and fails the whole batch over, the flush lands.
FAILOVER_SEQUENCE = [
    "serve.admit",
    "serve.admit",
    "serve.admit",
    "serve.flush_start",
    "fault.fire",
    "fleet.retire",
    "fleet.failover",
    "serve.flush_done",
]


def _run_failover(batching_params, q_sigmoid, models, seed):
    with use_registry(), use_recorder() as rec:
        loop, session = make_fleet_loop(batching_params, q_sigmoid)
        images = models.dataset.test_images[:3]
        tickets = [
            loop.submit(
                "digits", session.encrypt("digits", images[i : i + 1]), at_s=0.001 * i
            )
            for i in range(3)
        ]
        plan = FaultPlan(
            seed, rules=[FaultRule(site="serve.fleet.replica", name="0", max_fires=1)]
        )
        with faults.armed(plan):
            loop.run()
        logits = [session.decrypt_logits(t.result()) for t in tickets]
        return rec, logits, q_sigmoid


class TestFailoverSequencePinned:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_exact_event_sequence(self, batching_params, q_sigmoid, models, seed):
        rec, logits, _ = _run_failover(batching_params, q_sigmoid, models, seed)
        assert rec.kinds() == FAILOVER_SEQUENCE

        events = {e.kind: e for e in rec.events()}
        failover = events["fleet.failover"]
        assert failover.severity == "warn"
        assert failover.fields["from_replica"] == 0
        assert failover.fields["to_replica"] == 1
        assert failover.fields["requests"] == 3
        retire = events["fleet.retire"]
        assert retire.severity == "error"
        assert retire.fields["replica"] == 0
        fire = events["fault.fire"]
        assert fire.fields["site"] == "serve.fleet.replica"
        start = events["serve.flush_start"]
        assert start.fields["replica"] == 0 and start.fields["requests"] == 3
        done = events["serve.flush_done"]
        assert done.fields["served"] == 3 and done.fields["failed"] == 0
        assert done.fields["generation"] == start.fields["generation"]

        seqs = [e.seq for e in rec.events()]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

        expected = PlaintextPipeline(q_sigmoid).infer(models.dataset.test_images[:3])
        for i, l in enumerate(logits):
            assert np.array_equal(l, expected.logits[i : i + 1])

    @pytest.mark.parametrize("seed", chaos_seeds()[:1])
    def test_dump_identical_across_runs(
        self, batching_params, q_sigmoid, models, seed
    ):
        """Same seed, same events: everything but the clock readings (which
        fold in measured host compute time) must match field-for-field."""
        rec_a, logits_a, _ = _run_failover(batching_params, q_sigmoid, models, seed)
        faults.disarm()
        rec_b, logits_b, _ = _run_failover(batching_params, q_sigmoid, models, seed)

        def strip_t(dump_json):
            events = json.loads(dump_json)
            for event in events:
                t_s = event.pop("t_s", None)
                assert t_s is None or isinstance(t_s, float)
            return events

        assert strip_t(rec_a.dump_json()) == strip_t(rec_b.dump_json())
        assert all(np.array_equal(a, b) for a, b in zip(logits_a, logits_b))
        assert [e.kind for e in rec_a.events()] == FAILOVER_SEQUENCE
