"""Disarmed (or non-matching) fault injection must be invisible.

The acceptance bar from the issue: with no armed plan -- or with a plan whose
rules never match -- the fault layer may not perturb a single byte.  We prove
it at two levels: raw ciphertext wire bytes, and end-to-end pipeline logits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.he import (
    Context,
    KeyGenerator,
    ScalarEncoder,
    SymmetricEncryptor,
    small_parameter_options,
)
from repro.he.serialize import deserialize_ciphertext, serialize_ciphertext

from .conftest import PIPELINE_KINDS


def encrypt_bytes(seed: int) -> bytes:
    """One deterministic encrypt + serialize round, isolated RNG."""
    context = Context(small_parameter_options()[256])
    rng = np.random.default_rng(seed)
    keys = KeyGenerator(context, rng).generate()
    encryptor = SymmetricEncryptor(context, keys.secret, rng)
    plain = ScalarEncoder(context).encode(np.arange(-4, 4, dtype=np.int64))
    ct = encryptor.encrypt(plain)
    data = serialize_ciphertext(ct)
    # Round-trip while we are at it: deserialization must also be untouched.
    assert np.array_equal(deserialize_ciphertext(data, context).data, ct.data)
    return data


#: A plan that is armed but can never match any real site.
def decoy_plan() -> FaultPlan:
    return FaultPlan(
        99, rules=[FaultRule(site="no.such.site", name="never", max_fires=None)]
    )


class TestZeroOverhead:
    def test_ciphertext_bytes_identical_disarmed_vs_decoy_armed(self):
        baseline = encrypt_bytes(seed=7)
        plan = decoy_plan()
        with faults.armed(plan):
            armed = encrypt_bytes(seed=7)
        assert armed == baseline
        assert plan.fires() == 0

    @pytest.mark.parametrize("kind", PIPELINE_KINDS)
    def test_pipeline_logits_identical_disarmed_vs_decoy_armed(
        self, make_pipeline, baseline_logits, test_images, kind
    ):
        expected = baseline_logits(kind)
        plan = decoy_plan()
        with faults.armed(plan):
            result = make_pipeline(kind).infer(test_images)
        assert np.array_equal(result.logits, expected)
        assert plan.fires() == 0
        assert plan.events == []

    def test_disarmed_is_the_default_state(self):
        assert not faults.is_armed()
        assert faults.active_plan() is None
        assert faults.poll("sgx.ecall", name="anything") is None
