"""Chaos suite: graph-optimizer pass failures mid-compile.

The contract (DESIGN.md §16): a pass raising inside ``compile_graph``
degrades the compile to the unoptimized reference graph — a
*perturbation*, not an error.  The degraded run produces bit-identical
logits, serialized ciphertext bytes and op tallies, the report says so,
and the ``repro_graph_degradations_total`` metric counts it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.core import HybridPipeline
from repro.faults import FaultPlan, FaultRule
from repro.graph import optimizer
from repro.he.serialize import serialize_ciphertext
from repro.obs.metrics import use_registry

from .conftest import chaos_seeds


class TestGraphPassChaos:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_pass_failure_degrades_bit_identically(
        self, q_sigmoid, hybrid_params, test_images, seed
    ):
        with optimizer.use("off"):
            ref_pipe = HybridPipeline(q_sigmoid, hybrid_params, seed=17)
            ref = ref_pipe.infer(test_images)
            ref_counts = dict(ref_pipe.counter.counts)

        plan = FaultPlan(seed, rules=[FaultRule(site="graph.pass", max_fires=1)])
        with use_registry() as reg:
            with optimizer.use("safe"):
                pipe = HybridPipeline(q_sigmoid, hybrid_params, seed=17)
                with faults.armed(plan):
                    res = pipe.infer(test_images)
            flat = reg.collect().flat()

        assert plan.fires("graph.pass") == 1
        report = pipe.graph_report
        assert report.degraded
        # Canonical sequencing makes the first (faulted) pass deterministic.
        assert report.failure.startswith("zero_tap")
        assert report.label == "safe:degraded"
        assert res.trace.attrs["graph_opt"] == "safe:degraded"

        assert np.array_equal(ref.logits, res.logits)
        assert serialize_ciphertext(ref.logits_ct) == serialize_ciphertext(
            res.logits_ct
        )
        assert dict(pipe.counter.counts) == ref_counts
        assert flat['repro_graph_degradations_total{graph_pass="zero_tap"}'] == 1.0

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_compile_recovers_after_fault_exhausted(
        self, q_sigmoid, hybrid_params, test_images, seed
    ):
        """The degradation is per-compile: once the rule is exhausted, a
        fresh pipeline compiles the optimized graph again."""
        plan = FaultPlan(seed, rules=[FaultRule(site="graph.pass", max_fires=1)])
        with optimizer.use("safe"):
            with faults.armed(plan):
                degraded = HybridPipeline(q_sigmoid, hybrid_params, seed=17)
                first = degraded.infer(test_images)
                healthy = HybridPipeline(q_sigmoid, hybrid_params, seed=17)
                second = healthy.infer(test_images)
        assert degraded.graph_report.degraded
        assert not healthy.graph_report.degraded
        assert "scalar_encrypt" in healthy.graph_report.applied
        assert np.array_equal(first.logits, second.logits)

    def test_named_rule_targets_one_pass(self, q_sigmoid, hybrid_params, test_images):
        """A rule named after a later pass lets earlier passes run and
        still degrades the whole compile (partial rewrites are discarded)."""
        plan = FaultPlan(
            11, rules=[FaultRule(site="graph.pass", name="scalar_encrypt", max_fires=1)]
        )
        with optimizer.use("safe"):
            pipe = HybridPipeline(q_sigmoid, hybrid_params, seed=17)
            with faults.armed(plan):
                res = pipe.infer(test_images)
        assert plan.fires("graph.pass") == 1
        report = pipe.graph_report
        assert report.degraded
        assert report.failure.startswith("scalar_encrypt")
        # Degradation discards everything, including passes that succeeded.
        assert report.applied == ()
        assert res.trace.attrs["graph_opt"] == "safe:degraded"
