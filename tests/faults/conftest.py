"""Chaos-suite fixtures: deterministic fault plans against real pipelines.

Every test here runs with the fault layer *disarmed* on entry and leaves it
disarmed (and the kernel profile restored to FUSED) on exit, so chaos tests
cannot leak injected state into the rest of the suite.  Seeds come from
:data:`CHAOS_SEEDS`, overridable with the ``REPRO_CHAOS_SEED`` environment
variable so CI can sweep seeds in separate jobs.
"""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.core import (
    CryptonetsPipeline,
    EdgeServer,
    HybridPipeline,
    parameters_for_pipeline,
    train_paper_models,
)
from repro.graph import optimizer as graph_optimizer
from repro.he import kernels
from repro.sgx import AttestationVerificationService

#: The fixed seed sweep CI runs (one chaos-tests job per seed).
CHAOS_SEEDS = (11, 23, 47)


def chaos_seeds() -> tuple[int, ...]:
    env = os.environ.get("REPRO_CHAOS_SEED")
    return (int(env),) if env else CHAOS_SEEDS


@pytest.fixture(autouse=True)
def pristine_fault_state():
    """Disarm + reset kernels + graph optimizer around every test here."""
    faults.disarm()
    kernels.configure(kernels.FUSED)
    graph_optimizer.configure(None)
    yield
    faults.disarm()
    kernels.configure(kernels.FUSED)
    graph_optimizer.configure(None)


@pytest.fixture(scope="session")
def models():
    return train_paper_models(
        train_size=300, test_size=60, epochs=4, image_size=10, channels=2, kernel_size=3
    )


@pytest.fixture(scope="session")
def q_sigmoid(models):
    return models.quantized_sigmoid()


@pytest.fixture(scope="session")
def q_square(models):
    return models.quantized_square()


@pytest.fixture(scope="session")
def hybrid_params(q_sigmoid):
    return parameters_for_pipeline(q_sigmoid, 256)


@pytest.fixture(scope="session")
def pure_he_params(q_square):
    return parameters_for_pipeline(q_square, 256)


@pytest.fixture(scope="session")
def batching_params(q_sigmoid):
    return parameters_for_pipeline(q_sigmoid, 256, batching=True)


@pytest.fixture(scope="session")
def test_images(models):
    return models.dataset.test_images[:2]


#: The paper's four schemes, as (fixture-key, constructor-kwargs) pairs.
PIPELINE_KINDS = ("encrypted", "batched", "per_pixel", "fake")


@pytest.fixture(scope="session")
def make_pipeline(q_sigmoid, q_square, hybrid_params, pure_he_params):
    """Factory: a fresh pipeline of the requested scheme, fixed seed."""

    def build(kind: str):
        if kind == "encrypted":
            return CryptonetsPipeline(q_square, pure_he_params, seed=17)
        return HybridPipeline(q_sigmoid, hybrid_params, mode={
            "batched": "batched",
            "per_pixel": "per_pixel",
            "fake": "fake",
        }[kind], seed=17)

    return build


@pytest.fixture(scope="session")
def baseline_logits(make_pipeline, test_images):
    """Fault-free logits per scheme, computed once (always under FUSED,
    always disarmed -- the cache is only filled from inside tests, which
    start pristine and ask for the baseline before arming anything)."""
    cache: dict[str, object] = {}

    def get(kind: str):
        if kind not in cache:
            assert not faults.is_armed(), "baseline must be computed disarmed"
            cache[kind] = make_pipeline(kind).infer(test_images).logits
        return cache[kind]

    return get


@pytest.fixture()
def server(batching_params, q_sigmoid):
    srv = EdgeServer(batching_params, seed=13)
    srv.provision_model("digits", q_sigmoid)
    return srv


@pytest.fixture()
def session(server):
    verifier = AttestationVerificationService()
    verifier.register_platform(server.quoting)
    return server.enroll_user(entropy=b"\x42" * 32, verifier=verifier)
