"""Chaos against the worker pool: a SIGKILLed flush worker must never
change a single output byte.

The ``parallel.worker`` site (DESIGN.md §15) kills one worker process at
unit dispatch.  The pool's recovery contract: the whole generation is
retired (a killed worker can die holding a queue lock), every
unacknowledged unit replays in-process through the identical unit
executor, and fresh workers respawn for the next flush -- so the decrypted
logits stay bit-identical to the plaintext reference and to a fault-free
single-process run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.core import PlaintextPipeline
from repro.faults import FaultPlan, FaultRule
from repro.he import parallel
from repro.obs.metrics import use_registry

from .conftest import chaos_seeds


@pytest.fixture(autouse=True)
def pristine_pool_state():
    """Chaos must not leak a worker configuration (or a dead pool) out."""
    parallel.configure(None)
    parallel.shutdown()
    yield
    parallel.configure(None)
    parallel.shutdown()


def submit_singles(server, session, images):
    return [
        server.scheduler.submit("digits", session.encrypt("digits", images[i : i + 1]))
        for i in range(len(images))
    ]


class TestWorkerKilledMidFlush:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_kill_replays_bit_identically(
        self, server, session, q_sigmoid, models, seed
    ):
        """Kill worker 1 during the packed flush: every unit replays
        in-process and the logits match plaintext bit-for-bit."""
        images = models.dataset.test_images[:3]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        with use_registry() as reg:
            with parallel.use(3):
                responses = submit_singles(server, session, images)
                plan = FaultPlan(
                    seed,
                    rules=[FaultRule(site="parallel.worker", name="1", max_fires=1)],
                )
                with faults.armed(plan):
                    server.scheduler.drain()
                pool = parallel.active_pool()
                assert plan.fires("parallel.worker") == 1
                assert pool.deaths == 1
                assert pool.replayed_units >= 1
                # The respawned generation is alive and serving.
                assert all(proc.is_alive() for proc in pool._procs.values())
            flat = reg.collect().flat()
            assert flat["repro_parallel_worker_deaths_total"] == 1.0
            assert flat["repro_parallel_replayed_units_total"] >= 1.0
        assert server.scheduler.queue_depth == 0
        for i, response in enumerate(responses):
            logits = session.decrypt_logits(response.result())
            assert np.array_equal(logits[0], expected[i])

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_kill_matches_single_process_run(
        self, server, session, q_sigmoid, models, seed
    ):
        """The fault-free workers=1 flush and the killed workers=3 flush
        produce identical decrypted logits for the same submissions."""
        images = models.dataset.test_images[:2]
        baseline = submit_singles(server, session, images)
        server.scheduler.drain()  # workers=1, disarmed: the authority
        reference = [session.decrypt_logits(r.result()) for r in baseline]

        with parallel.use(2):
            responses = submit_singles(server, session, images)
            plan = FaultPlan(
                seed,
                rules=[FaultRule(site="parallel.worker", name="0", max_fires=1)],
            )
            with faults.armed(plan):
                server.scheduler.drain()
            assert plan.fires("parallel.worker") == 1
            assert parallel.active_pool().deaths == 1
        for response, expected in zip(responses, reference):
            assert np.array_equal(
                session.decrypt_logits(response.result()), expected
            )

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_pool_survives_repeated_kills(
        self, server, session, q_sigmoid, models, seed
    ):
        """Three kills across successive flushes: each retires a generation,
        each respawn serves the next flush, results stay exact."""
        images = models.dataset.test_images[:2]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        with parallel.use(2):
            plan = FaultPlan(
                seed,
                rules=[FaultRule(site="parallel.worker", probability=0.5, max_fires=3)],
            )
            with faults.armed(plan):
                for _ in range(3):
                    responses = submit_singles(server, session, images)
                    server.scheduler.drain()
                    for i, response in enumerate(responses):
                        logits = session.decrypt_logits(response.result())
                        assert np.array_equal(logits[0], expected[i])
            pool = parallel.active_pool()
            assert pool.deaths == plan.fires("parallel.worker")
