"""Chaos against the serving layer: poisoned packed flushes must not sink
the batch, hang a response, or leave ghosts in the queue.

This is the serving half of DESIGN.md §11: `_flush_model` pops its bucket up
front and resolves *every* popped request -- recovered requests with their
logits, poisoned ones with a causal :class:`~repro.errors.RequestFailedError`
-- so ``queue_depth`` is always 0 after a flush and ``result()`` never raises
a permanent :class:`~repro.errors.ResponseNotReady`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.core import PlaintextPipeline
from repro.errors import (
    NoiseBudgetExhausted,
    RecoveryExhausted,
    RequestFailedError,
    ServeError,
)
from repro.faults import FaultPlan, FaultRule

from .conftest import chaos_seeds
from .test_chaos_pipelines import all_span_names


def submit_singles(server, session, images):
    return [
        server.scheduler.submit("digits", session.encrypt("digits", images[i : i + 1]))
        for i in range(len(images))
    ]


class TestPoisonedFlushIsolation:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_one_poisoned_request_does_not_sink_the_batch(
        self, server, session, q_sigmoid, models, seed
    ):
        """A fault that kills the packed pass triggers per-request isolation:
        the poisoned request fails typed, its batch-mates recover bit-exactly."""
        images = models.dataset.test_images[:3]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        responses = submit_singles(server, session, images)
        # Fire 1 kills the packed flush; fire 2 kills the first request's
        # isolated re-run; the remaining re-runs see a spent rule.
        plan = FaultPlan(seed, rules=[FaultRule(site="he.noise.decrypt", max_fires=2)])
        with faults.armed(plan):
            server.scheduler.drain()
        assert server.scheduler.queue_depth == 0
        assert all(r.done() for r in responses)
        with pytest.raises(RequestFailedError) as excinfo:
            responses[0].result()
        assert isinstance(excinfo.value.__cause__, NoiseBudgetExhausted)
        assert isinstance(excinfo.value, ServeError)
        for i in (1, 2):
            logits = session.decrypt_logits(responses[i].result())
            assert np.array_equal(logits[0], expected[i])
        stats = server.scheduler.stats
        assert stats.isolations == 1
        assert stats.failed == 1
        assert stats.served == 2
        assert "recovery/request_isolation" in all_span_names(
            server.platform.tracer
        )

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_unrecoverable_flush_fails_every_request_typed(
        self, server, session, models, seed
    ):
        """When the enclave is unrecoverable for the whole window, every
        request resolves with a typed failure -- nothing hangs."""
        images = models.dataset.test_images[:2]
        responses = submit_singles(server, session, images)
        plan = FaultPlan(
            seed,
            rules=[FaultRule(site="sgx.ecall", name="unpack_slots", max_fires=None)],
        )
        with faults.armed(plan):
            served = server.scheduler.drain()
        assert served == 0
        assert server.scheduler.queue_depth == 0
        for response in responses:
            assert response.done()
            with pytest.raises(RequestFailedError) as excinfo:
                response.result()
            assert isinstance(excinfo.value.__cause__, RecoveryExhausted)
        assert server.scheduler.stats.failed == len(responses)

    def test_single_request_flush_fails_directly_without_rerun(
        self, server, session, models
    ):
        """A lone request's flush failure is final: no isolation re-run can
        help it, so it fails in one pass with the original cause chained."""
        response = server.scheduler.submit(
            "digits", session.encrypt("digits", models.dataset.test_images[:1])
        )
        plan = FaultPlan(0, rules=[FaultRule(site="he.noise.decrypt", max_fires=1)])
        with faults.armed(plan):
            server.scheduler.drain()
        assert plan.fires() == 1  # exactly the packed pass, no re-run
        with pytest.raises(RequestFailedError):
            response.result()
        assert server.scheduler.queue_depth == 0
        assert server.scheduler.stats.failed == 1

    def test_scheduler_keeps_serving_after_a_poisoned_flush(
        self, server, session, q_sigmoid, models
    ):
        """Regression for the PendingResponse failure path: a crashed flush
        must leave the scheduler fully operational for the next window."""
        images = models.dataset.test_images[:2]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        poisoned = server.scheduler.submit(
            "digits", session.encrypt("digits", images[:1])
        )
        with faults.armed(
            FaultPlan(0, rules=[FaultRule(site="he.noise.decrypt", max_fires=1)])
        ):
            server.scheduler.drain()
        assert poisoned.done()
        # Disarmed follow-up window: served normally, bit-exact.
        healthy = server.scheduler.submit(
            "digits", session.encrypt("digits", images[1:2])
        )
        server.scheduler.drain()
        logits = session.decrypt_logits(healthy.result())
        assert np.array_equal(logits[0], expected[1])
        assert server.scheduler.stats.served == 1
