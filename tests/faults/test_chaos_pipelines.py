"""Chaos suite: seeded fault plans against all four inference schemes.

The contract under test (DESIGN.md §11):

* **recoverable** plans -- bounded crash rules, EPC eviction storms, kernel
  guard trips -- converge to logits *bit-identical* to the fault-free run;
* **unrecoverable** plans -- unbounded crashes, failing key provisioning --
  surface typed :class:`~repro.errors.ReproError` subclasses;
* nothing ever hangs: all timing is simulated, every test terminates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.errors import (
    AttestationError,
    NoiseBudgetExhausted,
    RecoveryExhausted,
    ReproError,
)
from repro.faults import FaultPlan, FaultRule
from repro.he import kernels

from .conftest import PIPELINE_KINDS, chaos_seeds

ENCLAVE_KINDS = tuple(k for k in PIPELINE_KINDS if k != "encrypted")


def collect_span_names(span, acc=None):
    acc = [] if acc is None else acc
    acc.append(span.name)
    for child in span.children:
        collect_span_names(child, acc)
    return acc


def all_span_names(tracer):
    names = []
    for trace in tracer.traces:
        collect_span_names(trace, names)
    return names


class TestRecoverableChaos:
    @pytest.mark.parametrize("seed", chaos_seeds())
    @pytest.mark.parametrize("kind", ENCLAVE_KINDS)
    def test_crash_storm_recovers_to_identical_logits(
        self, make_pipeline, baseline_logits, test_images, kind, seed
    ):
        """Bounded AEX crashes restart the enclave (sealed keys restored,
        instance re-attested) and the run converges bit-exactly."""
        expected = baseline_logits(kind)
        pipeline = make_pipeline(kind)
        plan = FaultPlan(
            seed,
            rules=[
                # Deterministic crash pair: survives any scheme's ECALL count.
                FaultRule(site="sgx.ecall", max_fires=2),
                # Seeded perturbation noise on top.
                FaultRule(
                    site="sgx.epc.touch", action="evict_all", probability=0.5, max_fires=4
                ),
            ],
        )
        with faults.armed(plan):
            result = pipeline.infer(test_images)
        assert np.array_equal(result.logits, expected)
        assert plan.fires("sgx.ecall") == 2
        assert pipeline.enclave.restarts >= 1

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_recovery_is_observable_in_traces(
        self, make_pipeline, baseline_logits, test_images, seed
    ):
        """Every injected fault and every recovery action lands in the
        platform trace as fault/ and recovery/ spans."""
        baseline_logits("batched")
        pipeline = make_pipeline("batched")
        plan = FaultPlan(seed, rules=[FaultRule(site="sgx.ecall", max_fires=1)])
        with faults.armed(plan):
            pipeline.infer(test_images)
        names = all_span_names(pipeline.platform.tracer)
        assert names.count("fault/sgx.ecall") == plan.fires("sgx.ecall") == 1
        assert names.count("recovery/enclave_restart") == 1

    @pytest.mark.parametrize("seed", chaos_seeds())
    @pytest.mark.parametrize("kind", PIPELINE_KINDS)
    def test_kernel_guard_trip_degrades_and_converges(
        self, make_pipeline, baseline_logits, test_images, kind, seed
    ):
        """A tripped equivalence guard falls back FUSED -> REFERENCE and
        retries; both profiles are bit-identical, so logits match."""
        expected = baseline_logits(kind)
        pipeline = make_pipeline(kind)
        plan = FaultPlan(seed, rules=[FaultRule(site="he.kernels.guard", max_fires=1)])
        with faults.armed(plan):
            result = pipeline.infer(test_images)
        assert np.array_equal(result.logits, expected)
        assert plan.fires("he.kernels.guard") == 1
        assert kernels.active().mode_name == "reference"
        assert "recovery/kernel_degrade" in all_span_names(pipeline.tracer)

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_eviction_storm_only_costs_time(
        self, make_pipeline, baseline_logits, test_images, seed
    ):
        """An EPC eviction storm is a pure perturbation: identical logits,
        strictly more paging."""
        expected = baseline_logits("batched")
        pipeline = make_pipeline("batched")
        epc = pipeline.platform.epc
        before = epc.stats.evictions
        plan = FaultPlan(
            seed,
            rules=[FaultRule(site="sgx.epc.touch", action="evict_all", max_fires=None)],
        )
        with faults.armed(plan):
            result = pipeline.infer(test_images)
        assert np.array_equal(result.logits, expected)
        assert plan.fires("sgx.epc.touch") > 0
        assert epc.stats.evictions > before


class TestUnrecoverableChaos:
    @pytest.mark.parametrize("seed", chaos_seeds())
    @pytest.mark.parametrize("kind", ENCLAVE_KINDS)
    def test_unbounded_crashes_exhaust_recovery(
        self, make_pipeline, test_images, kind, seed
    ):
        pipeline = make_pipeline(kind)
        plan = FaultPlan(seed, rules=[FaultRule(site="sgx.ecall", max_fires=None)])
        with faults.armed(plan):
            with pytest.raises(RecoveryExhausted):
                pipeline.infer(test_images)
        assert issubclass(RecoveryExhausted, ReproError)

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_failing_unseal_makes_restart_unrecoverable(
        self, make_pipeline, test_images, seed
    ):
        """A crash is survivable only if the sealed key blob unseals; a
        sealing fault during restart is terminal and typed."""
        pipeline = make_pipeline("batched")
        plan = FaultPlan(
            seed,
            rules=[
                FaultRule(site="sgx.ecall", max_fires=1),
                FaultRule(site="sgx.sealing.unseal", max_fires=1),
            ],
        )
        with faults.armed(plan):
            with pytest.raises(RecoveryExhausted) as excinfo:
                pipeline.infer(test_images)
        assert "unrecoverable" in str(excinfo.value)

    @pytest.mark.parametrize("seed", chaos_seeds())
    @pytest.mark.parametrize(
        "attestation_site", ["sgx.attestation.quote", "sgx.attestation.verify"]
    )
    def test_failing_reattestation_is_terminal(
        self, make_pipeline, test_images, seed, attestation_site
    ):
        pipeline = make_pipeline("batched")
        plan = FaultPlan(
            seed,
            rules=[
                FaultRule(site="sgx.ecall", max_fires=1),
                FaultRule(site=attestation_site, max_fires=1),
            ],
        )
        with faults.armed(plan):
            with pytest.raises(RecoveryExhausted) as excinfo:
                pipeline.infer(test_images)
        assert isinstance(excinfo.value.__cause__, AttestationError)

    @pytest.mark.parametrize("kind", ["encrypted", "batched"])
    def test_noise_exhaustion_mid_pipeline_is_typed(
        self, make_pipeline, test_images, kind
    ):
        """Injected budget exhaustion surfaces the same typed error a real
        refresh-free overflow would -- never garbage logits."""
        pipeline = make_pipeline(kind)
        plan = FaultPlan(0, rules=[FaultRule(site="he.noise.decrypt", max_fires=1)])
        with faults.armed(plan):
            with pytest.raises(NoiseBudgetExhausted):
                pipeline.infer(test_images)

    def test_deliberate_destroy_is_never_resurrected(
        self, make_pipeline, test_images
    ):
        """The supervisor restarts *crashed* enclaves only: an operator
        tearing the enclave down stays torn down."""
        from repro.errors import EnclaveNotInitialized

        pipeline = make_pipeline("batched")
        pipeline.enclave.destroy()
        with pytest.raises(EnclaveNotInitialized):
            pipeline.infer(test_images)
        assert pipeline.enclave.restarts == 0
