"""Fleet routing: the least-loaded pick, its deterministic tie-break, and
the pinned replica-assignment sequence of a seeded serving run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.client import AttestedClient
from repro.errors import RecoveryExhausted
from repro.serve import LoopConfig, ServeConfig, ServiceTimeModel, ServingLoop

MODEL = ServiceTimeModel(base_s=4e-3, per_image_s=5e-4)


class TestRoutePolicy:
    def test_ties_break_on_lowest_replica_id(self, make_server):
        fleet = make_server(fleet_size=3).fleet
        assert fleet.route("digits") == 0

    def test_least_loaded_wins(self, make_server):
        fleet = make_server(fleet_size=3).fleet
        fleet.note_dispatch(0, "digits", 4)
        fleet.note_dispatch(1, "digits", 2)
        assert fleet.route("digits") == 2
        fleet.note_dispatch(2, "digits", 8)
        assert fleet.route("digits") == 1
        assert fleet.dispatched_images() == {0: 4, 1: 2, 2: 8}

    def test_busy_and_exclude_filter_candidates(self, make_server):
        fleet = make_server(fleet_size=3).fleet
        assert fleet.route("digits", busy={0}) == 1
        assert fleet.route("digits", busy={0}, exclude=(1,)) == 2
        assert fleet.route("digits", busy={0, 1}, exclude=(2,)) is None

    def test_routing_table_lists_live_replicas_per_model(self, make_server):
        server = make_server(fleet_size=2)
        assert server.fleet.routing_table() == {"digits": (0, 1)}
        server.fleet.retire(0, "test")
        assert server.fleet.routing_table() == {"digits": (1,)}

    def test_retired_replica_never_routes(self, make_server):
        fleet = make_server(fleet_size=2).fleet
        fleet.retire(1, "test")
        fleet.retire(1, "again")  # idempotent
        assert fleet.route("digits", busy={0}) is None
        assert fleet.retired_replicas() == {1: "test"}
        with pytest.raises(RecoveryExhausted):
            fleet.replica(1)

    def test_authority_follows_lowest_live_id(self, make_server):
        fleet = make_server(fleet_size=3).fleet
        assert fleet.authority_id == 0
        fleet.retire(0, "test")
        assert fleet.authority_id == 1
        fleet.retire(1, "test")
        fleet.retire(2, "test")
        with pytest.raises(RecoveryExhausted):
            fleet.authority_id


class TestSeededAssignmentPins:
    def run_trace(self, make_server, verifier_for, models, *, seed):
        server = make_server(
            fleet_size=2, seed=seed, serve_config=ServeConfig(max_batch=2)
        )
        client = AttestedClient(
            server, verifier_for(server), b"\x42" * 32
        ).establish()
        loop = ServingLoop(server, LoopConfig(service_model=MODEL, window_s=0.01))
        ct = client.encrypt("digits", models.dataset.test_images[:1])
        tickets = [loop.submit("digits", ct, at_s=k * 1e-3) for k in range(8)]
        loop.run()
        assert all(t.served for t in tickets)
        return [entry["replica"] for entry in loop.flush_log]

    def test_same_seed_same_replica_assignment(
        self, make_server, verifier_for, models
    ):
        first = self.run_trace(make_server, verifier_for, models, seed=13)
        second = self.run_trace(make_server, verifier_for, models, seed=13)
        assert first == second
        # The fleet actually spreads the work: both replicas serve flushes.
        assert set(first) == {0, 1}

    def test_concurrent_flushes_pick_distinct_replicas(
        self, make_server, verifier_for, models
    ):
        """With two replicas free and two full groups queued at t=0, the
        loop dispatches both at once -- one flush per replica, overlapping
        in time."""
        server = make_server(fleet_size=2, serve_config=ServeConfig(max_batch=2))
        client = AttestedClient(
            server, verifier_for(server), b"\x42" * 32
        ).establish()
        loop = ServingLoop(server, LoopConfig(service_model=MODEL))
        ct = client.encrypt("digits", models.dataset.test_images[:1])
        for _ in range(4):
            loop.submit("digits", ct, at_s=0.0)
        loop.run()
        assert [e["replica"] for e in loop.flush_log] == [0, 1]
        first, second = loop.flush_log
        assert second["started_at_s"] < first["done_at_s"]

    def test_report_counts_replicas(self, make_server, verifier_for, models):
        server = make_server(fleet_size=2, serve_config=ServeConfig(max_batch=2))
        client = AttestedClient(
            server, verifier_for(server), b"\x42" * 32
        ).establish()
        loop = ServingLoop(server, LoopConfig(service_model=MODEL))
        ct = client.encrypt("digits", models.dataset.test_images[:1])
        loop.submit("digits", ct, at_s=0.0)
        loop.run()
        assert loop.report()["replicas"] == 2

    def test_single_replica_serving_is_unchanged(
        self, make_server, verifier_for, models
    ):
        """fleet_size=1 keeps the exact legacy timeline (the generalized
        queue-wait estimate reduces bit-exactly): one group at a time, each
        flush on replica 0."""
        server = make_server(serve_config=ServeConfig(max_batch=2))
        client = AttestedClient(
            server, verifier_for(server), b"\x42" * 32
        ).establish()
        loop = ServingLoop(server, LoopConfig(service_model=MODEL))
        ct = client.encrypt("digits", models.dataset.test_images[:1])
        for _ in range(4):
            loop.submit("digits", ct, at_s=0.0)
        loop.run()
        assert [e["replica"] for e in loop.flush_log] == [0, 0]
        first, second = loop.flush_log
        assert second["started_at_s"] == pytest.approx(first["done_at_s"])


class TestFailoverBitIdentity:
    def test_mid_run_kill_fails_over_bit_identically(
        self, make_server, verifier_for, models
    ):
        """Kill replica 0 between two runs of the same request stream: the
        survivor serves the repeat and every decrypted logit matches."""
        server = make_server(fleet_size=2)
        client = AttestedClient(
            server, verifier_for(server), b"\x42" * 32
        ).establish()
        images = models.dataset.test_images[:2]
        before = client.decrypt_logits(client.infer("digits", images))
        server.fleet.kill_replica(0)
        server.fleet.retire(0, "host crash")
        after = client.infer("digits", images)
        assert after.replica == 1
        assert np.array_equal(client.decrypt_logits(after), before)
