"""The attested-connection state machine: transitions, typed failures,
pinning, and crash-recovery semantics of :class:`repro.client.AttestedClient`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.client import AttestedClient, SessionState, key_fingerprint
from repro.core import PlaintextPipeline
from repro.errors import (
    ClientConnectError,
    ClientError,
    ClientStateError,
    QuoteVerificationError,
    ReproError,
    SessionPinError,
)
from repro.sgx import AttestationVerificationService


def make_client(server, verifier_for, entropy=b"\x42" * 32, **kwargs):
    return AttestedClient(server, verifier_for(server), entropy, **kwargs)


class TestStateMachine:
    def test_establish_walks_all_states(self, make_server, verifier_for):
        server = make_server(fleet_size=2)
        client = make_client(server, verifier_for)
        assert client.state is SessionState.CREATED
        descriptor = client.connect()
        assert client.state is SessionState.CONNECTED
        assert descriptor["models"] == ["digits"]
        assert descriptor["replicas"] == [0, 1]
        client.verify_quote()
        assert client.state is SessionState.QUOTE_VERIFIED
        fingerprint = client.pin_session()
        assert client.state is SessionState.SESSION_PINNED
        assert fingerprint == client.pinned_fingerprint
        client.activate()
        assert client.state is SessionState.READY
        assert client.connects == 1

    def test_out_of_order_transitions_are_typed(self, make_server, verifier_for):
        client = make_client(make_server(), verifier_for)
        with pytest.raises(ClientStateError):
            client.verify_quote()
        with pytest.raises(ClientStateError):
            client.pin_session()
        with pytest.raises(ClientStateError):
            client.activate()
        with pytest.raises(ClientStateError):
            client.encrypt("digits", np.zeros((1, 10, 10)))
        client.connect()
        with pytest.raises(ClientStateError):
            client.connect()  # already connected

    def test_client_errors_are_repro_errors(self):
        for err in (
            ClientError,
            ClientStateError,
            ClientConnectError,
            QuoteVerificationError,
            SessionPinError,
        ):
            assert issubclass(err, ReproError)

    def test_connect_failure_is_retryable(self, batching_params, verifier_for, q_sigmoid):
        from repro.core import EdgeServer

        server = EdgeServer(batching_params, seed=13)  # no models yet
        client = make_client(server, verifier_for)
        with pytest.raises(ClientConnectError):
            client.connect()
        assert client.state is SessionState.CREATED  # not terminal
        server.provision_model("digits", q_sigmoid)
        client.connect()
        assert client.state is SessionState.CONNECTED


class TestQuoteVerification:
    def test_wrong_mrenclave_is_terminal(self, make_server, verifier_for):
        server = make_server()
        client = make_client(
            server, verifier_for, expected_mrenclave="0" * 64
        )
        client.connect()
        with pytest.raises(QuoteVerificationError):
            client.verify_quote()
        assert client.state is SessionState.FAILED
        # Terminal: every further use is refused, including reconnect.
        with pytest.raises(ClientStateError):
            client.connect()
        with pytest.raises(ClientStateError):
            client.reconnect()
        with pytest.raises(ClientStateError):
            client.infer("digits", np.zeros((1, 10, 10)))

    def test_unregistered_platform_is_terminal(self, make_server):
        server = make_server()
        stranger = AttestationVerificationService()  # never saw this platform
        client = AttestedClient(server, stranger, b"\x42" * 32)
        client.connect()
        with pytest.raises(QuoteVerificationError):
            client.verify_quote()
        assert client.state is SessionState.FAILED


class TestSessionPinning:
    def test_pin_rejects_key_rotated_fleet(self, make_server, verifier_for):
        server = make_server(fleet_size=2)
        client = make_client(server, verifier_for).establish()
        before = client.pinned_fingerprint
        server.fleet.rotate_keys()
        with pytest.raises(SessionPinError):
            client.reconnect()
        assert client.state is SessionState.FAILED
        assert client.pinned_fingerprint == before  # the pin never moves
        with pytest.raises(ClientStateError):
            client.infer("digits", np.zeros((1, 10, 10)))

    def test_fingerprint_matches_delivered_public_key(
        self, make_server, verifier_for
    ):
        server = make_server()
        client = make_client(server, verifier_for).establish()
        assert client.pinned_fingerprint == key_fingerprint(
            client.session.encryptor.public_key
        )

    def test_reconnect_requires_prior_pin(self, make_server, verifier_for):
        client = make_client(make_server(), verifier_for)
        with pytest.raises(ClientStateError):
            client.reconnect()


class TestCrashRecovery:
    def test_reconnect_after_replica_crash_is_bit_identical(
        self, make_server, verifier_for, models
    ):
        server = make_server(fleet_size=2)
        client = make_client(server, verifier_for).establish()
        images = models.dataset.test_images[:2]
        before = client.decrypt_logits(client.infer("digits", images))

        # Host-level loss of the authority replica.
        authority = server.fleet.authority_id
        server.fleet.kill_replica(authority)
        server.fleet.retire(authority, "host crash")

        client.reconnect()
        assert client.state is SessionState.READY
        assert client.reconnects == 1
        after = client.decrypt_logits(client.infer("digits", images))
        assert np.array_equal(before, after)

    def test_predictions_match_plaintext_reference(
        self, make_server, verifier_for, models, q_sigmoid
    ):
        server = make_server(fleet_size=2)
        client = make_client(server, verifier_for).establish()
        images = models.dataset.test_images[:3]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        assert np.array_equal(
            client.decrypt_logits(client.infer("digits", images)), expected
        )
        assert np.array_equal(
            client.predict("digits", images), expected.argmax(axis=1)
        )

    def test_sdk_session_matches_enroll_user(self, make_server, verifier_for, models):
        """The SDK's READY session and the legacy enroll_user session hold
        the same fleet key pair: ciphertexts decrypt interchangeably."""
        server = make_server()
        client = make_client(server, verifier_for).establish()
        legacy = server.enroll_user(entropy=b"\x07" * 32, verifier=verifier_for(server))
        images = models.dataset.test_images[:1]
        result = server.infer(client.request("digits", images))
        assert np.array_equal(
            legacy.decrypt_logits(result), client.decrypt_logits(result)
        )
