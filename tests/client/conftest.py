"""Client-SDK fixtures: a fleet-backed edge deployment plus a trusting
verifier, mirroring the serving-layer fixtures (batching-capable params,
dimensionally reduced models)."""

from __future__ import annotations

import pytest

from repro.core import EdgeServer, parameters_for_pipeline, train_paper_models
from repro.sgx import AttestationVerificationService


@pytest.fixture(scope="session")
def models():
    return train_paper_models(
        train_size=300, test_size=60, epochs=4, image_size=10, channels=2, kernel_size=3
    )


@pytest.fixture(scope="session")
def q_sigmoid(models):
    return models.quantized_sigmoid()


@pytest.fixture(scope="session")
def batching_params(q_sigmoid):
    return parameters_for_pipeline(q_sigmoid, 256, batching=True)


@pytest.fixture()
def verifier_for():
    def make(srv):
        service = AttestationVerificationService()
        service.register_platform(srv.quoting)
        return service

    return make


@pytest.fixture()
def make_server(batching_params, q_sigmoid):
    def build(fleet_size=1, seed=13, serve_config=None):
        srv = EdgeServer(
            batching_params, seed=seed, serve_config=serve_config, fleet_size=fleet_size
        )
        srv.provision_model("digits", q_sigmoid)
        return srv

    return build
