"""Serving loop: continuous batching, admission control, priorities,
eviction, determinism, and bit-identity through the shared flush path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EdgeServer, PlaintextPipeline
from repro.errors import (
    DeadlineEvictedError,
    OverloadedError,
    QueueFullError,
    ServeError,
)
from repro.serve import (
    LoopConfig,
    ServeConfig,
    ServiceTimeModel,
    ServingLoop,
    poisson_trace,
)

#: Flush model used throughout: 4 ms fixed + 0.5 ms per image.
MODEL = ServiceTimeModel(base_s=4e-3, per_image_s=5e-4)


def make_loop(batching_params, q_sigmoid, session_for, *, max_batch=4, **cfg):
    srv = EdgeServer(
        batching_params, seed=13, serve_config=ServeConfig(max_batch=max_batch)
    )
    srv.provision_model("digits", q_sigmoid)
    session = session_for(srv)
    cfg.setdefault("service_model", MODEL)
    loop = ServingLoop(srv, LoopConfig(**cfg))
    return loop, session


class TestContinuousBatching:
    def test_arrivals_during_service_ride_the_next_group(
        self, batching_params, q_sigmoid, session_for, models
    ):
        """A full group flushes at t=0; arrivals landing while it is in
        flight coalesce and flush the instant the server frees up -- no
        fresh window, no pump()."""
        loop, session = make_loop(
            batching_params, q_sigmoid, session_for, max_batch=4, window_s=0.05
        )
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        for _ in range(4):
            loop.submit("digits", ct, at_s=0.0)
        in_flight = MODEL.flush_s(4)
        for k in range(4):
            loop.submit("digits", ct, at_s=in_flight * (k + 1) / 5)
        loop.run()
        assert loop.stats.flushes == 2
        first, second = loop.flush_log
        assert first["images"] == 4 and first["occupancy"] == 1.0
        assert second["images"] == 4
        # Continuous: the second flush starts exactly when the first ends.
        assert second["started_at_s"] == pytest.approx(first["done_at_s"])
        assert all(t.served for t in loop.tickets)

    def test_idle_loop_flushes_on_coalescing_deadline(
        self, batching_params, q_sigmoid, session_for, models
    ):
        loop, session = make_loop(
            batching_params, q_sigmoid, session_for, max_batch=8, window_s=0.02
        )
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        t1 = loop.submit("digits", ct, at_s=0.0)
        t2 = loop.submit("digits", ct, at_s=0.005)
        loop.run()
        assert loop.stats.flushes == 1
        assert loop.flush_log[0]["started_at_s"] == pytest.approx(0.02)
        assert t1.queue_wait_s == pytest.approx(0.02)
        assert t2.queue_wait_s == pytest.approx(0.015)

    def test_bit_identical_logits_through_the_loop(
        self, batching_params, q_sigmoid, session_for, models
    ):
        """FV arithmetic is exact: the loop's flush path may not change a
        single logit vs the plaintext integer reference."""
        loop, session = make_loop(batching_params, q_sigmoid, session_for, max_batch=4)
        images = models.dataset.test_images[:5]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        tickets = [
            loop.submit(
                "digits",
                session.encrypt("digits", images[i : i + 1]),
                at_s=0.001 * i,
            )
            for i in range(5)
        ]
        loop.run()
        for i, ticket in enumerate(tickets):
            assert np.array_equal(
                session.decrypt_logits(ticket.result()), expected[i : i + 1]
            )


class TestAdmissionControl:
    def test_overload_sheds_typed_and_bounds_the_queue(
        self, batching_params, q_sigmoid, session_for, models
    ):
        """Arrivals past the admission SLO shed with OverloadedError; the
        wait of every *served* request stays bounded by estimate quality,
        not by how much traffic arrived."""
        loop, session = make_loop(
            batching_params,
            q_sigmoid,
            session_for,
            max_batch=2,
            window_s=0.002,
            admit_wait_slo_s=0.012,
        )
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        tickets = [
            loop.submit("digits", ct, at_s=0.0002 * i, priority=1) for i in range(12)
        ]
        loop.run()
        shed = [t for t in tickets if isinstance(t.error, OverloadedError)]
        served = [t for t in tickets if t.served]
        assert shed and served
        assert loop.stats.shed_overload == len(shed)
        assert all(t.shed_reason == "overload" for t in shed)
        assert len(served) + len(shed) == 12
        # Shedding is what keeps the served tail bounded.
        slo = loop.config.admit_wait_slo_s
        assert all(
            t.queue_wait_s <= slo + MODEL.flush_s(loop.capacity) for t in served
        )

    def test_interactive_class_is_never_wait_shed(
        self, batching_params, q_sigmoid, session_for, models
    ):
        loop, session = make_loop(
            batching_params,
            q_sigmoid,
            session_for,
            max_batch=2,
            window_s=0.002,
            admit_wait_slo_s=0.012,
        )
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        tickets = [
            loop.submit("digits", ct, at_s=0.0002 * i, priority=0) for i in range(12)
        ]
        loop.run()
        assert loop.stats.shed_overload == 0
        assert all(t.served for t in tickets)

    def test_full_queue_sheds_queue_full(
        self, batching_params, q_sigmoid, session_for, models
    ):
        loop, session = make_loop(
            batching_params,
            q_sigmoid,
            session_for,
            max_batch=2,
            window_s=0.05,
            max_queue_depth=3,
            admit_wait_slo_s=10.0,
        )
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        tickets = [
            loop.submit("digits", ct, at_s=0.0001 * i, priority=2) for i in range(6)
        ]
        loop.run()
        full = [t for t in tickets if isinstance(t.error, QueueFullError)]
        assert full
        assert loop.stats.shed_queue_full == len(full)
        assert loop.stats.peak_queue_depth <= 3

    def test_interactive_evicts_under_full_queue(
        self, batching_params, q_sigmoid, session_for, models
    ):
        """A class-0 arrival at a full queue displaces the lowest-priority,
        latest-deadline queued request instead of being shed."""
        loop, session = make_loop(
            batching_params,
            q_sigmoid,
            session_for,
            max_batch=2,
            window_s=0.05,
            max_queue_depth=2,
            admit_wait_slo_s=10.0,
        )
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        # Fill the server: a full group flushes immediately at t=0.
        for _ in range(2):
            loop.submit("digits", ct, at_s=0.0, priority=1)
        # These two queue up behind the in-flight flush, filling the queue.
        batch = [
            loop.submit("digits", ct, at_s=0.0005 + 0.0001 * i, priority=2)
            for i in range(2)
        ]
        vip = loop.submit("digits", ct, at_s=0.001, priority=0)
        loop.run(until_s=0.002)
        evicted = [t for t in batch if isinstance(t.error, DeadlineEvictedError)]
        assert len(evicted) == 1
        assert vip.admitted
        assert loop.stats.evicted == 1
        loop.run()
        assert vip.served

    def test_malformed_request_resolves_typed_not_raises(
        self, batching_params, q_sigmoid, session_for, models
    ):
        """Traffic conditions never raise out of the loop: a malformed
        ciphertext fails its ticket and lands in the scheduler's complete
        rejection accounting (the `malformed` reason)."""
        loop, session = make_loop(batching_params, q_sigmoid, session_for)
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        bad = loop.submit("digits", ct[0, :, :, :], at_s=0.0)
        loop.run()
        assert isinstance(bad.error, ServeError)
        assert bad.shed_reason == "rejected"
        assert loop.stats.rejected == 1
        assert loop.scheduler.stats.rejected_malformed == 1

    def test_submit_validates_caller_bugs_eagerly(
        self, batching_params, q_sigmoid, session_for, models
    ):
        loop, session = make_loop(batching_params, q_sigmoid, session_for)
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        with pytest.raises(ServeError):
            loop.submit("digits", ct, priority=3)
        with pytest.raises(ServeError):
            loop.submit("digits", ct, deadline_s=-1.0)
        with pytest.raises(ServeError):
            loop.submit("digits", ct, slo_deadline_s=0.0)


class TestPrioritiesAndEviction:
    def test_higher_priority_flushes_first(
        self, batching_params, q_sigmoid, session_for, models
    ):
        """Within a backlog, slot groups fill in priority order: the batch-
        class request waits for the flush after the interactive ones."""
        loop, session = make_loop(
            batching_params,
            q_sigmoid,
            session_for,
            max_batch=2,
            window_s=0.001,
            admit_wait_slo_s=10.0,
        )
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        # Occupy the server so the three classes queue behind one flush.
        for _ in range(2):
            loop.submit("digits", ct, at_s=0.0, priority=1)
        low = loop.submit("digits", ct, at_s=0.0003, priority=2)
        mid = loop.submit("digits", ct, at_s=0.0004, priority=1)
        high = loop.submit("digits", ct, at_s=0.0005, priority=0)
        loop.run()
        assert all(t.served for t in (low, mid, high))
        # First group: the two highest classes; the class-2 request rides
        # the second flush despite arriving first.
        assert high.completed_at_s == mid.completed_at_s
        assert low.completed_at_s > high.completed_at_s

    def test_hopeless_slo_deadline_evicts_typed(
        self, batching_params, q_sigmoid, session_for, models
    ):
        """A queued request whose hard deadline no future flush can meet is
        evicted the moment that becomes certain, freeing its slots."""
        loop, session = make_loop(
            batching_params,
            q_sigmoid,
            session_for,
            max_batch=2,
            window_s=0.001,
            admit_wait_slo_s=10.0,
        )
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        for _ in range(2):
            loop.submit("digits", ct, at_s=0.0)
        doomed = loop.submit("digits", ct, at_s=0.0005, slo_deadline_s=0.003)
        patient = loop.submit("digits", ct, at_s=0.0005, slo_deadline_s=10.0)
        loop.run()
        assert isinstance(doomed.error, DeadlineEvictedError)
        assert loop.stats.evicted == 1
        assert patient.served


class TestDeterminismAndReporting:
    def test_same_trace_same_report(
        self, batching_params, q_sigmoid, session_for, models
    ):
        """The loop's virtual timeline makes the whole SLO report a pure
        function of (trace, config) -- replay and compare bit-for-bit."""
        trace = poisson_trace(23, rate_rps=300.0, duration_s=0.03, image_pool=3)
        reports = []
        for _ in range(2):
            loop, session = make_loop(
                batching_params, q_sigmoid, session_for, max_batch=4, window_s=0.005
            )
            pool = [
                session.encrypt("digits", models.dataset.test_images[i : i + 1])
                for i in range(3)
            ]
            for a in trace:
                loop.offer(a, pool[a.image_index])
            loop.run()
            reports.append(loop.report())
        assert reports[0] == reports[1]

    def test_run_until_advances_no_further(
        self, batching_params, q_sigmoid, session_for, models
    ):
        loop, session = make_loop(
            batching_params, q_sigmoid, session_for, max_batch=8, window_s=0.02
        )
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        ticket = loop.submit("digits", ct, at_s=0.0)
        loop.run(until_s=0.01)
        assert loop.now_s == pytest.approx(0.01)
        assert not ticket.done()
        loop.run()
        assert ticket.served

    def test_report_accounts_every_ticket(
        self, batching_params, q_sigmoid, session_for, models
    ):
        loop, session = make_loop(
            batching_params,
            q_sigmoid,
            session_for,
            max_batch=2,
            window_s=0.002,
            admit_wait_slo_s=0.012,
        )
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        for i in range(8):
            loop.submit("digits", ct, at_s=0.0002 * i, priority=1)
        loop.run()
        report = loop.report()
        assert report["arrivals"] == 8
        assert report["served"] + report["shed"] == 8
        assert report["shed_rate"] == pytest.approx(report["shed"] / 8)
        assert report["served_images"] == report["served"]
        assert 0.0 < report["occupancy_mean"] <= 1.0
        assert report["p50_queue_wait_s"] <= report["p99_queue_wait_s"]
        assert report["images_per_s"] > 0
