"""Scheduler metrics: request counters, latency split, rejections."""

from __future__ import annotations

import pytest

from repro.core import EdgeServer
from repro.errors import UnknownModelError
from repro.obs.metrics import use_registry


@pytest.fixture()
def instrumented(batching_params, q_sigmoid, verifier_for):
    """A server + session built *inside* a fresh registry, so every
    instrumented site (provisioning, serving, SGX, HE) writes to it."""
    with use_registry() as reg:
        srv = EdgeServer(batching_params, seed=13)
        srv.provision_model("digits", q_sigmoid)
        session = srv.enroll_user(entropy=b"\x42" * 32, verifier=verifier_for(srv))
        yield reg, srv, session


def _serve(srv, session, models, count):
    images = models.dataset.test_images
    for i in range(count):
        srv.scheduler.submit("digits", session.encrypt("digits", images[i : i + 1]))
    srv.scheduler.drain("digits")


class TestServeInstrumentation:
    def test_request_counter_and_latency_phases(self, instrumented, models):
        reg, srv, session = instrumented
        _serve(srv, session, models, 3)
        flat = reg.collect().flat()
        assert flat['repro_serve_requests_total{model="digits"}'] == 3.0
        # One latency observation per request and per phase; queue wait and
        # compute are separate series under the same family.
        for phase in ("queue", "compute"):
            key = f'repro_serve_request_latency_seconds_count{{model="digits",phase="{phase}"}}'
            assert flat[key] == 3.0
        compute_sum = flat[
            'repro_serve_request_latency_seconds_sum{model="digits",phase="compute"}'
        ]
        assert compute_sum > 0.0

    def test_batch_occupancy_histogram(self, instrumented, models):
        reg, srv, session = instrumented
        _serve(srv, session, models, 2)
        snapshot = reg.collect()
        family = snapshot.family("repro_serve_batch_occupancy_ratio")
        assert family is not None
        (sample,) = family["samples"]
        assert sample["count"] == 1  # one flush
        assert 0.0 < sample["sum"] <= 1.0  # fill fraction of one flush

    def test_queue_depth_gauge_returns_to_zero(self, instrumented, models):
        reg, srv, session = instrumented
        _serve(srv, session, models, 2)
        assert reg.collect().flat()["repro_serve_queue_depth"] == 0.0

    def test_unknown_model_rejection_counted(self, instrumented, models):
        reg, srv, session = instrumented
        with pytest.raises(UnknownModelError):
            srv.scheduler.submit(
                "nope", session.encrypt("digits", models.dataset.test_images[:1])
            )
        flat = reg.collect().flat()
        assert flat['repro_serve_rejected_total{reason="unknown_model"}'] == 1.0

    def test_sgx_and_he_families_populated(self, instrumented, models):
        reg, srv, session = instrumented
        _serve(srv, session, models, 2)
        flat = reg.collect().flat()
        assert flat['repro_sgx_ecall_total{ecall="activation_pool_simd"}'] == 1.0
        assert flat['repro_he_noise_budget_bits{layer="conv",model="digits"}'] > 0.0
        assert flat['repro_he_noise_budget_bits{layer="fc",model="digits"}'] > 0.0
        assert flat['repro_he_kernel_profile{mode="fused"}'] == 1.0
