"""Request scheduler: packing correctness, queueing discipline, tracing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EdgeServer, PlaintextPipeline, parameters_for_pipeline
from repro.errors import (
    BatchTooLargeError,
    PipelineError,
    QueueFullError,
    ResponseNotReady,
    ServeError,
    UnknownModelError,
)
from repro.obs import reconcile
from repro.serve import PACKED_SCHEME, RequestScheduler, ServeConfig


class TestPackingCorrectness:
    def test_packed_matches_sequential_and_plaintext(
        self, server, session, q_sigmoid, models
    ):
        """One packed flush must be bit-exact with one-request-at-a-time
        serving and with the plaintext integer reference -- FV arithmetic is
        exact, so slot packing may not change a single logit."""
        images = models.dataset.test_images[:5]
        sequential = np.concatenate(
            [
                session.decrypt_logits(
                    server.infer("digits", session.encrypt("digits", images[i : i + 1]))
                )
                for i in range(len(images))
            ]
        )
        responses = [
            server.scheduler.submit("digits", session.encrypt("digits", images[i : i + 1]))
            for i in range(len(images))
        ]
        assert server.scheduler.drain() == len(images)
        packed = np.concatenate(
            [session.decrypt_logits(r.result()) for r in responses]
        )
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        assert np.array_equal(packed, sequential)
        assert np.array_equal(packed, expected)

    def test_responses_keep_submit_order_per_request(
        self, server, session, q_sigmoid, models
    ):
        """Each response carries *its own* image's logits: distinct images
        submitted concurrently come back unswapped, in submission order."""
        images = models.dataset.test_images[:4]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        responses = [
            server.scheduler.submit("digits", session.encrypt("digits", images[i : i + 1]))
            for i in range(len(images))
        ]
        server.scheduler.drain("digits")
        for i, response in enumerate(responses):
            assert response.request_id == i
            logits = session.decrypt_logits(response.result())
            assert np.array_equal(logits[0], expected[i])

    def test_multi_image_requests_pack_with_singles(
        self, server, session, q_sigmoid, models
    ):
        images = models.dataset.test_images[:5]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        r_pair = server.scheduler.submit("digits", session.encrypt("digits", images[:2]))
        r_triple = server.scheduler.submit("digits", session.encrypt("digits", images[2:5]))
        server.scheduler.drain()
        assert np.array_equal(session.decrypt_logits(r_pair.result()), expected[:2])
        assert np.array_equal(session.decrypt_logits(r_triple.result()), expected[2:5])
        assert r_pair.result().packed_batch == 5
        assert r_triple.result().packed_batch == 5


class TestQueueDiscipline:
    def test_result_before_flush_raises(self, server, session, models):
        response = server.scheduler.submit(
            "digits", session.encrypt("digits", models.dataset.test_images[:1])
        )
        assert not response.done()
        with pytest.raises(ResponseNotReady):
            response.result()

    def test_queue_full_rejects_with_backpressure(
        self, batching_params, q_sigmoid, session_for, models
    ):
        srv = EdgeServer(
            batching_params, seed=13, serve_config=ServeConfig(max_queue_depth=2)
        )
        srv.provision_model("digits", q_sigmoid)
        session = session_for(srv)
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        srv.scheduler.submit("digits", ct)
        srv.scheduler.submit("digits", ct)
        with pytest.raises(QueueFullError):
            srv.scheduler.submit("digits", ct)
        assert srv.scheduler.stats.rejected_queue_full == 1
        assert srv.scheduler.queue_depth == 2
        assert srv.scheduler.drain() == 2

    def test_flush_on_capacity(self, batching_params, q_sigmoid, session_for, models):
        """The bucket flushes itself the moment it reaches packing capacity,
        without pump() or drain()."""
        srv = EdgeServer(
            batching_params, seed=13, serve_config=ServeConfig(max_batch=3)
        )
        srv.provision_model("digits", q_sigmoid)
        session = session_for(srv)
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        first = [srv.scheduler.submit("digits", ct) for _ in range(3)]
        assert all(r.done() for r in first)
        assert srv.scheduler.queue_depth == 0
        assert srv.scheduler.stats.flushes == 1

    def test_overflow_request_closes_open_batch_first(
        self, batching_params, q_sigmoid, session_for, models
    ):
        srv = EdgeServer(
            batching_params, seed=13, serve_config=ServeConfig(max_batch=3)
        )
        srv.provision_model("digits", q_sigmoid)
        session = session_for(srv)
        single = session.encrypt("digits", models.dataset.test_images[:1])
        pair = session.encrypt("digits", models.dataset.test_images[1:3])
        early = [srv.scheduler.submit("digits", single) for _ in range(2)]
        late = srv.scheduler.submit("digits", pair)
        # 2 + 2 > 3: the two early singles flushed as their own batch...
        assert all(r.done() for r in early)
        assert early[0].result().packed_batch == 2
        # ...and the pair waits for its own flush.
        assert not late.done()
        srv.scheduler.drain()
        assert late.result().packed_batch == 2

    def test_flush_on_deadline_under_simulated_clock(self, server, session, models):
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        response = server.scheduler.submit("digits", ct, deadline_s=0.5)
        clock = server.platform.clock
        clock.elapse_real(0.4)
        assert server.scheduler.pump() == 0
        assert not response.done()
        clock.elapse_real(0.2)
        assert server.scheduler.pump() == 1
        assert response.done()

    def test_default_window_drives_pump(self, batching_params, q_sigmoid, session_for, models):
        srv = EdgeServer(
            batching_params, seed=13, serve_config=ServeConfig(window_s=0.01)
        )
        srv.provision_model("digits", q_sigmoid)
        session = session_for(srv)
        srv.scheduler.submit(
            "digits", session.encrypt("digits", models.dataset.test_images[:1])
        )
        srv.platform.clock.elapse_real(0.02)
        assert srv.scheduler.pump() == 1


class TestRejectionPaths:
    def test_unknown_model(self, server, session, models):
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        with pytest.raises(UnknownModelError):
            server.scheduler.submit("faces", ct)
        assert server.scheduler.stats.rejected_unknown_model == 1

    def test_unknown_model_is_a_pipeline_error(self, server, session, models):
        """Typed serve errors stay inside the library's existing hierarchy."""
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        with pytest.raises(PipelineError):
            server.infer("faces", ct)

    def test_oversized_batch(self, batching_params, q_sigmoid, session_for, models):
        srv = EdgeServer(
            batching_params, seed=13, serve_config=ServeConfig(max_batch=2)
        )
        srv.provision_model("digits", q_sigmoid)
        session = session_for(srv)
        ct = session.encrypt("digits", models.dataset.test_images[:3])
        with pytest.raises(BatchTooLargeError):
            srv.scheduler.submit("digits", ct)
        assert srv.scheduler.stats.rejected_oversized == 1

    def test_non_batching_params_rejected(self, q_sigmoid):
        params = parameters_for_pipeline(q_sigmoid, 256)  # power-of-two t
        srv = EdgeServer(params, seed=13)
        srv.provision_model("digits", q_sigmoid)
        with pytest.raises(ServeError):
            srv.scheduler  # noqa: B018 - the property builds the scheduler

    def test_malformed_request_shape(self, server, session, models):
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        with pytest.raises(ServeError):
            server.scheduler.submit("digits", ct[0, :, :, :])


class TestServerFacade:
    def test_infer_pack_kwarg(self, server, session, q_sigmoid, models):
        images = models.dataset.test_images[:1]
        result = server.infer(
            "digits", session.encrypt("digits", images), pack=True
        )
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        assert np.array_equal(session.decrypt_logits(result), expected)
        assert result.packed_batch == 1
        assert result.request_id is not None

    def test_pack_true_rides_existing_batch(self, server, session, q_sigmoid, models):
        """A pack=True call drains the whole bucket: earlier submissions
        resolve on the same flush."""
        images = models.dataset.test_images[:3]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        early = [
            server.scheduler.submit("digits", session.encrypt("digits", images[i : i + 1]))
            for i in range(2)
        ]
        result = server.infer(
            "digits", session.encrypt("digits", images[2:3]), pack=True
        )
        assert result.packed_batch == 3
        assert all(r.done() for r in early)
        assert np.array_equal(session.decrypt_logits(early[0].result()), expected[:1])

    def test_deadline_without_pack_rejected(self, server, session, models):
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        with pytest.raises(PipelineError):
            server.infer("digits", ct, deadline_ms=5.0)

    def test_legacy_positional_call_still_works(self, server, session, q_sigmoid, models):
        images = models.dataset.test_images[:1]
        result = server.infer("digits", session.encrypt("digits", images))
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        assert np.array_equal(session.decrypt_logits(result), expected)


class TestObservability:
    def test_packed_trace_structure(self, server, session, models):
        for i in range(3):
            server.scheduler.submit(
                "digits", session.encrypt("digits", models.dataset.test_images[i : i + 1])
            )
        server.scheduler.drain()
        trace = next(
            t for t in reversed(server.platform.tracer.traces) if t.name == PACKED_SCHEME
        )
        reconcile(trace)
        stage_names = [c.name for c in trace.children if c.kind == "stage"]
        assert stage_names == ["pack", "conv", "sgx_activation_pool", "fc", "unpack"]
        request_spans = [c for c in trace.children if c.name == "serve/request"]
        assert len(request_spans) == 3
        for span in request_spans:
            assert span.attrs["queue_wait_s"] >= 0.0
            assert span.attrs["queue_depth_at_submit"] >= 0
        assert trace.attrs["batch"] == 3

    def test_served_result_carries_serving_metadata(self, server, session, models):
        response = server.scheduler.submit(
            "digits", session.encrypt("digits", models.dataset.test_images[:1])
        )
        server.platform.clock.elapse_real(0.1)
        server.scheduler.drain()
        result = response.result()
        assert result.packed_batch == 1
        assert result.queue_wait_s == pytest.approx(0.1)

    def test_stats_accumulate(self, server, session, models):
        for i in range(4):
            server.scheduler.submit(
                "digits", session.encrypt("digits", models.dataset.test_images[i : i + 1])
            )
        server.scheduler.drain()
        stats = server.scheduler.stats
        assert stats.submitted == 4
        assert stats.served == 4
        assert stats.flushes == 1
        assert stats.packed_images == 4
        assert stats.peak_queue_depth == 4


class TestSchedulerConstruction:
    def test_standalone_construction(self, server):
        scheduler = RequestScheduler(server, ServeConfig(max_batch=8))
        assert scheduler.capacity == 8
        assert scheduler.slot_count == server.params.poly_degree

    def test_capacity_clamped_to_slots(self, server):
        scheduler = RequestScheduler(server, ServeConfig(max_batch=10**6))
        assert scheduler.capacity == server.params.poly_degree

    def test_bad_config_rejected(self):
        with pytest.raises(ServeError):
            ServeConfig(max_queue_depth=0)
        with pytest.raises(ServeError):
            ServeConfig(max_batch=0)
        with pytest.raises(ServeError):
            ServeConfig(window_s=-1.0)


class TestAccountingBugfixes:
    """Pins for three accounting bugs the serving loop surfaced: silent
    malformed rejections, queue depth sampled after the overflow flush, and
    isolation re-runs inflating the flush count."""

    def _rejected_malformed_metric(self):
        from repro.obs import metrics

        family = metrics.registry().counter(
            "repro_serve_rejected_total",
            "Requests rejected before queueing, by reason.",
            ("reason",),
        )
        return family.labels(reason="malformed")

    def test_malformed_rejections_are_counted(self, server, session, models):
        """Every malformed shape rejection lands in ServeStats and the
        ``reason="malformed"`` counter -- not just the raised error."""
        metric = self._rejected_malformed_metric()
        before_metric = metric.value
        before_stats = server.scheduler.stats.rejected_malformed
        ct = session.encrypt("digits", models.dataset.test_images[:2])
        malformed = [
            ct[0, :, :, :],  # non-4D
            ct[:, :0, :, :],  # wrong channel count
            ct[:0, :, :, :],  # empty batch
        ]
        for bad in malformed:
            with pytest.raises(ServeError):
                server.scheduler.submit("digits", bad)
        assert server.scheduler.stats.rejected_malformed - before_stats == 3
        assert metric.value - before_metric == 3
        # Malformed is its own reason: the unknown-model path is separate.
        with pytest.raises(UnknownModelError):
            server.scheduler.submit("nope", ct)
        assert metric.value - before_metric == 3

    def test_queue_depth_sampled_at_entry_not_after_overflow_flush(
        self, batching_params, q_sigmoid, session_for, models
    ):
        """An overflow request that forces the open batch to flush first must
        still record the depth it actually saw on entry (the two queued
        singles), not the post-flush depth of zero."""
        srv = EdgeServer(
            batching_params, seed=13, serve_config=ServeConfig(max_batch=3)
        )
        srv.provision_model("digits", q_sigmoid)
        session = session_for(srv)
        single = session.encrypt("digits", models.dataset.test_images[:1])
        pair = session.encrypt("digits", models.dataset.test_images[1:3])
        for _ in range(2):
            srv.scheduler.submit("digits", single)
        late = srv.scheduler.submit("digits", pair)  # 2+2 > 3: flushes early
        srv.scheduler.drain()
        spans = [
            c
            for t in srv.platform.tracer.traces
            if t.name == PACKED_SCHEME
            for c in t.children
            if c.name == "serve/request"
        ]
        by_id = {s.attrs["request_id"]: s.attrs["queue_depth_at_submit"] for s in spans}
        assert by_id[late.request_id] == 2
        assert by_id[0] == 0 and by_id[1] == 1

    def test_isolation_counts_isolated_requests_not_flushes(
        self, server, session, q_sigmoid, models
    ):
        """A dead packed flush that recovers via per-request isolation is ONE
        flush plus N isolated re-runs -- and the re-runs emit the same
        latency/occupancy observations the happy path would have."""
        from repro import faults
        from repro.faults import FaultPlan, FaultRule
        from repro.obs import metrics

        latency = metrics.registry().histogram(
            "repro_serve_request_latency_seconds",
            "Per-request serving latency by phase.",
            ("model", "phase"),
        ).labels(model="digits", phase="queue")
        occupancy = metrics.registry().histogram(
            "repro_serve_batch_occupancy_ratio",
            "Packed-flush slot occupancy.",
            ("model",),
        ).labels(model="digits")
        lat_before, occ_before = latency.count, occupancy.count
        images = models.dataset.test_images[:3]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        responses = [
            server.scheduler.submit("digits", session.encrypt("digits", images[i : i + 1]))
            for i in range(3)
        ]
        stats = server.scheduler.stats
        flushes_before = stats.flushes
        # One fire kills the packed pass; every isolated re-run succeeds.
        plan = FaultPlan(11, rules=[FaultRule(site="he.noise.decrypt", max_fires=1)])
        with faults.armed(plan):
            server.scheduler.drain()
        # The dead packed pass is one isolation, not 3 extra flushes:
        # `flushes` counts successful packed passes only.
        assert stats.flushes - flushes_before == 0
        assert stats.isolated_requests == 3
        assert stats.isolations == 1
        assert stats.served == 3 and stats.failed == 0
        # Same observation cardinality as a clean 3-request flush: one
        # queue-latency sample per request, occupancy per (re)run.
        assert latency.count - lat_before == 3
        assert occupancy.count - occ_before == 3
        for i, response in enumerate(responses):
            logits = session.decrypt_logits(response.result())
            assert np.array_equal(logits[0], expected[i])
