"""The canonical serving API surface: frozen InferenceRequest validation,
the InferenceResult alias, and the pinned deprecation shims on
``EdgeServer.infer``."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import EdgeServer, PlaintextPipeline
from repro.core.server import ServedResult
from repro.errors import PipelineError, ServeError
from repro.serve import InferenceRequest, InferenceResult


class TestInferenceRequest:
    def test_frozen(self, session, models):
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        request = InferenceRequest(model="digits", ciphertext=ct)
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.pack = True

    def test_validation(self, session, models):
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        with pytest.raises(ServeError):
            InferenceRequest(model="", ciphertext=ct)
        with pytest.raises(ServeError):
            InferenceRequest(model="digits", ciphertext=ct, deadline_ms=5.0)
        with pytest.raises(ServeError):
            InferenceRequest(model="digits", ciphertext=ct, pack=True, deadline_ms=-1)
        with pytest.raises(ServeError):
            InferenceRequest(model="digits", ciphertext=ct, priority=-1)
        with pytest.raises(ServeError):
            InferenceRequest(model="digits", ciphertext=ct, slo_deadline_ms=0.0)

    def test_unit_conversions(self, session, models):
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        request = InferenceRequest(
            model="digits", ciphertext=ct, pack=True, deadline_ms=5.0,
            slo_deadline_ms=40.0,
        )
        assert request.deadline_s == pytest.approx(0.005)
        assert request.slo_deadline_s == pytest.approx(0.040)

    def test_served_result_is_the_inference_result(self):
        assert ServedResult is InferenceResult


class TestCanonicalInfer:
    def test_request_form_serves_without_warning(
        self, server, session, models, q_sigmoid, recwarn
    ):
        images = models.dataset.test_images[:2]
        request = InferenceRequest(
            model="digits", ciphertext=session.encrypt("digits", images)
        )
        result = server.infer(request)
        assert not [w for w in recwarn if w.category is DeprecationWarning]
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        assert np.array_equal(session.decrypt_logits(result), expected)
        assert result.replica == 0

    def test_request_form_rejects_extra_arguments(self, server, session, models):
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        request = InferenceRequest(model="digits", ciphertext=ct)
        with pytest.raises(PipelineError):
            server.infer(request, ct)
        with pytest.raises(PipelineError):
            server.infer(request, pack=True)
        with pytest.raises(PipelineError):
            server.infer(request, deadline_ms=5.0)


class TestDeprecatedInfer:
    def test_legacy_positional_form_warns_and_works(
        self, server, session, models, q_sigmoid
    ):
        images = models.dataset.test_images[:2]
        ct = session.encrypt("digits", images)
        with pytest.warns(DeprecationWarning, match="InferenceRequest"):
            result = server.infer("digits", ct)
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        assert np.array_equal(session.decrypt_logits(result), expected)

    def test_legacy_pack_form_warns_and_works(
        self, batching_params, q_sigmoid, session_for, models
    ):
        from repro.serve import ServeConfig

        srv = EdgeServer(
            batching_params, seed=13, serve_config=ServeConfig(max_batch=4)
        )
        srv.provision_model("digits", q_sigmoid)
        session = session_for(srv)
        images = models.dataset.test_images[:1]
        ct = session.encrypt("digits", images)
        with pytest.warns(DeprecationWarning, match="InferenceRequest"):
            result = srv.infer("digits", ct, pack=True, deadline_ms=5.0)
        expected = PlaintextPipeline(q_sigmoid).infer(images).logits
        assert np.array_equal(session.decrypt_logits(result), expected)
        assert result.request_id is not None

    def test_legacy_deadline_without_pack_is_refused(self, server, session, models):
        ct = session.encrypt("digits", models.dataset.test_images[:1])
        with pytest.warns(DeprecationWarning):
            with pytest.raises(PipelineError):
                server.infer("digits", ct, deadline_ms=5.0)
