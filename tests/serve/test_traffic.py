"""Traffic generator: seeded determinism, trace shape, merge discipline."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve import bursty_trace, merge, poisson_trace


class TestDeterminism:
    def test_same_seed_identical_trace(self):
        """The SLO bench's reproducibility rests on this: a trace is a pure
        function of (seed, parameters), arrival for arrival."""
        kwargs = dict(rate_rps=500.0, duration_s=0.5, users=2000, image_pool=8)
        a = poisson_trace(42, **kwargs)
        b = poisson_trace(42, **kwargs)
        assert a.arrivals == b.arrivals

    def test_different_seed_different_trace(self):
        kwargs = dict(rate_rps=500.0, duration_s=0.5)
        assert poisson_trace(1, **kwargs).arrivals != poisson_trace(2, **kwargs).arrivals

    def test_bursty_same_seed_identical(self):
        kwargs = dict(
            base_rate_rps=300.0, burst_factor=4.0, period_s=0.1, duration_s=0.5
        )
        assert bursty_trace(7, **kwargs).arrivals == bursty_trace(7, **kwargs).arrivals


class TestPoissonShape:
    def test_realized_rate_near_nominal(self):
        trace = poisson_trace(11, rate_rps=1000.0, duration_s=2.0)
        assert 0.85 * 1000.0 <= trace.rate_rps <= 1.15 * 1000.0

    def test_times_sorted_and_in_range(self):
        trace = poisson_trace(11, rate_rps=800.0, duration_s=1.0)
        times = [a.t_s for a in trace]
        assert times == sorted(times)
        assert all(0.0 <= t < 1.0 for t in times)
        assert [a.seq for a in trace] == list(range(len(trace)))

    def test_thousands_of_simulated_users(self):
        trace = poisson_trace(3, rate_rps=5000.0, duration_s=1.0, users=3000)
        assert all(0 <= a.user_id < 3000 for a in trace)
        assert trace.users > 1000  # 5000 draws over 3000 ids

    def test_priorities_and_pool_indices_in_range(self):
        trace = poisson_trace(
            5, rate_rps=2000.0, duration_s=0.5, image_pool=4,
            priority_weights=(0.2, 0.5, 0.3),
        )
        assert {a.priority for a in trace} <= {0, 1, 2}
        assert all(0 <= a.image_index < 4 for a in trace)

    def test_slo_deadline_carried(self):
        trace = poisson_trace(5, rate_rps=100.0, duration_s=0.2, slo_deadline_s=0.05)
        assert all(a.slo_deadline_s == 0.05 for a in trace)


class TestBurstyShape:
    def test_on_phase_denser_than_off_phase(self):
        trace = bursty_trace(
            13, base_rate_rps=500.0, burst_factor=4.0, period_s=0.2,
            on_fraction=0.5, duration_s=2.0,
        )
        on = sum(1 for a in trace if (a.t_s % 0.2) < 0.1)
        off = len(trace) - on
        assert on > 2 * off  # nominal ratio 4:1; generous band

    def test_factor_one_is_flat(self):
        trace = bursty_trace(
            13, base_rate_rps=500.0, burst_factor=1.0, period_s=0.2, duration_s=1.0
        )
        assert 0.8 * 500.0 <= trace.rate_rps <= 1.2 * 500.0


class TestMergeAndShift:
    def test_merge_orders_and_reseqs(self):
        a = poisson_trace(1, rate_rps=300.0, duration_s=0.5)
        b = bursty_trace(
            2, base_rate_rps=300.0, burst_factor=4.0, period_s=0.1, duration_s=0.3
        )
        m = merge(a, b)
        times = [x.t_s for x in m]
        assert times == sorted(times)
        assert [x.seq for x in m] == list(range(len(m)))
        assert len(m) == len(a) + len(b)

    def test_shifted_translates_times(self):
        a = poisson_trace(1, rate_rps=300.0, duration_s=0.2)
        s = a.shifted(1.5)
        assert [x.t_s for x in s] == pytest.approx([x.t_s + 1.5 for x in a])

    def test_merge_empty_rejected(self):
        with pytest.raises(ServeError):
            merge()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rate_rps=0.0, duration_s=1.0),
            dict(rate_rps=10.0, duration_s=0.0),
            dict(rate_rps=10.0, duration_s=1.0, users=0),
            dict(rate_rps=10.0, duration_s=1.0, image_pool=0),
            dict(rate_rps=10.0, duration_s=1.0, images_per_request=0),
            dict(rate_rps=10.0, duration_s=1.0, priority_weights=()),
            dict(rate_rps=10.0, duration_s=1.0, priority_weights=(-1.0, 2.0)),
        ],
    )
    def test_bad_poisson_params(self, kwargs):
        with pytest.raises(ServeError):
            poisson_trace(0, **kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(burst_factor=0.5),
            dict(period_s=0.0),
            dict(on_fraction=0.0),
            dict(on_fraction=1.0),
        ],
    )
    def test_bad_bursty_params(self, kwargs):
        base = dict(base_rate_rps=10.0, period_s=0.1, duration_s=1.0)
        base.update(kwargs)
        with pytest.raises(ServeError):
            bursty_trace(0, **base)
