"""Serving-layer fixtures: a batching-capable edge deployment.

The scheduler needs a CRT-batching plaintext modulus, so these fixtures
build their own parameter set (``batching=True``) instead of reusing the
core fixtures' power-of-two modulus.  Server and session are
function-scoped: scheduler tests mutate queue state and the simulated
clock.
"""

from __future__ import annotations

import pytest

from repro.core import EdgeServer, parameters_for_pipeline, train_paper_models
from repro.sgx import AttestationVerificationService


@pytest.fixture(scope="session")
def models():
    return train_paper_models(
        train_size=300, test_size=60, epochs=4, image_size=10, channels=2, kernel_size=3
    )


@pytest.fixture(scope="session")
def q_sigmoid(models):
    return models.quantized_sigmoid()


@pytest.fixture(scope="session")
def batching_params(q_sigmoid):
    return parameters_for_pipeline(q_sigmoid, 256, batching=True)


@pytest.fixture()
def server(batching_params, q_sigmoid):
    srv = EdgeServer(batching_params, seed=13)
    srv.provision_model("digits", q_sigmoid)
    return srv


@pytest.fixture()
def verifier_for():
    def make(srv):
        service = AttestationVerificationService()
        service.register_platform(srv.quoting)
        return service

    return make


@pytest.fixture()
def session(server, verifier_for):
    return server.enroll_user(entropy=b"\x42" * 32, verifier=verifier_for(server))


@pytest.fixture()
def session_for(verifier_for):
    """Enroll a user against an ad-hoc server (tests that need their own
    ServeConfig build their own EdgeServer)."""

    def make(srv):
        return srv.enroll_user(entropy=b"\x42" * 32, verifier=verifier_for(srv))

    return make
