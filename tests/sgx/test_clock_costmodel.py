"""Tests for the simulated clock and the SGX cost model."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.sgx import SgxCostModel, bare_metal_cost_model, paper_cost_model
from repro.sgx.clock import ClockWindow, SimClock
from repro.sgx.costmodel import PAGE_SIZE


class TestSimClock:
    def test_starts_at_zero(self):
        clock = SimClock()
        assert clock.now_s == 0.0

    def test_charge_accumulates_by_category(self):
        clock = SimClock()
        clock.charge(0.5, "a")
        clock.charge(0.25, "a")
        clock.charge(1.0, "b")
        assert clock.overhead_s == pytest.approx(1.75)
        assert clock.snapshot() == {"a": 0.75, "b": 1.0}

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge(-1.0, "x")

    def test_negative_elapse_rejected(self):
        with pytest.raises(ValueError):
            SimClock().elapse_real(-1.0)

    def test_measure_real_times_block(self):
        clock = SimClock()
        with clock.measure_real():
            sum(range(10000))
        assert clock.real_s > 0
        assert clock.overhead_s == 0

    def test_measure_real_survives_exception(self):
        clock = SimClock()
        with pytest.raises(RuntimeError):
            with clock.measure_real():
                raise RuntimeError("boom")
        assert clock.real_s > 0

    def test_now_is_sum(self):
        clock = SimClock()
        clock.elapse_real(1.0)
        clock.charge(2.0, "x")
        assert clock.now_s == pytest.approx(3.0)

    def test_reset(self):
        clock = SimClock()
        clock.elapse_real(1.0)
        clock.charge(2.0, "x")
        clock.reset()
        assert clock.now_s == 0.0
        assert clock.snapshot() == {}


class TestClockWindow:
    def test_measures_delta_only(self):
        clock = SimClock()
        clock.charge(5.0, "before")
        window = ClockWindow(clock)
        clock.charge(1.0, "during")
        clock.elapse_real(0.5)
        assert window.overhead_s == pytest.approx(1.0)
        assert window.real_s == pytest.approx(0.5)
        assert window.elapsed_s == pytest.approx(1.5)

    def test_restart(self):
        clock = SimClock()
        window = ClockWindow(clock)
        clock.charge(1.0, "x")
        window.restart()
        assert window.elapsed_s == 0.0


class TestCostModel:
    def test_paper_defaults_validate(self):
        model = paper_cost_model()
        assert model.epc_compute_factor == pytest.approx(2.45)

    def test_rejects_speedup_factor(self):
        with pytest.raises(ParameterError):
            SgxCostModel(epc_compute_factor=0.9)

    def test_rejects_negative_costs(self):
        with pytest.raises(ParameterError):
            SgxCostModel(ecall_overhead_s=-1.0)

    def test_rejects_tiny_epc(self):
        with pytest.raises(ParameterError):
            SgxCostModel(epc_bytes=100)

    def test_compute_overhead_scales(self):
        model = SgxCostModel(epc_compute_factor=3.0)
        assert model.compute_overhead_s(2.0) == pytest.approx(4.0)

    def test_pages_for_rounds_up(self):
        model = paper_cost_model()
        assert model.pages_for(1) == 1
        assert model.pages_for(PAGE_SIZE) == 1
        assert model.pages_for(PAGE_SIZE + 1) == 2
        assert model.pages_for(0) == 0

    def test_calibration_keygen_ratio(self):
        """The inside/outside keygen ratio of Table I is the compute factor."""
        model = paper_cost_model()
        outside = 20.201e-3
        inside = outside * model.epc_compute_factor + model.ecall_overhead_s
        assert inside / outside == pytest.approx(49.593e-3 / 20.201e-3, rel=0.05)

    def test_bare_metal_is_cheaper(self):
        paper, bare = paper_cost_model(), bare_metal_cost_model()
        assert bare.ecall_overhead_s < paper.ecall_overhead_s
        assert bare.epc_compute_factor < paper.epc_compute_factor
