"""Remote attestation: the report -> quote -> verification chain."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import AttestationError
from repro.sgx import (
    AttestationVerificationService,
    Enclave,
    QuotingService,
    Report,
    SgxPlatform,
    ecall,
)


class KeyVendor(Enclave):
    @ecall
    def ping(self) -> str:
        return "pong"

    @ecall
    def prepare_report(self, user_data: bytes) -> bytes:
        """Trusted code approving data for attestation."""
        self.attest(user_data)
        return user_data


def attested_report(handle, user_data: bytes):
    handle.ecall("prepare_report", user_data)
    return handle.create_report(user_data)


@pytest.fixture()
def platform():
    return SgxPlatform(platform_secret=b"\x04" * 32)


@pytest.fixture()
def quoting(platform):
    return QuotingService(platform, platform_id="edge-server-1")


@pytest.fixture()
def verifier(quoting):
    service = AttestationVerificationService()
    service.register_platform(quoting)
    return service


@pytest.fixture()
def handle(platform):
    return platform.load_enclave(KeyVendor)


class TestReports:
    def test_report_carries_user_data(self, handle):
        report = attested_report(handle, b"he-public-key-bytes")
        assert report.user_data == b"he-public-key-bytes"
        assert report.measurement == handle.measurement

    def test_report_mac_verifies_on_platform(self, handle, platform):
        report = attested_report(handle, b"data")
        assert report.verify_mac(platform.report_key)

    def test_report_mac_fails_elsewhere(self, handle):
        other = SgxPlatform(platform_secret=b"\x05" * 32)
        report = attested_report(handle, b"data")
        assert not report.verify_mac(other.report_key)

    def test_forged_report_rejected_by_quoting(self, quoting, handle):
        forged = Report(measurement=handle.measurement, user_data=b"evil", mac=bytes(32))
        with pytest.raises(AttestationError):
            quoting.quote(forged)

    def test_host_cannot_report_unapproved_data(self, handle):
        """EREPORT is enclave-initiated: the host cannot attest bytes the
        trusted code never produced."""
        from repro.errors import EnclaveError

        with pytest.raises(EnclaveError):
            handle.create_report(b"host-invented-payload")

    def test_approval_is_single_use(self, handle):
        attested_report(handle, b"once")
        from repro.errors import EnclaveError

        with pytest.raises(EnclaveError):
            handle.create_report(b"once")


class TestQuotes:
    def test_end_to_end_verification(self, handle, quoting, verifier):
        report = attested_report(handle, b"payload")
        quote = quoting.quote(report)
        verified = verifier.verify(quote, expected_mrenclave=handle.measurement.mrenclave)
        assert verified.user_data == b"payload"
        assert verified.platform_id == "edge-server-1"

    def test_unregistered_platform_rejected(self, handle, quoting):
        fresh_verifier = AttestationVerificationService()
        quote = quoting.quote(attested_report(handle, b"x"))
        with pytest.raises(AttestationError):
            fresh_verifier.verify(quote)

    def test_tampered_user_data_rejected(self, handle, quoting, verifier):
        quote = quoting.quote(attested_report(handle, b"honest"))
        tampered = dataclasses.replace(quote, user_data=b"evil!!")
        with pytest.raises(AttestationError):
            verifier.verify(tampered)

    def test_tampered_signature_rejected(self, handle, quoting, verifier):
        quote = quoting.quote(attested_report(handle, b"x"))
        tampered = dataclasses.replace(quote, signature=bytes(32))
        with pytest.raises(AttestationError):
            verifier.verify(tampered)

    def test_wrong_mrenclave_rejected(self, handle, quoting, verifier):
        quote = quoting.quote(attested_report(handle, b"x"))
        with pytest.raises(AttestationError):
            verifier.verify(quote, expected_mrenclave="0" * 64)

    def test_wrong_mrsigner_rejected(self, handle, quoting, verifier):
        quote = quoting.quote(attested_report(handle, b"x"))
        with pytest.raises(AttestationError):
            verifier.verify(quote, expected_mrsigner="0" * 64)

    def test_backdoored_enclave_caught(self, platform, quoting, verifier, handle):
        """The defining property: modified trusted code cannot impersonate."""

        class KeyVendorEvil(Enclave):
            @ecall
            def ping(self) -> str:
                return "pong"  # same behaviour, different code identity

            @ecall
            def prepare_report(self, user_data: bytes) -> bytes:
                self.attest(user_data)
                return user_data

        evil = platform.load_enclave(KeyVendorEvil)
        quote = quoting.quote(attested_report(evil, b"x"))
        with pytest.raises(AttestationError):
            verifier.verify(quote, expected_mrenclave=handle.measurement.mrenclave)

    def test_attestation_charges_clock(self, platform, handle, quoting):
        before = platform.clock.snapshot().get("attestation", 0.0)
        quoting.quote(attested_report(handle, b"x"))
        after = platform.clock.snapshot()["attestation"]
        assert after > before


class TestSideChannelLog:
    def test_ecalls_logged(self, handle):
        handle.ecall("ping")
        handle.ecall("ping")
        assert handle.side_channel.count("ecall") == 2

    def test_report_logged(self, handle):
        attested_report(handle, b"x")
        assert handle.side_channel.count("report") == 1

    def test_trace_signature_is_deterministic(self, platform):
        def run():
            h = platform.load_enclave(KeyVendor)
            h.ecall("ping")
            return h.side_channel.trace_signature()

        assert run() == run()

    def test_bytes_crossed_accounted(self, handle):
        handle.ecall("ping")
        assert handle.side_channel.total_bytes_crossed() == len("pong")
