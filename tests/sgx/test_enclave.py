"""Enclave lifecycle, the ECALL boundary, cost accounting, FakeSGX mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EnclaveError, EnclaveNotInitialized
from repro.sgx import Enclave, SgxCostModel, SgxPlatform, ecall, estimate_bytes
from repro.sgx.costmodel import PAGE_SIZE


class Arithmetic(Enclave):
    """Tiny trusted service used across these tests."""

    def __init__(self, bias: int = 0) -> None:
        super().__init__()
        self.bias = bias

    @ecall
    def add(self, a: int, b: int) -> int:
        return a + b + self.bias

    @ecall
    def sum_array(self, values: np.ndarray) -> float:
        return float(values.sum())

    @ecall
    def churn_memory(self, byte_count: int) -> None:
        self.touch_working_set(byte_count)

    def private_helper(self) -> str:
        return "not callable from outside"


@pytest.fixture()
def platform():
    return SgxPlatform(platform_secret=b"\x01" * 32)


@pytest.fixture()
def handle(platform):
    return platform.load_enclave(Arithmetic)


class TestLoading:
    def test_load_and_call(self, handle):
        assert handle.ecall("add", 20, 22) == 42

    def test_constructor_args_forwarded(self, platform):
        biased = platform.load_enclave(Arithmetic, bias=100)
        assert biased.ecall("add", 1, 1) == 102

    def test_rejects_non_enclave_class(self, platform):
        class NotAnEnclave:
            pass

        with pytest.raises(EnclaveError):
            platform.load_enclave(NotAnEnclave)

    def test_measurement_is_stable(self, platform):
        a = platform.load_enclave(Arithmetic)
        b = platform.load_enclave(Arithmetic)
        assert a.measurement == b.measurement

    def test_different_code_different_measurement(self, platform):
        class Arithmetic2(Enclave):
            @ecall
            def add(self, a, b):
                return a + b + 1  # backdoored variant

        a = platform.load_enclave(Arithmetic)
        b = platform.load_enclave(Arithmetic2)
        assert a.measurement.mrenclave != b.measurement.mrenclave

    def test_signer_key_changes_mrsigner_only(self, platform):
        a = platform.load_enclave(Arithmetic, signer_key=b"vendor-a")
        b = platform.load_enclave(Arithmetic, signer_key=b"vendor-b")
        assert a.measurement.mrenclave == b.measurement.mrenclave
        assert a.measurement.mrsigner != b.measurement.mrsigner


class TestEcallBoundary:
    def test_only_decorated_methods_callable(self, handle):
        with pytest.raises(EnclaveError):
            handle.ecall("private_helper")

    def test_unknown_method_rejected(self, handle):
        with pytest.raises(EnclaveError):
            handle.ecall("nonexistent")

    def test_destroyed_handle_rejected(self, handle):
        handle.destroy()
        with pytest.raises(EnclaveNotInitialized):
            handle.ecall("add", 1, 2)

    def test_transition_cost_charged(self, platform, handle):
        before = platform.clock.snapshot().get("sgx_transition", 0.0)
        handle.ecall("add", 1, 2)
        after = platform.clock.snapshot()["sgx_transition"]
        assert after - before == pytest.approx(platform.cost_model.ecall_overhead_s)

    def test_marshalling_proportional_to_bytes(self, platform, handle):
        small = np.zeros(10, dtype=np.int64)
        large = np.zeros(10000, dtype=np.int64)
        before = platform.clock.snapshot().get("sgx_marshalling", 0.0)
        handle.ecall("sum_array", small)
        mid = platform.clock.snapshot()["sgx_marshalling"]
        handle.ecall("sum_array", large)
        after = platform.clock.snapshot()["sgx_marshalling"]
        assert (after - mid) > (mid - before) * 100

    def test_compute_overhead_charged(self, platform, handle):
        handle.ecall("sum_array", np.ones(500_000))
        snapshot = platform.clock.snapshot()
        assert snapshot["sgx_epc_compute"] > 0
        assert snapshot["sgx_epc_compute"] == pytest.approx(
            snapshot["compute"] * (platform.cost_model.epc_compute_factor - 1.0),
            rel=0.2,  # enclave-create compute time is negligible but nonzero
        )

    def test_results_are_real(self, handle, platform):
        """The simulator must not fake results -- trusted code really runs."""
        rng = np.random.default_rng(3)
        values = rng.normal(size=1000)
        assert handle.ecall("sum_array", values) == pytest.approx(values.sum())

    def test_working_set_paging(self):
        platform = SgxPlatform(
            cost_model=SgxCostModel(epc_bytes=16 * PAGE_SIZE)
        )
        handle = platform.load_enclave(Arithmetic)
        handle.ecall("churn_memory", 64 * PAGE_SIZE)
        assert platform.epc.stats.evictions > 0


class TestFakeSgx:
    def test_same_results(self, platform):
        trusted = platform.load_enclave(Arithmetic)
        fake = platform.load_enclave(Arithmetic, trusted=False)
        assert trusted.ecall("add", 3, 4) == fake.ecall("add", 3, 4)

    def test_no_overhead_charged(self):
        platform = SgxPlatform()
        fake = platform.load_enclave(Arithmetic, trusted=False)
        fake.ecall("sum_array", np.ones(100_000))
        snapshot = platform.clock.snapshot()
        assert "sgx_transition" not in snapshot
        assert "sgx_marshalling" not in snapshot
        assert "sgx_epc_compute" not in snapshot

    def test_real_time_still_measured(self):
        platform = SgxPlatform()
        fake = platform.load_enclave(Arithmetic, trusted=False)
        fake.ecall("sum_array", np.ones(100_000))
        assert platform.clock.real_s > 0


class TestEstimateBytes:
    def test_numpy(self):
        assert estimate_bytes(np.zeros(10, dtype=np.int64)) == 80

    def test_scalars(self):
        assert estimate_bytes(5) == 8
        assert estimate_bytes(5.0) == 8
        assert estimate_bytes(True) == 1
        assert estimate_bytes(None) == 0

    def test_strings_and_bytes(self):
        assert estimate_bytes("abcd") == 4
        assert estimate_bytes(b"abcd") == 4

    def test_containers(self):
        assert estimate_bytes([1, 2.0, "xyz"]) == 8 + 8 + 3
        assert estimate_bytes({"k": 1}) == 1 + 8

    def test_byte_size_protocol_preferred(self):
        class Sized:
            def byte_size(self):
                return 1234

        assert estimate_bytes(Sized()) == 1234

    def test_ciphertext_size(self, platform):
        from repro.he import (
            Context,
            Encryptor,
            KeyGenerator,
            ScalarEncoder,
            small_parameter_options,
        )

        context = Context(small_parameter_options()[256])
        rng = np.random.default_rng(0)
        keys = KeyGenerator(context, rng).generate()
        ct = Encryptor(context, keys.public, rng).encrypt(ScalarEncoder(context).encode(5))
        assert estimate_bytes(ct) == ct.data.nbytes
