"""EPC manager: residency, LRU eviction, thrashing, cost accounting."""

from __future__ import annotations

import pytest

from repro.errors import EnclaveMemoryError
from repro.sgx import SgxCostModel
from repro.sgx.clock import SimClock
from repro.sgx.costmodel import PAGE_SIZE
from repro.sgx.epc import EpcManager


def make_epc(pages: int):
    model = SgxCostModel(epc_bytes=pages * PAGE_SIZE)
    clock = SimClock()
    return EpcManager(model, clock), clock


class TestAllocation:
    def test_allocate_free_roundtrip(self):
        epc, _ = make_epc(8)
        handle = epc.allocate(3 * PAGE_SIZE)
        assert epc.allocated_bytes == 3 * PAGE_SIZE
        epc.free(handle)
        assert epc.allocated_bytes == 0

    def test_negative_allocation_rejected(self):
        epc, _ = make_epc(8)
        with pytest.raises(EnclaveMemoryError):
            epc.allocate(-1)

    def test_touch_unknown_handle_rejected(self):
        epc, _ = make_epc(8)
        with pytest.raises(EnclaveMemoryError):
            epc.touch(42)

    def test_double_free_is_noop(self):
        epc, _ = make_epc(8)
        handle = epc.allocate(PAGE_SIZE)
        epc.free(handle)
        epc.free(handle)


class TestResidency:
    def test_touch_faults_pages_in(self):
        epc, _ = make_epc(8)
        handle = epc.allocate(3 * PAGE_SIZE)
        epc.touch(handle)
        assert epc.resident_bytes == 3 * PAGE_SIZE
        assert epc.stats.faults == 3

    def test_second_touch_is_free(self):
        epc, clock = make_epc(8)
        handle = epc.allocate(3 * PAGE_SIZE)
        epc.touch(handle)
        faults_before = epc.stats.faults
        overhead_before = clock.overhead_s
        epc.touch(handle)
        assert epc.stats.faults == faults_before
        assert clock.overhead_s == overhead_before

    def test_fits_exactly_no_eviction(self):
        epc, _ = make_epc(4)
        handle = epc.allocate(4 * PAGE_SIZE)
        epc.touch(handle)
        assert epc.stats.evictions == 0


class TestEviction:
    def test_lru_eviction_under_pressure(self):
        epc, _ = make_epc(4)
        a = epc.allocate(3 * PAGE_SIZE)
        b = epc.allocate(3 * PAGE_SIZE)
        epc.touch(a)
        epc.touch(b)  # must evict 2 pages of a
        assert epc.stats.evictions == 2
        assert epc.resident_bytes == 4 * PAGE_SIZE

    def test_evicted_pages_refault(self):
        epc, _ = make_epc(4)
        a = epc.allocate(3 * PAGE_SIZE)
        b = epc.allocate(3 * PAGE_SIZE)
        epc.touch(a)
        epc.touch(b)
        faults_before = epc.stats.faults
        # 2 pages of a were evicted; refaulting them evicts a's last resident
        # page before its turn, so the full 3-page set faults back in.
        epc.touch(a)
        assert epc.stats.faults - faults_before == 3

    def test_free_releases_residency(self):
        epc, _ = make_epc(4)
        a = epc.allocate(4 * PAGE_SIZE)
        epc.touch(a)
        epc.free(a)
        assert epc.resident_bytes == 0

    def test_paging_charges_clock(self):
        epc, clock = make_epc(2)
        a = epc.allocate(2 * PAGE_SIZE)
        b = epc.allocate(2 * PAGE_SIZE)
        epc.touch(a)
        before = clock.snapshot().get("epc_paging", 0.0)
        epc.touch(b)
        after = clock.snapshot()["epc_paging"]
        # 2 evictions + 2 loads charged.
        assert after - before == pytest.approx(epc.cost_model.paging_overhead_s(4))


class TestThrashing:
    def test_oversized_allocation_thrashes_every_touch(self):
        epc, clock = make_epc(4)
        big = epc.allocate(10 * PAGE_SIZE)
        epc.touch(big)
        assert epc.stats.evictions == 10
        assert epc.stats.loads == 10
        first_overhead = clock.overhead_s
        epc.touch(big)  # no caching possible: full cost again
        assert clock.overhead_s == pytest.approx(2 * first_overhead)

    def test_working_set_below_epc_does_not_thrash(self):
        epc, clock = make_epc(100)
        h = epc.allocate(50 * PAGE_SIZE)
        epc.touch(h)
        epc.touch(h)
        assert epc.stats.evictions == 0
