"""Sealed storage: round-trips, identity binding, tamper detection."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import SealingError
from repro.sgx import Enclave, SealingPolicy, SgxPlatform, ecall, seal, unseal


class Vault(Enclave):
    @ecall
    def seal_secret(self, secret: bytes, policy_name: str = "mrenclave"):
        policy = SealingPolicy(policy_name)
        return self.seal(secret, policy)

    @ecall
    def unseal_secret(self, blob) -> bytes:
        return self.unseal(blob)


@pytest.fixture()
def platform():
    return SgxPlatform(platform_secret=b"\x02" * 32)


class TestSealUnsealFunctions:
    def test_roundtrip(self):
        blob = seal(b"hello", b"secret", "mre", "mrs")
        assert unseal(blob, b"secret", "mre", "mrs") == b"hello"

    def test_empty_payload(self):
        blob = seal(b"", b"secret", "mre", "mrs")
        assert unseal(blob, b"secret", "mre", "mrs") == b""

    def test_ciphertext_differs_from_plaintext(self):
        blob = seal(b"hello world!", b"secret", "mre", "mrs")
        assert blob.ciphertext != b"hello world!"

    def test_nonce_randomizes(self):
        a = seal(b"x", b"secret", "mre", "mrs")
        b = seal(b"x", b"secret", "mre", "mrs")
        assert a.ciphertext != b.ciphertext or a.nonce != b.nonce

    def test_wrong_platform_rejected(self):
        blob = seal(b"x", b"secret-a", "mre", "mrs")
        with pytest.raises(SealingError):
            unseal(blob, b"secret-b", "mre", "mrs")

    def test_wrong_enclave_rejected_under_mrenclave_policy(self):
        blob = seal(b"x", b"secret", "mre-1", "mrs")
        with pytest.raises(SealingError):
            unseal(blob, b"secret", "mre-2", "mrs")

    def test_mrsigner_policy_shares_across_enclaves(self):
        blob = seal(b"x", b"secret", "mre-1", "mrs", SealingPolicy.MRSIGNER)
        assert unseal(blob, b"secret", "mre-2", "mrs") == b"x"

    def test_mrsigner_policy_rejects_other_vendor(self):
        blob = seal(b"x", b"secret", "mre", "mrs-1", SealingPolicy.MRSIGNER)
        with pytest.raises(SealingError):
            unseal(blob, b"secret", "mre", "mrs-2")

    def test_tampered_ciphertext_detected(self):
        blob = seal(b"attack at dawn", b"secret", "mre", "mrs")
        flipped = bytes([blob.ciphertext[0] ^ 1]) + blob.ciphertext[1:]
        tampered = dataclasses.replace(blob, ciphertext=flipped)
        with pytest.raises(SealingError):
            unseal(tampered, b"secret", "mre", "mrs")

    def test_tampered_tag_detected(self):
        blob = seal(b"x", b"secret", "mre", "mrs")
        tampered = dataclasses.replace(blob, tag=bytes(32))
        with pytest.raises(SealingError):
            unseal(tampered, b"secret", "mre", "mrs")

    def test_large_payload(self):
        payload = bytes(range(256)) * 1000
        blob = seal(payload, b"secret", "mre", "mrs")
        assert unseal(blob, b"secret", "mre", "mrs") == payload


class TestEnclaveSealing:
    def test_enclave_roundtrip(self, platform):
        vault = platform.load_enclave(Vault)
        blob = vault.ecall("seal_secret", b"model-key")
        assert vault.ecall("unseal_secret", blob) == b"model-key"

    def test_other_enclave_cannot_unseal(self, platform):
        class Impostor(Enclave):
            @ecall
            def try_unseal(self, blob) -> bytes:
                return self.unseal(blob)

        vault = platform.load_enclave(Vault)
        impostor = platform.load_enclave(Impostor)
        blob = vault.ecall("seal_secret", b"model-key")
        with pytest.raises(SealingError):
            impostor.ecall("try_unseal", blob)

    def test_other_platform_cannot_unseal(self, platform):
        other = SgxPlatform(platform_secret=b"\x03" * 32)
        vault_a = platform.load_enclave(Vault)
        vault_b = other.load_enclave(Vault)
        blob = vault_a.ecall("seal_secret", b"model-key")
        with pytest.raises(SealingError):
            vault_b.ecall("unseal_secret", blob)

    def test_mrsigner_policy_across_versions(self, platform):
        vault = platform.load_enclave(Vault)
        blob = vault.ecall("seal_secret", b"k", "mrsigner")

        class VaultV2(Vault):
            """Upgraded vault: different MRENCLAVE, same signer."""

        v2 = platform.load_enclave(VaultV2)
        assert v2.ecall("unseal_secret", blob) == b"k"
