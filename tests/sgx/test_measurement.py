"""Enclave measurement: code identity semantics."""

from __future__ import annotations

from repro.sgx import Enclave, ecall, measure, measure_code
from repro.sgx.measurement import measure_signer


class SampleEnclave(Enclave):
    @ecall
    def noop(self) -> None:
        return None


class TestMeasureCode:
    def test_deterministic(self):
        assert measure_code(SampleEnclave) == measure_code(SampleEnclave)

    def test_hex_digest_shape(self):
        digest = measure_code(SampleEnclave)
        assert len(digest) == 64
        int(digest, 16)  # parses as hex

    def test_distinct_classes_distinct_measurements(self):
        class OtherEnclave(Enclave):
            @ecall
            def noop(self) -> None:
                return None

        assert measure_code(SampleEnclave) != measure_code(OtherEnclave)

    def test_sourceless_class_falls_back(self):
        # Dynamically built classes have no retrievable source; the
        # measurement must still be stable rather than crash.
        dynamic = type("Dynamic", (Enclave,), {"marker": 1})
        a = measure_code(dynamic)
        b = measure_code(dynamic)
        assert a == b and len(a) == 64

    def test_dynamic_attribute_change_changes_measurement(self):
        a = type("Dyn", (Enclave,), {"marker": 1})
        b = type("Dyn", (Enclave,), {"marker": 2, "extra": 3})
        assert measure_code(a) != measure_code(b)


class TestMeasureSigner:
    def test_signer_binding(self):
        assert measure_signer(b"vendor-a") != measure_signer(b"vendor-b")
        assert measure_signer(b"vendor-a") == measure_signer(b"vendor-a")


class TestMeasureBundle:
    def test_components(self):
        m = measure(SampleEnclave, signer_key=b"vendor")
        assert m.mrenclave == measure_code(SampleEnclave)
        assert m.mrsigner == measure_signer(b"vendor")

    def test_str_is_truncated_preview(self):
        text = str(measure(SampleEnclave))
        assert "MRENCLAVE=" in text and "..." in text
