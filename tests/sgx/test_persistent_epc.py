"""Persistent in-enclave allocations and the FakeSGX no-op guarantees."""

from __future__ import annotations

import pytest

from repro.sgx import Enclave, SgxCostModel, SgxPlatform, ecall
from repro.sgx.costmodel import PAGE_SIZE


class ResidentModel(Enclave):
    def __init__(self, pages: int) -> None:
        super().__init__()
        self.pages = pages
        self._handle: int | None = None

    @ecall
    def serve(self) -> None:
        if self._handle is None:
            self._handle = self.epc_reserve(self.pages * PAGE_SIZE)
        self.epc_touch(self._handle)

    @ecall
    def transient(self, pages: int) -> None:
        self.touch_working_set(pages * PAGE_SIZE)


def platform_with(pages: int) -> SgxPlatform:
    return SgxPlatform(cost_model=SgxCostModel(epc_bytes=pages * PAGE_SIZE))


class TestPersistentAllocations:
    def test_resident_model_free_after_warmup(self):
        platform = platform_with(32)
        enclave = platform.load_enclave(ResidentModel, 16)
        enclave.ecall("serve")
        faults_after_warmup = platform.epc.stats.faults
        enclave.ecall("serve")
        enclave.ecall("serve")
        assert platform.epc.stats.faults == faults_after_warmup

    def test_oversized_model_refaults_every_call(self):
        platform = platform_with(8)
        enclave = platform.load_enclave(ResidentModel, 64)
        enclave.ecall("serve")
        before = platform.epc.stats.faults
        enclave.ecall("serve")
        assert platform.epc.stats.faults - before >= 64

    def test_transient_working_set_refaults(self):
        platform = platform_with(32)
        enclave = platform.load_enclave(ResidentModel, 1)
        enclave.ecall("transient", 4)
        before = platform.epc.stats.faults
        enclave.ecall("transient", 4)
        # Transient sets are freed per call, so they fault back in each time
        # (4 working-set pages + the ECALL argument page).
        assert platform.epc.stats.faults - before >= 4

    def test_pressure_between_allocations(self):
        """A big transient set evicts the resident model, which refaults."""
        platform = platform_with(16)
        enclave = platform.load_enclave(ResidentModel, 12)
        enclave.ecall("serve")
        enclave.ecall("transient", 12)  # evicts most of the model
        before = platform.epc.stats.faults
        enclave.ecall("serve")
        assert platform.epc.stats.faults > before


class TestFakeSgxNoops:
    def test_reserve_returns_null_handle(self):
        platform = platform_with(8)
        fake = platform.load_enclave(ResidentModel, 1000, trusted=False)
        fake.ecall("serve")  # would thrash badly if charged
        assert platform.epc.stats.faults == 0
        assert platform.clock.overhead_s == 0.0

    def test_transient_noop(self):
        platform = platform_with(8)
        fake = platform.load_enclave(ResidentModel, 1, trusted=False)
        fake.ecall("transient", 1000)
        assert platform.epc.stats.faults == 0

    def test_epc_touch_null_handle_is_safe(self):
        platform = platform_with(8)
        enclave = platform.load_enclave(ResidentModel, 1)
        enclave._instance.epc_touch(0)  # the FakeSGX sentinel handle


class TestUnattachedEnclave:
    def test_protected_helpers_require_platform(self):
        from repro.errors import EnclaveNotInitialized

        orphan = ResidentModel(1)
        with pytest.raises(EnclaveNotInitialized):
            orphan.touch_working_set(PAGE_SIZE)
        with pytest.raises(EnclaveNotInitialized):
            _ = orphan.measurement
