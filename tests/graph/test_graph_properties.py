"""Property-style tests over seeded random graphs.

Pure compiler-level checks (no ciphertexts): random tiny quantized models
— including planted zero / identity / constant operands — and random pass
selections in random orderings must give an idempotent, order-independent
compiler that never grows the graph or its estimated noise consumption,
and whose parameter advice always leaves positive per-layer headroom.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import parameters_for_pipeline
from repro.errors import ParameterError
from repro.graph import ir
from repro.graph.optimizer import PASS_PORTFOLIO, compile_graph
from repro.graph.passes import PASS_ORDER, select_parameters
from repro.he.noise import NoiseEstimator
from repro.nn.quantize import QuantizedCNN

SEEDS = range(12)


def _random_model(rng: np.random.Generator) -> QuantizedCNN:
    """A tiny random QuantizedCNN; weights may contain planted structure."""
    pure_he = bool(rng.integers(2))
    channels = int(rng.integers(1, 3))
    filters = int(rng.integers(1, 3))
    k = int(rng.choice([2, 3]))
    image = int(rng.integers(k + 2, k + 5))
    out = image - k + 1
    window = 2 if out % 2 == 0 else 1
    flat_dim = filters * (out // window) ** 2
    conv = rng.integers(-4, 5, size=(filters, channels, k, k))
    dense = rng.integers(-4, 5, size=(flat_dim, 3))
    structure = rng.integers(4)
    if structure == 1:  # planted zero operands
        conv[:, 0, 0, 0] = 0
        dense[: max(1, flat_dim // 4), :] = 0
    elif structure == 2:  # identity-ish taps (degenerate for zero_tap)
        conv[...] = 0
        conv[:, 0, 0, 0] = 1
    elif structure == 3:  # constant operands
        conv[...] = 2
        dense[...] = 1
    return QuantizedCNN(
        conv_weight=conv,
        conv_bias=rng.integers(-3, 4, size=(filters,)),
        dense_weight=dense,
        dense_bias=rng.integers(-3, 4, size=(3,)),
        input_scale=15,
        conv_weight_scale=4.0,
        dense_weight_scale=4.0,
        act_scale=15,
        activation="square" if pure_he else "sigmoid",
        pool="scaled_mean" if pure_he else "mean",
        pool_window=window,
    )


def _random_graph(seed: int):
    rng = np.random.default_rng(1000 + seed)
    quantized = _random_model(rng)
    try:
        params = parameters_for_pipeline(quantized, 256)
    except ParameterError:
        pytest.skip("random model does not fit n=256 parameters")
    if quantized.activation == "square":
        graph = ir.build_cryptonets_graph(quantized, params)
    else:
        mode = str(rng.choice(["batched", "per_pixel", "fake"]))
        graph = ir.build_hybrid_graph(quantized, params, mode=mode)
    level = str(rng.choice(["safe", "aggressive"]))
    pool = PASS_PORTFOLIO[level]
    size = int(rng.integers(1, len(pool) + 1))
    passes = tuple(rng.permutation(pool)[:size])
    return quantized, graph, level, passes, rng


@pytest.mark.parametrize("seed", SEEDS)
class TestCompilerProperties:
    def test_idempotent(self, seed):
        _, graph, level, passes, _ = _random_graph(seed)
        once, _ = compile_graph(graph, level=level, passes=passes)
        twice, _ = compile_graph(once, level=level, passes=passes)
        assert once.signature() == twice.signature()

    def test_order_independent(self, seed):
        _, graph, level, passes, rng = _random_graph(seed)
        shuffled = tuple(rng.permutation(passes))
        a, report_a = compile_graph(graph, level=level, passes=passes)
        b, report_b = compile_graph(graph, level=level, passes=shuffled)
        assert a.signature() == b.signature()
        assert report_a.applied == report_b.applied
        assert list(report_a.applied) == sorted(
            report_a.applied, key=PASS_ORDER.index
        )

    def test_never_grows(self, seed):
        _, graph, level, passes, _ = _random_graph(seed)
        compiled, _ = compile_graph(graph, level=level, passes=passes)
        assert compiled.node_count <= graph.node_count
        assert (
            compiled.he_noise_consumption()
            <= graph.he_noise_consumption() + 1e-9
        )

    def test_input_graph_not_mutated(self, seed):
        _, graph, level, passes, _ = _random_graph(seed)
        before = graph.signature()
        compile_graph(graph, level=level, passes=passes)
        assert graph.signature() == before

    def test_packing_respects_margin(self, seed):
        _, graph, level, passes, _ = _random_graph(seed)
        compiled, report = compile_graph(graph, level=level, passes=passes)
        if "pack_crossing" not in report.applied:
            return
        crossing = compiled.node("crossing")
        cap = crossing.attrs["pack_max_batch"]
        assert cap >= 2
        margin = 0.0 if level == "aggressive" else 8.0
        conv = compiled.node("conv")
        assert conv.budget_bits - np.log2(cap) >= margin - 1e-6


@pytest.mark.parametrize("seed", SEEDS)
def test_parameter_advice_leaves_headroom(seed):
    quantized, graph, _, _, _ = _random_graph(seed)
    advice = select_parameters(graph)
    if advice is None:
        pytest.skip("no candidate fits this random graph")
    headroom = NoiseEstimator(advice).layer_headroom(quantized)
    assert all(v > 0 for v in headroom.values()), headroom
    assert advice.plain_modulus >= quantized.required_plain_modulus()
