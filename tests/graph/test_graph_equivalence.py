"""Differential equivalence harness for the graph optimizer.

The contract under test (DESIGN.md §16): for every pass, every pair-wise
pass composition, and both full portfolios, optimized execution is
*bit-identical* to the unoptimized reference — same logits, same
serialized ciphertext bytes for the encrypted logits, same homomorphic
op tallies.  Mirrors ``tests/core/test_kernel_equivalence.py``'s
recorder pattern at the pipeline level.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core import CryptonetsPipeline, HybridPipeline
from repro.graph import ir, optimizer
from repro.graph.optimizer import PASS_PORTFOLIO, compile_graph
from repro.he.serialize import serialize_ciphertext

PASS_NAMES = PASS_PORTFOLIO["safe"]

#: Every single pass, every pair-wise composition, both full portfolios.
CONFIGS = (
    [("safe", (name,)) for name in PASS_NAMES]
    + [("safe", pair) for pair in itertools.combinations(PASS_NAMES, 2)]
    + [("safe", None), ("aggressive", None)]
)


def _run(factory, images):
    pipe = factory()
    res = pipe.infer(images)
    return pipe, res, dict(pipe.counter.counts)


@pytest.fixture(scope="module")
def hybrid_reference(q_hybrid, hybrid_params, images):
    with optimizer.use("off"):
        return _run(lambda: HybridPipeline(q_hybrid, hybrid_params, seed=7), images)


@pytest.fixture(scope="module")
def he_reference(q_he, he_params, images):
    with optimizer.use("off"):
        return _run(lambda: CryptonetsPipeline(q_he, he_params, seed=7), images)


def _assert_bit_identical(reference, candidate):
    _, ref_res, ref_counts = reference
    _, res, counts = candidate
    assert np.array_equal(ref_res.logits, res.logits)
    assert serialize_ciphertext(ref_res.logits_ct) == serialize_ciphertext(
        res.logits_ct
    )
    assert ref_counts == counts


class TestHybridEquivalence:
    @pytest.mark.parametrize("level,passes", CONFIGS)
    def test_bit_identical_to_reference(
        self, level, passes, hybrid_reference, q_hybrid, hybrid_params, images
    ):
        with optimizer.use(level, passes):
            candidate = _run(
                lambda: HybridPipeline(q_hybrid, hybrid_params, seed=7), images
            )
        _assert_bit_identical(hybrid_reference, candidate)

    def test_safe_applies_expected_passes(self, q_hybrid, hybrid_params, images):
        with optimizer.use("safe"):
            pipe, res, _ = _run(
                lambda: HybridPipeline(q_hybrid, hybrid_params, seed=7), images
            )
        report = pipe.graph_report
        assert set(report.applied) >= {
            "zero_tap",
            "pack_crossing",
            "hoist_ntt",
            "scalar_encrypt",
        }
        assert not report.degraded
        assert res.trace.attrs["graph_opt"] == "safe"

    def test_stage_names_unchanged(self, q_hybrid, hybrid_params, images):
        with optimizer.use("safe"):
            _, res, _ = _run(
                lambda: HybridPipeline(q_hybrid, hybrid_params, seed=7), images
            )
        assert [s.name for s in res.stages] == [
            "encrypt",
            "conv",
            "sgx_activation_pool",
            "fc",
            "decrypt",
        ]

    def test_single_crossing_preserved(self, q_hybrid, hybrid_params, images):
        with optimizer.use("safe"):
            _, res, _ = _run(
                lambda: HybridPipeline(q_hybrid, hybrid_params, seed=7), images
            )
        assert res.enclave_crossings == 1

    def test_per_pixel_pack_refused(self, q_hybrid, hybrid_params):
        graph = ir.build_hybrid_graph(q_hybrid, hybrid_params, mode="per_pixel")
        _, report = compile_graph(graph, level="safe")
        assert "pack_crossing" not in report.applied
        assert "one value" in report.refusal("pack_crossing")


class TestCryptonetsEquivalence:
    @pytest.mark.parametrize("level,passes", CONFIGS)
    def test_bit_identical_to_reference(
        self, level, passes, he_reference, q_he, he_params, images
    ):
        with optimizer.use(level, passes):
            candidate = _run(
                lambda: CryptonetsPipeline(q_he, he_params, seed=7), images
            )
        _assert_bit_identical(he_reference, candidate)

    def test_pack_crossing_refused_without_enclave(self, q_he, he_params, images):
        with optimizer.use("safe"):
            pipe, _, _ = _run(
                lambda: CryptonetsPipeline(q_he, he_params, seed=7), images
            )
        report = pipe.graph_report
        assert "pure-HE" in report.refusal("pack_crossing")
        assert "hoist_ntt" in report.applied  # the square INTT hoist still fires

    def test_stage_names_unchanged(self, q_he, he_params, images):
        with optimizer.use("safe"):
            _, res, _ = _run(
                lambda: CryptonetsPipeline(q_he, he_params, seed=7), images
            )
        assert [s.name for s in res.stages] == [
            "encrypt",
            "conv",
            "square",
            "relinearize",
            "pool",
            "fc",
            "decrypt",
        ]


class TestReportSurface:
    def test_off_is_reference(self, q_hybrid, hybrid_params):
        graph = ir.build_hybrid_graph(q_hybrid, hybrid_params)
        compiled, report = compile_graph(graph, level="off")
        assert report.level == "off"
        assert report.label == "off"
        assert compiled.signature() == graph.signature()

    def test_aggressive_emits_parameter_advice(self, q_hybrid, hybrid_params):
        graph = ir.build_hybrid_graph(q_hybrid, hybrid_params)
        _, report = compile_graph(graph, level="aggressive")
        advice = report.parameter_advice
        assert advice is not None
        assert advice.poly_degree <= hybrid_params.poly_degree
        assert len(advice.coeff_primes) <= len(hybrid_params.coeff_primes)

    def test_spec_knob_configures_process(self, q_hybrid, hybrid_params, images):
        from repro.core import PipelineSpec, build_pipeline

        spec = PipelineSpec(
            scheme="hybrid", params=hybrid_params, graph_optimizer="safe"
        )
        pipe = build_pipeline(spec, q_hybrid, seed=7)
        assert optimizer.active_level() == "safe"
        res = pipe.infer(images)
        assert res.trace.attrs["graph_opt"] == "safe"

    def test_spec_rejects_unknown_level(self, hybrid_params):
        from repro.core import PipelineSpec
        from repro.errors import PipelineError

        with pytest.raises(PipelineError, match="graph_optimizer"):
            PipelineSpec(
                scheme="hybrid", params=hybrid_params, graph_optimizer="ludicrous"
            )

    def test_build_pipeline_kwarg_configures_process(
        self, q_hybrid, hybrid_params, images
    ):
        from repro.core import build_pipeline

        pipe = build_pipeline(
            "hybrid", q_hybrid, hybrid_params, seed=7, graph_optimizer="safe"
        )
        assert optimizer.active_level() == "safe"
        res = pipe.infer(images)
        assert res.trace.attrs["graph_opt"] == "safe"

    def test_build_pipeline_kwarg_rejects_unknown_level(self, q_hybrid, hybrid_params):
        from repro.core import build_pipeline
        from repro.errors import PipelineError

        with pytest.raises(PipelineError, match="graph_optimizer"):
            build_pipeline(
                "hybrid", q_hybrid, hybrid_params, graph_optimizer="ludicrous"
            )
