"""Graph-optimizer suite fixtures.

The trained tiny models are shared session-wide; each gets a planted
all-zero conv tap column and a few all-zero FC input rows so the
``zero_tap`` bypass has something real to fire on (the stock trained
weights are dense).  Every test starts and ends with the process-wide
optimizer configuration restored to the environment default.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import parameters_for_pipeline, train_paper_models
from repro.graph import optimizer as graph_optimizer


@pytest.fixture(autouse=True)
def pristine_optimizer():
    """Restore the env-default optimizer level around every test here."""
    graph_optimizer.configure(None)
    yield
    graph_optimizer.configure(None)


@pytest.fixture(scope="session")
def models():
    return train_paper_models(
        train_size=300, test_size=60, epochs=4, image_size=10, channels=2, kernel_size=3
    )


def _plant_zeros(quantized):
    """Zero one conv tap column (all filters) and four FC input rows."""
    conv = np.array(quantized.conv_weight)
    conv[:, 0, 0, 0] = 0
    dense = np.array(quantized.dense_weight)
    dense[:4, :] = 0
    return dataclasses.replace(quantized, conv_weight=conv, dense_weight=dense)


@pytest.fixture(scope="session")
def q_hybrid(models):
    return _plant_zeros(models.quantized_sigmoid())


@pytest.fixture(scope="session")
def q_he(models):
    return _plant_zeros(models.quantized_square())


@pytest.fixture(scope="session")
def hybrid_params(q_hybrid):
    return parameters_for_pipeline(q_hybrid, 256)


@pytest.fixture(scope="session")
def he_params(q_he):
    return parameters_for_pipeline(q_he, 256)


@pytest.fixture(scope="session")
def images(models):
    return models.dataset.test_images[:2]
