"""Model container, training loop, data generator and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn import (
    SGD,
    Sequential,
    accuracy_score,
    agreement_rate,
    confusion_matrix,
    cross_entropy,
    cryptonets_cnn,
    paper_cnn,
    render_digit,
    scaled_cnn,
    softmax,
    synthetic_mnist,
    train,
)
from repro.nn.layers import Dense, ReLU


class TestSequential:
    def test_paper_cnn_shapes_match_table_vi(self):
        model = paper_cnn(np.random.default_rng(0))
        assert model.layer_shapes == [
            (1, 28, 28),
            (6, 24, 24),  # conv 6 x (5 x 5), stride 1
            (6, 24, 24),  # sigmoid
            (6, 12, 12),  # 2 x 2 mean-pool
            (10,),  # fully connected
        ]

    def test_paper_cnn_parameter_count(self):
        model = paper_cnn(np.random.default_rng(0))
        # conv: 6*1*5*5 + 6; dense: 864*10 + 10
        assert model.parameter_count() == 156 + 8650

    def test_empty_model_rejected(self):
        with pytest.raises(ModelError):
            Sequential([])

    def test_forward_backward_roundtrip_shapes(self):
        model = paper_cnn(np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(3, 1, 28, 28))
        out = model.forward(x)
        assert out.shape == (3, 10)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_summary_lists_layers(self):
        text = paper_cnn(np.random.default_rng(0)).summary()
        for name in ("Conv2D", "Sigmoid", "MeanPool2D", "Dense"):
            assert name in text

    def test_scaled_cnn_shrinks_grid(self):
        model = scaled_cnn(image_size=10, channels=2, kernel_size=3)
        assert model.layer_shapes[0] == (1, 10, 10)
        assert model.layer_shapes[-1] == (10,)

    def test_scaled_cnn_rejects_indivisible(self):
        with pytest.raises(ModelError):
            scaled_cnn(image_size=10, kernel_size=4)  # 7 not divisible by 2

    def test_cryptonets_cnn_uses_square_and_sum_pool(self):
        from repro.nn.layers import ScaledMeanPool2D, Square

        model = cryptonets_cnn(np.random.default_rng(0))
        assert isinstance(model.layers[1], Square)
        assert isinstance(model.layers[2], ScaledMeanPool2D)


class TestLossAndOptimizer:
    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(4, 10)))
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs > 0).all()

    def test_softmax_stability_with_huge_logits(self):
        probs = softmax(np.array([[1000.0, 0.0], [-1000.0, 0.0]]))
        assert np.isfinite(probs).all()

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss, grad = cross_entropy(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        assert np.allclose(grad, 0.0, atol=1e-6)

    def test_cross_entropy_gradient_direction(self):
        logits = np.zeros((1, 3))
        _, grad = cross_entropy(logits, np.array([1]))
        assert grad[0, 1] < 0  # pull the true class up
        assert grad[0, 0] > 0 and grad[0, 2] > 0

    def test_cross_entropy_batch_mismatch(self):
        with pytest.raises(ModelError):
            cross_entropy(np.zeros((2, 3)), np.array([0]))

    def test_sgd_descends_quadratic(self):
        p = np.array([10.0])
        opt = SGD(learning_rate=0.1, momentum=0.0)
        for _ in range(100):
            opt.step([p], [2 * p])
        assert abs(p[0]) < 1e-3

    def test_sgd_clipping_bounds_update(self):
        p = np.array([0.0])
        opt = SGD(learning_rate=1.0, momentum=0.0, clip_norm=1.0)
        opt.step([p], [np.array([1e9])])
        assert abs(p[0]) <= 1.0 + 1e-9

    def test_sgd_length_mismatch(self):
        with pytest.raises(ModelError):
            SGD().step([np.zeros(1)], [])


class TestTraining:
    def test_learns_tiny_problem(self):
        rng = np.random.default_rng(0)
        # Two linearly separable blobs rendered as flat "images".
        x = np.concatenate(
            [rng.normal(-2, 0.3, size=(50, 4)), rng.normal(2, 0.3, size=(50, 4))]
        )
        y = np.array([0] * 50 + [1] * 50)
        model = Sequential([Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)])
        report = train(model, x, y, epochs=30, batch_size=16, learning_rate=0.05)
        assert report.final_accuracy > 0.95
        assert report.losses[-1] < report.losses[0]

    @pytest.mark.slow
    def test_paper_cnn_learns_synthetic_digits(self):
        data = synthetic_mnist(train_size=600, test_size=150, seed=3)
        model = paper_cnn(np.random.default_rng(0))
        report = train(
            model,
            data.train_float(),
            data.train_labels,
            epochs=8,
            batch_size=32,
            learning_rate=0.1,
            eval_images=data.test_float(),
            eval_labels=data.test_labels,
        )
        assert report.final_accuracy > 0.5  # far above the 0.1 chance level


class TestSyntheticData:
    def test_deterministic_for_seed(self):
        a = synthetic_mnist(train_size=20, test_size=5, seed=42)
        b = synthetic_mnist(train_size=20, test_size=5, seed=42)
        assert np.array_equal(a.train_images, b.train_images)
        assert np.array_equal(a.test_labels, b.test_labels)

    def test_seed_changes_data(self):
        a = synthetic_mnist(train_size=20, test_size=5, seed=1)
        b = synthetic_mnist(train_size=20, test_size=5, seed=2)
        assert not np.array_equal(a.train_images, b.train_images)

    def test_shapes_and_dtype(self):
        data = synthetic_mnist(train_size=30, test_size=10, seed=0)
        assert data.train_images.shape == (30, 1, 28, 28)
        assert data.test_images.shape == (10, 1, 28, 28)
        assert data.train_images.dtype == np.uint8

    def test_all_classes_present(self):
        data = synthetic_mnist(train_size=100, test_size=30, seed=0)
        assert set(data.train_labels.tolist()) == set(range(10))

    def test_float_accessor_range(self):
        data = synthetic_mnist(train_size=10, test_size=5, seed=0)
        floats = data.train_float()
        assert floats.min() >= 0.0 and floats.max() <= 1.0

    def test_render_digit_is_drawable(self):
        rng = np.random.default_rng(0)
        img = render_digit(7, rng)
        assert img.shape == (28, 28)
        assert img.max() > 100  # ink present
        assert img.dtype == np.uint8

    def test_digits_are_distinguishable(self):
        """Mean images of different digits must differ substantially."""
        rng = np.random.default_rng(0)
        mean0 = np.mean([render_digit(0, rng) for _ in range(10)], axis=0)
        mean1 = np.mean([render_digit(1, rng) for _ in range(10)], axis=0)
        assert np.abs(mean0 - mean1).mean() > 5


class TestMetrics:
    def test_accuracy_score(self):
        assert accuracy_score(np.array([1, 2, 3]), np.array([1, 2, 4])) == pytest.approx(2 / 3)

    def test_accuracy_rejects_empty(self):
        with pytest.raises(ModelError):
            accuracy_score(np.array([]), np.array([]))

    def test_accuracy_rejects_shape_mismatch(self):
        with pytest.raises(ModelError):
            accuracy_score(np.array([1]), np.array([1, 2]))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 0]), num_classes=2)
        assert matrix[0, 0] == 1  # true 0, predicted 0
        assert matrix[0, 1] == 1  # true 0, predicted 1
        assert matrix[1, 1] == 1

    def test_agreement_rate_perfect(self):
        assert agreement_rate(np.array([1, 2]), np.array([1, 2])) == 1.0
