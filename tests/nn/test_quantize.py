"""Quantization: scale bookkeeping, stage equivalence, modulus bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn import (
    QuantizedCNN,
    Sequential,
    cryptonets_cnn,
    paper_cnn,
    scaled_cnn,
    synthetic_mnist,
)
from repro.nn.layers import Conv2D, Dense, MaxPool2D, MeanPool2D, ReLU, Sigmoid


@pytest.fixture(scope="module")
def tiny_data():
    return synthetic_mnist(train_size=40, test_size=20, seed=5)


@pytest.fixture(scope="module")
def float_model():
    return paper_cnn(np.random.default_rng(0))


@pytest.fixture(scope="module")
def quantized(float_model):
    return QuantizedCNN.from_float(float_model)


class TestConstruction:
    def test_from_paper_cnn(self, quantized):
        assert quantized.activation == "sigmoid"
        assert quantized.pool == "mean"
        assert quantized.conv_weight.dtype == np.int64

    def test_from_cryptonets_cnn(self):
        q = QuantizedCNN.from_float(cryptonets_cnn(np.random.default_rng(0)))
        assert q.activation == "square"
        assert q.pool == "scaled_mean"

    def test_weight_bits_respected(self, float_model):
        q4 = QuantizedCNN.from_float(float_model, weight_bits=4)
        assert np.abs(q4.conv_weight).max() <= 7
        q8 = QuantizedCNN.from_float(float_model, weight_bits=8)
        assert np.abs(q8.conv_weight).max() <= 127

    def test_rejects_wrong_architecture(self):
        model = Sequential([Dense(4, 2, rng=np.random.default_rng(0))])
        with pytest.raises(ModelError):
            QuantizedCNN.from_float(model)

    def test_max_pool_architecture_supported(self):
        model = Sequential(
            [
                Conv2D(1, 2, kernel_size=3, rng=np.random.default_rng(0)),
                Sigmoid(),
                MaxPool2D(2),
                Dense(2 * 3 * 3, 10, rng=np.random.default_rng(0)),
            ]
        )
        q = QuantizedCNN.from_float(model)
        assert q.pool == "max"

    def test_tanh_architecture_supported(self):
        from repro.nn import scaled_cnn

        model = scaled_cnn(image_size=8, activation="tanh", pool="max")
        q = QuantizedCNN.from_float(model)
        assert q.activation == "tanh"
        assert q.pool == "max"

    def test_relu_layer_rejected(self):
        model = Sequential(
            [
                Conv2D(1, 2, kernel_size=3, rng=np.random.default_rng(0)),
                ReLU(),
                MeanPool2D(2),
                Dense(2 * 3 * 3, 10, rng=np.random.default_rng(0)),
            ]
        )
        # ReLU is unbounded, so the fixed act_scale requantization does not
        # apply; the quantizer rejects it rather than silently clipping.
        with pytest.raises(ModelError):
            QuantizedCNN.from_float(model)

    def test_exact_pipeline_with_scaled_mean_rejected(self, float_model):
        q = QuantizedCNN.from_float(float_model)
        with pytest.raises(ModelError):
            QuantizedCNN(
                conv_weight=q.conv_weight,
                conv_bias=q.conv_bias,
                dense_weight=q.dense_weight,
                dense_bias=q.dense_bias,
                input_scale=q.input_scale,
                conv_weight_scale=q.conv_weight_scale,
                dense_weight_scale=q.dense_weight_scale,
                act_scale=q.act_scale,
                activation="tanh",
                pool="scaled_mean",
                pool_window=2,
            )

    def test_square_with_mean_pool_rejected(self, float_model):
        q = QuantizedCNN.from_float(float_model)
        with pytest.raises(ModelError):
            QuantizedCNN(
                conv_weight=q.conv_weight,
                conv_bias=q.conv_bias,
                dense_weight=q.dense_weight,
                dense_bias=q.dense_bias,
                input_scale=q.input_scale,
                conv_weight_scale=q.conv_weight_scale,
                dense_weight_scale=q.dense_weight_scale,
                act_scale=q.act_scale,
                activation="square",
                pool="mean",
                pool_window=2,
            )


class TestStageSemantics:
    def test_quantize_images_uint8(self, quantized, tiny_data):
        x = quantized.quantize_images(tiny_data.test_images[:2])
        assert x.dtype == np.int64
        assert x.max() <= quantized.input_scale

    def test_quantize_images_float(self, quantized):
        x = quantized.quantize_images(np.full((1, 1, 28, 28), 0.5))
        assert x.max() == round(0.5 * quantized.input_scale)

    def test_forward_int_composes_stages(self, quantized, tiny_data):
        images = tiny_data.test_images[:3]
        x = quantized.quantize_images(images)
        manual = quantized.fc_stage(quantized.enclave_stage(quantized.conv_stage(x)))
        assert np.array_equal(manual, quantized.forward_int(images))

    def test_square_pipeline_is_pure_integer(self, tiny_data):
        q = QuantizedCNN.from_float(
            cryptonets_cnn(np.random.default_rng(0)),
            weight_bits=4,
            input_scale=15,
        )
        logits = q.forward_int(tiny_data.test_images[:3])
        assert logits.dtype == np.int64

    def test_enclave_stage_rejected_for_square(self, tiny_data):
        q = QuantizedCNN.from_float(cryptonets_cnn(np.random.default_rng(0)))
        conv = q.conv_stage(q.quantize_images(tiny_data.test_images[:1]))
        with pytest.raises(ModelError):
            q.enclave_stage(conv)

    def test_scaled_pool_is_window_sum(self, quantized):
        x = np.arange(16, dtype=np.int64).reshape(1, 1, 4, 4)
        pooled = quantized.scaled_pool_stage(x)
        assert pooled[0, 0, 0, 0] == 0 + 1 + 4 + 5


class TestFidelity:
    def test_quantized_tracks_float_model(self, float_model, quantized, tiny_data):
        """8-bit quantization rarely changes the argmax."""
        images = tiny_data.test_images
        float_preds = float_model.predict(tiny_data.test_float())
        int_preds = quantized.predict(images)
        assert (float_preds == int_preds).mean() > 0.9

    def test_scaled_model_quantizes(self, tiny_data):
        model = scaled_cnn(image_size=12, channels=2, kernel_size=3)
        q = QuantizedCNN.from_float(model)
        small = tiny_data.test_images[:2, :, :12, :12]
        assert q.forward_int(small).shape == (2, 10)


class TestModulusBounds:
    def test_hybrid_bound_is_modest(self, quantized):
        assert quantized.required_plain_modulus().bit_length() <= 30

    def test_square_bound_is_large(self):
        q = QuantizedCNN.from_float(
            cryptonets_cnn(np.random.default_rng(0)), weight_bits=4, input_scale=15
        )
        assert q.required_plain_modulus().bit_length() >= 30

    def test_bound_actually_bounds(self, quantized, tiny_data):
        logits = quantized.forward_int(tiny_data.test_images[:5])
        conv = quantized.conv_stage(quantized.quantize_images(tiny_data.test_images[:5]))
        observed = max(int(np.abs(logits).max()), int(np.abs(conv).max()))
        assert 2 * observed < quantized.required_plain_modulus()

    def test_fits_plain_modulus(self, quantized):
        need = quantized.required_plain_modulus()
        assert quantized.fits_plain_modulus(need)
        assert not quantized.fits_plain_modulus(need - 1)
