"""Layer-level tests: shapes, values, and numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn import (
    Conv2D,
    Dense,
    Flatten,
    LeakyReLU,
    MaxPool2D,
    MeanPool2D,
    ReLU,
    ScaledMeanPool2D,
    Sigmoid,
    Square,
    Tanh,
    conv2d_forward,
)


def numerical_gradient(layer, x, eps=1e-6):
    """Central-difference gradient of sum(layer(x)) w.r.t. x."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = layer.forward(x).sum()
        x[idx] = orig - eps
        minus = layer.forward(x).sum()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestConv2D:
    def test_output_shape(self):
        conv = Conv2D(1, 6, kernel_size=5, rng=np.random.default_rng(0))
        x = np.zeros((2, 1, 28, 28))
        assert conv.forward(x).shape == (2, 6, 24, 24)
        assert conv.output_shape((1, 28, 28)) == (6, 24, 24)

    def test_stride(self):
        conv = Conv2D(1, 2, kernel_size=3, stride=2, rng=np.random.default_rng(0))
        assert conv.forward(np.zeros((1, 1, 9, 9))).shape == (1, 2, 4, 4)

    def test_known_values(self):
        conv = Conv2D(1, 1, kernel_size=2, rng=np.random.default_rng(0))
        conv.weight[...] = 1.0
        conv.bias[...] = 0.5
        x = np.arange(9, dtype=np.float64).reshape(1, 1, 3, 3)
        out = conv.forward(x)
        assert out[0, 0, 0, 0] == pytest.approx(0 + 1 + 3 + 4 + 0.5)
        assert out[0, 0, 1, 1] == pytest.approx(4 + 5 + 7 + 8 + 0.5)

    def test_rejects_channel_mismatch(self):
        conv = Conv2D(3, 1, kernel_size=2, rng=np.random.default_rng(0))
        with pytest.raises(ModelError):
            conv.output_shape((1, 5, 5))

    def test_rejects_kernel_larger_than_input(self):
        conv = Conv2D(1, 1, kernel_size=7, rng=np.random.default_rng(0))
        with pytest.raises(ModelError):
            conv.output_shape((1, 5, 5))

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ModelError):
            Conv2D(1, 1, kernel_size=0)

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        conv = Conv2D(2, 3, kernel_size=3, rng=rng)
        x = rng.normal(size=(2, 2, 6, 6))
        out = conv.forward(x)
        analytic = conv.backward(np.ones_like(out))
        numeric = numerical_gradient(conv, x)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_weight_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        conv = Conv2D(1, 2, kernel_size=2, rng=rng)
        x = rng.normal(size=(3, 1, 4, 4))
        out = conv.forward(x)
        conv.backward(np.ones_like(out))
        analytic = conv.grad_weight.copy()
        eps = 1e-6
        numeric = np.zeros_like(conv.weight)
        it = np.nditer(conv.weight, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = conv.weight[idx]
            conv.weight[idx] = orig + eps
            plus = conv.forward(x).sum()
            conv.weight[idx] = orig - eps
            minus = conv.forward(x).sum()
            conv.weight[idx] = orig
            numeric[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_backward_before_forward_rejected(self):
        conv = Conv2D(1, 1, kernel_size=2, rng=np.random.default_rng(0))
        with pytest.raises(ModelError):
            conv.backward(np.zeros((1, 1, 2, 2)))

    def test_functional_matches_layer(self):
        rng = np.random.default_rng(3)
        conv = Conv2D(2, 3, kernel_size=3, rng=rng)
        x = rng.normal(size=(1, 2, 7, 7))
        assert np.allclose(
            conv.forward(x), conv2d_forward(x, conv.weight, conv.bias, conv.stride)
        )


class TestDense:
    def test_known_values(self):
        dense = Dense(3, 2, rng=np.random.default_rng(0))
        dense.weight[...] = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        dense.bias[...] = np.array([0.5, -0.5])
        out = dense.forward(np.array([[1.0, 2.0, 3.0]]))
        assert np.allclose(out, [[4.5, 4.5]])

    def test_accepts_unflattened_input(self):
        dense = Dense(12, 4, rng=np.random.default_rng(0))
        out = dense.forward(np.zeros((2, 3, 2, 2)))
        assert out.shape == (2, 4)

    def test_backward_restores_input_shape(self):
        dense = Dense(12, 4, rng=np.random.default_rng(0))
        dense.forward(np.zeros((2, 3, 2, 2)))
        assert dense.backward(np.zeros((2, 4))).shape == (2, 3, 2, 2)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(4)
        dense = Dense(5, 3, rng=rng)
        x = rng.normal(size=(2, 5))
        dense.forward(x)
        analytic = dense.backward(np.ones((2, 3)))
        numeric = numerical_gradient(dense, x)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_shape_mismatch_rejected(self):
        dense = Dense(5, 3, rng=np.random.default_rng(0))
        with pytest.raises(ModelError):
            dense.output_shape((7,))


class TestPools:
    def test_mean_pool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = MeanPool2D(2).forward(x)
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_scaled_mean_is_window_sum(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        mean = MeanPool2D(2).forward(x)
        scaled = ScaledMeanPool2D(2).forward(x)
        assert np.allclose(scaled, mean * 4)

    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_indivisible_input_rejected(self):
        with pytest.raises(ModelError):
            MeanPool2D(3).forward(np.zeros((1, 1, 4, 4)))

    def test_bad_window_rejected(self):
        with pytest.raises(ModelError):
            MeanPool2D(0)

    @pytest.mark.parametrize("pool_cls", [MeanPool2D, ScaledMeanPool2D, MaxPool2D])
    def test_gradient_matches_numerical(self, pool_cls):
        rng = np.random.default_rng(5)
        pool = pool_cls(2)
        x = rng.normal(size=(2, 2, 4, 4))
        pool.forward(x)
        analytic = pool.backward(np.ones((2, 2, 2, 2)))
        numeric = numerical_gradient(pool, x)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_output_shape(self):
        assert MeanPool2D(2).output_shape((6, 24, 24)) == (6, 12, 12)
        with pytest.raises(ModelError):
            MeanPool2D(5).output_shape((6, 24, 24))


class TestActivations:
    @pytest.mark.parametrize(
        "layer,reference",
        [
            (Sigmoid(), lambda x: 1 / (1 + np.exp(-x))),
            (ReLU(), lambda x: np.maximum(0, x)),
            (Tanh(), np.tanh),
            (Square(), lambda x: x * x),
            (LeakyReLU(0.1), lambda x: np.where(x > 0, x, 0.1 * x)),
        ],
    )
    def test_forward_values(self, layer, reference):
        x = np.linspace(-3, 3, 13)
        assert np.allclose(layer.forward(x), reference(x))

    @pytest.mark.parametrize(
        "layer", [Sigmoid(), ReLU(), Tanh(), Square(), LeakyReLU(0.1)]
    )
    def test_gradient_matches_numerical(self, layer):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(3, 4)) + 0.01  # avoid the ReLU kink at exactly 0
        layer.forward(x)
        analytic = layer.backward(np.ones((3, 4)))
        numeric = numerical_gradient(layer, x)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_sigmoid_extreme_values_stable(self):
        out = Sigmoid.apply(np.array([-800.0, 800.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)
        assert np.isfinite(out).all()

    def test_sigmoid_midpoint(self):
        assert Sigmoid.apply(np.array([0.0]))[0] == pytest.approx(0.5)


class TestFlatten:
    def test_roundtrip(self):
        layer = Flatten()
        x = np.arange(24, dtype=np.float64).reshape(2, 3, 2, 2)
        flat = layer.forward(x)
        assert flat.shape == (2, 12)
        assert layer.backward(flat).shape == x.shape

    def test_output_shape(self):
        assert Flatten().output_shape((3, 2, 2)) == (12,)
