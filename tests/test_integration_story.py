"""The full paper story as one integration test.

Walks the complete lifecycle end to end at tiny scale -- train, quantize,
size parameters, deploy the enclave, attest, distribute keys, serve
encrypted requests through every pipeline, and verify the paper's claims at
each step.  If this test passes, the repository's pieces compose.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CryptonetsPipeline,
    HybridPipeline,
    PlaintextPipeline,
    SimdHybridPipeline,
    parameters_for_pipeline,
    train_paper_models,
)
from repro.nn import agreement_rate


@pytest.mark.slow
def test_full_story():
    # 1. Train both model variants on the synthetic dataset.
    models = train_paper_models(
        train_size=400, test_size=80, epochs=4,
        image_size=10, channels=2, kernel_size=3,
    )
    q_sigmoid = models.quantized_sigmoid()
    q_square = models.quantized_square()

    # 2. Parameter sizing reflects the pipelines' asymmetric needs.
    hybrid_params = parameters_for_pipeline(q_sigmoid, 256)
    simd_params = parameters_for_pipeline(q_sigmoid, 256, batching=True)
    pure_params = parameters_for_pipeline(q_square, 256)
    assert pure_params.coeff_modulus > hybrid_params.coeff_modulus

    images = models.dataset.test_images[:4]
    plain_sigmoid = PlaintextPipeline(q_sigmoid).infer(images)
    plain_square = PlaintextPipeline(q_square).infer(images)

    # 3. The hybrid framework: attested deployment, bit-exact inference,
    #    one enclave crossing, positive noise budget.
    hybrid = HybridPipeline(q_sigmoid, hybrid_params, seed=55)
    hybrid_result = hybrid.infer(images)
    assert np.array_equal(hybrid_result.logits, plain_sigmoid.logits)
    assert hybrid_result.enclave_crossings == 1
    assert hybrid_result.noise_budget_bits > 0

    # 4. The pure-HE baseline: bit-exact against ITS reference, slower.
    cn = CryptonetsPipeline(q_square, pure_params, seed=55)
    cn_result = cn.infer(images)
    assert np.array_equal(cn_result.logits, plain_square.logits)
    assert cn_result.total_elapsed_s > hybrid_result.total_elapsed_s

    # 5. The SIMD extension: same answers, shared ciphertexts.
    simd = SimdHybridPipeline(q_sigmoid, simd_params, seed=55)
    simd_result = simd.infer(images)
    assert np.array_equal(simd_result.logits, plain_sigmoid.logits)

    # 6. Predictions agree across every privacy-preserving path.
    assert agreement_rate(hybrid_result.predictions, plain_sigmoid.predictions) == 1.0
    assert agreement_rate(simd_result.predictions, plain_sigmoid.predictions) == 1.0

    # 7. The FakeSGX control isolates the enclave's cost without changing
    #    a single logit.
    fake = HybridPipeline(q_sigmoid, hybrid_params, mode="fake", seed=55)
    fake_result = fake.infer(images)
    assert np.array_equal(fake_result.logits, plain_sigmoid.logits)
    assert fake_result.total_overhead_s == 0.0
    assert hybrid_result.total_overhead_s > 0.0
