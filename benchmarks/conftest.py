"""Shared benchmark fixtures and the report-emission helper.

Run with ``pytest benchmarks/ --benchmark-only``.  Every benchmark also
regenerates its paper table/figure as text under ``benchmarks/results/``,
which is where the numbers in EXPERIMENTS.md come from.  Scale is selected
with ``REPRO_BENCH_SCALE`` (tiny | small | paper; default small).
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.bench import current_scale, hybrid_parameters, pure_he_parameters, trained_models

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def models(scale):
    return trained_models(scale.name)


@pytest.fixture(scope="session")
def q_sigmoid(scale, models):
    return models.quantized_sigmoid()


@pytest.fixture(scope="session")
def q_square(scale, models):
    return models.quantized_square()


@pytest.fixture(scope="session")
def hybrid_params(scale):
    return hybrid_parameters(scale.name)


@pytest.fixture(scope="session")
def pure_he_params(scale):
    return pure_he_parameters(scale.name)


@pytest.fixture(scope="session")
def batch_images(scale, models):
    return models.dataset.test_images[: scale.batch_size]


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2021)


@pytest.fixture(scope="session")
def emit():
    """Write a named report to benchmarks/results/ and echo it."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit
