"""Fig. 5: Sigmoid computation time with/without SGX vs feature-map size.

Paper: three lines over growing feature maps --

* ``EncryptSigmoid``: the HE substitute (square + relinearization), the
  slowest by far (0.19 s -> 37.4 s slower than SGX);
* ``SGXSigmoid``: decrypt + exact sigmoid + re-encrypt inside the enclave
  (34 ms -> 5.62 s above FakeSGX, growing with the number of values);
* ``FakeSGXSigmoid``: the same code outside the enclave (floor).

The reproduction sweeps feature-map sizes, times all three on the simulated
clock, and asserts the ordering Encrypt > SGX > FakeSGX at every size.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_series, measure_simulated
from repro.core import InferenceEnclave
from repro.he import Context, Encryptor, Evaluator, ScalarEncoder
from repro.he.keys import PublicKey
from repro.sgx import SgxPlatform


def _rig(params, seed=21):
    platform = SgxPlatform()
    trusted = platform.load_enclave(InferenceEnclave, params, seed)
    fake = platform.load_enclave(InferenceEnclave, params, seed, trusted=False)
    public = trusted.ecall("generate_keys")
    fake.ecall("generate_keys")
    context = Context(params)
    public = PublicKey(context, public.p0_ntt, public.p1_ntt)
    rng = np.random.default_rng(seed)
    encoder = ScalarEncoder(context)
    encryptor = Encryptor(context, public, rng)
    evaluator = Evaluator(context)
    relin = trusted.ecall("generate_relin_keys")
    return platform, trusted, fake, encoder, encryptor, evaluator, relin, rng


def test_fig5_sigmoid_sweep(benchmark, pure_he_params, scale, emit):
    platform, trusted, fake, encoder, encryptor, evaluator, relin, rng = _rig(
        pure_he_params
    )
    sizes = [4, 8, 12] if scale.name != "paper" else [4, 8, 12, 16, 20, 24]
    reps = max(2, scale.repeats // 5)

    def sweep():
        rows = {"EncryptSigmoid": [], "SGXSigmoid": [], "FakeSGXSigmoid": []}
        for size in sizes:
            values = rng.integers(-40, 40, size=(1, 1, size, size))
            ct = encryptor.encrypt(encoder.encode(values))
            rows["EncryptSigmoid"].append(
                min(
                    measure_simulated(
                        lambda: evaluator.relinearize(evaluator.square(ct), relin),
                        platform.clock,
                        reps,
                    )
                )
            )
            rows["SGXSigmoid"].append(
                min(
                    measure_simulated(
                        lambda: trusted.ecall("sigmoid", ct, 10.0, 1000),
                        platform.clock,
                        reps,
                    )
                )
            )
            rows["FakeSGXSigmoid"].append(
                min(
                    measure_simulated(
                        lambda: fake.ecall("sigmoid", ct, 10.0, 1000),
                        platform.clock,
                        reps,
                    )
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    calculations = [float(s * s) for s in sizes]
    emit(
        "fig5_sigmoid",
        format_series(
            "map_size",
            sizes,
            {**rows, "calculations": calculations},
            title=(
                f"Fig. 5: sigmoid computing time per feature map (/s), "
                f"n={pure_he_params.poly_degree}, scale={scale.name} "
                f"(paper ordering: Encrypt >> SGX > FakeSGX, gaps grow with size)"
            ),
        ),
    )
    for i, size in enumerate(sizes):
        assert rows["EncryptSigmoid"][i] > rows["SGXSigmoid"][i], f"size {size}"
        assert rows["SGXSigmoid"][i] > rows["FakeSGXSigmoid"][i], f"size {size}"
    # Gaps grow with the number of calculations.
    he_gap = np.array(rows["EncryptSigmoid"]) - np.array(rows["SGXSigmoid"])
    assert he_gap[-1] > he_gap[0]
    benchmark.extra_info["he_over_sgx_at_max"] = (
        rows["EncryptSigmoid"][-1] / rows["SGXSigmoid"][-1]
    )


def test_sgx_sigmoid_is_exact(benchmark, pure_he_params):
    """The whole point: the enclave evaluates the true sigmoid, the HE path
    only a polynomial stand-in."""
    from repro.nn.layers import Sigmoid

    platform, trusted, fake, encoder, encryptor, evaluator, relin, rng = _rig(
        pure_he_params
    )
    values = np.arange(-8, 8, dtype=np.int64).reshape(1, 1, 4, 4)
    ct = encryptor.encrypt(encoder.encode(values))
    out = benchmark.pedantic(
        lambda: trusted.ecall("sigmoid", ct, 4.0, 1000), rounds=1, iterations=1
    )
    decryptor = trusted._instance._decryptor
    got = encoder.decode(decryptor.decrypt(out))
    expected = np.rint(Sigmoid.apply(values / 4.0) * 1000).astype(np.int64)
    assert np.array_equal(got, expected)
