#!/usr/bin/env python
"""Serving throughput: the slot-packed scheduler vs sequential serving.

The paper predicts (Section VIII) that CRT/SIMD slot packing multiplies
throughput by up to the slot count.  The serving layer (:mod:`repro.serve`)
cashes that prediction in for the deployment story: N concurrent
single-image requests coalesce into ONE hybrid pipeline pass, so the
per-pixel HE cost is paid once instead of N times (plus two extra enclave
crossings for the slot re-layout).

This benchmark drives one :class:`~repro.core.EdgeServer` both ways --
``--requests`` single-image requests served one pipeline pass each, then
the same requests submitted concurrently to the scheduler and drained as
one packed flush -- and reports simulated-clock throughput for each, along
with a bit-exactness check of every per-request decrypted prediction.

Emits ``BENCH_serving.json`` and exits nonzero if predictions diverge or
the packed speedup falls below ``--min-speedup`` (default 3x at 16
concurrent requests).

Run ``--smoke`` for the CI-sized configuration.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.client import AttestedClient
from repro.core import (
    EdgeServer,
    PipelineSpec,
    PlaintextPipeline,
    train_paper_models,
)
from repro.serve import InferenceRequest
from repro.sgx import AttestationVerificationService


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized model and parameters"
    )
    parser.add_argument(
        "--requests", type=int, default=16, help="concurrent single-image requests"
    )
    parser.add_argument(
        "--out", default="BENCH_serving.json", help="JSON results path"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail below this packed-vs-sequential speedup",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        train_kwargs = dict(
            train_size=300, test_size=60, epochs=2, image_size=10, channels=2,
            kernel_size=3,
        )
        poly_degree = 256
    else:
        train_kwargs = dict(train_size=1200, test_size=300, epochs=6)
        poly_degree = 1024

    print(f"training model ({'smoke' if args.smoke else 'full'} config)...")
    models = train_paper_models(**train_kwargs)
    quantized = models.quantized_sigmoid()
    spec = PipelineSpec(scheme="hybrid", poly_degree=poly_degree, batching=True)
    server = EdgeServer.from_spec(spec, seed=13, sizing_model=quantized)
    server.provision_model("digits", quantized)
    verifier = AttestationVerificationService()
    verifier.register_platform(server.quoting)
    client = AttestedClient(server, verifier, b"\x42" * 32).establish()
    params = server.params
    clock = server.platform.clock

    images = models.dataset.test_images[: args.requests]
    if len(images) < args.requests:
        raise SystemExit(
            f"test split has only {len(images)} images, need {args.requests}"
        )
    requests = [
        client.encrypt("digits", images[i : i + 1]) for i in range(args.requests)
    ]
    reference = PlaintextPipeline(quantized).infer(images).predictions

    print(f"serving {args.requests} requests sequentially...")
    start = clock.now_s
    sequential = [
        server.infer(InferenceRequest(model="digits", ciphertext=ct))
        for ct in requests
    ]
    sequential_s = clock.now_s - start
    sequential_preds = np.concatenate([client.decrypt(r) for r in sequential])

    print(f"serving {args.requests} requests slot-packed...")
    start = clock.now_s
    responses = [server.scheduler.submit("digits", ct) for ct in requests]
    server.scheduler.drain()
    packed_s = clock.now_s - start
    packed_preds = np.concatenate([client.decrypt(r.result()) for r in responses])

    speedup = sequential_s / packed_s
    predictions_match = bool(
        np.array_equal(packed_preds, sequential_preds)
        and np.array_equal(packed_preds, reference)
    )
    report = {
        "config": {
            "mode": "smoke" if args.smoke else "full",
            "requests": args.requests,
            "poly_degree": params.poly_degree,
            "slot_count": params.poly_degree,
            "plain_modulus": params.plain_modulus,
            "min_speedup": args.min_speedup,
        },
        "sequential": {
            "simulated_s": sequential_s,
            "images_per_s": args.requests / sequential_s,
        },
        "packed": {
            "simulated_s": packed_s,
            "images_per_s": args.requests / packed_s,
            "flushes": server.scheduler.stats.flushes,
            "enclave_crossings_per_flush": 3,
        },
        "speedup": speedup,
        "predictions_match": predictions_match,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)

    print(
        f"sequential: {sequential_s:.3f} simulated s "
        f"({report['sequential']['images_per_s']:.2f} images/s)"
    )
    print(
        f"packed:     {packed_s:.3f} simulated s "
        f"({report['packed']['images_per_s']:.2f} images/s) "
        f"in {server.scheduler.stats.flushes} flush(es)"
    )
    print(f"speedup: {speedup:.1f}x   predictions match: {predictions_match}")
    print(f"wrote {args.out}")

    if not predictions_match:
        print("FAIL: packed predictions diverge from sequential/plaintext", file=sys.stderr)
        return 1
    if speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(run())
