"""Table I: homomorphic public/private key generation time, inside vs
outside SGX.

Paper (n = 1024, 1000 reps): inside 49.593 ms (STD 3.448), outside
20.201 ms (STD 0.774) -- a 2.455x penalty for running identical code in the
enclave, plus ~1 ms when the caller pays the ECALL transition.

The reproduction runs the same key-generation code through a trusted
enclave handle (simulated time = real compute x EPC factor + transition +
marshalling) and through a FakeSGX handle (real time only), then prints the
paper's Average / STD / 96% CI rows.
"""

from __future__ import annotations

from repro.bench import Summary, format_table, measure_simulated
from repro.core import InferenceEnclave
from repro.he import Context, KeyGenerator
from repro.sgx import SgxPlatform


def _keygen_handles(params):
    platform = SgxPlatform()
    trusted = platform.load_enclave(InferenceEnclave, params, 1)
    fake = platform.load_enclave(InferenceEnclave, params, 1, trusted=False)
    return platform, trusted, fake


def test_keygen_outside_sgx(benchmark, hybrid_params):
    """Raw key-generation speed of the FV implementation (outside)."""
    context = Context(hybrid_params)
    keygen = KeyGenerator(context)
    benchmark(keygen.generate)


def test_keygen_inside_sgx_simulated(benchmark, hybrid_params, scale, emit):
    """Regenerates Table I (simulated seconds, milliseconds in the report)."""
    platform, trusted, fake = _keygen_handles(hybrid_params)

    def sweep():
        inside = measure_simulated(
            lambda: trusted.ecall("generate_keys"), platform.clock, scale.repeats
        )
        outside = measure_simulated(
            lambda: fake.ecall("generate_keys"), platform.clock, scale.repeats
        )
        return inside, outside

    inside, outside = benchmark.pedantic(sweep, rounds=1, iterations=1)
    s_in, s_out = Summary.of(inside), Summary.of(outside)
    benchmark.extra_info["inside_ms"] = s_in.mean * 1e3
    benchmark.extra_info["outside_ms"] = s_out.mean * 1e3
    benchmark.extra_info["ratio"] = s_in.mean / s_out.mean
    emit(
        "table1_keygen",
        format_table(
            ["", "Average", "STD", "96% CI"],
            [
                ["Inside SGX", *s_in.row(unit_scale=1e3)],
                ["Outside SGX", *s_out.row(unit_scale=1e3)],
            ],
            title=(
                f"Table I: key generation time (/ms), n={hybrid_params.poly_degree}, "
                f"{scale.repeats} reps, scale={scale.name} "
                f"(paper: inside 49.593, outside 20.201, ratio 2.455)"
            ),
        )
        + f"\nratio inside/outside: {s_in.mean / s_out.mean:.3f}",
    )
    # Shape assertion: the enclave must cost more, by roughly the EPC factor.
    assert s_in.mean > s_out.mean
