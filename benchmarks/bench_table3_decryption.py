"""Table III: decryption + decoding of a batch of inference results.

Paper (batchSize = 10 images x 10 logits = 100 ciphertexts, 100 reps):
62.391 ms, STD 0.941, i.e. ~6.24 ms per image's result vector.

The reproduction decrypts ``batch_size x 10`` encrypted logits and reports
the paper's row plus the per-image figure.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Summary, format_table, measure_repeated
from repro.he import Context, Decryptor, Encryptor, KeyGenerator, ScalarEncoder


def _encrypted_logits(params, batch_size, rng):
    context = Context(params)
    keys = KeyGenerator(context, rng).generate()
    encoder = ScalarEncoder(context)
    encryptor = Encryptor(context, keys.public, rng)
    logits = rng.integers(-10_000, 10_000, size=(batch_size, 10))
    ct = encryptor.encrypt(encoder.encode(logits))
    return encoder, Decryptor(context, keys.secret), ct


def test_decrypt_inference_results(benchmark, hybrid_params, scale, emit):
    rng = np.random.default_rng(11)
    encoder, decryptor, ct = _encrypted_logits(hybrid_params, scale.batch_size, rng)

    def decrypt_batch():
        return encoder.decode(decryptor.decrypt(ct))

    benchmark(decrypt_batch)
    samples = measure_repeated(decrypt_batch, scale.repeats)
    summary = Summary.of(samples)
    per_image_ms = summary.mean * 1e3 / scale.batch_size
    benchmark.extra_info["per_image_ms"] = per_image_ms
    emit(
        "table3_decryption",
        format_table(
            ["batchSize", "Average", "STD", "96% CI"],
            [[str(scale.batch_size), *summary.row(unit_scale=1e3)]],
            title=(
                f"Table III: decryption and decoding of {scale.batch_size} image "
                f"inference results (/ms), n={hybrid_params.poly_degree}, "
                f"scale={scale.name} (paper: 62.391 ms for 10 images)"
            ),
        )
        + f"\nper image result: {per_image_ms:.3f} ms",
    )


def test_single_result_decrypt(benchmark, hybrid_params):
    rng = np.random.default_rng(12)
    encoder, decryptor, ct = _encrypted_logits(hybrid_params, 1, rng)
    benchmark(lambda: encoder.decode(decryptor.decrypt(ct)))
