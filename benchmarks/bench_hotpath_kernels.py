#!/usr/bin/env python
"""Fused hot-path kernels vs the reference kernels, in one process.

The kernel layer (:mod:`repro.he.kernels`) routes every pipeline through
prime-stacked NTTs, lazy/deferred reduction, tap-batched conv/dense
contractions and the probe-based constant decrypt.  This benchmark records
the *pre-change* behaviour by running the same deployment under the
reference profile (per-prime ``NttPlan`` loops, full ``%`` everywhere,
per-tap Python loops), then under the fused profile, and reports:

* an NTT microbenchmark (stacked vs per-prime transforms, both domains);
* a fig8-style end-to-end hybrid (``EncryptSGX``) inference comparison on
  the simulated clock (real compute + modeled SGX overhead);
* a bit-identity audit -- encrypted input, conv output, FC logits and
  decrypted values must match the reference *bytes*, and the operation
  tallies must be identical.

Emits ``BENCH_hotpath.json`` and exits nonzero if any bit-identity check
fails or the end-to-end speedup falls below ``--min-speedup`` (default 3x).

Run ``--smoke`` for the CI-sized configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core import HybridPipeline, heops, parameters_for_pipeline, train_paper_models
from repro.he import kernels


def _time_ntt(ring, batch: tuple[int, ...], reps: int, rng) -> dict:
    """Median seconds per forward/inverse transform, both kernel modes."""
    x = ring.sample_uniform(rng, *batch)
    out: dict = {"batch": list(batch)}
    for name, profile in (("reference", kernels.REFERENCE), ("fused", kernels.FUSED)):
        with kernels.use(profile):
            ring.ntt(x)  # warm
            fwd, inv = [], []
            for _ in range(reps):
                t0 = time.perf_counter()
                y = ring.ntt(x)
                fwd.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                ring.intt(y)
                inv.append(time.perf_counter() - t0)
        out[name] = {
            "forward_s": float(np.median(fwd)),
            "inverse_s": float(np.median(inv)),
        }
    out["forward_speedup"] = out["reference"]["forward_s"] / out["fused"]["forward_s"]
    out["inverse_speedup"] = out["reference"]["inverse_s"] / out["fused"]["inverse_s"]
    return out


def _run_pipeline(profile, quantized, params, images, reps: int):
    """Fig8-style hybrid inference under one kernel profile.

    Returns the median simulated-clock latency plus every intermediate the
    bit-identity audit compares.
    """
    prev = kernels.configure(profile)
    try:
        pipe = HybridPipeline(quantized, params, seed=13)
        pipe.infer(images)  # warm: first run pays lazy caches
        results = [pipe.infer(images) for _ in range(reps)]
        elapsed = sorted(r.total_elapsed_s for r in results)
        median = elapsed[len(elapsed) // 2]
        result = results[-1]
        ct = pipe.encrypt_images(images)
        conv = heops.he_conv2d(pipe.evaluator, pipe.encoder, ct, pipe.conv_weights)
        return {
            "pipe": pipe,
            "result": result,
            "median_s": median,
            "stage_s": {s.name: s.elapsed_s for s in result.stages},
            "input_ct": ct,
            "conv_ct": conv.to_ntt(),
            "counts": dict(pipe.counter.counts),
        }
    finally:
        kernels.configure(prev)


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized model and parameters"
    )
    parser.add_argument("--batch", type=int, default=4, help="images per inference")
    parser.add_argument("--reps", type=int, default=3, help="timed repetitions")
    parser.add_argument(
        "--out", default="BENCH_hotpath.json", help="JSON results path"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail below this fused-vs-reference end-to-end speedup",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        train_kwargs = dict(
            train_size=300, test_size=60, epochs=2, image_size=10, channels=2,
            kernel_size=3,
        )
        poly_degree = 256
    else:
        train_kwargs = dict(train_size=1200, test_size=300, epochs=6)
        poly_degree = 1024

    print(f"training model ({'smoke' if args.smoke else 'full'} config)...")
    models = train_paper_models(**train_kwargs)
    quantized = models.quantized_sigmoid()
    params = parameters_for_pipeline(quantized, poly_degree)
    images = models.dataset.test_images[: args.batch]

    from repro.he.context import Context

    ring = Context(params).ring
    rng = np.random.default_rng(99)
    print("NTT microbenchmark...")
    ntt_report = _time_ntt(ring, (512,), reps=max(3, args.reps), rng=rng)

    print("end-to-end hybrid inference, reference kernels (pre-change baseline)...")
    ref = _run_pipeline(kernels.REFERENCE, quantized, params, images, args.reps)
    print("end-to-end hybrid inference, fused kernels...")
    fus = _run_pipeline(kernels.FUSED, quantized, params, images, args.reps)

    identity = {
        "logits": bool(np.array_equal(ref["result"].logits, fus["result"].logits)),
        "encrypted_input": bool(
            np.array_equal(ref["input_ct"].data, fus["input_ct"].data)
        ),
        "conv_ciphertext": bool(
            np.array_equal(ref["conv_ct"].data, fus["conv_ct"].data)
        ),
        "op_tallies": ref["counts"] == fus["counts"],
    }
    bit_identical = all(identity.values())
    speedup = ref["median_s"] / fus["median_s"]

    report = {
        "config": {
            "mode": "smoke" if args.smoke else "full",
            "batch": args.batch,
            "reps": args.reps,
            "poly_degree": params.poly_degree,
            "rns_primes": len(params.coeff_primes),
            "plain_modulus": params.plain_modulus,
            "min_speedup": args.min_speedup,
        },
        "ntt": ntt_report,
        "baseline_reference": {
            "simulated_s": ref["median_s"],
            "stages_s": ref["stage_s"],
        },
        "fused": {
            "simulated_s": fus["median_s"],
            "stages_s": fus["stage_s"],
        },
        "speedup": speedup,
        "bit_identical": identity,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)

    print(
        f"NTT forward {ntt_report['forward_speedup']:.2f}x, "
        f"inverse {ntt_report['inverse_speedup']:.2f}x (batch {ntt_report['batch']})"
    )
    print(f"reference: {ref['median_s']:.3f} simulated s/inference")
    print(f"fused:     {fus['median_s']:.3f} simulated s/inference")
    print(f"speedup: {speedup:.2f}x   bit-identical: {bit_identical}")
    print(f"wrote {args.out}")

    if not bit_identical:
        failed = [k for k, v in identity.items() if not v]
        print(f"FAIL: fused kernels diverge from reference: {failed}", file=sys.stderr)
        return 1
    if speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(run())
