#!/usr/bin/env python
"""Fleet scaling: images/sec and paying-class p99 at 1, 2 and 4 replicas.

The single-enclave serving loop pins its throughput to one flush in flight;
the :class:`~repro.faults.FleetManager` multiplies the enclave behind the
same key pair (sealed-key migration, quote-verified joins).  This bench
asks the scaling question directly: *replay one seeded saturating trace on
fleets of 1, 2 and 4 replicas -- what do throughput and tail latency do,
and are the answers still bit-identical?*

For each fleet size it builds the deployment declaratively
(:class:`~repro.core.PipelineSpec` -> ``EdgeServer.from_spec``),
establishes one attested client session (:mod:`repro.client` -- the SDK is
the only enrollment path used here), replays the identical arrival trace
through the event-driven loop, and records:

* ``fleets.<n>.*`` -- the loop's deterministic SLO report (images/sec on
  the virtual timeline, occupancy, p50/p99 queue wait) plus the
  paying-class p99 (priority 0 and 1);
* ``scaling.ratio_4x`` / ``scaling.ratio_2x`` -- images/sec relative to
  the 1-replica run.  The gate holds ``ratio_4x >= --min-speedup``
  (default 2.5: routing, joins and the shared arrival tail cost something;
  linear 4.0 is the ceiling);
* ``invariants.bit_identical`` -- every served request on every fleet size
  decrypts to the plaintext reference for its image, bit for bit: replicas
  share one migrated key pair, so scaling must be invisible in the logits;
* ``failover.*`` -- a fourth run (2 replicas) arms a deterministic fault
  plan that destroys replica 0 at its fourth dispatch, mid-trace.  The
  batch fails over whole, the dead replica retires, every ticket resolves,
  and the served logits stay bit-identical.

Arrivals, service times, routing and the fault plan are all deterministic
given ``--seed``, so the emitted report is bit-reproducible.  Emits
``BENCH_fleet.json``; exits nonzero if an invariant fails or ``ratio_4x``
falls below ``--min-speedup``.

Run ``--smoke`` for the CI-sized configuration.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import faults
from repro.client import AttestedClient
from repro.core import EdgeServer, PipelineSpec, PlaintextPipeline, train_paper_models
from repro.faults import FaultPlan, FaultRule
from repro.serve import LoopConfig, ServiceTimeModel, ServingLoop, poisson_trace
from repro.sgx import AttestationVerificationService

#: Deterministic flush model shared by every run (4 ms fixed + 0.5 ms/image).
SERVICE_MODEL = ServiceTimeModel(base_s=4e-3, per_image_s=5e-4)


def build_deployment(quantized, *, poly_degree, max_batch, fleet_size, seed):
    """One fleet deployment plus its attested client session, the SDK way."""
    spec = PipelineSpec(
        scheme="hybrid",
        poly_degree=poly_degree,
        batching=True,
        fleet_size=fleet_size,
        max_batch=max_batch,
    )
    server = EdgeServer.from_spec(spec, seed=seed, sizing_model=quantized)
    server.provision_model("digits", quantized)
    verifier = AttestationVerificationService()
    verifier.register_platform(server.quoting)
    client = AttestedClient(server, verifier, b"\x42" * 32).establish()
    return server, client


def replay(server, client, trace, pool, expected, config):
    """Replay ``trace`` through a fresh loop; report + bit-identity verdict."""
    loop = ServingLoop(server, config)
    for arrival in trace:
        loop.offer(arrival, pool[arrival.image_index])
    loop.run()
    report = loop.report()
    paying = [t.queue_wait_s for t in loop.tickets if t.served and t.priority <= 1]
    report["p99_queue_wait_paying_s"] = (
        float(np.percentile(paying, 99)) if paying else 0.0
    )
    bit_identical = all(
        np.array_equal(
            client.decrypt_logits(t.result()),
            expected[t.image_index : t.image_index + 1],
        )
        for t in loop.tickets
        if t.served
    )
    resolved = all(t.done() for t in loop.tickets)
    return loop, report, bit_identical, resolved


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized model and trace"
    )
    parser.add_argument("--seed", type=int, default=42, help="trace + fault seed")
    parser.add_argument("--out", default="BENCH_fleet.json", help="JSON results path")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.5,
        help="fail below this 4-replica vs 1-replica images/sec ratio",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        train_kwargs = dict(
            train_size=300, test_size=60, epochs=2, image_size=10, channels=2,
            kernel_size=3,
        )
        poly_degree = 256
        max_batch = 8
        rate_rps, duration_s = 4500.0, 0.08
        users = 1000
        image_pool = 6
    else:
        train_kwargs = dict(train_size=1200, test_size=300, epochs=6)
        poly_degree = 1024
        max_batch = 16
        rate_rps, duration_s = 9000.0, 0.08
        users = 4000
        image_pool = 8

    # Saturating closed bolus of work: the offered load exceeds 4x one
    # replica's capacity, no admission shedding (the SLO is the question
    # here, not the policy), so every fleet size serves the identical
    # request set and images/sec isolates pure flush parallelism.
    config = LoopConfig(
        window_s=0.010,
        max_queue_depth=4096,
        admit_wait_slo_s=30.0,
        service_model=SERVICE_MODEL,
    )

    print(f"training model ({'smoke' if args.smoke else 'full'} config)...")
    models = train_paper_models(**train_kwargs)
    quantized = models.quantized_sigmoid()
    pool_images = models.dataset.test_images[:image_pool]
    expected = PlaintextPipeline(quantized).infer(pool_images).logits

    trace = poisson_trace(
        args.seed,
        rate_rps=rate_rps,
        duration_s=duration_s,
        users=users,
        image_pool=image_pool,
    )
    print(
        f"trace: {len(trace)} arrivals over {trace.duration_s:.2f}s "
        f"({trace.rate_rps:.0f} rps realized, {trace.users} users)"
    )

    fleets: dict[str, dict] = {}
    bit_identical = True
    all_resolved = True
    for fleet_size in (1, 2, 4):
        server, client = build_deployment(
            quantized,
            poly_degree=poly_degree,
            max_batch=max_batch,
            fleet_size=fleet_size,
            seed=13,
        )
        pool = [
            client.encrypt("digits", pool_images[i : i + 1])
            for i in range(image_pool)
        ]
        print(f"replaying on {fleet_size} replica(s)...")
        _, report, exact, resolved = replay(
            server, client, trace, pool, expected, config
        )
        bit_identical = bit_identical and exact
        all_resolved = all_resolved and resolved
        fleets[str(fleet_size)] = report
        print(
            f"  fleet {fleet_size}: {report['images_per_s']:.0f} images/s, "
            f"{report['flushes']} flushes, "
            f"p99 wait {report['p99_queue_wait_s'] * 1e3:.1f} ms "
            f"(paying {report['p99_queue_wait_paying_s'] * 1e3:.1f} ms), "
            f"bit-identical {exact}"
        )

    base_ips = fleets["1"]["images_per_s"]
    scaling = {
        "ratio_2x": fleets["2"]["images_per_s"] / base_ips if base_ips else 0.0,
        "ratio_4x": fleets["4"]["images_per_s"] / base_ips if base_ips else 0.0,
        "min_speedup": args.min_speedup,
    }

    # Failover segment: 2 replicas, replica 0 destroyed at its 4th
    # dispatch -- mid-trace, with batches in flight behind it.
    print("replaying failover segment (2 replicas, replica 0 dies mid-run)...")
    server, client = build_deployment(
        quantized, poly_degree=poly_degree, max_batch=max_batch,
        fleet_size=2, seed=13,
    )
    pool = [
        client.encrypt("digits", pool_images[i : i + 1]) for i in range(image_pool)
    ]
    plan = FaultPlan(
        args.seed,
        rules=[
            FaultRule(site="serve.fleet.replica", name="0", after=3, max_fires=1)
        ],
    )
    with faults.armed(plan):
        loop, fo_report, fo_exact, fo_resolved = replay(
            server, client, trace, pool, expected, config
        )
    failover = {
        "fired": plan.fires("serve.fleet.replica"),
        "retired": sorted(server.fleet.retired_replicas()),
        "live": server.fleet.live_replicas(),
        "served": fo_report["served"],
        "images_per_s": fo_report["images_per_s"],
    }
    print(
        f"  failover: {failover['served']} served on survivor "
        f"{failover['live']}, retired {failover['retired']}, "
        f"bit-identical {fo_exact}"
    )

    invariants = {
        "scaling_met": scaling["ratio_4x"] >= args.min_speedup,
        "bit_identical": bit_identical,
        "all_tickets_resolved": all_resolved,
        "failover_resolved": fo_resolved and failover["retired"] == [0],
        "failover_bit_identical": fo_exact,
    }
    report = {
        "config": {
            "mode": "smoke" if args.smoke else "full",
            "seed": args.seed,
            "poly_degree": poly_degree,
            "max_batch": max_batch,
            "rate_rps": rate_rps,
            "arrivals": len(trace),
            "users": trace.users,
            "window_s": config.window_s,
            "service_base_s": SERVICE_MODEL.base_s,
            "service_per_image_s": SERVICE_MODEL.per_image_s,
            "min_speedup": args.min_speedup,
        },
        "fleets": fleets,
        "scaling": scaling,
        "failover": failover,
        "invariants": invariants,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)

    print(
        f"scaling: 2 replicas {scaling['ratio_2x']:.2f}x, "
        f"4 replicas {scaling['ratio_4x']:.2f}x "
        f"(floor {args.min_speedup}x)   bit-identical: {bit_identical}"
    )
    print(f"wrote {args.out}")

    failures = []
    if not invariants["bit_identical"]:
        failures.append("served logits diverge from the plaintext reference")
    if not invariants["all_tickets_resolved"]:
        failures.append("some tickets never resolved")
    if not invariants["scaling_met"]:
        failures.append(
            f"4-replica scaling {scaling['ratio_4x']:.2f}x below required "
            f"{args.min_speedup}x"
        )
    if not invariants["failover_resolved"]:
        failures.append("failover segment left tickets unresolved or never retired")
    if not invariants["failover_bit_identical"]:
        failures.append("failover segment logits diverge from plaintext")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(run())
