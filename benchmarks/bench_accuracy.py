"""Section VII-B accuracy claim: encrypted predictions match plaintext.

Paper: "All the accuracy rates are consistent with the plaintext
predictions, and no case has been found to reduce the accuracy."

The reproduction checks three levels on a held-out batch:

1. hybrid logits == plaintext quantized logits, bit-exactly;
2. pure-HE logits == the square-model's integer reference, bit-exactly;
3. the hybrid (exact sigmoid) model's test accuracy is no worse than the
   square-substitute model's -- the approximation gap the hybrid removes.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table
from repro.core import CryptonetsPipeline, HybridPipeline, PlaintextPipeline
from repro.nn import accuracy_score, agreement_rate


def test_accuracy_consistency(
    benchmark, models, q_sigmoid, q_square, hybrid_params, pure_he_params, scale, emit
):
    images = models.dataset.test_images[: max(4, scale.batch_size)]
    labels = models.dataset.test_labels[: max(4, scale.batch_size)]

    def run():
        return {
            "plain_sigmoid": PlaintextPipeline(q_sigmoid).infer(images),
            "plain_square": PlaintextPipeline(q_square).infer(images),
            "hybrid": HybridPipeline(q_sigmoid, hybrid_params, seed=41).infer(images),
            "cryptonets": CryptonetsPipeline(q_square, pure_he_params, seed=41).infer(images),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, res in results.items():
        rows.append(
            [
                name,
                f"{accuracy_score(res.predictions, labels):.3f}",
                f"{agreement_rate(res.predictions, results['plain_sigmoid'].predictions):.3f}",
            ]
        )
    emit(
        "accuracy_consistency",
        format_table(
            ["pipeline", "accuracy", "agreement w/ plaintext"],
            rows,
            title=(
                f"Section VII-B: accuracy consistency on {len(labels)} held-out "
                f"images, scale={scale.name} (paper: encrypted == plaintext, "
                f"no accuracy reduction)"
            ),
        ),
    )
    assert np.array_equal(results["hybrid"].logits, results["plain_sigmoid"].logits)
    assert np.array_equal(results["cryptonets"].logits, results["plain_square"].logits)


def test_exact_activation_preserves_model_accuracy(benchmark, models, scale):
    """The hybrid's reason to exist: the exact-sigmoid model (which only the
    hybrid can serve privately) is at least as accurate as the square-
    substitute model that pure HE forces, measured on the full test set."""
    from repro.nn import accuracy

    data = models.dataset

    def evaluate():
        return (
            accuracy(models.sigmoid, data.test_float(), data.test_labels),
            accuracy(models.square, data.test_float(), data.test_labels),
        )

    sigmoid_acc, square_acc = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    benchmark.extra_info["sigmoid_acc"] = sigmoid_acc
    benchmark.extra_info["square_acc"] = square_acc
    # Both learn; the exact-activation model is not behind by more than a
    # few points (on larger budgets it typically leads).
    assert sigmoid_acc > 0.3
    assert square_acc > 0.3
