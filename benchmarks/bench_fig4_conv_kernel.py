"""Fig. 4: homomorphic convolution time vs kernel size, with op counts.

Paper (28 x 28 map, stride 1, kernel 1..28): the number of C x P / C + C
operations is symmetric around kernel sizes 14/15 (maximum 44,100), but the
measured time is *not* symmetric -- small kernels are far slower than large
ones with the same op count, because the small kernel re-enters the
homomorphic inner loop many more times (more, smaller, multiply/add calls);
at kernel size 1 vs 28 the paper sees a 15.855 s gap, 16.66x the entire
size-28 convolution.

The reproduction sweeps kernel size over a ``map x map`` encrypted image,
counts the exact C x P / C + C totals with the evaluator's OperationCounter
and reports both series.  The loop-structure asymmetry appears here too:
per-tap work is batched over output positions, so a small kernel means many
cheap numpy calls whose per-call overhead dominates.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_series, measure_repeated
from repro.core import encode_conv_weights, he_conv2d
from repro.he import (
    Context,
    Encryptor,
    Evaluator,
    KeyGenerator,
    OperationCounter,
    ScalarEncoder,
)


def _conv_rig(params, map_size, seed=9):
    context = Context(params)
    rng = np.random.default_rng(seed)
    keys = KeyGenerator(context, rng).generate()
    counter = OperationCounter()
    evaluator = Evaluator(context, counter)
    encoder = ScalarEncoder(context)
    encryptor = Encryptor(context, keys.public, rng)
    image = rng.integers(0, 50, size=(1, 1, map_size, map_size))
    ct = encryptor.encrypt(encoder.encode(image))
    return evaluator, encoder, counter, ct, rng


def expected_ops(map_size: int, kernel: int) -> int:
    """C x P count of one feature map: (out)^2 * k^2 (equals the C + C count
    up to the k^2-1 vs k^2 add difference the paper also folds together)."""
    out = map_size - kernel + 1
    return out * out * kernel * kernel


def test_fig4_kernel_sweep(benchmark, hybrid_params, scale, emit):
    map_size = scale.image_size
    kernels = list(range(1, map_size + 1)) if scale.name == "paper" else list(
        range(1, map_size + 1, max(1, map_size // 8))
    )
    if map_size not in kernels:
        kernels.append(map_size)
    evaluator, encoder, counter, ct, rng = _conv_rig(hybrid_params, map_size)
    reps = max(2, scale.repeats // 5)

    def sweep():
        times, ops = [], []
        for k in kernels:
            weight = rng.integers(-15, 16, size=(1, 1, k, k))
            encoded = encode_conv_weights(
                evaluator, encoder, weight, np.zeros(1, dtype=np.int64)
            )
            samples = measure_repeated(
                lambda: he_conv2d(evaluator, encoder, ct, encoded), reps
            )
            counter.reset()
            he_conv2d(evaluator, encoder, ct, encoded)
            ops.append(counter.get("ct_plain_mul"))
            times.append(min(samples))
        return times, ops

    times, ops = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "fig4_conv_kernel",
        format_series(
            "kernel",
            kernels,
            {"time_s": times, "CxP_ops": [float(o) for o in ops]},
            title=(
                f"Fig. 4: homomorphic convolution time and C x P count vs kernel "
                f"size on a {map_size}x{map_size} map, scale={scale.name} "
                f"(paper: ops symmetric around {map_size // 2}/{map_size // 2 + 1}, "
                f"time skewed toward small kernels)"
            ),
        ),
    )
    # Claim 1: measured op counts match the closed form and are symmetric.
    for k, o in zip(kernels, ops):
        assert o == expected_ops(map_size, k)
    # Claim 2 (the paper's loop-structure asymmetry): of the two extreme
    # kernels with the *same* op count (1 and map_size: both map_size^2 CxP),
    # the small kernel is slower.
    assert expected_ops(map_size, 1) == expected_ops(map_size, map_size)
    t_small = times[kernels.index(1)]
    t_large = times[kernels.index(map_size)]
    benchmark.extra_info["asymmetry_1_vs_full"] = t_small / t_large
    assert t_small > t_large
