"""Fig. 6: pooling time with/without SGX against the window size.

Paper (24 x 24 input map, windows 2..6, four bars per window):

* ``SGXDiv``      = EncryptedSum (homomorphic window adds) + SGXDivide;
* ``FakeSGXDiv``  = EncryptedSum + FakeSGXDivide (no-enclave control);
* ``SGXPool``     = the whole map decrypted and pooled inside SGX;
* ``FakeSGXPool`` = the same outside.

Findings to reproduce: time falls as the window grows (fewer outputs);
SGXPool's cost barely falls (fixed input size); SGXDiv's enclave cost
collapses (divisions shrink ~window^2); the SGXDiv-vs-SGXPool crossover
sits at window size 3 on the paper's hardware.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_series, measure_simulated
from repro.core import InferenceEnclave, PoolingPlacementPolicy, PoolStrategy
from repro.core.heops import he_scaled_mean_pool
from repro.he import Context, Encryptor, Evaluator, ScalarEncoder
from repro.he.keys import PublicKey
from repro.sgx import SgxPlatform


def _rig(params, seed=23):
    platform = SgxPlatform()
    trusted = platform.load_enclave(InferenceEnclave, params, seed)
    fake = platform.load_enclave(InferenceEnclave, params, seed, trusted=False)
    public = trusted.ecall("generate_keys")
    fake.ecall("generate_keys")
    context = Context(params)
    public = PublicKey(context, public.p0_ntt, public.p1_ntt)
    rng = np.random.default_rng(seed)
    return (
        platform,
        trusted,
        fake,
        ScalarEncoder(context),
        Encryptor(context, public, rng),
        Evaluator(context),
        rng,
    )


def test_fig6_pooling_sweep(benchmark, hybrid_params, scale, emit):
    platform, trusted, fake, encoder, encryptor, evaluator, rng = _rig(hybrid_params)
    map_size = 12 if scale.name != "paper" else 24
    windows = [w for w in (2, 3, 4, 6) if map_size % w == 0]
    values = rng.integers(0, 200, size=(1, 1, map_size, map_size))
    ct = encryptor.encrypt(encoder.encode(values))
    reps = max(2, scale.repeats // 5)

    def timed(fn):
        return min(measure_simulated(fn, platform.clock, reps))

    def sweep():
        rows = {"SGXDiv": [], "FakeSGXDiv": [], "SGXPool": [], "FakeSGXPool": []}
        inputs_to_sgx = []
        for w in windows:
            summed = he_scaled_mean_pool(evaluator, ct, w)
            sum_time = timed(lambda: he_scaled_mean_pool(evaluator, ct, w))
            rows["SGXDiv"].append(
                sum_time + timed(lambda: trusted.ecall("divide", summed, w * w))
            )
            rows["FakeSGXDiv"].append(
                sum_time + timed(lambda: fake.ecall("divide", summed, w * w))
            )
            rows["SGXPool"].append(timed(lambda: trusted.ecall("mean_pool", ct, w)))
            rows["FakeSGXPool"].append(timed(lambda: fake.ecall("mean_pool", ct, w)))
            inputs_to_sgx.append(float((map_size // w) ** 2))
        return rows, inputs_to_sgx

    (rows, inputs_to_sgx) = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "fig6_pooling",
        format_series(
            "window",
            windows,
            {**rows, "SGXDiv_inputs": inputs_to_sgx},
            title=(
                f"Fig. 6: pool computing time per {map_size}x{map_size} feature map "
                f"(/s), scale={scale.name} (paper: SGXDiv beats SGXPool once "
                f"window >= 3; SGXPool nearly flat)"
            ),
        ),
    )
    # Shape 1: SGX always costs more than its FakeSGX control.
    for i in range(len(windows)):
        assert rows["SGXPool"][i] > rows["FakeSGXPool"][i]
        assert rows["SGXDiv"][i] >= rows["FakeSGXDiv"][i]
    # Shape 2: SGXDiv's enclave-side work collapses with the window while
    # SGXPool's stays nearly flat -> for large windows SGXDiv wins.
    assert rows["SGXDiv"][-1] < rows["SGXPool"][-1]
    crossover = next(
        (w for w, div, pool in zip(windows, rows["SGXDiv"], rows["SGXPool"]) if div < pool),
        None,
    )
    benchmark.extra_info["crossover_window"] = crossover
    # Shape 3: the placement policy agrees with the measurement at the ends.
    policy = PoolingPlacementPolicy(crossover_window=crossover or 3)
    assert policy.choose(windows[-1]) is PoolStrategy.SGX_DIV
