"""Fig. 8: end-to-end prediction time of the four schemes.

Paper (batchSize = 10, four-layer CNN of Table VI):

==========================  ============  =========================
scheme                      time (s)      notes
==========================  ============  =========================
Encrypted (pure HE)         4506.5        CryptoNets-style baseline
EncryptSGX (single)         6031.6        one crossing per pixel
EncryptSGX (the framework)  2721.3        -39.615% vs Encrypted
EncryptFakeSGX              2404.4        SGX's own cost ~ 317 s
==========================  ============  =========================

The reproduction runs all four pipelines on the same image batch at the
selected scale and asserts the ordering:
``EncryptSGX(single) > Encrypted > EncryptSGX > EncryptFakeSGX``,
plus the accuracy side claim (hybrid logits == plaintext logits exactly).
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, format_trace
from repro.core import CryptonetsPipeline, HybridPipeline, PlaintextPipeline
from repro.obs import metrics_from_trace, reconcile


def test_fig8_end_to_end(
    benchmark, q_sigmoid, q_square, hybrid_params, pure_he_params, batch_images, scale, emit
):
    def run_all():
        results = {}
        results["Encrypted"] = CryptonetsPipeline(
            q_square, pure_he_params, seed=31
        ).infer(batch_images)
        results["EncryptSGX"] = HybridPipeline(
            q_sigmoid, hybrid_params, mode="batched", seed=31
        ).infer(batch_images)
        results["EncryptFakeSGX"] = HybridPipeline(
            q_sigmoid, hybrid_params, mode="fake", seed=31
        ).infer(batch_images)
        # The per-pixel control is so slow that one image suffices to show
        # its blow-up; scale its time to the batch for the table.
        single = HybridPipeline(
            q_sigmoid, hybrid_params, mode="per_pixel", seed=31
        ).infer(batch_images[:1])
        results["EncryptSGX(single)"] = single
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    batch = batch_images.shape[0]
    per_image = {
        name: (
            res.total_elapsed_s / (1 if name == "EncryptSGX(single)" else batch)
        )
        for name, res in results.items()
    }
    plain = PlaintextPipeline(q_sigmoid).infer(batch_images)

    rows = []
    order = ["EncryptSGX(single)", "Encrypted", "EncryptSGX", "EncryptFakeSGX"]
    for name in order:
        res = results[name]
        rows.append(
            [
                name,
                f"{per_image[name]:.3f}",
                f"{res.total_real_s:.3f}",
                f"{res.total_overhead_s:.3f}",
                str(res.enclave_crossings),
            ]
        )
    saving = 1.0 - per_image["EncryptSGX"] / per_image["Encrypted"]
    benchmark.extra_info["saving_vs_encrypted"] = saving
    benchmark.extra_info.update({f"{k}_s_per_image": v for k, v in per_image.items()})
    # Every scheme's trace must reconcile (stages cover the clock deltas);
    # the framework's flat metrics ride along in extra_info so CI artifacts
    # carry the full stage/crossing/bytes decomposition.
    for res in results.values():
        reconcile(res.trace)
    benchmark.extra_info.update(metrics_from_trace(results["EncryptSGX"].trace))
    bytes_crossed = sum(
        int(e.attrs.get("bytes_in", 0)) + int(e.attrs.get("bytes_out", 0))
        for e in results["EncryptSGX"].trace.ecalls()
    )
    benchmark.extra_info["EncryptSGX_bytes_crossed"] = bytes_crossed
    emit(
        "fig8_end_to_end",
        format_table(
            ["scheme", "s/image (simulated)", "real s", "sgx overhead s", "crossings"],
            rows,
            title=(
                f"Fig. 8: prediction time per image, batchSize={batch}, "
                f"{scale.image_size}x{scale.image_size}, scale={scale.name} "
                f"(paper: single 603.2, Encrypted 450.7, EncryptSGX 272.1, "
                f"FakeSGX 240.4 s/image; EncryptSGX saves 39.6% vs Encrypted)"
            ),
        )
        + f"\nEncryptSGX saving vs Encrypted: {saving * 100:.1f}%"
        + f"\nhybrid == plaintext logits: "
        + str(np.array_equal(results["EncryptSGX"].logits, plain.logits))
        + "\n\n"
        + format_trace(results["EncryptSGX"].trace),
    )

    # The paper's orderings that are robust to the HE/SGX cost ratio of the
    # underlying implementation:
    assert per_image["Encrypted"] > per_image["EncryptSGX"]
    assert per_image["EncryptSGX"] > per_image["EncryptFakeSGX"]
    # The per-pixel control must dwarf the batched framework (the paper's
    # "frequent accesses to SGX bring about huge time-consuming").  Whether
    # it also exceeds the pure-HE baseline depends on the substrate's
    # HE-multiply-to-crossing cost ratio: it does on the paper's C++ SEAL +
    # real SGX stack, while our pure-Python ciphertext multiply is
    # relatively far more expensive -- recorded, not asserted (see
    # EXPERIMENTS.md).
    assert per_image["EncryptSGX(single)"] > 2 * per_image["EncryptSGX"]
    benchmark.extra_info["single_vs_encrypted"] = (
        per_image["EncryptSGX(single)"] / per_image["Encrypted"]
    )
    # The headline claim: the hybrid saves time over pure HE...
    assert saving > 0.2
    # ...without touching accuracy (Section VII-B: "all the accuracy rates
    # are consistent with the plaintext predictions").
    assert np.array_equal(results["EncryptSGX"].logits, plain.logits)
    assert np.array_equal(results["EncryptFakeSGX"].logits, plain.logits)
