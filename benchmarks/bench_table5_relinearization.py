"""Table V: relinearization vs SGX noise reduction.

Paper: relinearization 65.216 ms (STD 1.472); one SGX decrypt/re-encrypt
crossing 95.55 ms (STD 2.459) -- slower per lone ciphertext -- but batching
a batchSize of ciphertexts into one crossing amortizes entry/exit and key
loading down to 23.429 ms each, making the enclave route the winner.

The reproduction squares a batch of ciphertexts and refreshes them three
ways: relinearization, one crossing per ciphertext, one batched crossing.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Summary, format_table, measure_simulated
from repro.core import InferenceEnclave, relinearize_refresh, sgx_refresh, sgx_refresh_one_by_one
from repro.he import Context, Encryptor, Evaluator, ScalarEncoder
from repro.he.keys import PublicKey
from repro.sgx import SgxPlatform


def _rig(params, batch, seed=5):
    platform = SgxPlatform()
    enclave = platform.load_enclave(InferenceEnclave, params, seed)
    public = enclave.ecall("generate_keys")
    context = Context(params)
    public = PublicKey(context, public.p0_ntt, public.p1_ntt)
    rng = np.random.default_rng(seed)
    encoder = ScalarEncoder(context)
    encryptor = Encryptor(context, public, rng)
    evaluator = Evaluator(context)
    relin = enclave.ecall("generate_relin_keys")
    values = rng.integers(-50, 50, size=batch)
    squared = evaluator.square(encryptor.encrypt(encoder.encode(values)))
    return platform, enclave, evaluator, relin, squared


def test_relinearize_single(benchmark, pure_he_params):
    """Raw relinearization speed of one ciphertext."""
    platform, enclave, evaluator, relin, squared = _rig(pure_he_params, 1)
    benchmark(lambda: evaluator.relinearize(squared, relin))


def test_table5_refresh_comparison(benchmark, pure_he_params, scale, emit):
    batch = scale.batch_size * 4
    platform, enclave, evaluator, relin, squared = _rig(pure_he_params, batch)
    reps = max(3, scale.repeats // 2)

    def sweep():
        relin_s = measure_simulated(
            lambda: relinearize_refresh(evaluator, squared, relin, platform.clock),
            platform.clock,
            reps,
        )
        single_s = measure_simulated(
            lambda: sgx_refresh_one_by_one(enclave, squared), platform.clock, reps
        )
        batched_s = measure_simulated(
            lambda: sgx_refresh(enclave, squared), platform.clock, reps
        )
        return relin_s, single_s, batched_s

    relin_s, single_s, batched_s = benchmark.pedantic(sweep, rounds=1, iterations=1)
    per = 1e3 / batch  # -> ms per ciphertext
    s_relin = Summary.of([x * per for x in relin_s])
    s_single = Summary.of([x * per for x in single_s])
    s_batched = Summary.of([x * per for x in batched_s])
    benchmark.extra_info["relin_ms"] = s_relin.mean
    benchmark.extra_info["sgx_single_ms"] = s_single.mean
    benchmark.extra_info["sgx_batched_ms"] = s_batched.mean
    emit(
        "table5_relinearization",
        format_table(
            ["", "Average", "STD", "96% CI"],
            [
                ["Reline", *s_relin.row()],
                ["SGX (1 crossing/ct)", *s_single.row()],
                ["SGX (batched)", *s_batched.row()],
            ],
            title=(
                f"Table V: per-ciphertext noise-reduction time (/ms), batch={batch}, "
                f"n={pure_he_params.poly_degree}, scale={scale.name} "
                f"(paper: reline 65.216, SGX single 95.55, SGX batched 23.429)"
            ),
        ),
    )
    # Shape: unbatched SGX refresh loses to relinearization; batching the
    # crossing amortizes it below the unbatched cost.
    assert s_single.mean > s_batched.mean
    assert s_batched.mean < s_relin.mean * 2  # batched SGX is competitive


def test_refresh_restores_budget(benchmark, pure_he_params):
    """Not a timing claim: the refresh's entire point is the noise reset."""
    platform, enclave, evaluator, relin, squared = _rig(pure_he_params, 4)
    decryptor = enclave._instance._decryptor

    refreshed = benchmark.pedantic(
        lambda: sgx_refresh(enclave, squared).ciphertext, rounds=1, iterations=1
    )
    assert decryptor.invariant_noise_budget(refreshed) > decryptor.invariant_noise_budget(
        evaluator.relinearize(squared, relin)
    )
