#!/usr/bin/env python
"""Parallel flush scaling: images/sec at 1, 2 and 4 flush workers.

PR 8 moved the fused kernels' contraction loops onto a pool of forked
worker processes over a shared-memory ciphertext arena
(:mod:`repro.he.parallel`).  This bench asks the two questions that make
that safe to ship:

* *Does it scale?*  Replay one seeded saturating trace through the
  event-driven loop at ``workers`` = 1, 2 and 4 -- the worker-aware
  :class:`~repro.serve.ServiceTimeModel` divides the per-image half of the
  flush across workers (Amdahl: the ``base_s`` enclave/pack/serialize half
  does not split) on the loop's deterministic virtual timeline, while the
  *real* pool executes every flush underneath.  ``scaling.ratio_4x`` must
  clear the 1.5x floor (``invariants.speedup_floor`` -- a hard invariant,
  independent of ``--min-speedup``).
* *Is it invisible?*  A fixed identity batch runs through fresh same-seed
  deployments at each width: the serialized logits-ciphertext bytes must
  be identical across worker counts (``invariants.byte_identical``) and
  the decrypted logits must match the plaintext reference bit-for-bit
  (``invariants.bit_identical``).  A final chaos segment SIGKILLs a worker
  mid-flush (``parallel.worker`` site): the generation retires, every unit
  replays in-process, and the bytes still match
  (``invariants.chaos_byte_identical``).

Arrivals, service times and the fault plan are deterministic given
``--seed``.  Emits ``BENCH_parallel.json``; exits nonzero if an invariant
fails or ``ratio_4x`` falls below ``--min-speedup``.

Run ``--smoke`` for the CI-sized configuration.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import faults
from repro.client import AttestedClient
from repro.core import EdgeServer, PipelineSpec, PlaintextPipeline, train_paper_models
from repro.faults import FaultPlan, FaultRule
from repro.he import parallel
from repro.he import serialize as ser
from repro.serve import LoopConfig, ServiceTimeModel, ServingLoop, poisson_trace
from repro.sgx import AttestationVerificationService

#: The flush cost split: ``base_s`` (enclave crossings, pack, serialize)
#: stays serial; ``per_image_s`` (the kernel contractions) divides across
#: workers at ``dispatch_s`` per extra worker.
BASE_S, PER_IMAGE_S, DISPATCH_S = 4e-3, 5e-4, 1.5e-4

WORKER_COUNTS = (1, 2, 4)


def build_deployment(quantized, *, poly_degree, max_batch, workers, seed):
    """One deployment with ``workers`` flush processes, plus its attested
    client session -- built declaratively so ``PipelineSpec(workers=...)``
    is the configuration path under test."""
    spec = PipelineSpec(
        scheme="hybrid",
        poly_degree=poly_degree,
        batching=True,
        max_batch=max_batch,
        workers=workers,
    )
    server = EdgeServer.from_spec(spec, seed=seed, sizing_model=quantized)
    server.provision_model("digits", quantized)
    verifier = AttestationVerificationService()
    verifier.register_platform(server.quoting)
    client = AttestedClient(server, verifier, b"\x42" * 32).establish()
    return server, client


def reset_pool():
    """Return the process to the in-process default between runs."""
    parallel.configure(None)
    parallel.shutdown()


def identity_batch(server, client, images):
    """Run the fixed identity batch through one scheduler drain; returns
    the per-request serialized logits-ciphertext bytes and logits."""
    responses = [
        server.scheduler.submit("digits", client.encrypt("digits", images[i : i + 1]))
        for i in range(len(images))
    ]
    server.scheduler.drain()
    blobs = [ser.serialize_ciphertext(r.result().logits_ct) for r in responses]
    logits = [client.decrypt_logits(r.result()) for r in responses]
    return blobs, logits


def replay(server, client, trace, pool, expected, config):
    """Replay ``trace`` through a fresh loop; report + bit-identity verdict."""
    loop = ServingLoop(server, config)
    for arrival in trace:
        loop.offer(arrival, pool[arrival.image_index])
    loop.run()
    report = loop.report()
    bit_identical = all(
        np.array_equal(
            client.decrypt_logits(t.result()),
            expected[t.image_index : t.image_index + 1],
        )
        for t in loop.tickets
        if t.served
    )
    resolved = all(t.done() for t in loop.tickets)
    return report, bit_identical, resolved


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized model and trace"
    )
    parser.add_argument("--seed", type=int, default=42, help="trace + fault seed")
    parser.add_argument(
        "--out", default="BENCH_parallel.json", help="JSON results path"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="fail below this 4-worker vs 1-worker images/sec ratio",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        train_kwargs = dict(
            train_size=300, test_size=60, epochs=2, image_size=10, channels=2,
            kernel_size=3,
        )
        poly_degree = 256
        # Deep flushes are where parallel execution pays: at 16 images the
        # divisible per-image half dominates the serial base_s half.
        max_batch = 16
        rate_rps, duration_s = 4500.0, 0.08
        users = 1000
        image_pool = 6
    else:
        train_kwargs = dict(train_size=1200, test_size=300, epochs=6)
        poly_degree = 1024
        max_batch = 16
        rate_rps, duration_s = 9000.0, 0.08
        users = 4000
        image_pool = 8

    print(f"training model ({'smoke' if args.smoke else 'full'} config)...")
    models = train_paper_models(**train_kwargs)
    quantized = models.quantized_sigmoid()
    pool_images = models.dataset.test_images[:image_pool]
    expected = PlaintextPipeline(quantized).infer(pool_images).logits

    trace = poisson_trace(
        args.seed,
        rate_rps=rate_rps,
        duration_s=duration_s,
        users=users,
        image_pool=image_pool,
    )
    print(
        f"trace: {len(trace)} arrivals over {trace.duration_s:.2f}s "
        f"({trace.rate_rps:.0f} rps realized, {trace.users} users)"
    )

    runs: dict[str, dict] = {}
    blobs_by_w: dict[int, list[bytes]] = {}
    bit_identical = True
    all_resolved = True
    for workers in WORKER_COUNTS:
        server, client = build_deployment(
            quantized,
            poly_degree=poly_degree,
            max_batch=max_batch,
            workers=workers,
            seed=13,
        )
        # Identity batch first: fixed composition, one drain -- the
        # serialized bytes must not know the worker count.
        blobs, logits = identity_batch(server, client, pool_images)
        blobs_by_w[workers] = blobs
        bit_identical = bit_identical and all(
            np.array_equal(lg, expected[i : i + 1]) for i, lg in enumerate(logits)
        )
        pool = [
            client.encrypt("digits", pool_images[i : i + 1])
            for i in range(image_pool)
        ]
        config = LoopConfig(
            window_s=0.010,
            max_queue_depth=4096,
            admit_wait_slo_s=30.0,
            service_model=ServiceTimeModel(
                base_s=BASE_S,
                per_image_s=PER_IMAGE_S,
                workers=workers,
                dispatch_s=DISPATCH_S,
            ),
        )
        print(f"replaying on {workers} worker(s)...")
        report, exact, resolved = replay(
            server, client, trace, pool, expected, config
        )
        bit_identical = bit_identical and exact
        all_resolved = all_resolved and resolved
        live_pool = parallel.active_pool()
        report["pool"] = {
            "dispatched_units": live_pool.dispatched_units if live_pool else 0,
            "stolen_units": live_pool.stolen_units if live_pool else 0,
            "deaths": live_pool.deaths if live_pool else 0,
        }
        runs[str(workers)] = report
        reset_pool()
        print(
            f"  workers {workers}: {report['images_per_s']:.0f} images/s, "
            f"{report['flushes']} flushes, "
            f"p99 wait {report['p99_queue_wait_s'] * 1e3:.1f} ms, "
            f"{report['pool']['dispatched_units']} pool units, "
            f"bit-identical {exact}"
        )

    byte_identical = all(
        blobs_by_w[w] == blobs_by_w[1] for w in WORKER_COUNTS[1:]
    )
    base_ips = runs["1"]["images_per_s"]
    scaling = {
        "ratio_2x": runs["2"]["images_per_s"] / base_ips if base_ips else 0.0,
        "ratio_4x": runs["4"]["images_per_s"] / base_ips if base_ips else 0.0,
        "min_speedup": args.min_speedup,
    }

    # Chaos segment: 2 workers, worker 0 SIGKILLed at its second dispatch
    # -- the generation retires, every unit replays in-process, and the
    # identity batch's bytes still match the single-process run.
    print("replaying chaos segment (2 workers, worker 0 killed mid-flush)...")
    server, client = build_deployment(
        quantized, poly_degree=poly_degree, max_batch=max_batch,
        workers=2, seed=13,
    )
    plan = FaultPlan(
        args.seed,
        rules=[FaultRule(site="parallel.worker", name="0", after=1, max_fires=1)],
    )
    with faults.armed(plan):
        chaos_blobs, chaos_logits = identity_batch(server, client, pool_images)
    live_pool = parallel.active_pool()
    chaos = {
        "fired": plan.fires("parallel.worker"),
        "deaths": live_pool.deaths if live_pool else 0,
        "replayed_units": live_pool.replayed_units if live_pool else 0,
    }
    chaos_byte_identical = chaos_blobs == blobs_by_w[1]
    chaos_bit_identical = all(
        np.array_equal(lg, expected[i : i + 1]) for i, lg in enumerate(chaos_logits)
    )
    reset_pool()
    print(
        f"  chaos: {chaos['fired']} fired, {chaos['deaths']} death(s), "
        f"{chaos['replayed_units']} unit(s) replayed, "
        f"byte-identical {chaos_byte_identical}"
    )

    invariants = {
        "speedup_floor": scaling["ratio_4x"] >= 1.5,
        "scaling_met": scaling["ratio_4x"] >= args.min_speedup,
        "byte_identical": byte_identical,
        "bit_identical": bit_identical,
        "all_tickets_resolved": all_resolved,
        "chaos_recovered": chaos["fired"] == 1
        and chaos["deaths"] == 1
        and chaos["replayed_units"] >= 1,
        "chaos_byte_identical": chaos_byte_identical and chaos_bit_identical,
    }
    report = {
        "config": {
            "mode": "smoke" if args.smoke else "full",
            "seed": args.seed,
            "poly_degree": poly_degree,
            "max_batch": max_batch,
            "rate_rps": rate_rps,
            "arrivals": len(trace),
            "users": trace.users,
            "window_s": 0.010,
            "service_base_s": BASE_S,
            "service_per_image_s": PER_IMAGE_S,
            "service_dispatch_s": DISPATCH_S,
            "min_speedup": args.min_speedup,
        },
        "runs": runs,
        "scaling": scaling,
        "chaos": chaos,
        "invariants": invariants,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)

    print(
        f"scaling: 2 workers {scaling['ratio_2x']:.2f}x, "
        f"4 workers {scaling['ratio_4x']:.2f}x "
        f"(floor {args.min_speedup}x)   byte-identical: {byte_identical}"
    )
    print(f"wrote {args.out}")

    failures = []
    if not invariants["byte_identical"]:
        failures.append("serialized logits ciphertexts differ across worker counts")
    if not invariants["bit_identical"]:
        failures.append("served logits diverge from the plaintext reference")
    if not invariants["all_tickets_resolved"]:
        failures.append("some tickets never resolved")
    if not invariants["speedup_floor"]:
        failures.append(
            f"4-worker scaling {scaling['ratio_4x']:.2f}x below the hard 1.5x floor"
        )
    if not invariants["scaling_met"]:
        failures.append(
            f"4-worker scaling {scaling['ratio_4x']:.2f}x below required "
            f"{args.min_speedup}x"
        )
    if not invariants["chaos_recovered"]:
        failures.append("worker-kill chaos segment did not retire and replay")
    if not invariants["chaos_byte_identical"]:
        failures.append("worker-kill chaos segment changed output bytes")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(run())
