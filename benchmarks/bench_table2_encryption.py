"""Table II: image encoding + encryption time for a batch of images.

Paper (batchSize = 10, 28 x 28 pixels, one ciphertext per pixel, 1000
reps): 157.013 s per batch, STD 1.613, i.e. ~15.7 s per image on SEAL 2.1.

The reproduction encodes + encrypts ``scale.batch_size`` images pixel-per-
ciphertext and reports the same Average / STD / 96% CI row plus the derived
per-image cost.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Summary, format_table, measure_repeated
from repro.he import Context, Encryptor, KeyGenerator, ScalarEncoder


def _setup(params, q_sigmoid, images):
    context = Context(params)
    rng = np.random.default_rng(7)
    keys = KeyGenerator(context, rng).generate()
    encoder = ScalarEncoder(context)
    encryptor = Encryptor(context, keys.public, rng)
    pixels = q_sigmoid.quantize_images(images)
    return encoder, encryptor, pixels


def test_image_encode_encrypt_batch(benchmark, hybrid_params, q_sigmoid, batch_images, scale, emit):
    encoder, encryptor, pixels = _setup(hybrid_params, q_sigmoid, batch_images)

    def encrypt_batch():
        return encryptor.encrypt(encoder.encode(pixels))

    benchmark(encrypt_batch)
    samples = measure_repeated(encrypt_batch, scale.repeats)
    summary = Summary.of(samples)
    per_image = summary.mean / scale.batch_size
    benchmark.extra_info["batch_s"] = summary.mean
    benchmark.extra_info["per_image_s"] = per_image
    emit(
        "table2_encryption",
        format_table(
            ["batchSize", "Average", "STD", "96% CI"],
            [[str(scale.batch_size), *summary.row(digits=4)]],
            title=(
                f"Table II: image encoding and encryption time (/s), "
                f"{scale.image_size}x{scale.image_size} px, n={hybrid_params.poly_degree}, "
                f"scale={scale.name} (paper: 157.013 s for 10 images at 28x28)"
            ),
        )
        + f"\nper image: {per_image:.4f} s",
    )


def test_single_pixel_encrypt(benchmark, hybrid_params, q_sigmoid, batch_images):
    """Unit cost: one pixel -> one ciphertext."""
    encoder, encryptor, _ = _setup(hybrid_params, q_sigmoid, batch_images)
    plain = encoder.encode(128)
    benchmark(encryptor.encrypt, plain)
