#!/usr/bin/env python
"""Serving SLOs under open-loop traffic: the event-driven loop vs pump().

``bench_serving_throughput.py`` measures one closed batch of concurrent
requests; this bench asks the deployment question the paper's edge-serving
story (Section VIII) implies but never measures: *what tail latency do a
thousand open-loop users see, and what does a 4x burst do to it?*

It drives one :class:`~repro.serve.ServingLoop` with a seeded synthetic
trace -- a steady Poisson phase followed by a 4x on/off burst phase, both
from :mod:`repro.serve.traffic` -- and reports, on the loop's deterministic
virtual timeline:

* ``continuous.*`` -- p50/p99 queue wait, images/sec, mean slot occupancy,
  shed rate for the continuous-batching loop;
* ``windowed.*`` -- the same trace pushed through a pure simulation of the
  old pump-style discipline (fresh coalescing window per group, no
  admission control) with the identical :class:`~repro.serve.
  ServiceTimeModel`, as the comparison baseline;
* ``throughput_ratio`` -- continuous vs windowed images per *busy* second
  (served images over summed flush time).  At saturation both disciplines
  pin the server, so raw images/sec converges; what continuous batching
  buys is fuller slot groups -- more images per unit of HE work -- and
  that is the ratio the gate holds at >= ``--min-speedup``;
* ``slo.*`` -- boolean invariants: the p99 queue wait of the paying
  classes (priority 0 and 1) stays under the admission SLO even through
  the burst (the batch class is best-effort: it absorbs the backlog and
  is bounded only via shedding), and the shed rate stays under its cap;
* ``bit_identical.logits`` -- every served request's decrypted logits
  match the plaintext integer reference for its image.

Because arrivals, service times and the admission policy are all
deterministic given ``--seed``, the emitted report is bit-reproducible:
running twice with the same flags yields the same JSON (up to the file
path).  Emits ``BENCH_slo.json``; exits nonzero if an invariant fails or
``throughput_ratio`` falls below ``--min-speedup``.

Run ``--smoke`` for the CI-sized configuration.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.client import AttestedClient
from repro.core import (
    EdgeServer,
    PipelineSpec,
    PlaintextPipeline,
    train_paper_models,
)
from repro.serve import (
    LoopConfig,
    ServiceTimeModel,
    ServingLoop,
    bursty_trace,
    merge,
    poisson_trace,
)
from repro.sgx import AttestationVerificationService


def simulate_windowed(trace, service_model, capacity, window_s):
    """Pure-virtual replay of the pump-style coalescing discipline.

    Groups form FIFO: a group opens at its first arrival and closes when it
    fills to ``capacity`` images or an arrival lands after its coalescing
    window expired (a fresh window per group -- exactly the semantics the
    continuous loop removes).  A closed group starts as soon as the server
    frees up; there is no admission control, so nothing is shed and the
    backlog is unbounded.  Same :class:`~repro.serve.ServiceTimeModel`
    currency as the loop, so the two timelines are directly comparable.
    """
    groups = []  # (ready_at_s, [(t_s, images), ...])
    current: list[tuple[float, int]] = []
    count = 0
    open_t = 0.0
    for a in trace:
        if current and (a.t_s >= open_t + window_s or count + a.images > capacity):
            groups.append((min(open_t + window_s, a.t_s), current))
            current, count = [], 0
        if not current:
            open_t = a.t_s
        current.append((a.t_s, a.images))
        count += a.images
        if count >= capacity:
            groups.append((a.t_s, current))
            current, count = [], 0
    if current:
        groups.append((open_t + window_s, current))

    free_at = 0.0
    waits: list[float] = []
    occupancies: list[float] = []
    total_images = 0
    last_done = 0.0
    busy_s = 0.0
    for ready_at, members in groups:
        images = sum(m[1] for m in members)
        start = max(ready_at, free_at)
        service_s = service_model.flush_s(images)
        done = start + service_s
        free_at = done
        last_done = done
        total_images += images
        busy_s += service_s
        occupancies.append(images / capacity)
        waits.extend(start - t for t, _ in members)
    makespan = last_done - min(t for t, _ in groups[0][1]) if groups else 0.0
    return {
        "flushes": len(groups),
        "served_images": total_images,
        "makespan_s": makespan,
        "busy_s": busy_s,
        "images_per_s": total_images / makespan if makespan > 0 else 0.0,
        "images_per_busy_s": total_images / busy_s if busy_s > 0 else 0.0,
        "occupancy_mean": float(np.mean(occupancies)) if occupancies else 0.0,
        "p50_queue_wait_s": float(np.percentile(waits, 50)) if waits else 0.0,
        "p99_queue_wait_s": float(np.percentile(waits, 99)) if waits else 0.0,
        "max_queue_wait_s": max(waits, default=0.0),
    }


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized model and trace"
    )
    parser.add_argument("--seed", type=int, default=42, help="trace seed")
    parser.add_argument("--out", default="BENCH_slo.json", help="JSON results path")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail below this continuous-vs-windowed throughput ratio",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        train_kwargs = dict(
            train_size=300, test_size=60, epochs=2, image_size=10, channels=2,
            kernel_size=3,
        )
        poly_degree = 256
        max_batch = 8
        steady_rps, steady_s = 350.0, 0.2
        burst_s, burst_period_s = 0.2, 0.1
        admit_wait_slo_s = 0.030
        users = 1000
        image_pool = 6
    else:
        train_kwargs = dict(train_size=1200, test_size=300, epochs=6)
        poly_degree = 1024
        max_batch = 16
        steady_rps, steady_s = 600.0, 0.5
        burst_s, burst_period_s = 0.5, 0.2
        admit_wait_slo_s = 0.030
        users = 4000
        image_pool = 8

    service_model = ServiceTimeModel()
    config = LoopConfig(
        window_s=0.010,
        max_queue_depth=64,
        admit_wait_slo_s=admit_wait_slo_s,
        service_model=service_model,
    )
    # SLO invariants: the paying classes (priority 0 interactive, 1
    # standard) keep their p99 queue wait under the admission SLO even
    # through the 4x burst -- the batch class (2) is best-effort and is
    # bounded only via shedding -- and the shed rate stays under its cap.
    p99_bound_s = config.admit_wait_slo_s
    shed_rate_cap = 0.35

    print(f"training model ({'smoke' if args.smoke else 'full'} config)...")
    models = train_paper_models(**train_kwargs)
    quantized = models.quantized_sigmoid()
    spec = PipelineSpec(
        scheme="hybrid", poly_degree=poly_degree, batching=True,
        max_batch=max_batch,
    )
    server = EdgeServer.from_spec(spec, seed=13, sizing_model=quantized)
    server.provision_model("digits", quantized)
    verifier = AttestationVerificationService()
    verifier.register_platform(server.quoting)
    client = AttestedClient(server, verifier, b"\x42" * 32).establish()

    pool_images = models.dataset.test_images[:image_pool]
    expected = PlaintextPipeline(quantized).infer(pool_images).logits
    pool = [
        client.encrypt("digits", pool_images[i : i + 1]) for i in range(image_pool)
    ]

    steady = poisson_trace(
        args.seed,
        rate_rps=steady_rps,
        duration_s=steady_s,
        users=users,
        image_pool=image_pool,
    )
    burst = bursty_trace(
        args.seed + 1,
        base_rate_rps=steady_rps,
        burst_factor=4.0,
        period_s=burst_period_s,
        duration_s=burst_s,
        users=users,
        image_pool=image_pool,
    ).shifted(steady_s)
    trace = merge(steady, burst)
    print(
        f"trace: {len(trace)} arrivals over {trace.duration_s:.2f}s "
        f"({trace.rate_rps:.0f} rps realized, {trace.users} users, "
        f"4x burst after {steady_s:.2f}s)"
    )

    loop = ServingLoop(server, config)
    print("replaying trace through the continuous-batching loop...")
    for arrival in trace:
        loop.offer(arrival, pool[arrival.image_index])
    loop.run()
    continuous = loop.report()
    paying_waits = [
        t.queue_wait_s for t in loop.tickets if t.served and t.priority <= 1
    ]
    continuous["p99_queue_wait_paying_s"] = (
        float(np.percentile(paying_waits, 99)) if paying_waits else 0.0
    )

    bit_identical = True
    for ticket in loop.tickets:
        if not ticket.served:
            continue
        logits = client.decrypt_logits(ticket.result())
        if not np.array_equal(logits, expected[ticket.image_index : ticket.image_index + 1]):
            bit_identical = False
            break

    windowed = simulate_windowed(
        trace, service_model, loop.capacity, config.window_s
    )
    throughput_ratio = (
        continuous["images_per_busy_s"] / windowed["images_per_busy_s"]
        if windowed["images_per_busy_s"] > 0
        else 0.0
    )
    slo = {
        "p99_bound_s": p99_bound_s,
        "p99_bounded": continuous["p99_queue_wait_paying_s"] <= p99_bound_s,
        "shed_rate_cap": shed_rate_cap,
        "shed_rate_bounded": continuous["shed_rate"] <= shed_rate_cap,
        "all_tickets_resolved": all(t.done() for t in loop.tickets),
    }
    report = {
        "config": {
            "mode": "smoke" if args.smoke else "full",
            "seed": args.seed,
            "poly_degree": server.params.poly_degree,
            "max_batch": loop.capacity,
            "steady_rps": steady_rps,
            "burst_factor": 4.0,
            "arrivals": len(trace),
            "users": trace.users,
            "admit_wait_slo_s": config.admit_wait_slo_s,
            "window_s": config.window_s,
            "service_base_s": service_model.base_s,
            "service_per_image_s": service_model.per_image_s,
            "min_speedup": args.min_speedup,
        },
        "continuous": continuous,
        "windowed": windowed,
        "throughput_ratio": throughput_ratio,
        "slo": slo,
        "bit_identical": {"logits": bit_identical},
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)

    print(
        f"continuous: {continuous['images_per_s']:.0f} images/s "
        f"({continuous['images_per_busy_s']:.0f}/busy s), "
        f"occupancy {continuous['occupancy_mean']:.2f}, "
        f"p99 wait {continuous['p99_queue_wait_s'] * 1e3:.1f} ms "
        f"(paying {continuous['p99_queue_wait_paying_s'] * 1e3:.1f} ms), "
        f"shed rate {continuous['shed_rate']:.2%}"
    )
    print(
        f"windowed:   {windowed['images_per_s']:.0f} images/s "
        f"({windowed['images_per_busy_s']:.0f}/busy s), "
        f"occupancy {windowed['occupancy_mean']:.2f}, "
        f"p99 wait {windowed['p99_queue_wait_s'] * 1e3:.1f} ms (unshed)"
    )
    print(
        f"throughput ratio (per busy second): {throughput_ratio:.2f}x   "
        f"bit-identical logits: {bit_identical}"
    )
    print(f"wrote {args.out}")

    failures = []
    if not bit_identical:
        failures.append("served logits diverge from the plaintext reference")
    if not slo["all_tickets_resolved"]:
        failures.append("some tickets never resolved")
    if not slo["p99_bounded"]:
        failures.append(
            f"paying-class p99 queue wait "
            f"{continuous['p99_queue_wait_paying_s']:.4f}s exceeds the "
            f"admission SLO {p99_bound_s:.4f}s"
        )
    if not slo["shed_rate_bounded"]:
        failures.append(
            f"shed rate {continuous['shed_rate']:.2%} exceeds the cap "
            f"{shed_rate_cap:.0%}"
        )
    if throughput_ratio < args.min_speedup:
        failures.append(
            f"throughput ratio {throughput_ratio:.2f}x below required "
            f"{args.min_speedup}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(run())
