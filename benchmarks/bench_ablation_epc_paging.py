"""Ablation (paper Section III-B): why the model weights stay *outside*.

The paper's argument for the hybrid partition is that holding a large model
inside the enclave exhausts the EPC: "the pages need to be swapped in and
out frequently when the network scale becomes more extensive, which
increases the system overhead".  It also flags the paging pattern as a
side channel.

This ablation loads synthetic models of growing size into an enclave with a
small EPC and measures the per-inference working-set cost: flat while the
model fits, then a paging cliff -- plus the adversary-visible fault count
that motivates keeping weights (which are not secret!) outside.
"""

from __future__ import annotations

from repro.bench import format_series
from repro.sgx import Enclave, SgxCostModel, SgxPlatform, ecall
from repro.sgx.costmodel import PAGE_SIZE


class ModelServingEnclave(Enclave):
    """Strawman: the entire model lives and runs inside the enclave."""

    def __init__(self, model_bytes: int) -> None:
        super().__init__()
        self.model_bytes = model_bytes
        self._model_handle: int | None = None

    @ecall
    def infer(self) -> None:
        # The model is a persistent in-enclave allocation; one inference
        # touches every weight page once.
        if self._model_handle is None:
            self._model_handle = self.epc_reserve(self.model_bytes)
        self.epc_touch(self._model_handle)


def test_epc_paging_cliff(benchmark, scale, emit):
    epc_pages = 64
    cost_model = SgxCostModel(epc_bytes=epc_pages * PAGE_SIZE)
    model_pages = [16, 32, 64, 96, 128, 256]

    def sweep():
        times, faults = [], []
        for pages in model_pages:
            platform = SgxPlatform(cost_model=cost_model)
            enclave = platform.load_enclave(ModelServingEnclave, pages * PAGE_SIZE)
            enclave.ecall("infer")  # cold start: everything faults once
            before_overhead = platform.clock.overhead_s
            before_faults = platform.epc.stats.faults
            enclave.ecall("infer")  # steady state
            times.append(platform.clock.overhead_s - before_overhead)
            faults.append(float(platform.epc.stats.faults - before_faults))
        return times, faults

    times, faults = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_epc_paging",
        format_series(
            "model_pages",
            model_pages,
            {"steady_state_overhead_s": times, "page_faults": faults},
            title=(
                f"Section III-B ablation: per-inference enclave overhead vs model "
                f"size, EPC={epc_pages} pages (models larger than the EPC thrash)"
            ),
        ),
    )
    fits = [p for p in model_pages if p <= epc_pages]
    thrashes = [p for p in model_pages if p > epc_pages]
    # While the model fits, steady-state repeat touches are free.
    for i, pages in enumerate(model_pages):
        if pages in fits:
            assert faults[i] == 0, f"{pages} pages should stay resident"
    # Past the EPC, every inference re-faults the working set: the cliff.
    for i, pages in enumerate(model_pages):
        if pages in thrashes:
            assert faults[i] >= pages, f"{pages} pages must thrash"
            assert times[i] > 0
    benchmark.extra_info["cliff_at_pages"] = epc_pages
