"""Table IV: a single Encoding+Encryption and Decoding+Decryption inside vs
outside SGX.

Paper: encode+encrypt 18.167 ms inside vs 12.125 ms outside (+6.042 ms);
decode+decrypt 5.250 ms inside vs 0.368 ms outside (+4.882 ms).  The
decrypt row's huge *ratio* (14x) at small absolute cost is what later
explains the Fig. 6 pooling behaviour.

The reproduction routes the same crypto code through a trusted enclave
(CryptoBench ECALLs, simulated time) and a FakeSGX handle, and prints the
paper's 2x2 table.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Summary, format_table, measure_simulated
from repro.he import Context, Decryptor, Encryptor, KeyGenerator, ScalarEncoder
from repro.he.context import Ciphertext
from repro.sgx import Enclave, SgxPlatform, ecall


class CryptoBench(Enclave):
    """Enclave running exactly the user-side crypto for the comparison."""

    def __init__(self, params, seed: int) -> None:
        super().__init__()
        self._context = Context(params)
        rng = np.random.default_rng(seed)
        keys = KeyGenerator(self._context, rng).generate()
        self._encoder = ScalarEncoder(self._context)
        self._encryptor = Encryptor(self._context, keys.public, rng)
        self._decryptor = Decryptor(self._context, keys.secret)

    @ecall
    def encode_encrypt(self, value: int) -> Ciphertext:
        return self._encryptor.encrypt(self._encoder.encode(value))

    @ecall
    def decrypt_decode(self, ct: Ciphertext) -> int:
        return int(self._encoder.decode(self._decryptor.decrypt(ct)))


def test_crypto_inside_vs_outside_sgx(benchmark, hybrid_params, scale, emit):
    platform = SgxPlatform()
    trusted = platform.load_enclave(CryptoBench, hybrid_params, 3)
    fake = platform.load_enclave(CryptoBench, hybrid_params, 3, trusted=False)
    sample_ct = fake.ecall("encode_encrypt", 99)

    def sweep():
        return {
            "enc_in": measure_simulated(
                lambda: trusted.ecall("encode_encrypt", 99), platform.clock, scale.repeats
            ),
            "enc_out": measure_simulated(
                lambda: fake.ecall("encode_encrypt", 99), platform.clock, scale.repeats
            ),
            "dec_in": measure_simulated(
                lambda: trusted.ecall("decrypt_decode", sample_ct), platform.clock, scale.repeats
            ),
            "dec_out": measure_simulated(
                lambda: fake.ecall("decrypt_decode", sample_ct), platform.clock, scale.repeats
            ),
        }

    samples = benchmark.pedantic(sweep, rounds=1, iterations=1)
    s = {k: Summary.of(v) for k, v in samples.items()}
    benchmark.extra_info["enc_ratio"] = s["enc_in"].mean / s["enc_out"].mean
    benchmark.extra_info["dec_ratio"] = s["dec_in"].mean / s["dec_out"].mean
    emit(
        "table4_sgx_crypto",
        format_table(
            ["", "Encoding+Encryption", "Decoding+Decryption"],
            [
                [
                    "Inside SGX",
                    f"{s['enc_in'].mean * 1e3:.3f} ms",
                    f"{s['dec_in'].mean * 1e3:.3f} ms",
                ],
                [
                    "Outside SGX",
                    f"{s['enc_out'].mean * 1e3:.3f} ms",
                    f"{s['dec_out'].mean * 1e3:.3f} ms",
                ],
            ],
            title=(
                f"Table IV: one Encoding+Encryption vs one Decoding+Decryption "
                f"inside/outside SGX, n={hybrid_params.poly_degree}, scale={scale.name} "
                f"(paper: 18.167/12.125 and 5.250/0.368 ms)"
            ),
        )
        + (
            f"\nenc ratio: {s['enc_in'].mean / s['enc_out'].mean:.2f}"
            f"  dec ratio: {s['dec_in'].mean / s['dec_out'].mean:.2f}"
        ),
    )
    # Shape: SGX costs more on both columns; decryption's *relative* penalty
    # exceeds encryption's (the paper's 14.3x vs 1.5x asymmetry, driven by
    # the fixed per-call boundary cost on a much cheaper operation).
    assert s["enc_in"].mean > s["enc_out"].mean
    assert s["dec_in"].mean > s["dec_out"].mean
    assert (
        s["dec_in"].mean / s["dec_out"].mean > s["enc_in"].mean / s["enc_out"].mean
    )
