"""Ablation: how the SGX refresh amortizes with batch size.

Generalizes Table V's two data points (95.55 ms unbatched -> 23.429 ms at
batchSize) into a full sweep: per-ciphertext refresh cost against the
number of ciphertexts shipped per crossing.  The fixed crossing + key-load
cost divides away; the curve must be monotonically non-increasing (within
noise) and flatten toward the raw decrypt/re-encrypt floor.

Also sweeps the cost model (paper-calibrated vs bare-metal) to show the
conclusion is not an artifact of one constant choice.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_series, measure_simulated
from repro.core import InferenceEnclave, sgx_refresh
from repro.he import Context, Encryptor, Evaluator, ScalarEncoder
from repro.he.keys import PublicKey
from repro.sgx import SgxPlatform, bare_metal_cost_model, paper_cost_model


def _rig(params, cost_model, seed=61):
    platform = SgxPlatform(cost_model=cost_model)
    enclave = platform.load_enclave(InferenceEnclave, params, seed)
    public = enclave.ecall("generate_keys")
    context = Context(params)
    public = PublicKey(context, public.p0_ntt, public.p1_ntt)
    rng = np.random.default_rng(seed)
    return platform, enclave, ScalarEncoder(context), Encryptor(context, public, rng), Evaluator(context), rng


def test_refresh_batch_sweep(benchmark, hybrid_params, scale, emit):
    batches = [1, 2, 4, 8, 16] if scale.name != "paper" else [1, 2, 4, 8, 16, 32, 64]
    reps = max(2, scale.repeats // 5)

    def sweep():
        curves = {}
        for label, model in (("paper_model", paper_cost_model()),
                             ("bare_metal", bare_metal_cost_model())):
            platform, enclave, encoder, encryptor, evaluator, rng = _rig(
                hybrid_params, model
            )
            per_item = []
            for b in batches:
                values = rng.integers(-50, 50, size=b)
                squared = evaluator.square(encryptor.encrypt(encoder.encode(values)))
                t = min(
                    measure_simulated(
                        lambda: sgx_refresh(enclave, squared), platform.clock, reps
                    )
                )
                per_item.append(t / b)
            curves[label] = per_item
        return curves

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_refresh_batch",
        format_series(
            "batch",
            batches,
            {k: [v * 1e3 for v in vs] for k, vs in curves.items()},
            title=(
                f"Ablation: per-ciphertext SGX refresh cost (/ms) vs crossing "
                f"batch size, n={hybrid_params.poly_degree}, scale={scale.name} "
                f"(generalizes Table V's 95.55 -> 23.429 ms amortization)"
            ),
        ),
    )
    for label, per_item in curves.items():
        # Amortization: big batches beat singletons decisively.
        assert per_item[-1] < per_item[0], label
        benchmark.extra_info[f"{label}_amortization"] = per_item[0] / per_item[-1]
