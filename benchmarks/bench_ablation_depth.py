"""Ablation: network depth -- where the hybrid framework earns its keep.

The paper stops at one conv block because pure HE makes depth brutal
(Section VIII: "HE is slow relatively, so it is challenging to build
different and huge network architecture[s]").  The hybrid framework's
enclave refresh makes noise requirements *depth-independent*: this bench
runs 1-, 2- and 3-block CNNs through :class:`DeepHybridPipeline` under ONE
fixed parameter set and contrasts the measured cost (linear in depth) with
the coefficient-modulus blow-up a pure-HE evaluation of the same depth
would need (analytic, from the noise model).
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_series, measure_simulated
from repro.core import (
    DeepHybridPipeline,
    parameters_for_pipeline,
    pure_he_modulus_bits_for_depth,
)
from repro.nn import DeepQuantizedCNN, deep_cnn, synthetic_mnist, train


def _deep_model(depth: int, seed: int):
    # Per-depth image sizes whose spatial dims divide cleanly through every
    # (k=3, pool 2) block: 22 -> 20/2=10 -> 8/2=4 -> 2/2=1.
    size = {1: 10, 2: 18, 3: 22}[depth]
    channels = tuple([2] * depth)
    model = deep_cnn(image_size=size, block_channels=channels, kernel_size=3,
                     rng=np.random.default_rng(seed))
    data = synthetic_mnist(train_size=150, test_size=30, seed=seed)
    lo = (28 - size) // 2
    train_images = data.train_images[:, :, lo : lo + size, lo : lo + size]
    test_images = data.test_images[:, :, lo : lo + size, lo : lo + size]
    train(model, train_images.astype(np.float64) / 255.0, data.train_labels,
          epochs=1, learning_rate=0.1, seed=seed)
    return DeepQuantizedCNN.from_float(model), test_images


def test_depth_scaling(benchmark, scale, emit):
    depths = [1, 2, 3]

    def sweep():
        times, crossings, q_bits, pure_bits, budgets = [], [], [], [], []
        for depth in depths:
            quantized, images = _deep_model(depth, seed=80 + depth)
            params = parameters_for_pipeline(quantized, scale.poly_degree)
            pipeline = DeepHybridPipeline(quantized, params, seed=80 + depth)
            batch = images[:2]
            t = min(
                measure_simulated(
                    lambda: pipeline.infer(batch), pipeline.platform.clock, 2
                )
            )
            result = pipeline.infer(batch)
            assert np.array_equal(result.logits, quantized.forward_int(batch))
            times.append(t)
            crossings.append(float(result.enclave_crossings))
            q_bits.append(float(params.coeff_modulus.bit_length()))
            pure_bits.append(
                pure_he_modulus_bits_for_depth(
                    depth, params.plain_modulus.bit_length(), scale.poly_degree
                )
            )
            budgets.append(result.noise_budget_bits)
        return times, crossings, q_bits, pure_bits, budgets

    times, crossings, q_bits, pure_bits, budgets = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    emit(
        "ablation_depth",
        format_series(
            "depth",
            depths,
            {
                "hybrid_time_s": times,
                "crossings": crossings,
                "hybrid_log2q": q_bits,
                "pure_he_log2q_needed": pure_bits,
                "final_budget_bits": budgets,
            },
            title=(
                f"Depth ablation: multi-block hybrid inference under a fixed-size "
                f"modulus, n={scale.poly_degree}, scale={scale.name} "
                f"(pure-HE column: analytic modulus requirement at that depth)"
            ),
        ),
    )
    # One enclave crossing per block.
    assert crossings == [float(d) for d in depths]
    # The hybrid's modulus stays in one band while pure HE's requirement
    # grows by ~30+ bits per extra block.
    assert max(q_bits) - min(q_bits) <= 30
    assert pure_bits[-1] - pure_bits[0] > 50
    # Noise budget stays healthy at every depth (the refresh resets it).
    assert all(b > 5 for b in budgets)
