#!/usr/bin/env python
"""Graph-optimizer end-to-end benchmark: images/sec at off / safe / aggressive.

The graph optimizer (``repro.graph``) compiles each pipeline's inference
chain and rewrites it — zero-tap bypass, bias folding into the fused
contraction, batch packing at the enclave crossing, NTT hoisting, the
scalar-encrypt fast path — under a hard contract: the optimized execution
is *bit-identical* to the unoptimized reference.  This bench asks the two
questions that make that shippable:

* *Is it faster?*  The hybrid pipeline runs the same seeded batch at every
  level on the simulated clock; ``hybrid.speedup_safe`` must clear the
  ``--min-speedup`` floor (1.3x by default — ``invariants.speedup_floor``).
* *Is it invisible?*  Rep-wise (fresh same-seed deployments advance their
  RNG identically at every level because each rewrite preserves draw order
  and count), the decrypted logits, the serialized logits-ciphertext bytes
  and the homomorphic op tallies must match the ``off`` run exactly
  (``invariants.bit_identical`` — a hard invariant, independent of
  ``--min-speedup``).

Emits ``BENCH_graph.json``; exits nonzero if an invariant fails.
Run ``--smoke`` for the CI-sized configuration.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.core import (
    CryptonetsPipeline,
    HybridPipeline,
    parameters_for_pipeline,
    train_paper_models,
)
from repro.graph import optimizer
from repro.he import serialize as ser

HYBRID_LEVELS = ("off", "safe", "aggressive")
CRYPTONETS_LEVELS = ("off", "safe")


def run_level(factory, level, images, reps):
    """Run ``reps`` timed inferences at ``level`` on one fresh pipeline
    (after one untimed warm-up rep, so cold caches don't skew the first
    level measured); returns (min simulated seconds, per-rep fingerprints,
    applied passes).  The warm-up's fingerprint is compared too."""
    with optimizer.use(level):
        pipe = factory()
        times = []
        fingerprints = []
        for rep in range(reps + 1):
            t0 = pipe.clock.now_s
            res = pipe.infer(images)
            if rep > 0:
                times.append(pipe.clock.now_s - t0)
            fingerprints.append(
                (
                    res.logits.tolist(),
                    ser.serialize_ciphertext(res.logits_ct),
                    dict(pipe.counter.counts),
                )
            )
        return min(times), fingerprints, list(pipe.graph_report.applied)


def bench_scheme(factory, levels, images, reps):
    """All levels of one scheme; returns (per-level rows, bit_identical)."""
    rows = {}
    reference = None
    identical = True
    for level in levels:
        sim_s, fingerprints, applied = run_level(factory, level, images, reps)
        if level == "off":
            reference = fingerprints
        elif fingerprints != reference:
            identical = False
        rows[level] = {"simulated_s": sim_s, "applied": applied}
    return rows, identical


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument("--batch", type=int, default=None)
    parser.add_argument("--out", default="BENCH_graph.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.3,
        help="hybrid safe-level end-to-end speedup floor (default 1.3)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        models = train_paper_models(
            300, 60, epochs=2, image_size=10, channels=2, kernel_size=3
        )
        batch = args.batch or 4
        reps = args.reps or 3
    else:
        models = train_paper_models(
            600, 120, epochs=4, image_size=12, channels=2, kernel_size=3
        )
        batch = args.batch or 8
        reps = args.reps or 5

    q_sigmoid = models.quantized_sigmoid()
    q_square = models.quantized_square()
    hybrid_params = parameters_for_pipeline(q_sigmoid, 256)
    he_params = parameters_for_pipeline(q_square, 256)
    images = models.dataset.test_images[:batch]

    hybrid_rows, hybrid_identical = bench_scheme(
        lambda: HybridPipeline(q_sigmoid, hybrid_params, seed=args.seed),
        HYBRID_LEVELS,
        images,
        reps,
    )
    he_rows, he_identical = bench_scheme(
        lambda: CryptonetsPipeline(q_square, he_params, seed=args.seed),
        CRYPTONETS_LEVELS,
        images,
        reps,
    )

    off_s = hybrid_rows["off"]["simulated_s"]
    safe_s = hybrid_rows["safe"]["simulated_s"]
    aggressive_s = hybrid_rows["aggressive"]["simulated_s"]
    he_off_s = he_rows["off"]["simulated_s"]
    he_safe_s = he_rows["safe"]["simulated_s"]
    speedup_safe = off_s / safe_s
    bit_identical = hybrid_identical and he_identical

    report = {
        "config": {
            "mode": "smoke" if args.smoke else "full",
            "seed": args.seed,
            "batch": batch,
            "reps": reps,
            "min_speedup": args.min_speedup,
        },
        "hybrid": {
            "off_simulated_s": off_s,
            "safe_simulated_s": safe_s,
            "aggressive_simulated_s": aggressive_s,
            "speedup_safe": speedup_safe,
            "speedup_aggressive": off_s / aggressive_s,
            "images_per_s_safe": batch / safe_s,
            "applied_safe": hybrid_rows["safe"]["applied"],
        },
        "cryptonets": {
            "off_simulated_s": he_off_s,
            "safe_simulated_s": he_safe_s,
            "speedup_safe": he_off_s / he_safe_s,
            "applied_safe": he_rows["safe"]["applied"],
        },
        "invariants": {
            "bit_identical": bit_identical,
            "speedup_floor": speedup_safe >= args.min_speedup,
        },
    }

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, default=str)
        fh.write("\n")

    print(
        f"hybrid: off {off_s:.3f}s  safe {safe_s:.3f}s "
        f"({speedup_safe:.2f}x)  aggressive {aggressive_s:.3f}s "
        f"({off_s / aggressive_s:.2f}x)"
    )
    print(
        f"cryptonets: off {he_off_s:.3f}s  safe {he_safe_s:.3f}s "
        f"({he_off_s / he_safe_s:.2f}x)"
    )
    print(f"bit identical across levels: {bit_identical}")

    if not bit_identical:
        print("FAIL: optimized execution diverged from the reference", file=sys.stderr)
        return 1
    if speedup_safe < args.min_speedup:
        print(
            f"FAIL: hybrid safe speedup {speedup_safe:.2f}x below the "
            f"{args.min_speedup:.2f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
