"""Ablation (paper Section VIII): CRT/SIMD batching throughput.

The paper does *not* use SIMD but predicts: "if you use SIMD technology,
you can get 1024 times the throughput" (n = 1024 slots per ciphertext).

This ablation measures plaintext-multiply and add throughput (values/sec)
three ways: one value per ciphertext (the paper's encoding), numpy-batched
ciphertexts (this library's vectorization), and slot-packed SIMD
ciphertexts -- confirming the predicted slot-count amplification of the
per-ciphertext path.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, measure_repeated
from repro.he import (
    BatchEncoder,
    Context,
    Encryptor,
    Evaluator,
    KeyGenerator,
    ScalarEncoder,
)


def _batching_params(base):
    """Swap the auto-sized power-of-two t for a batching prime of similar
    width (t must be prime with t ≡ 1 mod 2n for CRT slots)."""
    import dataclasses

    from repro.he import modmath

    bits = max(17, base.plain_modulus.bit_length())
    t = modmath.ntt_primes(bits, base.poly_degree, 1)[0]
    return dataclasses.replace(base, plain_modulus=t, name=f"{base.name}_simd")


def test_simd_throughput(benchmark, hybrid_params, scale, emit):
    hybrid_params = _batching_params(hybrid_params)
    context = Context(hybrid_params)
    rng = np.random.default_rng(51)
    keys = KeyGenerator(context, rng).generate()
    evaluator = Evaluator(context)
    encryptor = Encryptor(context, keys.public, rng)
    scalar = ScalarEncoder(context)
    batch = BatchEncoder(context)
    n = batch.slot_count
    reps = max(3, scale.repeats // 2)

    one_value = encryptor.encrypt(scalar.encode(7))
    one_weight = evaluator.transform_plain(scalar.encode(3))
    packed = encryptor.encrypt(batch.encode(rng.integers(-100, 100, size=n)))
    packed_weight = evaluator.transform_plain(batch.encode(rng.integers(-5, 5, size=n)))

    def run():
        single_t = min(
            measure_repeated(lambda: evaluator.multiply_plain(one_value, one_weight), reps)
        )
        simd_t = min(
            measure_repeated(lambda: evaluator.multiply_plain(packed, packed_weight), reps)
        )
        return single_t, simd_t

    single_t, simd_t = benchmark.pedantic(run, rounds=1, iterations=1)
    single_tp = 1.0 / single_t
    simd_tp = n / simd_t
    gain = simd_tp / single_tp
    benchmark.extra_info["simd_gain"] = gain
    emit(
        "ablation_simd",
        format_table(
            ["encoding", "values/ciphertext", "op time (ms)", "values/sec"],
            [
                ["one-per-ciphertext", "1", f"{single_t * 1e3:.3f}", f"{single_tp:,.0f}"],
                ["SIMD slot-packed", str(n), f"{simd_t * 1e3:.3f}", f"{simd_tp:,.0f}"],
            ],
            title=(
                f"Section VIII ablation: plaintext-multiply throughput, "
                f"n={hybrid_params.poly_degree}, scale={scale.name} "
                f"(paper prediction: SIMD buys up to {n}x)"
            ),
        )
        + f"\nSIMD throughput gain: {gain:,.0f}x (slots: {n})",
    )
    # The op costs the same whether slots are full or not, so the gain is
    # essentially the slot count (allow generous slack for timer noise).
    assert gain > n / 4


def test_simd_results_are_correct(benchmark, hybrid_params):
    """Slot-packed arithmetic must agree with scalar arithmetic slot-wise."""
    hybrid_params = _batching_params(hybrid_params)
    context = Context(hybrid_params)
    rng = np.random.default_rng(52)
    keys = KeyGenerator(context, rng).generate()
    evaluator = Evaluator(context)
    encryptor = Encryptor(context, keys.public, rng)
    batch = BatchEncoder(context)
    from repro.he import Decryptor

    decryptor = Decryptor(context, keys.secret)
    values = rng.integers(-100, 100, size=64)
    weights = rng.integers(-5, 5, size=64)

    def run():
        ct = evaluator.multiply_plain(
            encryptor.encrypt(batch.encode(values)),
            evaluator.transform_plain(batch.encode(weights)),
        )
        return batch.decode(decryptor.decrypt(ct))[:64]

    decoded = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.array_equal(decoded, values * weights)
