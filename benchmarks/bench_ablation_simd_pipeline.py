"""Ablation: the full SIMD-packed hybrid pipeline (Section VIII realized).

Where `bench_ablation_simd.py` measures raw slot-packed op throughput, this
bench runs the *entire* hybrid CNN with user batches packed into CRT slots
and compares per-image cost against the paper's one-value-per-ciphertext
encoding -- the end-to-end version of the paper's 1024x prediction.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_series, measure_simulated
from repro.core import HybridPipeline, PlaintextPipeline, SimdHybridPipeline, parameters_for_pipeline


def test_simd_pipeline_scaling(benchmark, q_sigmoid, models, scale, emit):
    simd_params = parameters_for_pipeline(
        q_sigmoid, scale.poly_degree, batching=True, name="simd_pipeline"
    )
    plain_params = parameters_for_pipeline(q_sigmoid, scale.poly_degree)
    simd = SimdHybridPipeline(q_sigmoid, simd_params, seed=71)
    unpacked = HybridPipeline(q_sigmoid, plain_params, seed=71)
    batches = [1, 2, 4, 8]
    images = models.dataset.test_images

    def sweep():
        simd_t, unpacked_t = [], []
        for b in batches:
            batch = images[:b]
            simd_t.append(
                min(
                    measure_simulated(
                        lambda: simd.infer(batch), simd.platform.clock, 2
                    )
                )
                / b
            )
            unpacked_t.append(
                min(
                    measure_simulated(
                        lambda: unpacked.infer(batch), unpacked.platform.clock, 2
                    )
                )
                / b
            )
        return simd_t, unpacked_t

    simd_t, unpacked_t = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_simd_pipeline",
        format_series(
            "batch",
            batches,
            {"simd_s_per_image": simd_t, "unpacked_s_per_image": unpacked_t},
            title=(
                f"Section VIII realized: per-image hybrid inference time, "
                f"slot-packed vs one-value-per-ciphertext, "
                f"n={scale.poly_degree} ({simd.slot_count} slots), scale={scale.name}"
            ),
        )
        + f"\nspeedup at batch {batches[-1]}: {unpacked_t[-1] / simd_t[-1]:.1f}x "
        f"(asymptotically -> slot count {simd.slot_count})",
    )
    # The SIMD per-image cost must fall with the batch (ciphertext work is
    # batch-independent); the unpacked per-image cost stays ~flat.
    assert simd_t[-1] < simd_t[0] / (len(batches) / 2)
    # And at the largest batch SIMD must beat unpacked decisively.
    assert simd_t[-1] < unpacked_t[-1] / 2
    # Correctness alongside speed.
    plain = PlaintextPipeline(q_sigmoid).infer(images[:4])
    assert np.array_equal(simd.infer(images[:4]).logits, plain.logits)
    benchmark.extra_info["speedup"] = unpacked_t[-1] / simd_t[-1]
