"""Fig. 3: weight-parameter encoding time against the number of weights.

Paper: encoding time is *linear* in the number of weights and essentially
independent of how those weights are arranged -- (a) fixing the kernel
count at 11 and 26 while sweeping kernel size, and (b) sweeping count and
size jointly, all collapse onto the same line.

The reproduction sweeps the same two protocols, prints both series, and
fits the linearity (R^2 of a least-squares line must be ~1).
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_series, measure_repeated
from repro.core import encode_conv_weights
from repro.he import Context, Evaluator, ScalarEncoder


def _encoder_rig(params):
    context = Context(params)
    return Evaluator(context), ScalarEncoder(context)


def _encode_time(evaluator, encoder, kernels, kernel_size, repeats, rng):
    weight = rng.integers(-31, 32, size=(kernels, 1, kernel_size, kernel_size))
    bias = rng.integers(-31, 32, size=kernels)
    samples = measure_repeated(
        lambda: encode_conv_weights(evaluator, encoder, weight, bias), repeats
    )
    return min(samples)


def _r_squared(x: np.ndarray, y: np.ndarray) -> float:
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    residual = ((y - predicted) ** 2).sum()
    total = ((y - y.mean()) ** 2).sum()
    return 1.0 - residual / total


def test_fig3a_fixed_kernel_count(benchmark, hybrid_params, scale, emit, rng):
    evaluator, encoder = _encoder_rig(hybrid_params)
    sizes = [1, 2, 3, 4, 5, 6] if scale.name != "paper" else [1, 3, 5, 7, 9, 11, 13, 15]
    reps = max(4, scale.repeats // 2)

    def sweep():
        out = {}
        for kernels in (11, 26):
            out[kernels] = [
                _encode_time(evaluator, encoder, kernels, k, reps, rng) for k in sizes
            ]
        return out

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    weights_11 = [11 * k * k + 11 for k in sizes]
    weights_26 = [26 * k * k + 26 for k in sizes]
    emit(
        "fig3a_weight_encoding",
        format_series(
            "kernel_size",
            sizes,
            {
                "weights(K=11)": [float(w) for w in weights_11],
                "time_s(K=11)": series[11],
                "weights(K=26)": [float(w) for w in weights_26],
                "time_s(K=26)": series[26],
            },
            title=(
                f"Fig. 3(a): weight encoding time vs kernel size at fixed kernel "
                f"counts 11 and 26, scale={scale.name}"
            ),
        ),
    )
    # Shape: time is linear in the weight count for both fixed counts.
    r2_11 = _r_squared(np.array(weights_11, dtype=float), np.array(series[11]))
    r2_26 = _r_squared(np.array(weights_26, dtype=float), np.array(series[26]))
    benchmark.extra_info["r2_k11"] = r2_11
    benchmark.extra_info["r2_k26"] = r2_26
    assert r2_11 > 0.95
    assert r2_26 > 0.95


def test_fig3b_joint_sweep(benchmark, hybrid_params, scale, emit, rng):
    evaluator, encoder = _encoder_rig(hybrid_params)
    combos = [(4, 2), (8, 3), (12, 4), (16, 5), (20, 6)]
    reps = max(4, scale.repeats // 2)

    def sweep():
        return [
            _encode_time(evaluator, encoder, kernels, k, reps, rng)
            for kernels, k in combos
        ]

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    weights = [kernels * k * k + kernels for kernels, k in combos]
    emit(
        "fig3b_weight_encoding",
        format_series(
            "weights",
            weights,
            {"time_s": times},
            title=(
                f"Fig. 3(b): weight encoding time vs weight count, jointly sweeping "
                f"kernel count and size, scale={scale.name}"
            ),
        ),
    )
    r2 = _r_squared(np.array(weights, dtype=float), np.array(times))
    benchmark.extra_info["r2"] = r2
    assert r2 > 0.95
    # Per-weight cost in (a) and (b) must agree: arrangement-independence.
    assert times[-1] / weights[-1] < 10 * times[0] / weights[0]
