"""Remote attestation: reports, quotes and the verification service.

Mirrors the DCAP flow the paper leans on (Section IV-A):

1. the enclave produces a *report* (measurement + user_data) MACed with a
   platform key only real enclaves on that platform can use;
2. the platform's *quoting service* (the QE analogue) checks the local MAC
   and re-signs the body with its provisioned attestation key, producing a
   *quote* that can leave the machine;
3. a relying party hands the quote to the *attestation verification service*
   (the IAS/DCAP analogue), which knows the attestation keys of genuine
   platforms and returns the verified report -- including the ``user_data``
   field the paper uses to ship homomorphic key material to users without
   any additional trusted third party.

Signatures are HMACs under the simulated provisioning chain; the functional
contract (forge-proof binding of measurement and user_data to a genuine
platform) is what the framework's key-distribution flow requires.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass

from repro import faults
from repro.errors import AttestationError
from repro.sgx.measurement import Measurement


def _report_body(measurement: Measurement, user_data: bytes) -> bytes:
    return b"|".join(
        [measurement.mrenclave.encode(), measurement.mrsigner.encode(), user_data]
    )


@dataclass(frozen=True)
class Report:
    """Local attestation report (EREPORT analogue)."""

    measurement: Measurement
    user_data: bytes
    mac: bytes

    @classmethod
    def create(cls, measurement: Measurement, user_data: bytes, report_key: bytes) -> "Report":
        mac = hmac.new(report_key, _report_body(measurement, user_data), hashlib.sha256).digest()
        return cls(measurement=measurement, user_data=user_data, mac=mac)

    def verify_mac(self, report_key: bytes) -> bool:
        expected = hmac.new(
            report_key, _report_body(self.measurement, self.user_data), hashlib.sha256
        ).digest()
        return hmac.compare_digest(expected, self.mac)


@dataclass(frozen=True)
class Quote:
    """Remotely verifiable attestation evidence."""

    platform_id: str
    measurement: Measurement
    user_data: bytes
    signature: bytes

    def body(self) -> bytes:
        return self.platform_id.encode() + b"|" + _report_body(self.measurement, self.user_data)


class QuotingService:
    """The platform's quoting enclave: converts reports into quotes."""

    def __init__(self, platform, platform_id: str | None = None) -> None:
        self.platform = platform
        self.platform_id = platform_id or os.urandom(8).hex()
        self._attestation_key = os.urandom(32)

    @property
    def attestation_key(self) -> bytes:
        """Released only to the provisioning flow (verifier registration)."""
        return self._attestation_key

    def quote(self, report: Report) -> Quote:
        """Check the local report MAC and sign the body for remote parties.

        Raises:
            AttestationError: the report was not produced by a genuine
                enclave on this platform.
        """
        if faults.is_armed():
            faults.inject(
                "sgx.attestation.quote",
                AttestationError,
                name=report.measurement.mrenclave,
                platform_id=self.platform_id,
            )
        if not report.verify_mac(self.platform.report_key):
            raise AttestationError("report MAC invalid: not from this platform")
        self.platform.clock.charge(self.platform.cost_model.quote_s, "attestation")
        body = self.platform_id.encode() + b"|" + _report_body(
            report.measurement, report.user_data
        )
        signature = hmac.new(self._attestation_key, body, hashlib.sha256).digest()
        return Quote(
            platform_id=self.platform_id,
            measurement=report.measurement,
            user_data=report.user_data,
            signature=signature,
        )


@dataclass(frozen=True)
class VerifiedReport:
    """What a relying party learns from a successful verification."""

    platform_id: str
    measurement: Measurement
    user_data: bytes


class AttestationVerificationService:
    """The IAS/DCAP analogue: knows genuine platforms' attestation keys."""

    def __init__(self) -> None:
        self._platforms: dict[str, bytes] = {}

    def register_platform(self, quoting_service: QuotingService) -> None:
        """Provisioning step: record a genuine platform's attestation key."""
        self._platforms[quoting_service.platform_id] = quoting_service.attestation_key

    def verify(
        self,
        quote: Quote,
        expected_mrenclave: str | None = None,
        expected_mrsigner: str | None = None,
    ) -> VerifiedReport:
        """Verify a quote end to end.

        Args:
            quote: the evidence.
            expected_mrenclave: if given, the trusted code identity to insist on.
            expected_mrsigner: if given, the vendor identity to insist on.

        Raises:
            AttestationError: unknown platform, bad signature, or identity
                mismatch.
        """
        if faults.is_armed():
            faults.inject(
                "sgx.attestation.verify",
                AttestationError,
                name=quote.measurement.mrenclave,
                platform_id=quote.platform_id,
            )
        key = self._platforms.get(quote.platform_id)
        if key is None:
            raise AttestationError(f"platform {quote.platform_id} is not registered")
        expected_sig = hmac.new(key, quote.body(), hashlib.sha256).digest()
        if not hmac.compare_digest(expected_sig, quote.signature):
            raise AttestationError("quote signature invalid (forged or tampered)")
        if expected_mrenclave is not None and quote.measurement.mrenclave != expected_mrenclave:
            raise AttestationError(
                "MRENCLAVE mismatch: the enclave is not running the expected code"
            )
        if expected_mrsigner is not None and quote.measurement.mrsigner != expected_mrsigner:
            raise AttestationError("MRSIGNER mismatch: unexpected enclave vendor")
        return VerifiedReport(
            platform_id=quote.platform_id,
            measurement=quote.measurement,
            user_data=quote.user_data,
        )
