"""SGX cost model, calibrated against the paper's measured ratios.

The paper reports the same code timed inside and outside an enclave
(Xeon E3-1225 v6, SGX SDK 2.6.100):

====================================  =========  ==========  ======
operation                             inside      outside     ratio
====================================  =========  ==========  ======
key generation (Table I)              49.593 ms  20.201 ms   2.455
encode + encrypt (Table IV)           18.167 ms  12.125 ms   1.498
decode + decrypt (Table IV)            5.250 ms   0.368 ms  14.266
ECALL entry/exit (Section VI-A)       ~1 ms extra on the ms scale
====================================  =========  ==========  ======

We model ``t_inside = t_outside * epc_write_factor + bytes_crossed *
marshalling + transitions + paging``.  The write-heavy ops (keygen allocates
fresh key polynomials; decryption writes small outputs but *loads* large
ciphertexts into EPC) are dominated by the EPC encryption engine, which is
why the decrypt ratio is so large relative to its tiny absolute time: the
fixed per-call EPC traffic dwarfs the 0.368 ms of arithmetic.

Defaults below reproduce those ratios for workloads of the paper's size; all
knobs are plain dataclass fields, so ablations can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

#: SGX page size (bytes) -- fixed by the architecture.
PAGE_SIZE = 4096

#: Default usable EPC of the paper's generation of hardware (~93 MiB of the
#: 128 MiB PRM once metadata is deducted).
DEFAULT_EPC_BYTES = 93 * 1024 * 1024


@dataclass(frozen=True)
class SgxCostModel:
    """Tunable constants of the simulated SGX platform.

    Attributes:
        ecall_overhead_s: one ECALL or OCALL entry+exit pair (the paper sees
            ~1 ms on its stack; bare-metal SGX is ~8 us -- the default favors
            the paper's observed scale).
        epc_compute_factor: multiplier on real compute time spent inside the
            enclave (memory-encryption-engine slowdown on write-heavy code).
        marshalling_s_per_byte: copying + encrypting one byte across the
            enclave boundary.
        epc_bytes: usable EPC before paging starts.
        page_fault_s: cost of one EPC page eviction or load (EWB/ELD pair is
            charged as two faults).
        attestation_s: one local report generation / verification.
        quote_s: one quoting-enclave signature (remote attestation round).
    """

    ecall_overhead_s: float = 0.5e-3
    epc_compute_factor: float = 2.45
    marshalling_s_per_byte: float = 1.5e-9
    epc_bytes: int = DEFAULT_EPC_BYTES
    page_fault_s: float = 40e-6
    attestation_s: float = 2e-3
    quote_s: float = 30e-3

    def __post_init__(self) -> None:
        if self.epc_compute_factor < 1.0:
            raise ParameterError("epc_compute_factor must be >= 1 (SGX is never faster)")
        for name in ("ecall_overhead_s", "marshalling_s_per_byte", "page_fault_s",
                     "attestation_s", "quote_s"):
            if getattr(self, name) < 0:
                raise ParameterError(f"{name} must be non-negative")
        if self.epc_bytes < PAGE_SIZE:
            raise ParameterError("epc_bytes must hold at least one page")

    def compute_overhead_s(self, real_seconds: float) -> float:
        """Extra time charged for ``real_seconds`` of in-enclave compute."""
        return real_seconds * (self.epc_compute_factor - 1.0)

    def marshalling_overhead_s(self, byte_count: int) -> float:
        """Cost of moving ``byte_count`` bytes across the boundary."""
        return byte_count * self.marshalling_s_per_byte

    def transition_overhead_s(self, crossings: int = 1) -> float:
        return crossings * self.ecall_overhead_s

    def paging_overhead_s(self, faults: int) -> float:
        return faults * self.page_fault_s

    def pages_for(self, byte_count: int) -> int:
        """Number of EPC pages covering ``byte_count`` bytes."""
        return -(-byte_count // PAGE_SIZE)


def paper_cost_model() -> SgxCostModel:
    """The default model, calibrated to the paper's Tables I and IV."""
    return SgxCostModel()


def bare_metal_cost_model() -> SgxCostModel:
    """Optimistic constants from SGX micro-architecture literature
    (~8 us transitions, mild MEE slowdown) for sensitivity ablations."""
    return SgxCostModel(
        ecall_overhead_s=8e-6,
        epc_compute_factor=1.2,
        marshalling_s_per_byte=0.4e-9,
        page_fault_s=12e-6,
        attestation_s=1e-3,
        quote_s=10e-3,
    )
