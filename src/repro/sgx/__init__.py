"""SGX enclave simulator.

A functional model of the Intel SGX features the paper's framework relies
on: measured enclaves with an ECALL boundary, limited EPC memory with paging,
sealed storage, and the remote-attestation chain (report -> quote -> verification
service) used to distribute homomorphic keys without a trusted third party.

Trusted code really executes (results are genuine); the simulator accounts
the *time* SGX hardware would add on a :class:`SimClock`, using a cost model
calibrated to the inside/outside ratios the paper measured (Tables I, IV, V).

Typical usage::

    from repro.sgx import SgxPlatform, Enclave, ecall

    class Doubler(Enclave):
        @ecall
        def double(self, x: int) -> int:
            return 2 * x

    platform = SgxPlatform()
    handle = platform.load_enclave(Doubler)
    assert handle.ecall("double", 21) == 42
    print(platform.clock.snapshot())  # where the simulated time went
"""

from repro.sgx.attestation import (
    AttestationVerificationService,
    Quote,
    QuotingService,
    Report,
    VerifiedReport,
)
from repro.sgx.clock import ClockWindow, SimClock
from repro.sgx.costmodel import (
    DEFAULT_EPC_BYTES,
    PAGE_SIZE,
    SgxCostModel,
    bare_metal_cost_model,
    paper_cost_model,
)
from repro.sgx.ecall import ecall, estimate_bytes
from repro.sgx.enclave import Enclave, EnclaveHandle, SgxPlatform
from repro.sgx.epc import EpcManager, PagingStats
from repro.sgx.measurement import Measurement, measure, measure_code
from repro.sgx.sealing import SealedBlob, SealingPolicy, seal, unseal
from repro.sgx.sidechannel import ObservedEvent, SideChannelLog

__all__ = [
    "AttestationVerificationService",
    "ClockWindow",
    "DEFAULT_EPC_BYTES",
    "Enclave",
    "EnclaveHandle",
    "EpcManager",
    "Measurement",
    "ObservedEvent",
    "PAGE_SIZE",
    "PagingStats",
    "Quote",
    "QuotingService",
    "Report",
    "SealedBlob",
    "SealingPolicy",
    "SgxCostModel",
    "SgxPlatform",
    "SideChannelLog",
    "SimClock",
    "VerifiedReport",
    "bare_metal_cost_model",
    "ecall",
    "estimate_bytes",
    "measure",
    "measure_code",
    "paper_cost_model",
    "seal",
    "unseal",
]
