"""Enclave identity: MRENCLAVE / MRSIGNER analogues.

Real SGX measures every page loaded into an enclave at build time into
MRENCLAVE, and records the SHA-256 of the signer's RSA key as MRSIGNER.  The
simulator measures the enclave *class* -- its qualified name and source code
-- which preserves the property the framework relies on: changing one line of
trusted code changes the measurement, and the verifier notices.
"""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import dataclass


@dataclass(frozen=True)
class Measurement:
    """An enclave identity pair.

    Attributes:
        mrenclave: hex digest binding the exact trusted code.
        mrsigner: hex digest binding the vendor key that signed the enclave.
    """

    mrenclave: str
    mrsigner: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"MRENCLAVE={self.mrenclave[:16]}... MRSIGNER={self.mrsigner[:16]}..."


def measure_code(enclave_class: type) -> str:
    """MRENCLAVE of an enclave class: SHA-256 over its name and source."""
    hasher = hashlib.sha256()
    hasher.update(enclave_class.__qualname__.encode())
    try:
        source = inspect.getsource(enclave_class)
    except (OSError, TypeError):  # builtins / dynamically created classes
        source = repr(sorted(vars(enclave_class)))
    hasher.update(source.encode())
    return hasher.hexdigest()


def measure_signer(signer_key: bytes) -> str:
    """MRSIGNER: SHA-256 of the vendor signing key."""
    return hashlib.sha256(signer_key).hexdigest()


def measure(enclave_class: type, signer_key: bytes = b"repro-default-signer") -> Measurement:
    return Measurement(
        mrenclave=measure_code(enclave_class),
        mrsigner=measure_signer(signer_key),
    )
