"""The enclave simulator: platforms, enclaves, and the trusted boundary.

An :class:`SgxPlatform` stands for one SGX-capable machine: it owns the
simulated clock, the cost model, the EPC, and the platform secrets from which
sealing and attestation keys derive.  Enclaves are Python classes deriving
from :class:`Enclave` whose ``@ecall``-decorated methods form the trusted
interface; :meth:`SgxPlatform.load_enclave` measures the class (MRENCLAVE)
and returns an :class:`EnclaveHandle` through which the untrusted host makes
ECALLs.

Every ECALL really runs -- results are genuine -- while the handle charges
the modeled SGX costs (transition, marshalling, EPC slowdown, paging) to the
platform clock and records the adversary-visible trace in the side-channel
log.  ``trusted=False`` turns a handle into the paper's *FakeSGX* control:
identical code, no enclave, no overhead.
"""

from __future__ import annotations

import os
from typing import Any

from repro import faults
from repro.errors import EnclaveCrashed, EnclaveError, EnclaveNotInitialized
from repro.obs import metrics
from repro.obs.tracer import Tracer
from repro.sgx import sealing
from repro.sgx.clock import SimClock
from repro.sgx.costmodel import SgxCostModel, paper_cost_model
from repro.sgx.ecall import estimate_bytes, is_ecall
from repro.sgx.epc import EpcManager
from repro.sgx.measurement import Measurement, measure
from repro.sgx.sidechannel import SideChannelLog


class Enclave:
    """Base class for trusted code.

    Subclass, decorate trusted entry points with
    :func:`~repro.sgx.ecall.ecall`, and load through
    :meth:`SgxPlatform.load_enclave`.  Inside ECALLs, trusted code may use
    the protected helpers below (sealing, explicit EPC working-set hints,
    report creation via the handle's platform).
    """

    def __init__(self) -> None:
        self._platform: SgxPlatform | None = None
        self._measurement: Measurement | None = None
        self._trusted = True
        self._approved_user_data: list[bytes] = []

    # ------------------------------------------------------------------
    # protected API available to trusted code
    # ------------------------------------------------------------------
    @property
    def measurement(self) -> Measurement:
        if self._measurement is None:
            raise EnclaveNotInitialized("enclave was not loaded through a platform")
        return self._measurement

    def seal(
        self, data: bytes, policy: sealing.SealingPolicy = sealing.SealingPolicy.MRENCLAVE
    ) -> sealing.SealedBlob:
        """Seal ``data`` for untrusted storage."""
        platform = self._require_platform()
        return sealing.seal(
            data,
            platform.platform_secret,
            self.measurement.mrenclave,
            self.measurement.mrsigner,
            policy,
        )

    def unseal(self, blob: sealing.SealedBlob) -> bytes:
        platform = self._require_platform()
        return sealing.unseal(
            blob,
            platform.platform_secret,
            self.measurement.mrenclave,
            self.measurement.mrsigner,
        )

    def attest(self, user_data: bytes) -> None:
        """Approve ``user_data`` for the next report (EREPORT is always
        enclave-initiated; the host cannot put words in the enclave's mouth)."""
        self._approved_user_data.append(user_data)

    def touch_working_set(self, byte_count: int) -> None:
        """Declare a transient in-enclave working set of ``byte_count`` bytes.

        Models the EPC pressure of large trusted buffers (e.g. a whole model
        held inside the enclave): pages fault in, and paging costs accrue
        when the set exceeds the EPC.  A no-op on FakeSGX instances, whose
        point is running the identical code without enclave costs.
        """
        if not self._trusted:
            return
        platform = self._require_platform()
        handle = platform.epc.allocate(byte_count)
        try:
            platform.epc.touch(handle)
        finally:
            platform.epc.free(handle)

    def epc_reserve(self, byte_count: int) -> int:
        """Reserve a *persistent* in-enclave allocation (e.g. resident model
        weights) and return its handle.  Returns 0 on FakeSGX instances."""
        if not self._trusted:
            return 0
        return self._require_platform().epc.allocate(byte_count)

    def epc_touch(self, handle: int) -> None:
        """Access every page of a persistent allocation; resident pages stay
        free, evicted pages fault back in."""
        if not self._trusted or handle == 0:
            return
        self._require_platform().epc.touch(handle)

    def _require_platform(self) -> "SgxPlatform":
        if self._platform is None:
            raise EnclaveNotInitialized("enclave was not loaded through a platform")
        return self._platform


class EnclaveHandle:
    """Untrusted-side handle: the only door into a loaded enclave."""

    def __init__(
        self,
        platform: "SgxPlatform",
        instance: Enclave,
        measurement: Measurement,
        trusted: bool = True,
    ) -> None:
        self._platform = platform
        self._instance = instance
        self.measurement = measurement
        self.trusted = trusted
        self.side_channel = SideChannelLog()
        self._destroyed = False
        self._crashed = False
        self.side_channel.record("create", type(instance).__name__)

    @property
    def platform(self) -> "SgxPlatform":
        return self._platform

    def ecall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke a trusted entry point, charging boundary costs.

        Args:
            name: method name on the enclave class; must be ``@ecall``.

        Raises:
            EnclaveError: unknown or undecorated method.
            EnclaveNotInitialized: the handle was destroyed.
            EnclaveCrashed: the enclave was lost (AEX); a supervisor may
                reload it, a bare handle stays unusable.
        """
        if self._destroyed:
            raise EnclaveNotInitialized("enclave handle was destroyed")
        if self._crashed:
            raise EnclaveCrashed(
                f"enclave {type(self._instance).__name__} was lost (AEX); "
                "reload it before issuing ECALLs"
            )
        method = getattr(self._instance, name, None)
        if method is None or not is_ecall(getattr(type(self._instance), name, None)):
            raise EnclaveError(
                f"{type(self._instance).__name__}.{name} is not an ECALL entry point"
            )
        if faults.is_armed():
            self._maybe_crash(name)
        clock = self._platform.clock
        model = self._platform.cost_model
        bytes_in = sum(estimate_bytes(a) for a in args) + sum(
            estimate_bytes(v) for v in kwargs.values()
        )
        with self._platform.tracer.span(
            name,
            kind="ecall",
            side_channel=self.side_channel,
            enclave=type(self._instance).__name__,
            trusted=self.trusted,
            bytes_in=bytes_in,
        ) as span:
            if self.trusted:
                clock.charge(model.transition_overhead_s(1), "sgx_transition")
                clock.charge(model.marshalling_overhead_s(bytes_in), "sgx_marshalling")
                epc_handle = self._platform.epc.allocate(bytes_in)
                try:
                    self._platform.epc.touch(epc_handle)
                    before = clock.real_s
                    with clock.measure_real():
                        result = method(*args, **kwargs)
                    clock.charge(
                        model.compute_overhead_s(clock.real_s - before), "sgx_epc_compute"
                    )
                finally:
                    self._platform.epc.free(epc_handle)
                bytes_out = estimate_bytes(result)
                clock.charge(model.marshalling_overhead_s(bytes_out), "sgx_marshalling")
            else:
                with clock.measure_real():
                    result = method(*args, **kwargs)
                bytes_out = estimate_bytes(result)
            span.attrs["bytes_out"] = bytes_out
            self.side_channel.record(
                "ecall", name, bytes_in=bytes_in, bytes_out=bytes_out
            )
            registry = metrics.registry()
            registry.counter(
                "repro_sgx_ecall_total",
                "ECALL invocations at the trusted boundary, by entry point.",
                ("ecall",),
            ).labels(ecall=name).inc()
            ecall_bytes = registry.counter(
                "repro_sgx_ecall_bytes_total",
                "Bytes marshalled across the boundary, by entry point and direction.",
                ("direction", "ecall"),
            )
            ecall_bytes.labels(ecall=name, direction="in").inc(bytes_in)
            ecall_bytes.labels(ecall=name, direction="out").inc(bytes_out)
        return result

    def _maybe_crash(self, name: str) -> None:
        """Consult the armed fault plan; an event here is an AEX: the
        enclave's volatile state is gone and the handle is lost until a
        supervisor reloads it."""
        event = faults.poll(
            "sgx.ecall",
            name=name,
            enclave=type(self._instance).__name__,
            trusted=self.trusted,
        )
        if event is None:
            return
        self._crashed = True
        self.side_channel.record("aex", name)
        with self._platform.tracer.span(
            "fault/sgx.ecall",
            kind="span",
            side_channel=self.side_channel,
            ecall=name,
            hit=event.hit,
            fire=event.fire,
        ):
            pass
        error = event.rule.error if event.rule.error is not None else EnclaveCrashed
        raise error(
            f"injected AEX during ECALL {name!r} "
            f"(hit {event.hit}, fire {event.fire})"
        )

    def seal(
        self,
        data: bytes,
        policy: sealing.SealingPolicy = sealing.SealingPolicy.MRENCLAVE,
    ) -> sealing.SealedBlob:
        """Seal ``data`` under this enclave's identity (EGETKEY analogue).

        Public passthrough so hosts never reach into the enclave instance;
        the blob is recoverable only by :meth:`unseal` on a handle with the
        same measurement (per ``policy``) on the same platform.
        """
        if self._destroyed:
            raise EnclaveNotInitialized("enclave handle was destroyed")
        self.side_channel.record("seal", type(self._instance).__name__, bytes_in=len(data))
        return self._instance.seal(data, policy)

    def unseal(self, blob: sealing.SealedBlob) -> bytes:
        """Recover sealed data; raises :class:`~repro.errors.SealingError`
        for blobs sealed by a different enclave identity or platform."""
        if self._destroyed:
            raise EnclaveNotInitialized("enclave handle was destroyed")
        self.side_channel.record("unseal", type(self._instance).__name__)
        return self._instance.unseal(blob)

    def create_report(self, user_data: bytes) -> "Report":
        """Produce a locally-MACed report carrying ``user_data``.

        The enclave must have approved the exact bytes via
        :meth:`Enclave.attest` (inside an ECALL) -- reports are
        enclave-initiated in real SGX, and the simulator enforces the same:
        a host cannot attest data the trusted code never produced.
        """
        from repro.sgx.attestation import Report

        if self._destroyed:
            raise EnclaveNotInitialized("enclave handle was destroyed")
        try:
            self._instance._approved_user_data.remove(user_data)
        except ValueError:
            raise EnclaveError(
                "enclave did not approve this user_data for attestation"
            ) from None
        self._platform.clock.charge(self._platform.cost_model.attestation_s, "attestation")
        self.side_channel.record("report", type(self._instance).__name__)
        return Report.create(
            self.measurement, user_data, self._platform.report_key
        )

    def destroy(self) -> None:
        self._destroyed = True


class SgxPlatform:
    """One simulated SGX machine: clock, cost model, EPC, platform secrets."""

    def __init__(
        self,
        cost_model: SgxCostModel | None = None,
        clock: SimClock | None = None,
        platform_secret: bytes | None = None,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else paper_cost_model()
        self.clock = clock if clock is not None else SimClock()
        self.platform_secret = (
            platform_secret if platform_secret is not None else os.urandom(32)
        )
        self.epc = EpcManager(self.cost_model, self.clock)
        # One tracer per machine: pipeline/stage spans opened by the host
        # and the ecall spans recorded at the trusted boundary nest in it.
        self.tracer = Tracer(self.clock)
        self._enclaves: list[EnclaveHandle] = []

    @property
    def report_key(self) -> bytes:
        """Key under which local reports are MACed (EREPORT analogue)."""
        import hashlib

        return hashlib.sha256(self.platform_secret + b"|report-key").digest()

    def load_enclave(
        self,
        enclave_class: type[Enclave],
        *args: Any,
        signer_key: bytes = b"repro-default-signer",
        trusted: bool = True,
        **kwargs: Any,
    ) -> EnclaveHandle:
        """Instantiate and measure an enclave.

        Args:
            enclave_class: the trusted code.
            *args, **kwargs: forwarded to the enclave constructor.
            signer_key: vendor signing key folded into MRSIGNER.
            trusted: False creates a *FakeSGX* handle -- same code, no
                enclave, no cost accounting (the paper's control groups).
        """
        if not issubclass(enclave_class, Enclave):
            raise EnclaveError(f"{enclave_class.__name__} does not derive from Enclave")
        instance = enclave_class(*args, **kwargs)
        m = measure(enclave_class, signer_key)
        instance._platform = self
        instance._measurement = m
        instance._trusted = trusted
        handle = EnclaveHandle(self, instance, m, trusted=trusted)
        if trusted:
            self.clock.charge(self.cost_model.transition_overhead_s(2), "sgx_create")
        self._enclaves.append(handle)
        return handle
