"""ECALL plumbing: the trusted-call decorator and boundary byte accounting.

Every value that crosses the enclave boundary must be copied (and, under the
hood, encrypted into / decrypted out of the EPC), so its size is charged by
the cost model and is visible to the side-channel log.  ``estimate_bytes``
computes a marshalled size for the argument kinds the framework passes:
numpy-backed crypto objects (which expose ``byte_size()``), numpy arrays,
bytes, scalars and containers of those.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

_ECALL_ATTR = "_repro_is_ecall"


def ecall(fn: Callable) -> Callable:
    """Mark an :class:`~repro.sgx.enclave.Enclave` method as host-callable.

    Only decorated methods are reachable through
    :meth:`~repro.sgx.enclave.EnclaveHandle.ecall`; everything else is
    enclave-private, mirroring the EDL interface definition of the SGX SDK.
    """
    setattr(fn, _ECALL_ATTR, True)
    return fn


def is_ecall(fn: Any) -> bool:
    return callable(fn) and getattr(fn, _ECALL_ATTR, False)


def estimate_bytes(value: Any) -> int:
    """Marshalled size of a value crossing the enclave boundary."""
    if value is None:
        return 0
    byte_size = getattr(value, "byte_size", None)
    if callable(byte_size):
        return int(byte_size())
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            return sum(estimate_bytes(v) for v in value.ravel())
        return value.nbytes
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, np.integer)):
        return 8
    if isinstance(value, (float, np.floating)):
        return 8
    if isinstance(value, dict):
        return sum(estimate_bytes(k) + estimate_bytes(v) for k, v in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(estimate_bytes(v) for v in value)
    fields = getattr(value, "__dataclass_fields__", None)
    if fields is not None:
        return sum(estimate_bytes(getattr(value, name)) for name in fields)
    # Opaque objects are charged a pointer-sized token; crypto payloads all
    # take one of the branches above.
    return 8
