"""EPC (Enclave Page Cache) manager: limited memory, LRU paging.

SGX enclaves share a small protected memory region; when an enclave's working
set exceeds it, pages are encrypted and evicted to untrusted memory (EWB) and
reloaded on demand (ELD).  The paper's Section III-B names this paging both a
performance cliff and a side-channel vector; the manager therefore exposes an
event log that :mod:`repro.sgx.sidechannel` treats as adversary-observable.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro import faults
from repro.errors import EnclaveMemoryError
from repro.obs import metrics
from repro.sgx.clock import SimClock
from repro.sgx.costmodel import PAGE_SIZE, SgxCostModel


@dataclass
class PagingStats:
    """Counters of architecturally visible paging events."""

    evictions: int = 0  # EWB: page encrypted + written out
    loads: int = 0  # ELD: page decrypted + brought back
    faults: int = 0  # page faults observed by the (untrusted) OS

    def reset(self) -> None:
        self.evictions = 0
        self.loads = 0
        self.faults = 0


@dataclass
class _Allocation:
    pages: int
    resident_pages: set = field(default_factory=set)


class EpcManager:
    """Tracks page residency for every allocation of one enclave.

    Allocations are identified by opaque integer handles.  Touching an
    allocation makes its pages resident, evicting the least recently used
    pages of other allocations when the EPC is full.

    Args:
        cost_model: provides the EPC size and per-fault costs.
        clock: charged for every paging event.
    """

    def __init__(self, cost_model: SgxCostModel, clock: SimClock) -> None:
        self.cost_model = cost_model
        self.clock = clock
        self.stats = PagingStats()
        self._capacity_pages = cost_model.epc_bytes // PAGE_SIZE
        self._allocations: dict[int, _Allocation] = {}
        # LRU over (handle, page_index) pairs; most-recently-used at the end.
        self._resident: OrderedDict[tuple[int, int], None] = OrderedDict()
        self._next_handle = 1
        # Stats totals already mirrored into the metrics registry; deltas
        # are published at the end of each public entry point, so nested
        # paths (evict_all inside touch) are counted exactly once.
        self._published = (0, 0, 0)

    def _publish_paging(self) -> None:
        current = (self.stats.evictions, self.stats.loads, self.stats.faults)
        if current == self._published:
            return  # hot path: nothing paged since the last publish
        registry = metrics.registry()
        if not registry.enabled:
            return
        previous = self._published
        if any(now < before for now, before in zip(current, previous)):
            previous = (0, 0, 0)  # stats were reset; re-baseline
        names = (
            "repro_sgx_epc_evictions_total",
            "repro_sgx_epc_loads_total",
            "repro_sgx_epc_faults_total",
        )
        helps = (
            "EPC pages encrypted and evicted to untrusted memory (EWB).",
            "EPC pages decrypted and reloaded on demand (ELD).",
            "EPC page faults observed by the untrusted OS.",
        )
        for name, help_text, now, before in zip(names, helps, current, previous):
            if now > before:
                registry.counter(name, help_text).inc(now - before)
        self._published = current

    @property
    def capacity_bytes(self) -> int:
        return self._capacity_pages * PAGE_SIZE

    @property
    def resident_bytes(self) -> int:
        return len(self._resident) * PAGE_SIZE

    @property
    def allocated_bytes(self) -> int:
        return sum(a.pages for a in self._allocations.values()) * PAGE_SIZE

    def allocate(self, byte_count: int) -> int:
        """Reserve an allocation and return its handle (pages not yet resident)."""
        if byte_count < 0:
            raise EnclaveMemoryError(f"cannot allocate {byte_count} bytes")
        handle = self._next_handle
        self._next_handle += 1
        self._allocations[handle] = _Allocation(pages=self.cost_model.pages_for(byte_count))
        return handle

    def free(self, handle: int) -> None:
        allocation = self._allocations.pop(handle, None)
        if allocation is None:
            return
        for page in allocation.resident_pages:
            self._resident.pop((handle, page), None)

    def evict_all(self) -> int:
        """Evict every resident page (the OS reclaiming the EPC under
        memory pressure); returns the page count.  Subsequent touches fault
        everything back in -- results are unchanged, paging costs accrue."""
        evicted = len(self._resident)
        for handle, page in list(self._resident):
            allocation = self._allocations.get(handle)
            if allocation is not None:
                allocation.resident_pages.discard(page)
        self._resident.clear()
        self.stats.evictions += evicted
        if evicted:
            self.clock.charge(self.cost_model.paging_overhead_s(evicted), "epc_paging")
        self._publish_paging()
        return evicted

    def touch(self, handle: int) -> None:
        """Access every page of an allocation (full read or write pass).

        Non-resident pages fault in; LRU pages are evicted to make room.
        """
        allocation = self._allocations.get(handle)
        if allocation is None:
            raise EnclaveMemoryError(f"unknown allocation handle {handle}")
        if faults.is_armed():
            event = faults.poll(
                "sgx.epc.touch", pages=allocation.pages, resident=len(self._resident)
            )
            if event is not None:
                if event.rule.error is not None:
                    raise event.rule.error(
                        f"injected EPC fault (hit {event.hit}, fire {event.fire})"
                    )
                self.evict_all()
        if allocation.pages > self._capacity_pages:
            # A single object larger than the EPC thrashes: every pass evicts
            # and reloads the whole object.
            thrash = allocation.pages
            self.stats.faults += thrash
            self.stats.loads += thrash
            self.stats.evictions += thrash
            self.clock.charge(
                self.cost_model.paging_overhead_s(2 * thrash), "epc_paging"
            )
            self._publish_paging()
            return
        for page in range(allocation.pages):
            key = (handle, page)
            if key in self._resident:
                self._resident.move_to_end(key)
                continue
            self._fault_in(key, allocation)
        self._publish_paging()

    def _fault_in(self, key: tuple[int, int], allocation: _Allocation) -> None:
        while len(self._resident) >= self._capacity_pages:
            victim, _ = self._resident.popitem(last=False)
            victim_alloc = self._allocations.get(victim[0])
            if victim_alloc is not None:
                victim_alloc.resident_pages.discard(victim[1])
            self.stats.evictions += 1
            self.clock.charge(self.cost_model.paging_overhead_s(1), "epc_paging")
        self._resident[key] = None
        allocation.resident_pages.add(key[1])
        self.stats.faults += 1
        self.stats.loads += 1
        self.clock.charge(self.cost_model.paging_overhead_s(1), "epc_paging")
