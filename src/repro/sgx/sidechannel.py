"""Adversary-observable trace of enclave behaviour.

SGX does not hide *when* an enclave is entered, *how many bytes* cross the
boundary, or *which pages* fault -- a compromised OS sees all of it (the
paper's Section III-B).  The simulator records exactly that trace so tests
can assert the hybrid pipeline's defining privacy property: the observable
trace is a function of public shapes only, never of plaintext values.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ObservedEvent:
    """One event as seen from outside the enclave."""

    kind: str  # "ecall" | "ocall" | "page_fault" | "create" | "report"
    name: str  # function name / region label ("" when not applicable)
    bytes_in: int = 0
    bytes_out: int = 0

    def signature(self) -> tuple[str, str, int, int]:
        """Hashable form used to compare traces across runs."""
        return (self.kind, self.name, self.bytes_in, self.bytes_out)


@dataclass
class SideChannelLog:
    """Append-only event log the untrusted host can read."""

    events: list[ObservedEvent] = field(default_factory=list)

    def record(self, kind: str, name: str = "", bytes_in: int = 0, bytes_out: int = 0) -> None:
        self.events.append(
            ObservedEvent(kind=kind, name=name, bytes_in=bytes_in, bytes_out=bytes_out)
        )

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def total_bytes_crossed(self) -> int:
        return sum(e.bytes_in + e.bytes_out for e in self.events)

    def trace_signature(self) -> tuple[tuple[str, str, int, int], ...]:
        """The full trace as a comparable tuple.

        Two runs that differ only in *plaintext values* must produce equal
        signatures, otherwise the enclave leaks through this channel.
        """
        return tuple(e.signature() for e in self.events)

    def reset(self) -> None:
        self.events.clear()
