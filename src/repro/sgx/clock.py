"""Simulated clock: separates real compute time from modeled SGX overhead.

The simulator *actually executes* trusted code (results are real); what it
models is the extra time SGX hardware would charge -- EPC encryption slowdown,
ECALL/OCALL transitions, paging.  :class:`SimClock` accumulates both real
elapsed seconds and modeled overhead seconds, per category, so benchmarks can
report ``simulated = real + overhead`` and decompose where the time went
(exactly the decomposition the paper's Tables I/IV/V make).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class SimClock:
    """Accumulates real and modeled time, tagged by category."""

    real_s: float = 0.0
    overhead_s: float = 0.0
    by_category: dict[str, float] = field(default_factory=dict)

    @property
    def now_s(self) -> float:
        """Total simulated seconds (real compute + modeled overhead)."""
        return self.real_s + self.overhead_s

    def charge(self, seconds: float, category: str) -> None:
        """Record ``seconds`` of modeled overhead under ``category``."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self.overhead_s += seconds
        self.by_category[category] = self.by_category.get(category, 0.0) + seconds

    def elapse_real(self, seconds: float) -> None:
        """Record real (measured) compute seconds."""
        if seconds < 0:
            raise ValueError(f"cannot elapse negative time: {seconds}")
        self.real_s += seconds
        self.by_category["compute"] = self.by_category.get("compute", 0.0) + seconds

    @contextmanager
    def measure_real(self):
        """Context manager timing a real code block into the clock."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.elapse_real(time.perf_counter() - start)

    @contextmanager
    def measure_real_exclusive(self):
        """Like :meth:`measure_real`, but safe to wrap around code that
        already records real time into this clock (e.g. ECALLs).

        Only the wall time *not* elapsed by inner measurements is added, so
        the block's total contribution equals its wall time exactly once.
        This is what lets a pipeline stage account host-side work around
        enclave crossings without double-counting the trusted body.
        """
        start = time.perf_counter()
        real_before = self.real_s
        try:
            yield
        finally:
            inner = self.real_s - real_before
            self.elapse_real(max(0.0, time.perf_counter() - start - inner))

    def snapshot(self) -> dict[str, float]:
        """Copy of the per-category totals (including real compute)."""
        return dict(self.by_category)

    def reset(self) -> None:
        self.real_s = 0.0
        self.overhead_s = 0.0
        self.by_category.clear()


@dataclass
class ClockWindow:
    """Delta-reader over a :class:`SimClock` for scoped measurements."""

    clock: SimClock
    _start_real: float = 0.0
    _start_overhead: float = 0.0

    def __post_init__(self) -> None:
        self.restart()

    def restart(self) -> None:
        self._start_real = self.clock.real_s
        self._start_overhead = self.clock.overhead_s

    @property
    def real_s(self) -> float:
        return self.clock.real_s - self._start_real

    @property
    def overhead_s(self) -> float:
        return self.clock.overhead_s - self._start_overhead

    @property
    def elapsed_s(self) -> float:
        return self.real_s + self.overhead_s
