"""Sealed storage: enclave data encrypted for untrusted persistence.

Real SGX derives a sealing key from the CPU's fused key plus the enclave
measurement (policy MRENCLAVE) or signer (policy MRSIGNER).  The simulator
derives it with HKDF-style hashing from a per-platform secret, then applies
an authenticated stream cipher built from SHA-256 in counter mode with an
HMAC tag -- enough to give the *functional* guarantees the framework needs:
only the same enclave on the same platform unseals, and any bit flip is
detected.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
from dataclasses import dataclass
from enum import Enum

from repro import faults
from repro.errors import SealingError


class SealingPolicy(Enum):
    """Which identity the sealing key binds to."""

    MRENCLAVE = "mrenclave"  # only the exact same enclave code unseals
    MRSIGNER = "mrsigner"  # any enclave from the same vendor unseals


@dataclass(frozen=True)
class SealedBlob:
    """Ciphertext + tag, safe to hand to untrusted storage."""

    policy: SealingPolicy
    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def byte_size(self) -> int:
        return len(self.nonce) + len(self.ciphertext) + len(self.tag)


def _derive_key(platform_secret: bytes, identity: str, policy: SealingPolicy) -> bytes:
    return hashlib.sha256(
        b"seal-key|" + platform_secret + b"|" + policy.value.encode() + b"|" + identity.encode()
    ).digest()


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range(-(-length // 32)):
        blocks.append(hashlib.sha256(key + nonce + struct.pack(">Q", counter)).digest())
    return b"".join(blocks)[:length]


def seal(
    data: bytes,
    platform_secret: bytes,
    mrenclave: str,
    mrsigner: str,
    policy: SealingPolicy = SealingPolicy.MRENCLAVE,
) -> SealedBlob:
    """Encrypt and authenticate ``data`` under the enclave's sealing key."""
    identity = mrenclave if policy is SealingPolicy.MRENCLAVE else mrsigner
    key = _derive_key(platform_secret, identity, policy)
    nonce = os.urandom(16)
    stream = _keystream(key, nonce, len(data))
    ciphertext = bytes(a ^ b for a, b in zip(data, stream))
    tag = hmac.new(key, nonce + ciphertext, hashlib.sha256).digest()
    return SealedBlob(policy=policy, nonce=nonce, ciphertext=ciphertext, tag=tag)


def unseal(
    blob: SealedBlob,
    platform_secret: bytes,
    mrenclave: str,
    mrsigner: str,
) -> bytes:
    """Verify and decrypt a sealed blob.

    Raises:
        SealingError: wrong enclave identity, wrong platform, or tampering.
    """
    if faults.is_armed():
        faults.inject(
            "sgx.sealing.unseal",
            SealingError,
            name=mrenclave,
            policy=blob.policy.value,
            bytes=len(blob.ciphertext),
        )
    identity = mrenclave if blob.policy is SealingPolicy.MRENCLAVE else mrsigner
    key = _derive_key(platform_secret, identity, blob.policy)
    expected = hmac.new(key, blob.nonce + blob.ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(expected, blob.tag):
        raise SealingError(
            "sealed blob authentication failed: wrong enclave identity, "
            "wrong platform, or the blob was tampered with"
        )
    stream = _keystream(key, blob.nonce, len(blob.ciphertext))
    return bytes(a ^ b for a, b in zip(blob.ciphertext, stream))
