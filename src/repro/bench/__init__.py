"""Benchmark harness: paper-format statistics, table printers, workloads."""

from repro.bench.stats import Summary, measure_repeated, measure_simulated, t_quantile_96
from repro.bench.tables import format_series, format_table, format_trace, markdown_table
from repro.bench.workloads import (
    SCALES,
    BenchScale,
    current_scale,
    hybrid_parameters,
    pure_he_parameters,
    trained_models,
)

__all__ = [
    "BenchScale",
    "SCALES",
    "Summary",
    "current_scale",
    "format_series",
    "format_table",
    "format_trace",
    "hybrid_parameters",
    "markdown_table",
    "measure_repeated",
    "measure_simulated",
    "pure_he_parameters",
    "t_quantile_96",
    "trained_models",
]
