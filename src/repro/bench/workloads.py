"""Shared benchmark workloads: scaled deployments of the paper's setup.

Pure-Python FV is orders of magnitude slower than SEAL's C++, so benchmarks
run at a *scale* -- a bundle of polynomial degree, image size, channel count
and repetition counts -- chosen via the ``REPRO_BENCH_SCALE`` environment
variable (``tiny`` | ``small`` | ``paper``).  ``paper`` uses the paper's
dimensions (n = 1024, 28 x 28 images, 6 kernels, batchSize 10) and takes
correspondingly long; ``small`` is the default and preserves every shape
claim at a fraction of the cost.  EXPERIMENTS.md records which scale
produced each number.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro.core import TrainedModels, parameters_for_pipeline, train_paper_models
from repro.errors import ReproError
from repro.he.params import EncryptionParams


@dataclass(frozen=True)
class BenchScale:
    """One benchmark scale bundle."""

    name: str
    poly_degree: int
    image_size: int
    channels: int
    kernel_size: int
    batch_size: int  # the paper's batchSize (images per measured batch)
    repeats: int  # repetitions per statistic (paper: 1000)
    train_size: int
    epochs: int

    @property
    def conv_output(self) -> int:
        return self.image_size - self.kernel_size + 1


SCALES = {
    "tiny": BenchScale(
        name="tiny", poly_degree=256, image_size=10, channels=2, kernel_size=3,
        batch_size=2, repeats=5, train_size=300, epochs=3,
    ),
    "small": BenchScale(
        name="small", poly_degree=1024, image_size=12, channels=2, kernel_size=3,
        batch_size=2, repeats=10, train_size=600, epochs=6,
    ),
    "paper": BenchScale(
        name="paper", poly_degree=1024, image_size=28, channels=6, kernel_size=5,
        batch_size=10, repeats=30, train_size=1200, epochs=10,
    ),
}


def current_scale() -> BenchScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default ``small``)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    scale = SCALES.get(name)
    if scale is None:
        raise ReproError(
            f"unknown REPRO_BENCH_SCALE={name!r}; choose from {sorted(SCALES)}"
        )
    return scale


@lru_cache(maxsize=None)
def trained_models(scale_name: str) -> TrainedModels:
    """Train (once per process) the model pair for a scale."""
    scale = SCALES[scale_name]
    return train_paper_models(
        train_size=scale.train_size,
        test_size=max(50, scale.train_size // 4),
        epochs=scale.epochs,
        image_size=scale.image_size,
        channels=scale.channels,
        kernel_size=scale.kernel_size,
    )


@lru_cache(maxsize=None)
def hybrid_parameters(scale_name: str) -> EncryptionParams:
    scale = SCALES[scale_name]
    models = trained_models(scale_name)
    return parameters_for_pipeline(
        models.quantized_sigmoid(), scale.poly_degree, name=f"{scale_name}_hybrid"
    )


@lru_cache(maxsize=None)
def pure_he_parameters(scale_name: str) -> EncryptionParams:
    scale = SCALES[scale_name]
    models = trained_models(scale_name)
    return parameters_for_pipeline(
        models.quantized_square(), scale.poly_degree, name=f"{scale_name}_pure_he"
    )
