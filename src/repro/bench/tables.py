"""Plain-text table and series printers for the benchmark harness.

Benchmarks print the same rows/columns the paper's tables report and the
same series its figures plot, so EXPERIMENTS.md can be filled by running
each bench and pasting its output.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Monospace table with aligned columns."""
    if not rows:
        raise ReproError("a table needs at least one row")
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(rule)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str = "",
    digits: int = 4,
) -> str:
    """A figure's data as a table: one x column plus one column per line."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ReproError(f"series {name!r} length mismatch with x values")
    headers = [x_label, *names]
    rows = [
        [str(x), *(f"{series[name][i]:.{digits}f}" for name in names)]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def format_trace(trace, digits: int = 4) -> str:
    """A pipeline trace as a stage-breakdown table.

    One row per stage child of the root span (real seconds, modeled SGX
    overhead, enclave crossings, bytes moved across the boundary), plus a
    total row that, by the tracing invariant, equals the ``SimClock`` deltas
    across the run.
    """
    stages = trace.stages() or [trace]
    rows = []
    for stage in stages:
        ecalls = stage.ecalls()
        moved = sum(
            int(e.attrs.get("bytes_in", 0)) + int(e.attrs.get("bytes_out", 0))
            for e in ecalls
        )
        rows.append(
            [
                stage.name,
                f"{stage.real_s:.{digits}f}",
                f"{stage.overhead_s:.{digits}f}",
                str(stage.crossings),
                str(moved),
            ]
        )
    total_moved = sum(
        int(e.attrs.get("bytes_in", 0)) + int(e.attrs.get("bytes_out", 0))
        for e in trace.ecalls()
    )
    rows.append(
        [
            "total",
            f"{trace.real_s:.{digits}f}",
            f"{trace.overhead_s:.{digits}f}",
            str(trace.crossings),
            str(total_moved),
        ]
    )
    return format_table(
        ["stage", "real s", "sgx overhead s", "crossings", "bytes crossed"],
        rows,
        title=f"trace: {trace.name}",
    )


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """GitHub-flavoured markdown table (for pasting into EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)
