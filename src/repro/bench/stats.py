"""Measurement statistics in the paper's reporting format.

Every table in the paper reports *average, STD and a 96% confidence
interval* over repeated runs; :class:`Summary` reproduces exactly those
columns (Student-t interval, matching small-sample practice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ReproError
from repro.sgx.clock import SimClock

# Two-sided 96% Student-t quantiles (df -> t); past df=120 the value decays
# as 1/df toward the normal limit below.
_T_96 = {
    1: 15.895, 2: 4.849, 3: 3.482, 4: 2.999, 5: 2.757, 6: 2.612, 7: 2.517,
    8: 2.449, 9: 2.398, 10: 2.359, 12: 2.303, 15: 2.249, 20: 2.197,
    30: 2.147, 40: 2.123, 60: 2.099, 120: 2.076,
}
_T_96_NORMAL = 2.054


def t_quantile_96(df: int) -> float:
    """Two-sided 96% Student-t critical value for ``df`` degrees of freedom.

    Tabulated values are interpolated; beyond the last tabulated df the
    value decays as ``1/df`` toward the normal limit, so the quantile is
    monotone decreasing everywhere (a hard cut to the normal value at the
    df=120 boundary used to *drop* from 2.076 to 2.054 between df=120 and
    df=121).
    """
    if df < 1:
        raise ReproError("need at least two samples for a confidence interval")
    if df in _T_96:
        return _T_96[df]
    keys = sorted(_T_96)
    if df > keys[-1]:
        last = keys[-1]
        return _T_96_NORMAL + (_T_96[last] - _T_96_NORMAL) * (last / df)
    lower = max(k for k in keys if k < df)
    upper = min(k for k in keys if k > df)
    frac = (df - lower) / (upper - lower)
    return _T_96[lower] + frac * (_T_96[upper] - _T_96[lower])


@dataclass(frozen=True)
class Summary:
    """Average / STD / 96% CI of a sample, in the paper's table format."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    count: int

    @classmethod
    def of(cls, samples: Sequence[float]) -> "Summary":
        n = len(samples)
        if n == 0:
            raise ReproError("cannot summarize an empty sample")
        mean = sum(samples) / n
        if n == 1:
            return cls(mean=mean, std=0.0, ci_low=mean, ci_high=mean, count=1)
        variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
        std = math.sqrt(variance)
        half = t_quantile_96(n - 1) * std / math.sqrt(n)
        return cls(mean=mean, std=std, ci_low=mean - half, ci_high=mean + half, count=n)

    def row(self, unit_scale: float = 1.0, digits: int = 3) -> list[str]:
        """``[average, STD, 96% CI]`` formatted like the paper's tables."""
        fmt = f"{{:.{digits}f}}"
        return [
            fmt.format(self.mean * unit_scale),
            fmt.format(self.std * unit_scale),
            f"[{fmt.format(self.ci_low * unit_scale)}, {fmt.format(self.ci_high * unit_scale)}]",
        ]


def measure_repeated(fn: Callable[[], object], repeats: int) -> list[float]:
    """Wall-clock seconds of ``repeats`` calls to ``fn``."""
    import time

    if repeats < 1:
        raise ReproError("repeats must be >= 1")
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return samples


def measure_simulated(
    fn: Callable[[], object], clock: SimClock, repeats: int
) -> list[float]:
    """Simulated seconds (real + modeled SGX overhead) per call.

    This is the measurement that reproduces the paper's inside-SGX columns:
    wall time alone cannot see the modeled enclave costs.
    """
    import time

    if repeats < 1:
        raise ReproError("repeats must be >= 1")
    samples = []
    for _ in range(repeats):
        overhead_before = clock.overhead_s
        start = time.perf_counter()
        fn()
        real = time.perf_counter() - start
        samples.append(real + clock.overhead_s - overhead_before)
    return samples
