"""Execute a compiled inference graph on a live pipeline object.

The executor walks the linear node chain and emits exactly the stage
spans the pre-IR pipelines emitted, so traces, metrics, and op tallies
stay comparable across optimizer levels.  Every rewrite the passes may
have applied has a reference fallback here, and the reference ("off")
walk reproduces the original layer-by-layer execution op for op — that
is what makes the differential equivalence suite meaningful.

Bit-identity notes per rewrite:

* ``keep_taps`` / ``fold_bias`` ride into :mod:`repro.core.heops` via
  :class:`repro.core.heops.LayerPlan`; the fused kernels apply them only
  where they are exact (see heops).
* ``packed`` crossings flatten the whole feature-map tensor and fold
  runs of ``chunk`` values into polynomial coefficients
  (:func:`repro.he.batching.pack_coefficients`, RNG-free) before one
  ``activation_pool_packed`` ECALL whose trusted side re-encrypts the
  same values with the same per-element RNG draws as the unpacked ECALL,
  so the post-crossing ciphertext bytes are identical.
* ``hoist_coeff`` squares via one shared coefficient-domain transform
  (``Ciphertext.to_coeff`` returns the argument when already
  transformed), saving an INTT without changing a single residue.
* ``scalar_encrypt`` uses :meth:`repro.he.encryptor.Encryptor.encrypt_scalar`
  (same RNG draws, same arithmetic on scalar encodings).
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.core import heops
from repro.errors import PipelineError
from repro.graph import ir, optimizer
from repro.he.batching import pack_coefficients
from repro.he.context import Ciphertext
from repro.he.decryptor import decrypt_scalar_values
from repro.he.evaluator import Evaluator


def compiled_for(pipe, kind: str, mode: str = "batched"):
    """Return (graph, report) for ``pipe``, cached until the optimizer
    configuration changes."""
    key = optimizer.cache_key()
    cached = getattr(pipe, "_graph_cache", None)
    if cached is not None and cached[0] == key:
        return cached[1], cached[2]
    if kind == "hybrid":
        graph = ir.build_hybrid_graph(pipe.quantized, pipe.context.params, mode=mode)
    elif kind == "cryptonets":
        graph = ir.build_cryptonets_graph(pipe.quantized, pipe.context.params)
    else:
        raise PipelineError(f"unknown graph kind {kind!r}")
    compiled, report = optimizer.compile_graph(graph)
    pipe._graph_cache = (key, compiled, report)
    return compiled, report


def _layer_plan(node: ir.GraphNode) -> heops.LayerPlan | None:
    keep = node.attrs.get("keep_taps")
    fold = bool(node.attrs.get("fold_bias"))
    if keep is None and not fold:
        return None
    return heops.LayerPlan(keep_taps=keep, fold_bias=fold)


def _encrypt(pipe, node: ir.GraphNode, images: np.ndarray):
    pixels = pipe.quantized.quantize_images(images)
    plain = pipe.encoder.encode(pixels)
    if node.attrs.get("scalar_encrypt"):
        return pipe.encryptor.encrypt_scalar(plain)
    return pipe.encryptor.encrypt(plain)


def _crossing(pipe, node: ir.GraphNode, conv):
    q = pipe.quantized
    shape = conv.batch_shape
    total = int(np.prod(shape)) if shape else 0
    cap = int(node.attrs.get("pack_max_batch", 0))
    if not node.attrs.get("packed") or cap < 2 or total < 2:
        return pipe._activation_pool(conv)
    # Physical packing work is accounted by the simulated clock, not the
    # logical op tally (same convention as the SIMD scheduler's packing).
    pack_evaluator = getattr(pipe, "_graph_pack_evaluator", None)
    if pack_evaluator is None:
        pack_evaluator = Evaluator(pipe.context)
        pipe._graph_pack_evaluator = pack_evaluator
    cache = None
    if node.attrs.get("hoist_pack_operand"):
        cache = getattr(pipe, "_graph_pack_cache", None)
        if cache is None:
            cache = {}
            pipe._graph_pack_cache = cache
    # Flatten the whole feature-map tensor and fold runs of ``chunk``
    # values into single ciphertexts' coefficients: ciphertext ``j``
    # carries flat values ``j * chunk ..`` (tail ciphertext shorter).
    tail = conv.data.shape[-3:]
    flat = conv.data.reshape(total, *tail)
    chunk = min(cap, conv.context.poly_degree, total)
    full, remainder = divmod(total, chunk)
    parts = []
    if full:
        main = np.ascontiguousarray(
            np.moveaxis(flat[: full * chunk].reshape(full, chunk, *tail), 1, 0)
        )
        packed = pack_coefficients(
            pack_evaluator,
            Ciphertext(conv.context, main, is_ntt=True),
            operand_cache=cache,
        )
        parts.append(packed.data)
    if remainder:
        packed = pack_coefficients(
            pack_evaluator,
            Ciphertext(conv.context, flat[full * chunk :], is_ntt=True),
            operand_cache=cache,
        )
        parts.append(packed.data.reshape(1, *tail))
    payload = Ciphertext(
        conv.context,
        parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0),
        is_ntt=True,
    )
    return pipe.enclave.ecall(
        "activation_pool_packed",
        payload,
        tuple(int(s) for s in shape),
        chunk,
        q.conv_output_scale,
        q.act_scale,
        q.pool_window,
        pipe.activation,
        q.pool,
    )


@contextmanager
def _node_stage(stage, node: ir.GraphNode):
    """Open the node's stage span and stamp its graph identity onto it.

    The stamped attrs are what :mod:`repro.obs.profile` keys measured
    costs by: the full node signature (op + stage + level + noise
    annotations + rewrite knobs), so two optimizer configurations of the
    same stage profile as distinct nodes.
    """
    with stage(node.stage) as span:
        span.attrs["node_signature"] = str(node.signature())
        span.attrs["node_op"] = node.op
        span.attrs["node_level"] = node.level
        span.attrs["node_headroom_bits"] = float(node.budget_bits)
        yield span


def run(pipe, graph: ir.InferenceGraph, images: np.ndarray):
    """Walk ``graph`` on ``pipe``; returns ``(logits, budget, logits_ct)``."""
    stage = pipe._stage if hasattr(pipe, "_stage") else pipe.tracer.stage
    value = None
    logits = None
    logits_ct = None
    budget = None
    for node in graph.nodes:
        if node.op == "encrypt":
            with _node_stage(stage, node):
                value = _encrypt(pipe, node, images)
        elif node.op == "conv":
            with _node_stage(stage, node):
                value = heops.he_conv2d(
                    pipe.evaluator,
                    pipe.encoder,
                    value,
                    pipe.conv_weights,
                    plan=_layer_plan(node),
                )
        elif node.op == "crossing":
            # The stage span measures host wall time *exclusively*, so the
            # per-pixel mode's slicing/reassembly around its ECALLs is
            # charged here without double-counting the in-enclave compute.
            with _node_stage(stage, node):
                value = _crossing(pipe, node, value)
        elif node.op == "square":
            with _node_stage(stage, node):
                if node.attrs.get("hoist_coeff"):
                    hoisted = value.to_coeff()
                    value = pipe.evaluator.multiply(hoisted, hoisted)
                else:
                    value = heops.he_square(pipe.evaluator, value)
        elif node.op == "relinearize":
            with _node_stage(stage, node):
                value = pipe.evaluator.relinearize(value, pipe._relin_keys)
        elif node.op == "pool":
            with _node_stage(stage, node):
                value = heops.he_scaled_mean_pool(
                    pipe.evaluator, value, pipe.quantized.pool_window
                )
        elif node.op == "fc":
            with _node_stage(stage, node):
                value = heops.he_dense(
                    pipe.evaluator,
                    pipe.encoder,
                    value,
                    pipe.dense_weights,
                    plan=_layer_plan(node),
                )
            logits_ct = value
        elif node.op == "decrypt":
            budget = pipe.decryptor.invariant_noise_budget(logits_ct)
            with _node_stage(stage, node) as span:
                span.attrs["noise_budget_bits"] = float(budget)
                logits = decrypt_scalar_values(pipe.decryptor, pipe.encoder, logits_ct)
        else:
            raise PipelineError(f"graph executor cannot run node {node.op!r}")
    return logits, budget, logits_ct
