"""Inference-graph IR over ``repro.core.heops``.

The paper's pipelines are short linear chains, so the IR is deliberately
small: a list of :class:`GraphNode` objects (encrypt, conv, enclave
crossing, square/relinearize/pool, fc, decrypt) plus a ``meta`` dict
holding the model-derived constants every pass needs (tap matrices, weight
norms, the plaintext bound, the largest coefficient prime).  Edges are
implicit — node ``i`` feeds node ``i + 1`` — and each node carries the
multiplicative level plus noise annotations (:func:`annotate`) derived
from :class:`repro.he.noise.NoiseEstimator`, which is what lets passes
reason about headroom (e.g. how many coefficients a packed crossing may
fold) without touching ciphertexts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import PipelineError
from repro.he.noise import NoiseEstimator
from repro.he.params import EncryptionParams


@dataclass
class GraphNode:
    """One operation in the linear inference chain.

    Attributes:
        op: semantic opcode (``encrypt``/``conv``/``crossing``/``square``/
            ``relinearize``/``pool``/``fc``/``decrypt``).
        stage: trace stage name the executor emits for this node (kept
            equal to the pre-IR pipelines so traces stay comparable).
        attrs: pass-owned rewrite knobs; every knob defaults to the
            reference (do-nothing) behaviour.
        level: multiplicative depth entering the *output* of this node.
        budget_bits: estimated invariant-noise budget after this node.
        noise_cost_bits: estimated budget this node consumes.
    """

    op: str
    stage: str
    attrs: dict[str, Any] = field(default_factory=dict)
    level: int = 0
    budget_bits: float = 0.0
    noise_cost_bits: float = 0.0

    def clone(self) -> "GraphNode":
        return GraphNode(
            self.op,
            self.stage,
            dict(self.attrs),
            self.level,
            self.budget_bits,
            self.noise_cost_bits,
        )

    def signature(self) -> tuple:
        """Hashable fingerprint used by the idempotence property tests."""
        return (
            self.op,
            self.stage,
            self.level,
            round(self.budget_bits, 6),
            round(self.noise_cost_bits, 6),
            tuple(sorted(self.attrs.items())),
        )


@dataclass
class InferenceGraph:
    """A linear chain of :class:`GraphNode` plus model metadata."""

    kind: str
    params: EncryptionParams
    nodes: list[GraphNode]
    meta: dict[str, Any]

    def clone(self) -> "InferenceGraph":
        return InferenceGraph(
            self.kind,
            self.params,
            [node.clone() for node in self.nodes],
            dict(self.meta),
        )

    def node(self, op: str) -> GraphNode:
        for node in self.nodes:
            if node.op == op:
                return node
        raise PipelineError(f"graph has no {op!r} node")

    def has_node(self, op: str) -> bool:
        return any(node.op == op for node in self.nodes)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def he_noise_consumption(self) -> float:
        """Total estimated budget (bits) the HE compute nodes consume."""
        return float(sum(node.noise_cost_bits for node in self.nodes))

    def signature(self) -> tuple:
        advice = self.meta.get("parameter_advice")
        return (
            self.kind,
            self.params.name,
            tuple(node.signature() for node in self.nodes),
            advice,
        )


def node_noise_cost(node: GraphNode, graph: InferenceGraph, estimator: NoiseEstimator) -> float:
    """Estimated budget cost of one node, honouring pass rewrites.

    Matches :meth:`NoiseEstimator.layer_headroom`'s per-layer convention:
    a contraction costs one plaintext multiply at the layer's weight norm
    plus the additions over its (surviving) fan-in.
    """
    meta = graph.meta
    if node.op == "conv":
        keep = node.attrs.get("keep_taps")
        terms = len(keep) if keep is not None else meta["conv_taps"]
        return estimator.plain_multiply_cost(meta["conv_norm"]) + estimator.add_cost(
            max(1, terms)
        )
    if node.op == "fc":
        keep = node.attrs.get("keep_taps")
        terms = len(keep) if keep is not None else meta["fc_terms"]
        return estimator.plain_multiply_cost(meta["fc_norm"]) + estimator.add_cost(
            max(1, terms)
        )
    if node.op == "square":
        return estimator.multiply_cost()
    if node.op == "relinearize":
        return estimator.relinearize_cost()
    if node.op == "pool":
        return estimator.add_cost(meta["pool_window"] ** 2)
    return 0.0


def annotate(graph: InferenceGraph) -> InferenceGraph:
    """(Re)derive level and noise annotations for every node.

    Deterministic in the node attrs + meta, so passes call this after a
    rewrite instead of hand-patching budgets; running it twice is a no-op,
    which is what makes pass idempotence cheap to guarantee.
    """
    estimator = NoiseEstimator(graph.params)
    fresh = estimator.fresh_budget()
    budget = fresh
    level = 0
    for node in graph.nodes:
        if node.op in ("encrypt", "crossing"):
            # A fresh encryption -- and the enclave's re-encrypt on the
            # trusted side of the crossing -- resets the noise budget.
            budget = fresh
            node.noise_cost_bits = 0.0
        elif node.op == "decrypt":
            node.noise_cost_bits = 0.0
        else:
            cost = node_noise_cost(node, graph, estimator)
            node.noise_cost_bits = cost
            budget -= cost
            if node.op == "square":
                level += 1
        node.budget_bits = budget
        node.level = level
    return graph


def _model_meta(quantized, params: EncryptionParams) -> dict[str, Any]:
    conv = np.asarray(quantized.conv_weight, dtype=np.int64)
    dense = np.asarray(quantized.dense_weight, dtype=np.int64)
    filters = conv.shape[0]
    tap_matrix = conv.reshape(filters, -1)
    return {
        "activation": quantized.activation,
        "pool": quantized.pool,
        "pool_window": int(quantized.pool_window),
        "conv_tap_matrix": tap_matrix,
        "fc_matrix": dense,
        "conv_taps": int(tap_matrix.shape[1]),
        "fc_terms": int(dense.shape[0]),
        "conv_norm": float(max(1, np.abs(conv).max())),
        "fc_norm": float(max(1, np.abs(dense).max())),
        "p_max": int(max(params.coeff_primes)),
        "plain_bound": int(quantized.required_plain_modulus()),
        "pure_he": quantized.activation == "square",
        "parameter_advice": None,
    }


def build_hybrid_graph(quantized, params: EncryptionParams, mode: str = "batched") -> InferenceGraph:
    """IR for the paper's EncryptSGX pipeline (conv -> enclave -> fc)."""
    meta = _model_meta(quantized, params)
    meta["mode"] = mode
    nodes = [
        GraphNode("encrypt", "encrypt", {"scalar_encrypt": False}),
        GraphNode("conv", "conv", {"keep_taps": None, "fold_bias": False}),
        GraphNode(
            "crossing",
            "sgx_activation_pool",
            {"packed": False, "pack_max_batch": 0, "hoist_pack_operand": False},
        ),
        GraphNode("fc", "fc", {"keep_taps": None, "fold_bias": False}),
        GraphNode("decrypt", "decrypt"),
    ]
    return annotate(InferenceGraph("hybrid", params, nodes, meta))


def build_cryptonets_graph(quantized, params: EncryptionParams) -> InferenceGraph:
    """IR for the pure-HE CryptoNets pipeline (square activation)."""
    meta = _model_meta(quantized, params)
    meta["mode"] = "batched"
    nodes = [
        GraphNode("encrypt", "encrypt", {"scalar_encrypt": False}),
        GraphNode("conv", "conv", {"keep_taps": None, "fold_bias": False}),
        GraphNode("square", "square", {"hoist_coeff": False}),
        GraphNode("relinearize", "relinearize"),
        GraphNode("pool", "pool"),
        GraphNode("fc", "fc", {"keep_taps": None, "fold_bias": False}),
        GraphNode("decrypt", "decrypt"),
    ]
    return annotate(InferenceGraph("cryptonets", params, nodes, meta))
