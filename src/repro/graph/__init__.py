"""Graph-level HE optimizer (nGraph-HE2 direction).

``repro.graph`` compiles the paper's fixed layer-by-layer pipelines into a
small inference-graph IR annotated with multiplicative levels and noise
budgets from :class:`repro.he.noise.NoiseEstimator`, rewrites the graph
through a pass pipeline (plaintext bypass of zero operands, bias folding
into the fused contractions, enclave-crossing coefficient packing, shared
NTT hoisting, scalar-encoding encrypt, depth-aware FV parameter advice),
and executes the compiled graph bit-identically to the unoptimized
reference — the same contract the FUSED/REFERENCE kernel split enforces.

Modules:
    ir: the :class:`InferenceGraph` IR and the hybrid/CryptoNets builders.
    passes: the rewrite passes and their refusal conditions.
    optimizer: level configuration (off/safe/aggressive, ``REPRO_GRAPH_OPT``),
        the compiler with fault-site degradation, and compile reports.
    executor: runs a compiled graph on a live pipeline object.
"""

from repro.graph.ir import (
    GraphNode,
    InferenceGraph,
    build_cryptonets_graph,
    build_hybrid_graph,
)
from repro.graph.optimizer import (
    LEVELS,
    PASS_PORTFOLIO,
    CompileReport,
    active_level,
    compile_graph,
    configure,
    use,
)

__all__ = [
    "GraphNode",
    "InferenceGraph",
    "build_cryptonets_graph",
    "build_hybrid_graph",
    "LEVELS",
    "PASS_PORTFOLIO",
    "CompileReport",
    "active_level",
    "compile_graph",
    "configure",
    "use",
]
