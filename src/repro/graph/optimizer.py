"""Graph-optimizer configuration and compiler.

Mirrors the FUSED/REFERENCE switch in :mod:`repro.he.kernels`: a
process-wide level (``off``/``safe``/``aggressive``), an env override
(``REPRO_GRAPH_OPT``), a ``use()`` context manager for tests, a one-hot
gauge recording the active level, and — the part the kernel layer does
not need — graceful degradation: a pass that raises mid-compile (the
``graph.pass`` fault site) discards the partially rewritten graph and
falls back to the unoptimized reference graph, counted by the
``repro_graph_degradations_total`` metric.  Execution of a degraded
compile is bit-identical to the optimized one, because every pass is
bit-exact by contract.

Levels:
    off: no passes; the compiled graph is the reference graph.
    safe: zero_tap, fold_bias, pack_crossing, hoist_ntt, scalar_encrypt
        with an 8-bit noise margin on budget-sensitive rewrites.
    aggressive: safe's passes at a 0-bit margin (packing folds larger
        batches) plus advisory select_parameters.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import GraphPassError, PipelineError
from repro.graph import ir
from repro.graph import passes as graph_passes
from repro.obs import recorder

LEVELS: tuple[str, ...] = ("off", "safe", "aggressive")

PASS_PORTFOLIO: dict[str, tuple[str, ...]] = {
    "off": (),
    "safe": ("zero_tap", "fold_bias", "pack_crossing", "hoist_ntt", "scalar_encrypt"),
    "aggressive": (
        "zero_tap",
        "fold_bias",
        "pack_crossing",
        "hoist_ntt",
        "scalar_encrypt",
        "select_parameters",
    ),
}

FAULT_SITE = "graph.pass"

_ENV_LEVEL = "REPRO_GRAPH_OPT"

_active_level: str | None = None
_active_passes: tuple[str, ...] | None = None


def default_level() -> str:
    """Level implied by ``REPRO_GRAPH_OPT`` (off when unset or invalid)."""
    raw = os.environ.get(_ENV_LEVEL, "").strip().lower()
    return raw if raw in LEVELS else "off"


def active_level() -> str:
    return _active_level if _active_level is not None else default_level()


def active_passes() -> tuple[str, ...]:
    if _active_passes is not None:
        return _active_passes
    return PASS_PORTFOLIO[active_level()]


def margin_bits_for(level: str) -> float:
    return 0.0 if level == "aggressive" else 8.0


def configure(
    level: str | None, passes: tuple[str, ...] | None = None
) -> tuple[str | None, tuple[str, ...] | None]:
    """Install a level (and optionally an explicit pass selection)
    process-wide; ``None`` restores the env-derived default.  Returns the
    previous ``(level, passes)`` pair for restoring."""
    global _active_level, _active_passes
    if level is not None and level not in LEVELS:
        raise PipelineError(
            f"graph optimizer level must be one of {LEVELS}, got {level!r}"
        )
    if passes is not None:
        unknown = sorted(set(passes) - set(graph_passes.PASSES))
        if unknown:
            raise PipelineError(f"unknown graph passes {unknown}")
    previous = (_active_level, _active_passes)
    _active_level = level
    _active_passes = tuple(passes) if passes is not None else None
    record_active_level()
    return previous


def _restore(previous: tuple[str | None, tuple[str, ...] | None]) -> None:
    global _active_level, _active_passes
    _active_level, _active_passes = previous
    record_active_level()


@contextmanager
def use(level: str | None, passes: tuple[str, ...] | None = None):
    """Temporarily install a level / pass selection (tests, benches)."""
    previous = configure(level, passes)
    try:
        yield
    finally:
        _restore(previous)


def cache_key() -> tuple[str, tuple[str, ...]]:
    """Key pipelines use to invalidate their compiled-graph cache."""
    return (active_level(), active_passes())


def record_active_level() -> None:
    """One-hot gauge of the active level (matches the kernel-profile gauge)."""
    from repro.obs import metrics

    registry = metrics.registry()
    if not registry.enabled:
        return
    gauge = registry.gauge(
        "repro_graph_opt_level",
        "Active graph-optimizer level (one-hot).",
        ("level",),
    )
    current = active_level()
    for level in LEVELS:
        gauge.labels(level=level).set(1.0 if level == current else 0.0)


def _record_degradation(pass_name: str | None) -> None:
    from repro.obs import metrics

    registry = metrics.registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_graph_degradations_total",
        "Graph compilations degraded to the unoptimized reference graph "
        "after a pass failure.",
        ("graph_pass",),
    ).labels(graph_pass=pass_name or "unknown").inc()


@dataclass(frozen=True)
class CompileReport:
    """What the compiler did to one graph."""

    level: str
    requested: tuple[str, ...]
    applied: tuple[str, ...] = ()
    refused: tuple[tuple[str, str], ...] = ()
    degraded: bool = False
    failure: str | None = None
    parameter_advice: object = None
    #: Measured evidence attached after the fact by :meth:`cite` -- not
    #: part of the compile's identity, hence excluded from comparisons.
    measured: dict | None = field(default=None, compare=False)

    @property
    def label(self) -> str:
        return f"{self.level}:degraded" if self.degraded else self.level

    def refusal(self, name: str) -> str | None:
        return dict(self.refused).get(name)

    def cite(self, profile, baseline=None) -> "CompileReport":
        """Attach measured per-op costs (and savings vs a baseline run).

        ``profile`` is a :class:`repro.obs.profile.ProfileReport` from
        executions of this compile; ``baseline`` one from the reference
        (``off``) compile.  The report then quotes *measured* savings
        instead of the passes' estimated noise-cost arithmetic.  Mutates
        in place (``object.__setattr__`` -- the report is frozen) and
        returns ``self`` for chaining.
        """
        evidence = {
            "pipelines": profile.pipelines,
            "per_op_elapsed_s": {
                op: agg["elapsed_s"] / profile.pipelines
                for op, agg in profile.per_op().items()
            },
            "coverage": profile.coverage(),
        }
        if baseline is not None:
            evidence["savings_vs_reference_s"] = profile.savings_vs(baseline)
        object.__setattr__(self, "measured", evidence)
        return self


def compile_graph(
    graph: ir.InferenceGraph,
    level: str | None = None,
    passes: tuple[str, ...] | None = None,
) -> tuple[ir.InferenceGraph, CompileReport]:
    """Compile ``graph``: clone, run the selected passes, report.

    The input graph is never mutated.  The selection (explicit ``passes``
    or the level's portfolio) picks *which* passes run; sequencing always
    follows :data:`repro.graph.passes.PASS_ORDER` so compilation is
    order-independent and idempotent.  Any exception from a pass degrades
    the compile to the reference graph.
    """
    resolved_level = active_level() if level is None else level
    if resolved_level not in LEVELS:
        raise PipelineError(
            f"graph optimizer level must be one of {LEVELS}, got {resolved_level!r}"
        )
    if passes is not None:
        selected = set(passes)
    elif level is None:
        selected = set(active_passes())
    else:
        selected = set(PASS_PORTFOLIO[resolved_level])
    unknown = sorted(selected - set(graph_passes.PASSES))
    if unknown:
        raise PipelineError(f"unknown graph passes {unknown}")
    names = tuple(sorted(selected, key=graph_passes.PASS_ORDER.index))
    if not names:
        return graph.clone(), CompileReport(level=resolved_level, requested=())

    from repro import faults

    margin = margin_bits_for(resolved_level)
    optimized = graph.clone()
    applied: list[str] = []
    refused: list[tuple[str, str]] = []
    current: str | None = None
    try:
        for name in names:
            current = name
            graph_pass = graph_passes.build(name, margin_bits=margin)
            faults.inject(FAULT_SITE, GraphPassError, name=name)
            reason = graph_pass.run(optimized)
            if reason is None:
                applied.append(name)
            else:
                refused.append((name, reason))
                recorder.record(
                    "graph.pass_refused",
                    graph_pass=name,
                    level=resolved_level,
                    reason=reason,
                )
    except Exception as exc:  # degrade: reference graph, bit-identical
        _record_degradation(current)
        recorder.record(
            "graph.degraded",
            severity="error",
            graph_pass=current,
            level=resolved_level,
            error=str(exc),
        )
        return graph.clone(), CompileReport(
            level=resolved_level,
            requested=names,
            degraded=True,
            failure=f"{current}: {exc}",
        )
    return optimized, CompileReport(
        level=resolved_level,
        requested=names,
        applied=tuple(applied),
        refused=tuple(refused),
        parameter_advice=optimized.meta.get("parameter_advice"),
    )
