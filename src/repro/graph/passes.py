"""Rewrite passes for the inference-graph IR.

Every pass follows the same contract:

* ``run(graph)`` mutates the graph in place and returns ``None`` when it
  fired, or a human-readable *refusal reason* when its preconditions do
  not hold.  Refusing is the normal path, not an error — e.g.
  ``fold_bias`` refuses whenever the int64 deferred-reduction slack of the
  fused scalar contraction cannot absorb one extra residue term, because
  firing would silently push the runtime off the fast path.
* Passes only rewrite ``attrs`` (and re-run :func:`repro.graph.ir.annotate`
  when a rewrite changes noise behaviour); the executor owns the actual
  ciphertext work.  Each rewrite is exact — the optimized execution must
  stay bit-identical to the reference graph — so a pass that can only
  *approximately* preserve results must refuse instead.
* Passes are idempotent: running one twice leaves the graph unchanged.

``select_parameters`` is advisory: it records the smallest ``(n, q)``
that fits the graph's measured noise consumption in
``meta["parameter_advice"]`` rather than re-keying the live pipeline,
because swapping parameters mid-flight would (by design) break byte
identity with the reference execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphPassError, ParameterError
from repro.graph import ir
from repro.he import modmath
from repro.he.noise import NoiseEstimator
from repro.he.params import EncryptionParams

_INT64_MAX = np.iinfo(np.int64).max
_PRIME_BITS = 30
_SELECT_DEGREES = (256, 512, 1024, 2048, 4096)
_SELECT_MARGIN_BITS = 8.0
_MAX_SELECT_PRIMES = 12


@dataclass(frozen=True)
class GraphPass:
    """Base pass; ``margin_bits`` is the safety margin noise-sensitive
    rewrites must leave untouched (8.0 at ``safe``, 0.0 at ``aggressive``)."""

    margin_bits: float = 8.0

    name = "abstract"

    def run(self, graph: ir.InferenceGraph) -> str | None:
        raise NotImplementedError


def _fold_slack_ok(weights: np.ndarray, p_max: int) -> bool:
    """Mirror of ``repro.core.heops._scalar_tap_bound_ok`` with ``slack=1``:
    can the deferred-reduction accumulator absorb one extra canonical
    residue term (the folded bias) without overflowing int64?"""
    if weights.size == 0:
        return False
    terms = weights.shape[-1]
    w_max = int(np.abs(weights).max())
    return (terms * w_max + 1) * (p_max - 1) <= _INT64_MAX


class ZeroTapBypass(GraphPass):
    """Plaintext bypass for known-zero operands.

    Drops conv taps whose weight column is zero across every filter and FC
    input dimensions whose weight row is zero across every class: a
    zero-weight plaintext multiply contributes exactly zero to the fused
    accumulator, so skipping it is exact.  (The identity-operand case is
    degenerate here — a tap of weight 1 is already a single fused int64
    multiply-accumulate, so there is nothing cheaper to rewrite it to.)
    """

    name = "zero_tap"

    def run(self, graph: ir.InferenceGraph) -> str | None:
        fired = False
        conv = graph.node("conv")
        taps = graph.meta["conv_tap_matrix"]
        keep = tuple(int(t) for t in range(taps.shape[1]) if np.any(taps[:, t]))
        if len(keep) < taps.shape[1]:
            conv.attrs["keep_taps"] = keep
            fired = True
        fc = graph.node("fc")
        fc_matrix = graph.meta["fc_matrix"]
        keep_fc = tuple(int(d) for d in range(fc_matrix.shape[0]) if np.any(fc_matrix[d]))
        if len(keep_fc) < fc_matrix.shape[0]:
            fc.attrs["keep_taps"] = keep_fc
            fired = True
        if not fired:
            return "no zero-weight conv taps or FC input dims to bypass"
        ir.annotate(graph)
        return None


class FoldBias(GraphPass):
    """Fold the encoded bias operand into the fused contraction.

    The reference path runs the contraction, reduces mod each prime, then
    performs a separate ``add_plain_operand``.  Folding adds the bias's
    NTT residues into the still-unreduced int64 accumulator instead,
    saving one full pass over the ciphertext.  Exact because
    ``(acc + bias) mod p == (acc mod p + bias) mod p``; refuses when the
    int64 slack bound cannot absorb the extra canonical residue term,
    since firing would push the runtime off the scalar fast path.
    """

    name = "fold_bias"

    def run(self, graph: ir.InferenceGraph) -> str | None:
        p_max = graph.meta["p_max"]
        fired = False
        refused = []
        conv = graph.node("conv")
        taps = graph.meta["conv_tap_matrix"]
        keep = conv.attrs.get("keep_taps")
        cols = taps[:, list(keep)] if keep is not None else taps
        if _fold_slack_ok(cols, p_max):
            conv.attrs["fold_bias"] = True
            fired = True
        else:
            refused.append("conv")
        fc = graph.node("fc")
        fc_matrix = graph.meta["fc_matrix"]
        keep_fc = fc.attrs.get("keep_taps")
        rows = fc_matrix[list(keep_fc), :] if keep_fc is not None else fc_matrix
        if _fold_slack_ok(rows.T, p_max):
            fc.attrs["fold_bias"] = True
            fired = True
        else:
            refused.append("fc")
        if not fired:
            return (
                "int64 deferred-reduction slack excludes bias folding "
                f"({', '.join(refused)})"
            )
        return None


class PackCrossing(GraphPass):
    """Fold the flattened feature-map tensor into polynomial coefficients
    at the enclave crossing: runs of up to ``pack_max_batch`` values share
    one ciphertext, shrinking the inbound crossing payload (bytes crossed
    and trusted-side decrypts) from one ciphertext per value to
    ``ceil(N / chunk)`` ciphertexts.

    Packing costs up to ``log2(chunk)`` bits of noise budget (the monomial
    shift-and-sum), so the pass caps ``chunk`` at what the conv layer's
    remaining budget can absorb above ``margin_bits`` (and at the ring
    degree) and refuses when even ``chunk = 2`` does not fit.  Also refuses
    for pure-HE graphs (no crossing) and the per-pixel negative control
    (each crossing carries a single value; there is nothing to fold).
    """

    name = "pack_crossing"

    def run(self, graph: ir.InferenceGraph) -> str | None:
        if not graph.has_node("crossing"):
            return "no enclave crossing to pack in a pure-HE graph"
        if graph.meta.get("mode") == "per_pixel":
            return "per-pixel crossings carry one value each; nothing to fold"
        conv = graph.node("conv")
        crossing = graph.node("crossing")
        headroom = conv.budget_bits - self.margin_bits
        cap = int(min(graph.params.poly_degree, 2.0 ** min(max(headroom, 0.0), 30.0)))
        if cap < 2:
            return (
                f"conv leaves {conv.budget_bits:.1f} budget bits; packing needs "
                f"log2(B) above the {self.margin_bits:.1f}-bit margin"
            )
        crossing.attrs["packed"] = True
        crossing.attrs["pack_max_batch"] = cap
        return None


class HoistNtt(GraphPass):
    """Hoist shared NTT-domain transforms out of repeated work.

    CryptoNets: ``square`` multiplies a ciphertext by itself, and the
    evaluator INTTs each operand independently — hoisting the coefficient
    transform computes it once and feeds both operand slots (exact: the
    transform of the same data is the same data).  Hybrid: the packed
    crossing rebuilds the same monomial packing operand (an NTT of a
    constant matrix) every inference — hoisting caches the transformed
    operand across calls; refuses when ``pack_crossing`` did not fire
    because the unpacked crossing performs no shared transform.
    """

    name = "hoist_ntt"

    def run(self, graph: ir.InferenceGraph) -> str | None:
        if graph.has_node("square"):
            graph.node("square").attrs["hoist_coeff"] = True
            return None
        crossing = graph.node("crossing")
        if not crossing.attrs.get("packed"):
            return "pack_crossing did not fire; no shared packing transform to hoist"
        crossing.attrs["hoist_pack_operand"] = True
        return None


class ScalarEncrypt(GraphPass):
    """Use the scalar-encoding encrypt fast path.

    Both pipelines scalar-encode inputs (only the constant coefficient is
    populated), so ``Delta * m`` touches one residue column instead of all
    ``n`` — same RNG draws, same arithmetic, bit-identical ciphertexts.
    The runtime re-checks the encoding and falls back to the full path for
    any plaintext with higher-degree coefficients.
    """

    name = "scalar_encrypt"

    def run(self, graph: ir.InferenceGraph) -> str | None:
        graph.node("encrypt").attrs["scalar_encrypt"] = True
        return None


class SelectParameters(GraphPass):
    """Depth-aware automatic FV parameter selection (advisory).

    Scans ``(n, q)`` candidates smallest-first and records the first whose
    noise budget fits the graph's measured consumption with an 8-bit
    margin in ``meta["parameter_advice"]``.  Never rewrites the execution
    — re-keying would break byte identity with the reference graph — and
    refuses when no candidate fits.
    """

    name = "select_parameters"

    def run(self, graph: ir.InferenceGraph) -> str | None:
        advice = select_parameters(graph)
        if advice is None:
            return "no (n, q) candidate clears the graph's measured noise consumption"
        graph.meta["parameter_advice"] = advice
        return None


def select_parameters(
    graph: ir.InferenceGraph, margin_bits: float = _SELECT_MARGIN_BITS
) -> EncryptionParams | None:
    """Smallest ``(n, q)`` whose budget fits the graph's consumption."""
    bound = graph.meta["plain_bound"]
    for degree in _SELECT_DEGREES:
        plain_modulus = _plain_modulus_for(bound, degree, graph.meta["pure_he"])
        if plain_modulus is None:
            continue
        for count in range(1, _MAX_SELECT_PRIMES + 1):
            try:
                primes = tuple(modmath.ntt_primes(_PRIME_BITS, degree, count))
                params = EncryptionParams(
                    poly_degree=degree,
                    coeff_primes=primes,
                    plain_modulus=plain_modulus,
                    name=f"graph_auto_n{degree}_k{count}",
                )
            except ParameterError:
                continue
            if _graph_fits(graph, NoiseEstimator(params), margin_bits):
                return params
    return None


def _plain_modulus_for(bound: int, degree: int, pure_he: bool) -> int | None:
    t = 1 << max(2, int(bound - 1).bit_length())
    if not pure_he:
        return t
    # Pure-HE squaring needs t to stay a power of two here too (the
    # pipelines scalar-encode), but give up if t would swamp the primes.
    return t if t < (1 << _PRIME_BITS) else None


def _graph_fits(graph: ir.InferenceGraph, estimator: NoiseEstimator, margin: float) -> bool:
    fresh = estimator.fresh_budget()
    worst = 0.0
    segment = 0.0
    for node in graph.nodes:
        if node.op in ("encrypt", "crossing"):
            # Fresh encryption on either side of the crossing resets noise,
            # so each HE segment must fit on its own.
            worst = max(worst, segment)
            segment = 0.0
        else:
            segment += ir.node_noise_cost(node, graph, estimator)
    worst = max(worst, segment)
    return fresh - worst >= margin


PASSES: dict[str, type[GraphPass]] = {
    ZeroTapBypass.name: ZeroTapBypass,
    FoldBias.name: FoldBias,
    PackCrossing.name: PackCrossing,
    HoistNtt.name: HoistNtt,
    ScalarEncrypt.name: ScalarEncrypt,
    SelectParameters.name: SelectParameters,
}

# Canonical execution order: selection only picks *which* passes run; the
# compiler always sequences them in dependency order (hoist_ntt reads
# pack_crossing's rewrite, fold_bias reads zero_tap's surviving taps) so
# that compilation is order-independent and idempotent.
PASS_ORDER: tuple[str, ...] = (
    ZeroTapBypass.name,
    FoldBias.name,
    PackCrossing.name,
    HoistNtt.name,
    ScalarEncrypt.name,
    SelectParameters.name,
)


def build(name: str, margin_bits: float) -> GraphPass:
    cls = PASSES.get(name)
    if cls is None:
        raise GraphPassError(f"unknown graph pass {name!r}")
    if name == SelectParameters.name:
        return cls(margin_bits=_SELECT_MARGIN_BITS)
    return cls(margin_bits=margin_bits)
