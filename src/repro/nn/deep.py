"""Deep (multi-block) quantized CNNs for the hybrid framework.

The paper evaluates a single conv block (Section VIII: "it is challenging
to build different and huge network architecture[s]") and the whole point
of the hybrid design is that it *removes* the depth barrier: every enclave
activation re-encrypts fresh ciphertexts, so the homomorphic noise
requirement is one linear layer deep no matter how many blocks the network
stacks.  This module generalizes :class:`repro.nn.quantize.QuantizedCNN` to
arbitrarily many ``conv -> activation -> pool`` blocks, letting
:class:`repro.core.deep.DeepHybridPipeline` demonstrate exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import (
    Conv2D,
    Dense,
    MaxPool2D,
    MeanPool2D,
    Sigmoid,
    Tanh,
    conv2d_forward,
)
from repro.nn.model import Sequential
from repro.nn.quantize import _quantize_array


@dataclass
class QuantizedConvBlock:
    """One integer conv -> exact activation -> pool block.

    Attributes:
        weight / bias: integer conv parameters (bias at conv-output scale).
        weight_scale: quantization scale of the weights.
        stride: conv stride.
        activation: "sigmoid" or "tanh" (enclave-exact, bounded).
        pool: "mean" or "max".
        pool_window: pooling window side.
        act_scale: requantization levels of the block output.
    """

    weight: np.ndarray
    bias: np.ndarray
    weight_scale: float
    stride: int
    activation: str
    pool: str
    pool_window: int
    act_scale: int

    def conv_stage(self, x_int: np.ndarray) -> np.ndarray:
        out = conv2d_forward(x_int, self.weight, None, self.stride)
        return out + self.bias.reshape(1, -1, 1, 1)

    def enclave_stage(self, conv_int: np.ndarray, input_scale: float) -> np.ndarray:
        """Exact activation + pool + requantize (trusted side of the block)."""
        x = conv_int.astype(np.float64) / (input_scale * self.weight_scale)
        activated = Tanh.apply(x) if self.activation == "tanh" else Sigmoid.apply(x)
        k = self.pool_window
        b, c, h, w = activated.shape
        windows = activated.reshape(b, c, h // k, k, w // k, k)
        pooled = windows.max(axis=(3, 5)) if self.pool == "max" else windows.mean(axis=(3, 5))
        return np.rint(pooled * self.act_scale).astype(np.int64)

    def conv_bound(self, input_bound: int) -> int:
        """Worst-case magnitude of the block's conv output."""
        taps = self.weight.shape[1] * self.weight.shape[-1] ** 2
        return taps * input_bound * int(np.abs(self.weight).max()) + int(
            np.abs(self.bias).max()
        )


@dataclass
class DeepQuantizedCNN:
    """Integer twin of a ``[conv -> act -> pool]*k -> dense`` network.

    Attributes:
        blocks: the quantized conv blocks, in order.
        dense_weight / dense_bias: integer FC parameters (bias at logit scale).
        dense_weight_scale: FC quantization scale.
        input_scale: pixel scaling of the first block's input.
    """

    blocks: list[QuantizedConvBlock]
    dense_weight: np.ndarray
    dense_bias: np.ndarray
    dense_weight_scale: float
    input_scale: int
    _block_list: list = field(default_factory=list, repr=False)

    @property
    def depth(self) -> int:
        return len(self.blocks)

    @classmethod
    def from_float(
        cls,
        model: Sequential,
        weight_bits: int = 6,
        input_scale: int = 255,
        act_scale: int = 63,
    ) -> "DeepQuantizedCNN":
        """Quantize a trained multi-block Sequential.

        The model must be ``(Conv2D, Sigmoid|Tanh, MeanPool2D|MaxPool2D)``
        repeated one or more times, followed by a single ``Dense``.
        """
        layers = list(model.layers)
        if not layers or not isinstance(layers[-1], Dense):
            raise ModelError("deep model must end with a Dense layer")
        dense = layers[-1]
        body = layers[:-1]
        if len(body) % 3 or not body:
            raise ModelError(
                "deep model body must be (Conv2D, activation, pool) blocks"
            )
        blocks = []
        for i in range(0, len(body), 3):
            conv, act, pool = body[i : i + 3]
            if not isinstance(conv, Conv2D):
                raise ModelError(f"layer {i} must be Conv2D, got {type(conv).__name__}")
            if not isinstance(act, (Sigmoid, Tanh)):
                raise ModelError(
                    f"layer {i + 1} must be a bounded exact activation "
                    f"(Sigmoid/Tanh), got {type(act).__name__}"
                )
            if not isinstance(pool, (MeanPool2D, MaxPool2D)):
                raise ModelError(
                    f"layer {i + 2} must be MeanPool2D or MaxPool2D, got "
                    f"{type(pool).__name__}"
                )
            w_int, w_scale = _quantize_array(conv.weight, weight_bits)
            in_scale = input_scale if i == 0 else act_scale
            blocks.append(
                QuantizedConvBlock(
                    weight=w_int,
                    bias=np.rint(conv.bias * w_scale * in_scale).astype(np.int64),
                    weight_scale=w_scale,
                    stride=conv.stride,
                    activation="tanh" if isinstance(act, Tanh) else "sigmoid",
                    pool="max" if isinstance(pool, MaxPool2D) else "mean",
                    pool_window=pool.window,
                    act_scale=act_scale,
                )
            )
        d_int, d_scale = _quantize_array(dense.weight, weight_bits)
        dense_bias = np.rint(dense.bias * d_scale * act_scale).astype(np.int64)
        return cls(
            blocks=blocks,
            dense_weight=d_int,
            dense_bias=dense_bias,
            dense_weight_scale=d_scale,
            input_scale=input_scale,
        )

    # ------------------------------------------------------------------
    def quantize_images(self, images: np.ndarray) -> np.ndarray:
        if images.dtype == np.uint8:
            scaled = images.astype(np.float64) / 255.0
        else:
            scaled = np.asarray(images, dtype=np.float64)
        return np.rint(scaled * self.input_scale).astype(np.int64)

    def block_input_scale(self, index: int) -> int:
        return self.input_scale if index == 0 else self.blocks[index - 1].act_scale

    def fc_stage(self, x_int: np.ndarray) -> np.ndarray:
        flat = x_int.reshape(x_int.shape[0], -1)
        return flat @ self.dense_weight + self.dense_bias

    def forward_int(self, images: np.ndarray) -> np.ndarray:
        """Exact integer logits -- the deep hybrid pipeline must match this."""
        x = self.quantize_images(images)
        for i, block in enumerate(self.blocks):
            conv = block.conv_stage(x)
            x = block.enclave_stage(conv, self.block_input_scale(i))
        return self.fc_stage(x)

    def predict(self, images: np.ndarray) -> np.ndarray:
        return self.forward_int(images).argmax(axis=1)

    def required_plain_modulus(self) -> int:
        """Depth-*independent* bound: the max over per-block conv outputs and
        the FC logits -- the hybrid's noise story never stacks blocks."""
        worst = 0
        for i, block in enumerate(self.blocks):
            worst = max(worst, block.conv_bound(self.block_input_scale(i)))
        fc_bound = (
            self.dense_weight.shape[0]
            * self.blocks[-1].act_scale
            * int(np.abs(self.dense_weight).max())
            + int(np.abs(self.dense_bias).max())
        )
        return 2 * max(worst, fc_bound) + 1

    def fits_plain_modulus(self, plain_modulus: int) -> bool:
        return plain_modulus >= self.required_plain_modulus()

    def noise_profile(self) -> tuple[bool, float, int]:
        """``(pure_he, plain_norm, additions)`` for parameter sizing.

        Never pure-HE (the deep pipeline exists because of the refresh), and
        the noise-relevant linear layer is the widest single block/FC.
        """
        norm = max(float(np.abs(b.weight).max()) for b in self.blocks)
        widest = max(
            max(b.weight.shape[1] * b.weight.shape[-1] ** 2 for b in self.blocks),
            self.dense_weight.shape[0],
        )
        return (False, max(1.0, norm), widest)


def deep_cnn(
    image_size: int,
    block_channels: tuple[int, ...] = (4, 8),
    kernel_size: int = 3,
    pool_window: int = 2,
    activation: str = "sigmoid",
    pool: str = "mean",
    rng: np.random.Generator | None = None,
) -> Sequential:
    """A multi-block CNN factory: ``[conv -> act -> pool]*k -> dense``.

    Raises:
        ModelError: if the spatial dimensions do not survive every block.
    """
    rng = rng if rng is not None else np.random.default_rng()
    activations = {"sigmoid": Sigmoid, "tanh": Tanh}
    pools = {"mean": MeanPool2D, "max": MaxPool2D}
    if activation not in activations or pool not in pools:
        raise ModelError(f"unsupported activation/pool: {activation}/{pool}")
    layers = []
    channels = 1
    size = image_size
    for out_channels in block_channels:
        conv_out = size - kernel_size + 1
        if conv_out < pool_window or conv_out % pool_window:
            raise ModelError(
                f"spatial size collapses at {size} -> {conv_out} with pool "
                f"{pool_window}; adjust image_size/kernel/blocks"
            )
        layers.append(Conv2D(channels, out_channels, kernel_size, rng=rng))
        layers.append(activations[activation]())
        layers.append(pools[pool](pool_window))
        channels = out_channels
        size = conv_out // pool_window
    layers.append(Dense(channels * size * size, 10, rng=rng))
    return Sequential(layers, input_shape=(1, image_size, image_size))
