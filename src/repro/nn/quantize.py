"""Fixed-point quantization bridging the float CNN and the HE pipelines.

FV works over integers mod ``t``, so the trained float model is quantized
CryptoNets-style: pixels and weights become scaled integers, and every
pipeline stage tracks the accumulated scale.  The quantized model exposes
*stage functions* (conv / enclave activation+pool / square / scaled-pool /
fully-connected) that the plaintext reference and both encrypted pipelines
share, which is what lets the tests assert bit-exact agreement between the
plaintext integer reference and the homomorphic execution.

Scale bookkeeping for the paper's CNN (Table VI):

* hybrid (sigmoid + mean-pool in the enclave)::

    pixels  x_int = x * input_scale
    conv    y_int = W1_int * x_int + b1_int        scale: input_scale * s1
    enclave y = sigmoid(y_int / (input_scale*s1)); pool; a_int = round(y * act_scale)
    fc      logits_int = W2_int * a_int + b2_int   scale: act_scale * s2

* CryptoNets baseline (square + scaled mean-pool, no enclave)::

    conv    y_int                                  scale: input_scale * s1
    square  y_int^2                                scale: (input_scale*s1)^2
    pool    window sum (magnified by window^2)
    fc      logits_int                             argmax-invariant scaling

``required_plain_modulus`` bounds the worst-case intermediate so parameter
sets can be validated before spending minutes on an encrypted run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import (
    Conv2D,
    Dense,
    MaxPool2D,
    MeanPool2D,
    ScaledMeanPool2D,
    Sigmoid,
    Square,
    Tanh,
)
from repro.nn.model import Sequential


def _quantize_array(values: np.ndarray, bits: int) -> tuple[np.ndarray, float]:
    """Symmetric linear quantization to ``bits``-bit signed integers."""
    limit = (1 << (bits - 1)) - 1
    peak = float(np.abs(values).max())
    if peak == 0.0:
        return np.zeros(values.shape, dtype=np.int64), 1.0
    scale = limit / peak
    return np.rint(values * scale).astype(np.int64), scale


@dataclass
class QuantizedCNN:
    """Integer twin of the paper's 4-layer CNN.

    Attributes:
        conv_weight / conv_bias: integer conv parameters; the bias is
            pre-scaled to the conv output scale.
        dense_weight / dense_bias: integer FC parameters, bias at logit scale.
        input_scale: pixel scaling (x_int = round(x_float * input_scale)).
        conv_weight_scale / dense_weight_scale: weight quantization scales.
        act_scale: requantization levels for the enclave's activation output.
        activation: "sigmoid" / "tanh" (hybrid / plaintext -- any bounded
            activation the enclave evaluates exactly) or "square"
            (CryptoNets, the only HE-computable choice).
        pool: "mean", "max" (both enclave-only) or "scaled_mean" (pure HE).
        pool_window: pooling window side.
        stride: conv stride.
    """

    conv_weight: np.ndarray
    conv_bias: np.ndarray
    dense_weight: np.ndarray
    dense_bias: np.ndarray
    input_scale: int
    conv_weight_scale: float
    dense_weight_scale: float
    act_scale: int
    activation: str
    pool: str
    pool_window: int
    stride: int = 1

    def __post_init__(self) -> None:
        if self.activation not in ("sigmoid", "tanh", "square"):
            raise ModelError(f"unsupported activation {self.activation!r}")
        if self.pool not in ("mean", "max", "scaled_mean"):
            raise ModelError(f"unsupported pool {self.pool!r}")
        if self.activation == "square" and self.pool != "scaled_mean":
            raise ModelError(
                "square activation implies the HE-only pipeline, which can "
                "neither divide nor compare: use pool='scaled_mean'"
            )
        if self.activation != "square" and self.pool == "scaled_mean":
            raise ModelError(
                "scaled_mean pooling is the HE substitute; the enclave "
                "pipelines use the true 'mean' or 'max' pool"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_float(
        cls,
        model: Sequential,
        weight_bits: int = 8,
        input_scale: int = 255,
        act_scale: int = 255,
    ) -> "QuantizedCNN":
        """Quantize a trained conv->activation->pool->dense Sequential.

        The activation/pool configuration is read off the model's layers, so
        a CryptoNets-style model (Square + ScaledMeanPool2D) quantizes into
        the pure-HE variant automatically.
        """
        conv, act, pool, dense = _destructure(model)
        conv_w, s1 = _quantize_array(conv.weight, weight_bits)
        dense_w, s2 = _quantize_array(dense.weight, weight_bits)
        if isinstance(act, Square):
            activation = "square"
        elif isinstance(act, Tanh):
            activation = "tanh"
        else:
            activation = "sigmoid"
        if isinstance(pool, ScaledMeanPool2D):
            pool_kind = "scaled_mean"
        elif isinstance(pool, MaxPool2D):
            pool_kind = "max"
        else:
            pool_kind = "mean"
        conv_bias = np.rint(conv.bias * s1 * input_scale).astype(np.int64)
        if activation == "square":
            # Square pipeline: dense inputs carry scale (input_scale*s1)^2 * window^2.
            carried = (input_scale * s1) ** 2 * pool.window**2
            dense_bias = np.rint(dense.bias * s2 * carried).astype(np.int64)
        else:
            dense_bias = np.rint(dense.bias * s2 * act_scale).astype(np.int64)
        return cls(
            conv_weight=conv_w,
            conv_bias=conv_bias,
            dense_weight=dense_w,
            dense_bias=dense_bias,
            input_scale=input_scale,
            conv_weight_scale=s1,
            dense_weight_scale=s2,
            act_scale=act_scale,
            activation=activation,
            pool=pool_kind,
            pool_window=pool.window,
            stride=conv.stride,
        )

    # ------------------------------------------------------------------
    # stage functions (shared verbatim by plaintext and HE pipelines)
    # ------------------------------------------------------------------
    def quantize_images(self, images: np.ndarray) -> np.ndarray:
        """uint8 or [0,1]-float images -> integer pixels at input_scale."""
        if images.dtype == np.uint8:
            scaled = images.astype(np.float64) / 255.0
        else:
            scaled = np.asarray(images, dtype=np.float64)
        return np.rint(scaled * self.input_scale).astype(np.int64)

    def conv_stage(self, x_int: np.ndarray) -> np.ndarray:
        """Integer convolution: the homomorphic pipelines replicate this."""
        from repro.nn.layers import conv2d_forward

        out = conv2d_forward(x_int, self.conv_weight, None, self.stride)
        return out + self.conv_bias.reshape(1, -1, 1, 1)

    @property
    def conv_output_scale(self) -> float:
        return self.input_scale * self.conv_weight_scale

    def enclave_stage(self, conv_int: np.ndarray) -> np.ndarray:
        """Exact activation + pool + requantize -- the trusted in-enclave step.

        This is exactly the plaintext computation the paper moves inside SGX
        (Section IV-D): dequantize, apply the true non-linearity and the true
        pooling (mean or max), requantize for the next homomorphic layer.
        """
        if self.activation == "square":
            raise ModelError("enclave_stage belongs to the exact-activation pipelines")
        x = conv_int.astype(np.float64) / self.conv_output_scale
        activated = Tanh.apply(x) if self.activation == "tanh" else Sigmoid.apply(x)
        k = self.pool_window
        b, c, h, w = activated.shape
        windows = activated.reshape(b, c, h // k, k, w // k, k)
        pooled = windows.max(axis=(3, 5)) if self.pool == "max" else windows.mean(axis=(3, 5))
        return np.rint(pooled * self.act_scale).astype(np.int64)

    def square_stage(self, conv_int: np.ndarray) -> np.ndarray:
        """CryptoNets activation: elementwise integer square."""
        return conv_int * conv_int

    def scaled_pool_stage(self, x_int: np.ndarray) -> np.ndarray:
        """CryptoNets pooling: division-free window sum."""
        k = self.pool_window
        b, c, h, w = x_int.shape
        return x_int.reshape(b, c, h // k, k, w // k, k).sum(axis=(3, 5))

    def fc_stage(self, x_int: np.ndarray) -> np.ndarray:
        """Integer fully-connected layer producing scaled logits."""
        flat = x_int.reshape(x_int.shape[0], -1)
        return flat @ self.dense_weight + self.dense_bias

    # ------------------------------------------------------------------
    # end-to-end integer reference
    # ------------------------------------------------------------------
    def forward_int(self, images: np.ndarray) -> np.ndarray:
        """Exact integer logits -- the reference both HE pipelines must match."""
        x = self.quantize_images(images)
        conv = self.conv_stage(x)
        if self.activation == "square":
            hidden = self.scaled_pool_stage(self.square_stage(conv))
        else:
            hidden = self.enclave_stage(conv)
        return self.fc_stage(hidden)

    def predict(self, images: np.ndarray) -> np.ndarray:
        return self.forward_int(images).argmax(axis=1)

    # ------------------------------------------------------------------
    # parameter-fit validation
    # ------------------------------------------------------------------
    def required_plain_modulus(self) -> int:
        """Worst-case bound on any intermediate: ``t`` must exceed 2x this."""
        k = self.conv_weight.shape[-1]
        conv_terms = k * k * self.conv_weight.shape[1]
        conv_bound = (
            conv_terms * self.input_scale * int(np.abs(self.conv_weight).max())
            + int(np.abs(self.conv_bias).max())
        )
        if self.activation == "square":
            hidden_bound = conv_bound * conv_bound * self.pool_window**2
        else:
            hidden_bound = self.act_scale
        fc_terms = self.dense_weight.shape[0]
        fc_bound = (
            fc_terms * hidden_bound * int(np.abs(self.dense_weight).max())
            + int(np.abs(self.dense_bias).max())
        )
        return 2 * max(conv_bound, hidden_bound, fc_bound) + 1

    def fits_plain_modulus(self, plain_modulus: int) -> bool:
        return plain_modulus >= self.required_plain_modulus()

    def noise_profile(self) -> tuple[bool, float, int]:
        """``(pure_he, plain_norm, additions)`` for parameter sizing.

        The additions term follows the per-layer convention of
        ``NoiseEstimator.layer_headroom``: the hybrid pipeline's enclave
        refresh resets noise between the conv and FC layers, so only the
        widest single layer counts, while the pure-HE pipeline carries the
        conv fan-in through the window sum into every FC term within one
        encrypted circuit.  The norm covers both weight layers (the FC
        weights are plaintext multiplicands too).
        """
        k = self.conv_weight.shape[-1]
        taps = k * k * self.conv_weight.shape[1]
        fc_terms = self.dense_weight.shape[0]
        norm = float(
            max(1, np.abs(self.conv_weight).max(), np.abs(self.dense_weight).max())
        )
        if self.activation == "square":
            additions = taps * self.pool_window**2 * fc_terms
        else:
            additions = max(taps, fc_terms)
        return (self.activation == "square", norm, additions)


def _destructure(model: Sequential) -> tuple[Conv2D, object, object, Dense]:
    layers = model.layers
    if (
        len(layers) != 4
        or not isinstance(layers[0], Conv2D)
        or not isinstance(layers[1], (Sigmoid, Tanh, Square))
        or not isinstance(layers[2], (MeanPool2D, MaxPool2D, ScaledMeanPool2D))
        or not isinstance(layers[3], Dense)
    ):
        raise ModelError(
            "QuantizedCNN expects the paper's conv -> activation -> pool -> dense "
            "architecture (see repro.nn.model.paper_cnn)"
        )
    return layers[0], layers[1], layers[2], layers[3]
