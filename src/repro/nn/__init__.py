"""CNN engine: layers, models, training, synthetic data, quantization.

Everything the privacy-preserving pipelines need from the neural-network
side: the paper's 4-layer CNN (Table VI), from-scratch backprop training,
a synthetic MNIST substitute, and the CryptoNets-style quantizer that turns
a trained float model into the integer form FV evaluates.
"""

from repro.nn.data import IMAGE_SIZE, NUM_CLASSES, Dataset, render_digit, synthetic_mnist
from repro.nn.deep import DeepQuantizedCNN, QuantizedConvBlock, deep_cnn
from repro.nn.layers import (
    Activation,
    Conv2D,
    Dense,
    Flatten,
    Layer,
    LeakyReLU,
    MaxPool2D,
    MeanPool2D,
    ReLU,
    ScaledMeanPool2D,
    Sigmoid,
    Square,
    Tanh,
    conv2d_forward,
)
from repro.nn.metrics import accuracy_score, agreement_rate, confusion_matrix
from repro.nn.model import Sequential, cryptonets_cnn, paper_cnn, scaled_cnn
from repro.nn.quantize import QuantizedCNN
from repro.nn.train import SGD, TrainReport, accuracy, cross_entropy, softmax, train

__all__ = [
    "Activation",
    "Conv2D",
    "Dataset",
    "DeepQuantizedCNN",
    "Dense",
    "Flatten",
    "IMAGE_SIZE",
    "Layer",
    "LeakyReLU",
    "MaxPool2D",
    "MeanPool2D",
    "NUM_CLASSES",
    "QuantizedCNN",
    "QuantizedConvBlock",
    "ReLU",
    "SGD",
    "ScaledMeanPool2D",
    "Sequential",
    "Sigmoid",
    "Square",
    "Tanh",
    "TrainReport",
    "accuracy",
    "accuracy_score",
    "agreement_rate",
    "confusion_matrix",
    "conv2d_forward",
    "cross_entropy",
    "cryptonets_cnn",
    "deep_cnn",
    "paper_cnn",
    "render_digit",
    "scaled_cnn",
    "softmax",
    "synthetic_mnist",
    "train",
]
