"""Evaluation metrics for classification pipelines."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


def accuracy_score(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of matching predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ModelError("predictions and labels must have equal shape")
    if predictions.size == 0:
        raise ModelError("cannot score an empty prediction set")
    return float((predictions == labels).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int = 10
) -> np.ndarray:
    """``matrix[true, predicted]`` counts."""
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true, pred in zip(np.asarray(labels), np.asarray(predictions)):
        matrix[int(true), int(pred)] += 1
    return matrix


def agreement_rate(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of samples on which two pipelines predict the same class.

    The paper's accuracy claim (Section VII-B: "all the accuracy rates are
    consistent with the plaintext predictions") is exactly
    ``agreement_rate(hybrid, plaintext) == 1.0``.
    """
    return accuracy_score(np.asarray(a), np.asarray(b))
