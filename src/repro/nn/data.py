"""Synthetic MNIST substitute (no network access to the real dataset).

Generates 28 x 28 grey-level handwritten-style digits from built-in 7 x 5
glyph bitmaps, randomized per sample: sub-pixel scaling, rotation, stroke
thickness, placement jitter, intensity variation and sensor noise.  Images
are uint8 in [0, 255] with 10 balanced classes, matching the input contract
of every pipeline in this repository.

The substitution is sound for the paper's experiments because they measure
(a) inference *time*, which depends only on tensor shapes, and (b) accuracy
*equality* between the plaintext, pure-HE and hybrid pipelines on identical
inputs -- a dataset-independent property.  See DESIGN.md Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

_GLYPHS = {
    0: ["01110", "10001", "10001", "10001", "10001", "10001", "01110"],
    1: ["00100", "01100", "00100", "00100", "00100", "00100", "01110"],
    2: ["01110", "10001", "00001", "00110", "01000", "10000", "11111"],
    3: ["11110", "00001", "00001", "01110", "00001", "00001", "11110"],
    4: ["00010", "00110", "01010", "10010", "11111", "00010", "00010"],
    5: ["11111", "10000", "11110", "00001", "00001", "10001", "01110"],
    6: ["00110", "01000", "10000", "11110", "10001", "10001", "01110"],
    7: ["11111", "00001", "00010", "00100", "01000", "01000", "01000"],
    8: ["01110", "10001", "10001", "01110", "10001", "10001", "01110"],
    9: ["01110", "10001", "10001", "01111", "00001", "00010", "01100"],
}

IMAGE_SIZE = 28
NUM_CLASSES = 10


def _glyph_array(digit: int) -> np.ndarray:
    rows = _GLYPHS[digit]
    return np.array([[int(c) for c in row] for row in rows], dtype=np.float64)


def render_digit(digit: int, rng: np.random.Generator) -> np.ndarray:
    """One randomized 28 x 28 uint8 image of ``digit``."""
    glyph = _glyph_array(digit)
    # Random stroke thickness before upscaling.
    if rng.random() < 0.35:
        glyph = ndimage.binary_dilation(glyph > 0).astype(np.float64)
    scale = rng.uniform(2.4, 3.2)
    canvas = ndimage.zoom(glyph, scale, order=1)
    canvas = ndimage.rotate(canvas, rng.uniform(-12.0, 12.0), reshape=False, order=1)
    canvas = ndimage.gaussian_filter(canvas, sigma=rng.uniform(0.4, 0.9))
    canvas = np.clip(canvas, 0.0, 1.0)

    image = np.zeros((IMAGE_SIZE, IMAGE_SIZE), dtype=np.float64)
    h, w = canvas.shape
    h, w = min(h, IMAGE_SIZE), min(w, IMAGE_SIZE)
    max_r = IMAGE_SIZE - h
    max_c = IMAGE_SIZE - w
    r = int(rng.integers(max_r // 3, 2 * max_r // 3 + 1)) if max_r > 0 else 0
    c = int(rng.integers(max_c // 3, 2 * max_c // 3 + 1)) if max_c > 0 else 0
    image[r : r + h, c : c + w] = canvas[:h, :w]

    intensity = rng.uniform(0.75, 1.0)
    image = image * intensity + rng.normal(0.0, 0.02, size=image.shape)
    return (np.clip(image, 0.0, 1.0) * 255).astype(np.uint8)


@dataclass
class Dataset:
    """Image/label arrays with the usual split accessors.

    Attributes:
        train_images: uint8 array ``(N, 1, 28, 28)``.
        train_labels: int64 array ``(N,)``.
        test_images / test_labels: the held-out split.
    """

    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray

    @property
    def num_classes(self) -> int:
        return NUM_CLASSES

    def train_float(self) -> np.ndarray:
        """Training images normalized to [0, 1] float64."""
        return self.train_images.astype(np.float64) / 255.0

    def test_float(self) -> np.ndarray:
        return self.test_images.astype(np.float64) / 255.0


def synthetic_mnist(
    train_size: int = 2000, test_size: int = 400, seed: int = 2021
) -> Dataset:
    """Generate a balanced synthetic MNIST-style dataset.

    Deterministic for a given ``(train_size, test_size, seed)`` triple.
    """
    rng = np.random.default_rng(seed)
    total = train_size + test_size
    images = np.empty((total, 1, IMAGE_SIZE, IMAGE_SIZE), dtype=np.uint8)
    labels = (np.arange(total) % NUM_CLASSES).astype(np.int64)
    rng.shuffle(labels)
    for i in range(total):
        images[i, 0] = render_digit(int(labels[i]), rng)
    return Dataset(
        train_images=images[:train_size],
        train_labels=labels[:train_size],
        test_images=images[train_size:],
        test_labels=labels[train_size:],
    )
