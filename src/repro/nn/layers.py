"""CNN layers with forward and backward passes (paper Section II-A).

Implements every layer family the paper's Table VI uses -- convolution,
pooling (mean, scaled-mean, max), fully connected, and the activation zoo
(Sigmoid, ReLU, Tanh, LeakyReLU, plus CryptoNets' Square substitute) -- as
plain numpy, with enough backprop to train the paper's 4-layer MNIST CNN
from scratch.

Tensors are NCHW: ``(batch, channels, height, width)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class Layer:
    """Base layer: forward/backward plus parameter access for the optimizer."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> list[np.ndarray]:
        """Trainable arrays (updated in place by the optimizer)."""
        return []

    def grads(self) -> list[np.ndarray]:
        """Gradients aligned with :meth:`params`."""
        return []

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape inference for a single sample (no batch axis)."""
        return input_shape


class Conv2D(Layer):
    """2D convolution (valid padding).

    Args:
        in_channels: input channel count.
        out_channels: number of kernels.
        kernel_size: square kernel side.
        stride: spatial stride.
        rng: initializer randomness (He-style scaling).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        if kernel_size < 1 or stride < 1:
            raise ModelError("kernel_size and stride must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = rng.normal(
            0.0, np.sqrt(2.0 / fan_in), size=(out_channels, in_channels, kernel_size, kernel_size)
        )
        self.bias = np.zeros(out_channels)
        self.stride = stride
        self._x: np.ndarray | None = None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    @property
    def kernel_size(self) -> int:
        return self.weight.shape[-1]

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        if c != self.weight.shape[1]:
            raise ModelError(
                f"Conv2D expects {self.weight.shape[1]} channels, got {c}"
            )
        k, s = self.kernel_size, self.stride
        if h < k or w < k:
            raise ModelError(f"input {h}x{w} smaller than kernel {k}")
        return (self.weight.shape[0], (h - k) // s + 1, (w - k) // s + 1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return conv2d_forward(x, self.weight, self.bias, self.stride)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ModelError("backward called before forward")
        x = self._x
        k, s = self.kernel_size, self.stride
        _, _, oh, ow = grad.shape
        self.grad_bias = grad.sum(axis=(0, 2, 3))
        self.grad_weight = np.zeros_like(self.weight)
        grad_x = np.zeros_like(x)
        for i in range(k):
            for j in range(k):
                patch = x[:, :, i : i + oh * s : s, j : j + ow * s : s]
                # dW[f,c,i,j] = sum_{b,y,x} grad[b,f,y,x] * patch[b,c,y,x]
                self.grad_weight[:, :, i, j] = np.einsum("bfyx,bcyx->fc", grad, patch)
                grad_x[:, :, i : i + oh * s : s, j : j + ow * s : s] += np.einsum(
                    "bfyx,fc->bcyx", grad, self.weight[:, :, i, j]
                )
        return grad_x

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None, stride: int = 1
) -> np.ndarray:
    """Functional convolution shared by the float and quantized paths."""
    _, c, h, w = x.shape
    f, wc, k, _ = weight.shape
    if wc != c:
        raise ModelError(f"weight expects {wc} channels, got {c}")
    oh = (h - k) // stride + 1
    ow = (w - k) // stride + 1
    out = np.zeros((x.shape[0], f, oh, ow), dtype=np.result_type(x, weight))
    for i in range(k):
        for j in range(k):
            patch = x[:, :, i : i + oh * stride : stride, j : j + ow * stride : stride]
            out += np.einsum("bcyx,fc->bfyx", patch, weight[:, :, i, j])
    if bias is not None:
        out += bias.reshape(1, f, 1, 1)
    return out


class Dense(Layer):
    """Fully connected layer over flattened inputs.

    The paper realizes its FC layer as a convolution whose kernel equals the
    input feature map (Table VI); over flattened inputs the two are the same
    weighted sum, and this form trains faster.
    """

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator | None = None
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng()
        self.weight = rng.normal(0.0, np.sqrt(2.0 / in_features), size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self._x: np.ndarray | None = None
        self._shape: tuple[int, ...] | None = None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        flat = int(np.prod(input_shape))
        if flat != self.weight.shape[0]:
            raise ModelError(
                f"Dense expects {self.weight.shape[0]} features, got {flat}"
            )
        return (self.weight.shape[1],)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        flat = x.reshape(x.shape[0], -1)
        self._x = flat
        return flat @ self.weight + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None or self._shape is None:
            raise ModelError("backward called before forward")
        self.grad_weight = self._x.T @ grad
        self.grad_bias = grad.sum(axis=0)
        return (grad @ self.weight.T).reshape(self._shape)

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class _Pool(Layer):
    """Shared plumbing for non-overlapping window pools."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ModelError("pool window must be >= 1")
        self.window = window

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        if h % self.window or w % self.window:
            raise ModelError(
                f"input {h}x{w} not divisible by pool window {self.window}"
            )
        return (c, h // self.window, w // self.window)

    def _windows(self, x: np.ndarray) -> np.ndarray:
        b, c, h, w = x.shape
        k = self.window
        if h % k or w % k:
            raise ModelError(f"input {h}x{w} not divisible by pool window {k}")
        return x.reshape(b, c, h // k, k, w // k, k)


class MeanPool2D(_Pool):
    """Classic mean pooling (what the enclave computes in the hybrid)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        return self._windows(x).mean(axis=(3, 5))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        k = self.window
        spread = grad / (k * k)
        return np.repeat(np.repeat(spread, k, axis=2), k, axis=3).reshape(self._in_shape)


class ScaledMeanPool2D(_Pool):
    """Sum pooling: CryptoNets' division-free mean-pool substitute.

    Outputs the window *sum*, i.e. the mean magnified by ``window**2`` -- the
    numerical diffusion the paper's Section III-A flags as propagating into
    subsequent layers.
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        return self._windows(x).sum(axis=(3, 5))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        k = self.window
        return np.repeat(np.repeat(grad, k, axis=2), k, axis=3).reshape(self._in_shape)


class MaxPool2D(_Pool):
    """Max pooling -- only computable inside SGX in the paper's setting."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        windows = self._windows(x)
        b, c, oh, k, ow, _ = windows.shape
        flat = windows.transpose(0, 1, 2, 4, 3, 5).reshape(b, c, oh, ow, k * k)
        self._argmax = flat.argmax(axis=-1)
        return flat.max(axis=-1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        b, c, oh, ow = grad.shape
        k = self.window
        flat_grad = np.zeros((b, c, oh, ow, k * k), dtype=grad.dtype)
        np.put_along_axis(flat_grad, self._argmax[..., None], grad[..., None], axis=-1)
        windows = flat_grad.reshape(b, c, oh, ow, k, k).transpose(0, 1, 2, 4, 3, 5)
        return windows.reshape(self._in_shape)


class Activation(Layer):
    """Base for stateless elementwise activations."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return self.apply(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self.derivative(self._x)

    @staticmethod
    def apply(x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def derivative(x: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Sigmoid(Activation):
    """sigma(x) = 1 / (1 + e^-x) -- the paper's case-study activation."""

    @staticmethod
    def apply(x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x, dtype=np.float64)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        ex = np.exp(x[~positive])
        out[~positive] = ex / (1.0 + ex)
        return out

    @staticmethod
    def derivative(x: np.ndarray) -> np.ndarray:
        s = Sigmoid.apply(x)
        return s * (1.0 - s)


class ReLU(Activation):
    """f(x) = max(0, x)."""

    @staticmethod
    def apply(x: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, x)

    @staticmethod
    def derivative(x: np.ndarray) -> np.ndarray:
        return (x > 0).astype(np.float64)


class Tanh(Activation):
    """Hyperbolic tangent: tanh(x) = (e^x - e^-x) / (e^x + e^-x)."""

    @staticmethod
    def apply(x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    @staticmethod
    def derivative(x: np.ndarray) -> np.ndarray:
        t = np.tanh(x)
        return 1.0 - t * t


class LeakyReLU(Activation):
    """f(x) = max(alpha * x, x)."""

    def __init__(self, alpha: float = 0.01) -> None:
        self.alpha = alpha

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return np.where(x > 0, x, self.alpha * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * np.where(self._x > 0, 1.0, self.alpha)

    @staticmethod
    def apply(x: np.ndarray) -> np.ndarray:  # pragma: no cover - via instance
        raise ModelError("LeakyReLU is parameterized; use an instance")

    @staticmethod
    def derivative(x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise ModelError("LeakyReLU is parameterized; use an instance")


class Square(Activation):
    """f(x) = x^2: CryptoNets' HE-friendly activation substitute."""

    @staticmethod
    def apply(x: np.ndarray) -> np.ndarray:
        return x * x

    @staticmethod
    def derivative(x: np.ndarray) -> np.ndarray:
        return 2.0 * x


class Flatten(Layer):
    """Collapses all non-batch axes into one feature axis."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)
