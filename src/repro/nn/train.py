"""Training loop: softmax cross-entropy + SGD with momentum.

Just enough optimizer to train the paper's 4-layer CNN to useful accuracy on
the synthetic dataset; the paper assumes a pre-trained model (Section IV-B),
so training quality only needs to produce a realistic weight distribution
for the privacy-preserving pipelines to consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.nn.model import Sequential


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits."""
    if logits.shape[0] != labels.shape[0]:
        raise ModelError("logits and labels disagree on batch size")
    probs = softmax(logits)
    batch = logits.shape[0]
    eps = 1e-12
    loss = -np.log(probs[np.arange(batch), labels] + eps).mean()
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    return float(loss), grad / batch


@dataclass
class SGD:
    """Stochastic gradient descent with momentum and global-norm clipping.

    Clipping matters for the CryptoNets-style Square activation, whose
    unbounded derivative otherwise blows the loss up within a few batches.
    """

    learning_rate: float = 0.1
    momentum: float = 0.9
    clip_norm: float | None = 5.0
    _velocity: list[np.ndarray] = field(default_factory=list)

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ModelError("params and grads length mismatch")
        if not self._velocity:
            self._velocity = [np.zeros_like(p) for p in params]
        scale = 1.0
        if self.clip_norm is not None:
            total = np.sqrt(sum(float(np.square(g).sum()) for g in grads))
            if total > self.clip_norm:
                scale = self.clip_norm / total
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.learning_rate * scale * g
            p += v


@dataclass
class TrainReport:
    """Per-epoch history of a training run."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else 0.0


def accuracy(model: Sequential, images: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct argmax predictions."""
    return float((model.predict(images) == labels).mean())


def train(
    model: Sequential,
    images: np.ndarray,
    labels: np.ndarray,
    epochs: int = 5,
    batch_size: int = 32,
    learning_rate: float = 0.1,
    momentum: float = 0.9,
    eval_images: np.ndarray | None = None,
    eval_labels: np.ndarray | None = None,
    seed: int = 0,
    verbose: bool = False,
) -> TrainReport:
    """Train ``model`` in place.

    Args:
        images: float inputs ``(N, C, H, W)`` (normalize uint8 data first).
        labels: int class labels ``(N,)``.
        eval_images / eval_labels: optional held-out split; per-epoch accuracy
            is recorded against it (else against the training data).

    Returns:
        The loss/accuracy history.
    """
    rng = np.random.default_rng(seed)
    optimizer = SGD(learning_rate=learning_rate, momentum=momentum)
    report = TrainReport()
    n = images.shape[0]
    for epoch in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            logits = model.forward(images[idx])
            loss, grad = cross_entropy(logits, labels[idx])
            model.backward(grad)
            optimizer.step(model.params(), model.grads())
            epoch_loss += loss
            batches += 1
        report.losses.append(epoch_loss / max(1, batches))
        if eval_images is not None and eval_labels is not None:
            acc = accuracy(model, eval_images, eval_labels)
        else:
            acc = accuracy(model, images, labels)
        report.accuracies.append(acc)
        if verbose:
            print(f"epoch {epoch + 1}/{epochs}: loss={report.losses[-1]:.4f} acc={acc:.3f}")
    return report
