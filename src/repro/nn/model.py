"""Sequential CNN container and the paper's Table VI architecture."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import (
    Conv2D,
    Dense,
    Layer,
    MaxPool2D,
    MeanPool2D,
    ScaledMeanPool2D,
    Sigmoid,
    Square,
    Tanh,
)


class Sequential:
    """An ordered stack of layers with shape checking.

    Args:
        layers: layers in forward order.
        input_shape: single-sample shape ``(C, H, W)``; enables early shape
            validation and :meth:`summary`.
    """

    def __init__(self, layers: list[Layer], input_shape: tuple[int, ...] | None = None) -> None:
        if not layers:
            raise ModelError("a model needs at least one layer")
        self.layers = list(layers)
        self.input_shape = input_shape
        if input_shape is not None:
            self.layer_shapes = self._infer_shapes(input_shape)
        else:
            self.layer_shapes = None

    def _infer_shapes(self, input_shape: tuple[int, ...]) -> list[tuple[int, ...]]:
        shapes = [input_shape]
        for layer in self.layers:
            shapes.append(layer.output_shape(shapes[-1]))
        return shapes

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    __call__ = forward

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params()]

    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads()]

    def parameter_count(self) -> int:
        return sum(p.size for p in self.params())

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions (argmax over logits), processed in chunks."""
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(self.forward(x[start : start + batch_size]).argmax(axis=1))
        return np.concatenate(outputs)

    def summary(self) -> str:
        if self.layer_shapes is None:
            raise ModelError("summary requires input_shape at construction")
        lines = [f"input: {self.layer_shapes[0]}"]
        for layer, shape in zip(self.layers, self.layer_shapes[1:]):
            n_params = sum(p.size for p in layer.params())
            lines.append(f"{type(layer).__name__}: -> {shape} ({n_params} params)")
        return "\n".join(lines)


def paper_cnn(rng: np.random.Generator | None = None) -> Sequential:
    """The paper's Table VI / Fig. 7 CNN.

    conv 6 x (5 x 5) stride 1 -> sigmoid -> 2 x 2 mean-pool -> FC to 10
    classes, over 1 x 28 x 28 inputs.
    """
    rng = rng if rng is not None else np.random.default_rng()
    return Sequential(
        [
            Conv2D(1, 6, kernel_size=5, stride=1, rng=rng),
            Sigmoid(),
            MeanPool2D(2),
            Dense(6 * 12 * 12, 10, rng=rng),
        ],
        input_shape=(1, 28, 28),
    )


def cryptonets_cnn(rng: np.random.Generator | None = None) -> Sequential:
    """The CryptoNets-compatible variant of the paper CNN.

    Same shape as :func:`paper_cnn` but with the HE-friendly substitutes the
    pure-HE baseline must use: Square activation and division-free scaled
    mean-pooling.  Train *this* model for the ``Encrypted`` baseline so its
    accuracy is representative.
    """
    rng = rng if rng is not None else np.random.default_rng()
    return Sequential(
        [
            Conv2D(1, 6, kernel_size=5, stride=1, rng=rng),
            Square(),
            ScaledMeanPool2D(2),
            Dense(6 * 12 * 12, 10, rng=rng),
        ],
        input_shape=(1, 28, 28),
    )


def scaled_cnn(
    image_size: int,
    channels: int = 2,
    kernel_size: int = 3,
    pool_window: int = 2,
    cryptonets: bool = False,
    activation: str | None = None,
    pool: str | None = None,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """A dimensionally reduced paper CNN for fast tests and scaled benches.

    Keeps the exact layer sequence of Table VI while shrinking the spatial
    grid, so every pipeline code path is exercised at a fraction of the cost.

    Args:
        cryptonets: shorthand for ``activation="square", pool="scaled_mean"``.
        activation: "sigmoid" (default), "tanh" or "square".
        pool: "mean" (default), "max" or "scaled_mean".
    """
    rng = rng if rng is not None else np.random.default_rng()
    conv_out = image_size - kernel_size + 1
    if conv_out < pool_window or conv_out % pool_window:
        raise ModelError(
            f"image_size {image_size} with kernel {kernel_size} gives a "
            f"{conv_out}-wide map not divisible by pool window {pool_window}"
        )
    pooled = conv_out // pool_window
    activation = activation or ("square" if cryptonets else "sigmoid")
    pool = pool or ("scaled_mean" if cryptonets else "mean")
    activations = {"sigmoid": Sigmoid, "tanh": Tanh, "square": Square}
    pools = {"mean": MeanPool2D, "max": MaxPool2D, "scaled_mean": ScaledMeanPool2D}
    if activation not in activations:
        raise ModelError(f"unknown activation {activation!r}")
    if pool not in pools:
        raise ModelError(f"unknown pool {pool!r}")
    return Sequential(
        [
            Conv2D(1, channels, kernel_size=kernel_size, stride=1, rng=rng),
            activations[activation](),
            pools[pool](pool_window),
            Dense(channels * pooled * pooled, 10, rng=rng),
        ],
        input_shape=(1, image_size, image_size),
    )
