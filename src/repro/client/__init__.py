"""Client SDK (``repro.client``): the attested-connection state machine.

The single supported entry point for talking to an
:class:`~repro.core.server.EdgeServer` fleet: an :class:`AttestedClient`
walks CONNECT -> VERIFY_QUOTE -> SESSION_PINNED -> READY with a typed error
per transition, pins the delivered HE key fingerprint, and survives replica
crashes via :meth:`AttestedClient.reconnect` with bit-identical results.
See DESIGN.md §14 and ``examples/multi_user_service.py``.
"""

from repro.client.session import AttestedClient, SessionState, key_fingerprint

__all__ = ["AttestedClient", "SessionState", "key_fingerprint"]
