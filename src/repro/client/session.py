"""The attested client session: a state machine, not a pile of calls.

User enrollment grew organically -- ``EdgeServer.enroll_user`` runs the
whole Fig. 2 exchange in one opaque step, and every example hand-rolled its
own verifier wiring around it.  The SDK makes the trust establishment
explicit and *inspectable*: one :class:`AttestedClient` walks

    CREATED -> CONNECT -> VERIFY_QUOTE -> SESSION_PINNED -> READY

with a typed error per transition (:mod:`repro.errors`):

* **CONNECT** (:meth:`AttestedClient.connect`): read the endpoint's
  descriptor -- hosted models, fleet topology, claimed code identity.
  Fails with :class:`~repro.errors.ClientConnectError` when the fleet has
  no live replicas or hosts nothing; retryable (the session stays CREATED).
* **VERIFY_QUOTE** (:meth:`AttestedClient.verify_quote`): run the attested
  DH key exchange against the fleet's authority replica and verify its
  quote.  Fails with :class:`~repro.errors.QuoteVerificationError` --
  **terminal**: an endpoint that cannot prove its code identity never gets
  a second chance from the same session.
* **SESSION_PINNED** (:meth:`AttestedClient.pin_session`): fingerprint the
  delivered HE public key and pin it.  On reconnect the fresh delivery must
  match the pin; a mismatch means the fleet rotated keys (or an impostor
  answered) and fails with :class:`~repro.errors.SessionPinError` --
  **terminal**.
* **READY** (:meth:`AttestedClient.activate`): build the user-side crypto
  endpoints; :meth:`infer` / :meth:`decrypt_logits` / :meth:`predict` now
  work.

:meth:`establish` chains the four transitions; :meth:`reconnect` re-runs
them after a replica crash or authority failover, keeping the pin -- the
fleet shares one migrated key pair, so a legitimate surviving replica
reproduces the pinned fingerprint exactly and results remain bit-identical.
"""

from __future__ import annotations

import enum
import hashlib
from typing import TYPE_CHECKING

import numpy as np

from repro.core.keyflow import UserClient
from repro.errors import (
    AttestationError,
    ClientConnectError,
    ClientStateError,
    QuoteVerificationError,
    SessionPinError,
)
from repro.he import serialize as he_serialize
from repro.he.context import Context
from repro.he.decryptor import Decryptor
from repro.he.encoders import ScalarEncoder
from repro.he.encryptor import Encryptor
from repro.obs import metrics
from repro.obs.context import TraceContext
from repro.serve.api import InferenceRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import EdgeServer, ServedResult, UserSession
    from repro.he.context import Ciphertext
    from repro.sgx.attestation import AttestationVerificationService


def _m_transitions():
    return metrics.registry().counter(
        "repro_client_transitions_total",
        "Client session state-machine transitions, by destination state.",
        ("state",),
    )


class SessionState(str, enum.Enum):
    """Where an :class:`AttestedClient` stands in its trust establishment."""

    CREATED = "created"
    CONNECTED = "connected"
    QUOTE_VERIFIED = "quote_verified"
    SESSION_PINNED = "session_pinned"
    READY = "ready"
    FAILED = "failed"


def key_fingerprint(public_key) -> str:
    """Stable fingerprint of a delivered HE public key (SHA-256 over its
    wire serialization) -- what a session pins against."""
    return hashlib.sha256(he_serialize.serialize_public_key(public_key)).hexdigest()


class AttestedClient:
    """One user's attested connection to an enclave-fleet endpoint.

    The single supported client entry point: examples, benchmarks and
    integrations talk to the :class:`~repro.core.server.EdgeServer` through
    this object instead of wiring ``UserClient`` + verifier by hand.

    Args:
        server: the fleet endpoint (in-process here; a network stub in a
            real deployment).
        verifier: the attestation verification service this user trusts
            (must know the server's platform -- see
            ``AttestationVerificationService.register_platform``).
        entropy: user-supplied randomness for the DH exchange.
        expected_mrenclave: pin the enclave code identity up front; when
            None, the descriptor's claimed identity is adopted at CONNECT
            (trust-on-first-use) and every later quote must prove it.
    """

    def __init__(
        self,
        server: "EdgeServer",
        verifier: "AttestationVerificationService",
        entropy: bytes,
        *,
        expected_mrenclave: str | None = None,
    ) -> None:
        self.server = server
        self.verifier = verifier
        self._entropy = entropy
        self.expected_mrenclave = expected_mrenclave
        self.state = SessionState.CREATED
        self.descriptor: dict | None = None
        self.pinned_fingerprint: str | None = None
        self.pinned_key_generation: int | None = None
        self.session: "UserSession | None" = None
        self.connects = 0
        self.reconnects = 0
        self.requests_issued = 0
        self._keys = None

    # ------------------------------------------------------------------
    # state machinery
    # ------------------------------------------------------------------
    def _require(self, expected: SessionState, action: str) -> None:
        if self.state is SessionState.FAILED:
            raise ClientStateError(
                f"this session is FAILED (terminal); {action} refused -- "
                "create a fresh AttestedClient"
            )
        if self.state is not expected:
            raise ClientStateError(
                f"{action} requires state {expected.value!r}, "
                f"session is {self.state.value!r}"
            )

    def _transition(self, to: SessionState) -> None:
        self.state = to
        _m_transitions().labels(state=to.value).inc()

    def _fail(self, error: Exception) -> Exception:
        self._transition(SessionState.FAILED)
        return error

    # ------------------------------------------------------------------
    # the four transitions
    # ------------------------------------------------------------------
    def connect(self) -> dict:
        """CONNECT: read the endpoint descriptor and adopt its identity.

        Retryable -- a failed connect leaves the session in CREATED.

        Raises:
            ClientConnectError: the fleet has no live replicas or no models.
            ClientStateError: called out of order or after FAILED.
        """
        self._require(SessionState.CREATED, "connect")
        descriptor = self.server.descriptor()
        if not descriptor.get("replicas"):
            raise ClientConnectError("endpoint has no live fleet replicas")
        if not descriptor.get("models"):
            raise ClientConnectError("endpoint hosts no provisioned models")
        self.descriptor = descriptor
        if self.expected_mrenclave is None:
            # Trust-on-first-use: adopt the claimed identity now; every
            # quote from here on must *prove* it.
            self.expected_mrenclave = descriptor["mrenclave"]
        self.connects += 1
        self._transition(SessionState.CONNECTED)
        return descriptor

    def verify_quote(self) -> None:
        """VERIFY_QUOTE: attested DH exchange + quote verification.

        Terminal on failure: a session that saw one bad quote is FAILED.

        Raises:
            QuoteVerificationError: the quote did not verify (wrong code
                identity, unregistered platform, tampered payload binding).
        """
        self._require(SessionState.CONNECTED, "verify_quote")
        client = UserClient(
            params=self.server.params,
            verifier=self.verifier,
            expected_mrenclave=self.expected_mrenclave,
            entropy=self._entropy,
        )
        try:
            quote, sealed = self.server.serve_key_exchange(client.begin_exchange())
            self._keys = client.complete_exchange(quote, sealed)
        except AttestationError as exc:
            raise self._fail(
                QuoteVerificationError(
                    f"endpoint quote failed verification: {exc}"
                )
            ) from exc
        self._transition(SessionState.QUOTE_VERIFIED)

    def pin_session(self) -> str:
        """SESSION_PINNED: fingerprint the delivered key pair and pin it.

        The first pin is trust-on-first-delivery; every reconnect must
        reproduce it bit-for-bit.  Because the whole fleet shares one
        migrated key pair, a legitimate survivor always does -- a mismatch
        means rotated keys or an impostor.  Terminal on mismatch.

        Raises:
            SessionPinError: delivered key fingerprint differs from the pin.
        """
        self._require(SessionState.QUOTE_VERIFIED, "pin_session")
        fingerprint = key_fingerprint(self._keys.public)
        generation = (self.descriptor or {}).get("key_generation")
        if self.pinned_fingerprint is None:
            self.pinned_fingerprint = fingerprint
            self.pinned_key_generation = generation
        elif fingerprint != self.pinned_fingerprint:
            raise self._fail(
                SessionPinError(
                    "delivered key fingerprint "
                    f"{fingerprint[:16]}... does not match the pinned "
                    f"{self.pinned_fingerprint[:16]}... (key generation "
                    f"{generation} vs pinned {self.pinned_key_generation}): "
                    "the fleet rotated keys or this is not your enclave"
                )
            )
        self._transition(SessionState.SESSION_PINNED)
        return self.pinned_fingerprint

    def activate(self) -> "UserSession":
        """READY: build the user-side crypto endpoints from the pinned keys."""
        self._require(SessionState.SESSION_PINNED, "activate")
        from repro.core.server import UserSession

        context = Context(self.server.params)
        self.session = UserSession(
            context=context,
            encoder=ScalarEncoder(context),
            encryptor=Encryptor(context, self._keys.public),
            decryptor=Decryptor(context, self._keys.secret),
            quantized_by_model={
                name: self.server.model(name) for name in self.server.models()
            },
        )
        self._transition(SessionState.READY)
        return self.session

    # ------------------------------------------------------------------
    # composites
    # ------------------------------------------------------------------
    def establish(self) -> "AttestedClient":
        """Run CONNECT -> VERIFY_QUOTE -> SESSION_PINNED -> READY."""
        self.connect()
        self.verify_quote()
        self.pin_session()
        self.activate()
        return self

    def reconnect(self) -> "AttestedClient":
        """Re-establish after a replica crash / authority failover.

        Keeps the pinned fingerprint: the surviving authority must deliver
        the *same* key pair (sealed-key migration guarantees it), so
        results before and after the reconnect stay bit-identical.  A
        key-rotated fleet fails the pin check terminally instead.

        Raises:
            ClientStateError: the session never pinned, or is FAILED.
        """
        if self.state is SessionState.FAILED:
            raise ClientStateError(
                "this session is FAILED (terminal); reconnect refused -- "
                "create a fresh AttestedClient"
            )
        if self.pinned_fingerprint is None:
            raise ClientStateError(
                "reconnect requires an established session; call establish() first"
            )
        self.descriptor = None
        self._keys = None
        self.session = None
        self.state = SessionState.CREATED
        self.reconnects += 1
        return self.establish()

    # ------------------------------------------------------------------
    # inference (READY only)
    # ------------------------------------------------------------------
    def encrypt(self, model: str, images: np.ndarray) -> "Ciphertext":
        """Quantize + encrypt ``images`` under the session's pinned keys."""
        self._require(SessionState.READY, "encrypt")
        return self.session.encrypt(model, images)

    def request(
        self,
        model: str,
        images: np.ndarray,
        *,
        pack: bool = False,
        deadline_ms: float | None = None,
        priority: int = 1,
        slo_deadline_ms: float | None = None,
        context: TraceContext | None = None,
    ) -> InferenceRequest:
        """Encrypt and wrap ``images`` as a canonical
        :class:`~repro.serve.api.InferenceRequest` (for callers that drive
        the scheduler or serving loop themselves).

        Every request carries a :class:`~repro.obs.context.TraceContext`:
        pass one explicitly, or the client derives it deterministically
        from the session entropy and its monotone request counter, so the
        same workload always produces the same trace ids.
        """
        self.requests_issued += 1
        if context is None:
            context = TraceContext.derive(self._entropy, self.requests_issued)
        return InferenceRequest(
            model=model,
            ciphertext=self.encrypt(model, images),
            pack=pack,
            deadline_ms=deadline_ms,
            priority=priority,
            slo_deadline_ms=slo_deadline_ms,
            context=context,
        )

    def infer(
        self,
        model: str,
        images: np.ndarray,
        *,
        pack: bool = False,
        deadline_ms: float | None = None,
    ) -> "ServedResult":
        """Encrypt, serve, and return the (still encrypted) result."""
        return self.server.infer(
            self.request(model, images, pack=pack, deadline_ms=deadline_ms)
        )

    def decrypt_logits(self, result: "ServedResult") -> np.ndarray:
        self._require(SessionState.READY, "decrypt_logits")
        return self.session.decrypt_logits(result)

    def decrypt(self, result: "ServedResult") -> np.ndarray:
        """Decrypt a served result straight to argmax predictions."""
        self._require(SessionState.READY, "decrypt")
        return self.session.decrypt(result)

    def predict(
        self,
        model: str,
        images: np.ndarray,
        *,
        pack: bool = False,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        """End-to-end: encrypted inference, decrypted argmax predictions."""
        result = self.infer(model, images, pack=pack, deadline_ms=deadline_ms)
        return self.decrypt_logits(result).argmax(axis=1)
