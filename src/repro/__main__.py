"""``python -m repro`` -- a self-contained demonstration run.

Trains the (dimensionally reduced) paper CNN, deploys it behind the hybrid
HE+SGX pipeline, runs one encrypted batch and prints the stage breakdown --
the same flow as ``examples/quickstart.py``, reachable without knowing the
repository layout.

Options:
    python -m repro              # quick demo (reduced dimensions)
    python -m repro --paper      # the paper's 28x28 / 6-kernel dimensions
"""

from __future__ import annotations

import sys

import numpy as np


def main(argv: list[str]) -> int:
    paper_dims = "--paper" in argv
    if set(argv) - {"--paper"}:
        print(__doc__)
        return 0 if {"-h", "--help"} & set(argv) else 2

    from repro.core import (
        HybridPipeline,
        PlaintextPipeline,
        parameters_for_pipeline,
        train_paper_models,
    )

    dims = dict(image_size=28, channels=6, kernel_size=5) if paper_dims else dict(
        image_size=12, channels=2, kernel_size=3
    )
    print("repro: Privacy-Preserving NN Inference via HE + SGX (ICDCS 2021)")
    print(f"dimensions: {dims}\n")
    models = train_paper_models(train_size=600, test_size=150, epochs=6, **dims)
    quantized = models.quantized_sigmoid()
    params = parameters_for_pipeline(quantized, poly_degree=1024)
    print(f"parameters: {params.describe()}")

    pipeline = HybridPipeline(quantized, params, seed=7)
    images = models.dataset.test_images[:4]
    result = pipeline.infer(images)
    print(result.describe())

    plain = PlaintextPipeline(quantized).infer(images)
    exact = np.array_equal(result.logits, plain.logits)
    print(f"\nencrypted == plaintext logits: {exact}")
    print(f"predictions: {result.predictions.tolist()} "
          f"(labels: {models.dataset.test_labels[:4].tolist()})")
    return 0 if exact else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
