"""``python -m repro`` -- a self-contained demonstration run.

Trains the (dimensionally reduced) paper CNN, deploys it behind the hybrid
HE+SGX pipeline, runs one encrypted batch and prints the stage breakdown --
the same flow as ``examples/quickstart.py``, reachable without knowing the
repository layout.

Options:
    python -m repro                    # quick demo (reduced dimensions)
    python -m repro --paper            # the paper's 28x28 / 6-kernel dimensions
    python -m repro --smoke            # minimal dimensions/training (CI)
    python -m repro --trace-json PATH  # export the run's trace as JSON
                                       # (PATH of "-" writes to stdout)
    python -m repro --metrics          # run a short serving + fault-recovery
                                       # segment and print the process-wide
                                       # metrics in Prometheus exposition
    python -m repro --metrics-json PATH  # same, dumping the MetricsSnapshot
                                         # as JSON ("-" writes to stdout)
    python -m repro --serve-demo       # replay a seeded Poisson + 4x-burst
                                       # trace through the event-driven
                                       # continuous-batching serving loop and
                                       # print its SLO report
    python -m repro --serve-demo --fleet 2
                                       # same, on a 2-replica enclave fleet
                                       # (sealed-key migration + routing)
    python -m repro --flight-dump PATH # arm the flight recorder for the run
                                       # and write its ordered event log as
                                       # JSON ("-" writes to stdout); composes
                                       # with every mode above
"""

from __future__ import annotations

import sys

import numpy as np

def _parse(argv: list[str]) -> tuple[dict[str, object], int | None]:
    opts: dict[str, object] = {
        "paper": False,
        "smoke": False,
        "trace_json": None,
        "metrics": False,
        "metrics_json": None,
        "serve_demo": False,
        "fleet": 1,
        "flight_dump": None,
    }
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--fleet":
            if not args or not args[0].isdigit() or int(args[0]) < 1:
                print(__doc__)
                return opts, 2
            opts["fleet"] = int(args.pop(0))
        elif arg == "--trace-json":
            if not args:
                print(__doc__)
                return opts, 2
            opts["trace_json"] = args.pop(0)
        elif arg == "--metrics":
            opts["metrics"] = True
        elif arg == "--metrics-json":
            if not args:
                print(__doc__)
                return opts, 2
            opts["metrics_json"] = args.pop(0)
        elif arg == "--flight-dump":
            if not args:
                print(__doc__)
                return opts, 2
            opts["flight_dump"] = args.pop(0)
        elif arg == "--serve-demo":
            opts["serve_demo"] = True
        elif arg == "--paper":
            opts["paper"] = True
        elif arg == "--smoke":
            opts["smoke"] = True
        else:
            print(__doc__)
            return opts, 0 if arg in {"-h", "--help"} else 2
    if opts["paper"] and opts["smoke"]:
        print(__doc__)
        return opts, 2
    return opts, None


def _metrics_demo(models, quantized) -> None:
    """Exercise the serving scheduler under a benign armed fault plan.

    Populates the serve, fault/recovery, SGX and HE metric families in one
    short segment: a batching edge server flushes two packed batches while
    the plan crashes one ``activation_pool`` ECALL (recovered by the
    supervisor) and triggers one EPC eviction storm (results unchanged,
    paging costs accrue).
    """
    from repro import faults
    from repro.client import AttestedClient
    from repro.core import EdgeServer, PipelineSpec
    from repro.errors import EnclaveCrashed
    from repro.sgx import AttestationVerificationService

    spec = PipelineSpec(scheme="hybrid", poly_degree=256, batching=True)
    plan = faults.FaultPlan(
        seed=5,
        rules=[
            faults.FaultRule(
                site="sgx.ecall", name="activation_pool*", error=EnclaveCrashed,
                max_fires=1,
            ),
            faults.FaultRule(site="sgx.epc.touch", action="evict_all", after=3,
                             max_fires=1),
        ],
    )
    server = EdgeServer.from_spec(spec, seed=13, sizing_model=quantized)
    server.provision_model("digits", quantized)
    verifier = AttestationVerificationService()
    verifier.register_platform(server.quoting)
    client = AttestedClient(server, verifier, b"\x42" * 32).establish()
    images = models.dataset.test_images
    with faults.armed(plan):
        for round_start in (0, 2):
            for i in range(round_start, round_start + 2):
                server.scheduler.submit(
                    "digits", client.encrypt("digits", images[i : i + 1])
                )
            server.scheduler.drain("digits")
    print(f"serving segment: 4 requests in 2 packed flushes, "
          f"{plan.fires()} fault(s) fired, "
          f"{server.enclave.restarts} enclave restart(s)")


def _serve_demo(
    training: dict, dims: dict, fleet: int, trace_json: str | None = None
) -> int:
    """Replay a seeded open-loop trace through the serving loop.

    A steady Poisson phase followed by a 4x on/off burst, continuous
    batching on a CRT-batching edge server (optionally a multi-replica
    fleet); prints the deterministic SLO report (virtual-timeline waits,
    occupancy, shed rate) and verifies a served request's logits against
    the plaintext reference.  Built the declarative way: a
    :class:`~repro.core.PipelineSpec` describes the deployment and the
    :class:`~repro.client.AttestedClient` SDK establishes the session.
    """
    from repro.client import AttestedClient
    from repro.core import EdgeServer, PipelineSpec, PlaintextPipeline, train_paper_models
    from repro.serve import (
        LoopConfig,
        ServingLoop,
        bursty_trace,
        merge,
        poisson_trace,
    )
    from repro.sgx import AttestationVerificationService

    print("repro: serving-loop demo (continuous batching under open-loop traffic)")
    print(f"dimensions: {dims}   fleet: {fleet} replica(s)\n")
    models = train_paper_models(**training, **dims)
    quantized = models.quantized_sigmoid()
    spec = PipelineSpec(
        scheme="hybrid", poly_degree=256, batching=True,
        fleet_size=fleet, max_batch=8,
    )
    server = EdgeServer.from_spec(spec, seed=13, sizing_model=quantized)
    server.provision_model("digits", quantized)
    verifier = AttestationVerificationService()
    verifier.register_platform(server.quoting)
    client = AttestedClient(server, verifier, b"\x42" * 32).establish()
    print(f"client session: {client.state.value} "
          f"(pinned key {client.pinned_fingerprint[:16]}...)")

    image_pool = 4
    pool_images = models.dataset.test_images[:image_pool]
    expected = PlaintextPipeline(quantized).infer(pool_images).logits
    pool = [
        client.encrypt("digits", pool_images[i : i + 1]) for i in range(image_pool)
    ]
    steady = poisson_trace(
        42, rate_rps=300.0, duration_s=0.15, users=1000, image_pool=image_pool
    )
    burst = bursty_trace(
        43, base_rate_rps=300.0, burst_factor=4.0, period_s=0.08,
        duration_s=0.15, users=1000, image_pool=image_pool,
    ).shifted(0.15)
    trace = merge(steady, burst)
    print(
        f"trace: {len(trace)} arrivals / {trace.users} users over "
        f"{trace.duration_s:.2f}s (4x burst in the second half)"
    )

    loop = ServingLoop(server, LoopConfig(admit_wait_slo_s=0.05))
    for arrival in trace:
        loop.offer(arrival, pool[arrival.image_index])
    loop.run()
    report = loop.report()
    print(
        f"served {report['served']}/{report['arrivals']} in "
        f"{report['flushes']} flushes: "
        f"{report['images_per_s']:.0f} images/s, "
        f"occupancy {report['occupancy_mean']:.2f}, "
        f"p50/p99 queue wait "
        f"{report['p50_queue_wait_s'] * 1e3:.1f}/"
        f"{report['p99_queue_wait_s'] * 1e3:.1f} ms, "
        f"shed rate {report['shed_rate']:.2%}"
    )
    served = next(t for t in loop.tickets if t.served)
    exact = bool(
        np.array_equal(
            client.decrypt_logits(served.result()),
            expected[served.image_index : served.image_index + 1],
        )
    )
    resolved = all(t.done() for t in loop.tickets)
    print(f"all tickets resolved: {resolved}   "
          f"served logits == plaintext: {exact}")
    if trace_json is not None:
        import json

        from repro.obs import trace_to_dict

        text = json.dumps(
            [trace_to_dict(t) for t in server.platform.tracer.traces], indent=2
        )
        if trace_json == "-":
            print(text)
        else:
            with open(str(trace_json), "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"{len(server.platform.tracer.traces)} serving trace(s) "
                  f"written to {trace_json}")
    return 0 if resolved and exact else 1


def main(argv: list[str]) -> int:
    opts, early = _parse(argv)
    if early is not None:
        return early
    for opt_name, flag in (
        ("trace_json", "--trace-json"),
        ("metrics_json", "--metrics-json"),
        ("flight_dump", "--flight-dump"),
    ):
        path = opts[opt_name]
        if path is not None and path != "-":
            # Fail before the training run, not after it.
            try:
                with open(str(path), "a", encoding="utf-8"):
                    pass
            except OSError as exc:
                print(f"error: cannot write {flag} path {path}: {exc}")
                return 2

    if opts["flight_dump"] is None:
        return _run(opts)
    from repro.obs import recorder as flight

    flight.enable(dump_on_error=True)
    try:
        return _run(opts)
    finally:
        text = flight.recorder().dump_json()
        if opts["flight_dump"] == "-":
            print(text)
        else:
            with open(str(opts["flight_dump"]), "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"flight recorder dump written to {opts['flight_dump']}")
        flight.disable()


def _run(opts: dict[str, object]) -> int:
    from repro.bench import format_trace
    from repro.core import (
        HybridPipeline,
        PlaintextPipeline,
        parameters_for_pipeline,
        train_paper_models,
    )
    from repro.obs import reconcile, trace_to_json

    if opts["paper"]:
        dims = dict(image_size=28, channels=6, kernel_size=5)
        training = dict(train_size=600, test_size=150, epochs=6)
    elif opts["smoke"]:
        dims = dict(image_size=10, channels=2, kernel_size=3)
        training = dict(train_size=200, test_size=40, epochs=2)
    else:
        dims = dict(image_size=12, channels=2, kernel_size=3)
        training = dict(train_size=600, test_size=150, epochs=6)
    if opts["serve_demo"]:
        return _serve_demo(
            training, dims, int(opts["fleet"]), trace_json=opts["trace_json"]
        )
    print("repro: Privacy-Preserving NN Inference via HE + SGX (ICDCS 2021)")
    print(f"dimensions: {dims}\n")
    models = train_paper_models(**training, **dims)
    quantized = models.quantized_sigmoid()
    params = parameters_for_pipeline(quantized, poly_degree=1024)
    print(f"parameters: {params.describe()}")

    pipeline = HybridPipeline(quantized, params, seed=7)
    images = models.dataset.test_images[:4]
    result = pipeline.infer(images)
    print(result.describe())
    reconcile(result.trace)
    print()
    print(format_trace(result.trace))

    if opts["trace_json"] is not None:
        text = trace_to_json(result.trace)
        if opts["trace_json"] == "-":
            print(text)
        else:
            with open(str(opts["trace_json"]), "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"\ntrace written to {opts['trace_json']}")

    plain = PlaintextPipeline(quantized).infer(images)
    exact = np.array_equal(result.logits, plain.logits)
    print(f"\nencrypted == plaintext logits: {exact}")
    print(f"predictions: {result.predictions.tolist()} "
          f"(labels: {models.dataset.test_labels[:4].tolist()})")

    if opts["metrics"] or opts["metrics_json"] is not None:
        from repro.obs import metrics

        print()
        _metrics_demo(models, quantized)
        if opts["metrics"]:
            print("\n== metrics (Prometheus exposition) ==")
            print(metrics.registry().render_prometheus())
        if opts["metrics_json"] is not None:
            text = metrics.registry().collect().to_json()
            if opts["metrics_json"] == "-":
                print(text)
            else:
                with open(str(opts["metrics_json"]), "w", encoding="utf-8") as fh:
                    fh.write(text + "\n")
                print(f"metrics snapshot written to {opts['metrics_json']}")
    return 0 if exact else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
