"""Structured tracing over the simulated clock.

A :class:`Tracer` emits nested :class:`Span` records -- pipeline -> stage ->
ecall -- each capturing, for its dynamic extent:

* real (measured) seconds and modeled SGX overhead seconds, read as deltas
  of the underlying :class:`~repro.sgx.clock.SimClock`;
* the overhead decomposition by cost-model category
  (``sgx_transition``, ``sgx_marshalling``, ``sgx_epc_compute``, paging, ...);
* homomorphic-operation deltas from an
  :class:`~repro.he.evaluator.OperationCounter`, when one is bound;
* enclave-crossing deltas from a
  :class:`~repro.sgx.sidechannel.SideChannelLog`, when one is bound.

Because spans read the same clock the cost model charges, the timing
invariant *sum of a span's real+overhead == the clock delta across it* holds
by construction, and the per-stage decomposition the paper's Tables I-V and
Fig. 8 report becomes an enforceable property instead of hand-rolled
``ClockWindow`` bookkeeping (see ``tests/obs/test_trace_reconciliation.py``).

Stages opened with :meth:`Tracer.stage` additionally time the block's
host-side wall clock through
:meth:`~repro.sgx.clock.SimClock.measure_real_exclusive`, so work done
*around* enclave crossings (argument slicing, result reassembly) is charged
exactly once -- the fix for the ``per_pixel`` blind spot where the
reassembly loop ran outside every measurement window.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import ReproError
from repro.obs import context as obs_context
from repro.obs import metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.he.evaluator import OperationCounter
    from repro.sgx.clock import SimClock
    from repro.sgx.sidechannel import SideChannelLog

#: Span kinds the schema defines (``attrs`` may extend, kinds may not).
SPAN_KINDS = ("pipeline", "stage", "ecall", "span")

#: Tracers with at least one open span, innermost last.  Lets layers with
#: no tracer in reach (the parallel worker pool's ack loop) attach
#: annotation spans to whatever span is currently open process-wide.
_ACTIVE_TRACERS: list["Tracer"] = []


def active_tracer() -> "Tracer | None":
    """The tracer owning the innermost open span, if any."""
    return _ACTIVE_TRACERS[-1] if _ACTIVE_TRACERS else None


@dataclass
class Span:
    """One traced region: clock/counter/crossing deltas plus children."""

    name: str
    kind: str = "span"
    real_s: float = 0.0
    overhead_s: float = 0.0
    overhead_by_category: dict[str, float] = field(default_factory=dict)
    op_counts: dict[str, int] = field(default_factory=dict)
    crossings: int = 0
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def elapsed_s(self) -> float:
        """Simulated seconds: real compute plus modeled SGX overhead."""
        return self.real_s + self.overhead_s

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, in open order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span":
        """First descendant (or self) with ``name``."""
        for span in self.walk():
            if span.name == name:
                return span
        raise KeyError(f"no span named {name!r} under {self.name!r}")

    def stages(self) -> list["Span"]:
        """Direct children of kind ``stage``, in execution order."""
        return [c for c in self.children if c.kind == "stage"]

    def ecalls(self) -> list["Span"]:
        """Every descendant ecall span, in execution order."""
        return [s for s in self.walk() if s.kind == "ecall"]

    def to_dict(self) -> dict:
        """JSON-ready form of the span tree (the export schema)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "real_s": self.real_s,
            "overhead_s": self.overhead_s,
            "elapsed_s": self.elapsed_s,
            "overhead_by_category": dict(self.overhead_by_category),
            "op_counts": dict(self.op_counts),
            "crossings": self.crossings,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }


class Tracer:
    """Emits nested spans over one :class:`~repro.sgx.clock.SimClock`.

    Args:
        clock: the simulated clock all spans read their deltas from.
        counter: default operation counter spans diff (overridable per span).
        side_channel: default side-channel log spans diff for crossings.

    Finished top-level spans accumulate in :attr:`traces` (bounded by
    ``max_traces``, oldest dropped first, so a long-lived server does not
    leak memory); nested spans attach to their parent.  One tracer serves
    one clock -- an :class:`~repro.sgx.enclave.SgxPlatform` owns one, and
    pipelines without a platform create their own.
    """

    def __init__(
        self,
        clock: "SimClock",
        counter: "OperationCounter | None" = None,
        side_channel: "SideChannelLog | None" = None,
        max_traces: int | None = 256,
    ) -> None:
        if max_traces is not None and max_traces < 1:
            raise ReproError("max_traces must be >= 1 (or None for unbounded)")
        self.clock = clock
        self.counter = counter
        self.side_channel = side_channel
        self.max_traces = max_traces
        self.traces: list[Span] = []
        self._stack: list[Span] = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(
        self,
        name: str,
        kind: str = "span",
        counter: "OperationCounter | None" = None,
        side_channel: "SideChannelLog | None" = None,
        **attrs,
    ):
        """Open a span; deltas are captured when the block exits.

        Args:
            name: span label (stage or ecall name, pipeline scheme, ...).
            kind: one of :data:`SPAN_KINDS`.
            counter: operation counter to diff (defaults to the tracer's).
            side_channel: log to diff for crossings (defaults to the
                tracer's).
            **attrs: free-form annotations stored on the span
                (``bytes_in``, ``trusted``, ...).
        """
        if kind not in SPAN_KINDS:
            raise ReproError(f"unknown span kind {kind!r}; expected one of {SPAN_KINDS}")
        counter = counter if counter is not None else self.counter
        side_channel = side_channel if side_channel is not None else self.side_channel
        span = Span(name=name, kind=kind, attrs=dict(attrs))
        # Every span opened while a request (or control-plane) context is
        # ambient is attributable; explicit trace_id/trace_ids attrs win.
        if "trace_id" not in span.attrs and "trace_ids" not in span.attrs:
            obs_context.stamp(span.attrs)
        start_real = self.clock.real_s
        start_overhead = self.clock.overhead_s
        start_categories = self.clock.snapshot()
        start_counts = dict(counter.counts) if counter is not None else None
        start_crossings = (
            side_channel.count("ecall") if side_channel is not None else None
        )
        self._stack.append(span)
        _ACTIVE_TRACERS.append(self)
        try:
            yield span
        finally:
            _ACTIVE_TRACERS.pop()
            popped = self._stack.pop()
            assert popped is span, "span stack corrupted"
            span.real_s = self.clock.real_s - start_real
            span.overhead_s = self.clock.overhead_s - start_overhead
            end_categories = self.clock.snapshot()
            span.overhead_by_category = {
                cat: delta
                for cat, total in end_categories.items()
                if (delta := total - start_categories.get(cat, 0.0)) > 0.0
                and cat != "compute"
            }
            if counter is not None:
                span.op_counts = {
                    op: delta
                    for op, total in counter.counts.items()
                    if (delta := total - start_counts.get(op, 0)) > 0
                }
            if side_channel is not None:
                span.crossings = side_channel.count("ecall") - start_crossings
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.traces.append(span)
                if self.max_traces is not None and len(self.traces) > self.max_traces:
                    del self.traces[: len(self.traces) - self.max_traces]
                if span.kind == "pipeline":
                    # Per-run traces roll up into the process-wide metrics
                    # registry so aggregate and trace views reconcile.
                    metrics.registry().record_trace(span)

    @contextmanager
    def stage(self, name: str, **kwargs):
        """A ``stage`` span that also measures the block's host wall time.

        Uses :meth:`SimClock.measure_real_exclusive`, so enclave crossings
        inside the stage are not double-counted while any host-side work
        around them (e.g. the per-pixel reassembly loop) is.
        """
        with self.span(name, kind="stage", **kwargs) as span:
            with self.clock.measure_real_exclusive():
                yield span

    def last_trace(self) -> Span:
        """The most recently finished top-level span."""
        if not self.traces:
            raise ReproError("tracer has no finished top-level spans")
        return self.traces[-1]

    def reset(self) -> None:
        """Drop finished traces (open spans are unaffected)."""
        self.traces.clear()


def reconcile(span: Span, rel_tol: float = 1e-6, abs_tol: float = 1e-9) -> None:
    """Assert the span tree's timing invariant, raising on violation.

    Checks that every parent's real/overhead totals are at least the sum of
    its children's (children are disjoint sub-intervals of the parent's
    clock window) and that crossings are consistent.  Pipelines' regression
    tests call this on every trace they emit.
    """
    for parent in span.walk():
        if not parent.children:
            continue
        child_real = sum(c.real_s for c in parent.children)
        child_overhead = sum(c.overhead_s for c in parent.children)
        child_crossings = sum(c.crossings for c in parent.children)
        tol = max(abs_tol, rel_tol * max(abs(parent.real_s), abs(child_real)))
        if child_real > parent.real_s + tol:
            raise ReproError(
                f"span {parent.name!r}: children real {child_real:.9f}s exceed "
                f"parent {parent.real_s:.9f}s"
            )
        tol = max(abs_tol, rel_tol * max(abs(parent.overhead_s), abs(child_overhead)))
        if child_overhead > parent.overhead_s + tol:
            raise ReproError(
                f"span {parent.name!r}: children overhead {child_overhead:.9f}s "
                f"exceed parent {parent.overhead_s:.9f}s"
            )
        if parent.crossings and child_crossings > parent.crossings:
            raise ReproError(
                f"span {parent.name!r}: children count {child_crossings} crossings, "
                f"parent only {parent.crossings}"
            )
