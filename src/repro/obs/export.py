"""Trace exporters: JSON documents and flat Prometheus-style metrics.

Two consumers, two shapes:

* :func:`trace_to_json` -- the full span tree, schema documented in
  DESIGN.md, for offline inspection and the ``python -m repro --trace-json``
  smoke path;
* :func:`metrics_from_trace` -- a flat ``{metric_name: value}`` dict using
  Prometheus exposition-style names with ``{label="value"}`` selectors, the
  form the benchmark tables and a scrape endpoint would consume directly.
  :func:`render_prometheus` turns that dict into exposition text lines.
"""

from __future__ import annotations

import json

from repro.obs.tracer import Span


def trace_to_dict(span: Span) -> dict:
    """The span tree as a JSON-ready dict (alias of :meth:`Span.to_dict`)."""
    return span.to_dict()


def trace_to_json(span: Span, indent: int | None = 2) -> str:
    """Serialize a span tree to a JSON document."""
    return json.dumps(span.to_dict(), indent=indent)


def trace_from_dict(doc: dict) -> Span:
    """Rebuild a span tree from its :func:`trace_to_dict` form."""
    return Span(
        name=doc["name"],
        kind=doc["kind"],
        real_s=doc["real_s"],
        overhead_s=doc["overhead_s"],
        overhead_by_category=dict(doc.get("overhead_by_category", {})),
        op_counts=dict(doc.get("op_counts", {})),
        crossings=doc.get("crossings", 0),
        attrs=dict(doc.get("attrs", {})),
        children=[trace_from_dict(c) for c in doc.get("children", [])],
    )


def trace_from_json(text: str) -> Span:
    """Rebuild a span tree from a :func:`trace_to_json` document."""
    return trace_from_dict(json.loads(text))


def _labels(**labels: str) -> str:
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()) if v != "")
    return "{" + inner + "}" if inner else ""


def metrics_from_trace(span: Span, prefix: str = "repro") -> dict[str, float]:
    """Flatten one pipeline trace into a Prometheus-style metrics dict.

    Emitted families (``p`` = the root span's name, i.e. the scheme label):

    * ``{prefix}_pipeline_real_seconds{pipeline=p}`` / ``_overhead_seconds``
    * ``{prefix}_pipeline_crossings_total{pipeline=p}``
    * ``{prefix}_stage_real_seconds{pipeline=p,stage=s}`` (+ overhead), one
      per direct ``stage`` child;
    * ``{prefix}_overhead_seconds{pipeline=p,category=c}`` from the root's
      cost-model decomposition;
    * ``{prefix}_he_ops_total{pipeline=p,op=o}`` from the root's operation
      deltas;
    * ``{prefix}_ecall_count{pipeline=p,ecall=e}`` and
      ``{prefix}_ecall_bytes_total{pipeline=p,ecall=e}`` aggregated over all
      descendant ecall spans.
    """
    pipeline = span.name
    metrics: dict[str, float] = {
        f"{prefix}_pipeline_real_seconds{_labels(pipeline=pipeline)}": span.real_s,
        f"{prefix}_pipeline_overhead_seconds{_labels(pipeline=pipeline)}": span.overhead_s,
        f"{prefix}_pipeline_crossings_total{_labels(pipeline=pipeline)}": float(
            span.crossings
        ),
    }
    for stage in span.stages():
        labels = _labels(pipeline=pipeline, stage=stage.name)
        metrics[f"{prefix}_stage_real_seconds{labels}"] = stage.real_s
        metrics[f"{prefix}_stage_overhead_seconds{labels}"] = stage.overhead_s
    for category, seconds in sorted(span.overhead_by_category.items()):
        labels = _labels(pipeline=pipeline, category=category)
        metrics[f"{prefix}_overhead_seconds{labels}"] = seconds
    for op, count in sorted(span.op_counts.items()):
        labels = _labels(pipeline=pipeline, op=op)
        metrics[f"{prefix}_he_ops_total{labels}"] = float(count)
    calls: dict[str, int] = {}
    bytes_crossed: dict[str, int] = {}
    for ecall in span.ecalls():
        calls[ecall.name] = calls.get(ecall.name, 0) + 1
        moved = int(ecall.attrs.get("bytes_in", 0)) + int(ecall.attrs.get("bytes_out", 0))
        bytes_crossed[ecall.name] = bytes_crossed.get(ecall.name, 0) + moved
    for name in sorted(calls):
        labels = _labels(pipeline=pipeline, ecall=name)
        metrics[f"{prefix}_ecall_count{labels}"] = float(calls[name])
        metrics[f"{prefix}_ecall_bytes_total{labels}"] = float(bytes_crossed[name])
    return metrics


def render_prometheus(metrics: dict[str, float]) -> str:
    """Metrics dict as Prometheus exposition text (one sample per line)."""
    return "\n".join(f"{name} {value:.9g}" for name, value in metrics.items())
