"""Trace exporters: JSON documents and flat Prometheus-style metrics.

Two consumers, two shapes:

* :func:`trace_to_json` -- the full span tree, schema documented in
  DESIGN.md, for offline inspection and the ``python -m repro --trace-json``
  smoke path;
* :func:`metrics_from_trace` -- a flat ``{metric_name: value}`` dict using
  Prometheus exposition-style names with ``{label="value"}`` selectors, the
  form the benchmark tables and a scrape endpoint would consume directly.
  :func:`render_prometheus` turns that dict into exposition text (with
  ``# HELP``/``# TYPE`` metadata per family).

Both flat views are built from one structured intermediate,
:func:`samples_from_trace`, which
:meth:`repro.obs.metrics.MetricsRegistry.record_trace` replays as counter
increments -- the construction that keeps the single-trace view and the
aggregate registry reconciled sample-for-sample.
"""

from __future__ import annotations

import json
import math
import re

from repro.errors import MetricsError, TraceFormatError
from repro.obs.metrics import escape_help, format_labels
from repro.obs.tracer import SPAN_KINDS, Span

#: Exposition metadata for the trace-derived families (unprefixed names).
TRACE_FAMILY_HELP = {
    "pipeline_real_seconds": "Measured compute seconds per pipeline trace.",
    "pipeline_overhead_seconds": "Modeled SGX overhead seconds per pipeline trace.",
    "pipeline_crossings_total": "Enclave crossings per pipeline trace.",
    "stage_real_seconds": "Measured compute seconds per pipeline stage.",
    "stage_overhead_seconds": "Modeled SGX overhead seconds per pipeline stage.",
    "overhead_seconds": "SGX overhead decomposition by cost-model category.",
    "he_ops_total": "Scalar homomorphic operations by kind.",
    "ecall_count": "ECALL invocations by entry point.",
    "ecall_bytes_total": "Bytes marshalled across the boundary by entry point.",
}

#: All trace-derived families accumulate monotonically across traces.
TRACE_FAMILY_TYPES = {name: "counter" for name in TRACE_FAMILY_HELP}


def trace_to_dict(span: Span) -> dict:
    """The span tree as a JSON-ready dict (alias of :meth:`Span.to_dict`)."""
    return span.to_dict()


def trace_to_json(span: Span, indent: int | None = 2) -> str:
    """Serialize a span tree to a JSON document."""
    return json.dumps(span.to_dict(), indent=indent)


def trace_from_dict(doc: dict) -> Span:
    """Rebuild a span tree from its :func:`trace_to_dict` form.

    Raises:
        TraceFormatError: the document is missing required fields or names
            a ``kind`` outside :data:`~repro.obs.tracer.SPAN_KINDS` -- a
            hand-edited or corrupted export must fail loudly instead of
            silently rebuilding a tree no tracer could have produced.
    """
    if not isinstance(doc, dict):
        raise TraceFormatError(f"span document must be a dict, got {type(doc).__name__}")
    missing = [key for key in ("name", "kind", "real_s", "overhead_s") if key not in doc]
    if missing:
        raise TraceFormatError(f"span document is missing required fields {missing}")
    kind = doc["kind"]
    if kind not in SPAN_KINDS:
        raise TraceFormatError(
            f"unknown span kind {kind!r} in trace document; expected one of {SPAN_KINDS}"
        )
    return Span(
        name=doc["name"],
        kind=kind,
        real_s=doc["real_s"],
        overhead_s=doc["overhead_s"],
        overhead_by_category=dict(doc.get("overhead_by_category", {})),
        op_counts=dict(doc.get("op_counts", {})),
        crossings=doc.get("crossings", 0),
        attrs=dict(doc.get("attrs", {})),
        children=[trace_from_dict(c) for c in doc.get("children", [])],
    )


def trace_from_json(text: str) -> Span:
    """Rebuild a span tree from a :func:`trace_to_json` document."""
    return trace_from_dict(json.loads(text))


def _labels(**labels: str) -> str:
    """Exposition label selector; values are escaped (backslash, quote,
    newline), so hostile span or model names cannot break the line format."""
    return format_labels(labels)


def samples_from_trace(
    span: Span, prefix: str = "repro"
) -> list[tuple[str, dict[str, str], float]]:
    """One pipeline trace as structured ``(family, labels, value)`` samples.

    The single source both flat views derive from: :func:`metrics_from_trace`
    formats these into exposition-keyed floats, and
    :meth:`~repro.obs.metrics.MetricsRegistry.record_trace` replays them as
    counter increments.

    Emitted families (``p`` = the root span's name, i.e. the scheme label):

    * ``{prefix}_pipeline_real_seconds{pipeline=p}`` / ``_overhead_seconds``
    * ``{prefix}_pipeline_crossings_total{pipeline=p}``
    * ``{prefix}_stage_real_seconds{pipeline=p,stage=s}`` (+ overhead), one
      per direct ``stage`` child;
    * ``{prefix}_overhead_seconds{pipeline=p,category=c}`` from the root's
      cost-model decomposition;
    * ``{prefix}_he_ops_total{pipeline=p,op=o}`` from the root's operation
      deltas;
    * ``{prefix}_ecall_count{pipeline=p,ecall=e}`` and
      ``{prefix}_ecall_bytes_total{pipeline=p,ecall=e}`` aggregated over all
      descendant ecall spans.
    """
    pipeline = span.name
    samples: list[tuple[str, dict[str, str], float]] = [
        (f"{prefix}_pipeline_real_seconds", {"pipeline": pipeline}, span.real_s),
        (f"{prefix}_pipeline_overhead_seconds", {"pipeline": pipeline}, span.overhead_s),
        (
            f"{prefix}_pipeline_crossings_total",
            {"pipeline": pipeline},
            float(span.crossings),
        ),
    ]
    for stage in span.stages():
        labels = {"pipeline": pipeline, "stage": stage.name}
        samples.append((f"{prefix}_stage_real_seconds", labels, stage.real_s))
        samples.append((f"{prefix}_stage_overhead_seconds", labels, stage.overhead_s))
    for category, seconds in sorted(span.overhead_by_category.items()):
        samples.append(
            (f"{prefix}_overhead_seconds", {"pipeline": pipeline, "category": category}, seconds)
        )
    for op, count in sorted(span.op_counts.items()):
        samples.append(
            (f"{prefix}_he_ops_total", {"pipeline": pipeline, "op": op}, float(count))
        )
    calls: dict[str, int] = {}
    bytes_crossed: dict[str, int] = {}
    for ecall in span.ecalls():
        calls[ecall.name] = calls.get(ecall.name, 0) + 1
        moved = int(ecall.attrs.get("bytes_in", 0)) + int(ecall.attrs.get("bytes_out", 0))
        bytes_crossed[ecall.name] = bytes_crossed.get(ecall.name, 0) + moved
    for name in sorted(calls):
        labels = {"pipeline": pipeline, "ecall": name}
        samples.append((f"{prefix}_ecall_count", labels, float(calls[name])))
        samples.append(
            (f"{prefix}_ecall_bytes_total", labels, float(bytes_crossed[name]))
        )
    return samples


def metrics_from_trace(span: Span, prefix: str = "repro") -> dict[str, float]:
    """Flatten one pipeline trace into a Prometheus-style metrics dict.

    See :func:`samples_from_trace` for the emitted families; keys here are
    ``family{label="value",...}`` exposition strings.
    """
    return {
        f"{family}{format_labels(labels)}": value
        for family, labels, value in samples_from_trace(span, prefix)
    }


def _family_of(sample_key: str) -> str:
    return sample_key.split("{", 1)[0]


def _family_metadata(family: str) -> tuple[str, str]:
    """(help, type) for one family name, prefix-insensitively."""
    for known, help_text in TRACE_FAMILY_HELP.items():
        if family.endswith(known):
            return help_text, TRACE_FAMILY_TYPES[known]
    inferred = "counter" if family.endswith(("_total", "_count")) else "gauge"
    return family, inferred


_BUCKET_KEY = re.compile(r"^(?P<family>.+)_bucket\{(?P<labels>.*)\}$")
_LE_LABEL = re.compile(r'(?:^|,)le="(?P<le>[^"]*)"')


def validate_histograms(metrics: dict[str, float]) -> None:
    """Consistency pass over flattened histogram samples.

    For every ``<family>_bucket{...,le=...}`` series in ``metrics``:
    cumulative bucket counts must be monotone non-decreasing in bound
    order, and when the matching ``<family>_count{...}`` sample is present
    it must equal the top (``+Inf``) bucket.  A violation means the
    exporter (or a hand-edited snapshot) would publish a histogram no
    Prometheus query could interpret, so it raises
    :class:`~repro.errors.MetricsError` instead of rendering garbage.
    """
    series: dict[tuple[str, str], list[tuple[float, str, float]]] = {}
    for key, value in metrics.items():
        match = _BUCKET_KEY.match(key)
        if match is None:
            continue
        labels = match.group("labels")
        le_match = _LE_LABEL.search(labels)
        if le_match is None:
            raise MetricsError(f"histogram bucket sample without le label: {key}")
        le_text = le_match.group("le")
        bound = math.inf if le_text == "+Inf" else float(le_text)
        bare = _LE_LABEL.sub("", labels).strip(",")
        series.setdefault((match.group("family"), bare), []).append(
            (bound, le_text, value)
        )
    for (family, bare), buckets in series.items():
        buckets.sort(key=lambda b: b[0])
        previous = -math.inf
        for bound, le_text, count in buckets:
            if count < previous:
                raise MetricsError(
                    f"histogram {family}{{{bare}}}: bucket le={le_text} count "
                    f"{count:g} below preceding bucket {previous:g} (not monotone)"
                )
            previous = count
        selector = f"{{{bare}}}" if bare else ""
        total = metrics.get(f"{family}_count{selector}")
        if total is not None and buckets and buckets[-1][2] != total:
            raise MetricsError(
                f"histogram {family}{{{bare}}}: _count {total:g} != top bucket "
                f"{buckets[-1][2]:g}"
            )


def render_prometheus(metrics: dict[str, float]) -> str:
    """Metrics dict as Prometheus exposition text.

    Emits ``# HELP`` and ``# TYPE`` metadata once per family (samples of
    one family are grouped, first-seen family order preserved) followed by
    one sample line per entry.  Family types come from
    :data:`TRACE_FAMILY_TYPES` when known and the ``_total``/``_count``
    suffix heuristic otherwise.  Histogram samples are validated first
    (:func:`validate_histograms`).
    """
    validate_histograms(metrics)
    by_family: dict[str, list[tuple[str, float]]] = {}
    for key, value in metrics.items():
        by_family.setdefault(_family_of(key), []).append((key, value))
    lines: list[str] = []
    for family, samples in by_family.items():
        help_text, family_type = _family_metadata(family)
        lines.append(f"# HELP {family} {escape_help(help_text)}")
        lines.append(f"# TYPE {family} {family_type}")
        for key, value in samples:
            lines.append(f"{key} {value:.9g}")
    return "\n".join(lines)
