"""Observability: structured tracing + metrics over the simulated clock.

``repro.obs`` replaces the ad-hoc ``ClockWindow`` + ``StageTiming``
bookkeeping the pipelines used to hand-roll.  A :class:`Tracer` bound to a
:class:`~repro.sgx.clock.SimClock` emits nested :class:`Span` records
(pipeline -> stage -> ecall) capturing real seconds, modeled SGX overhead by
category, homomorphic-operation deltas, and enclave-crossing counts; traces
export to JSON or a flat Prometheus-style metrics dict.

The aggregate half is :mod:`repro.obs.metrics`: a process-wide
:class:`MetricsRegistry` of counters, gauges and histograms that every
layer (serve scheduler, fault/recovery, SGX substrate, HE substrate)
instruments, with full Prometheus exposition and a JSON
:class:`MetricsSnapshot`.  Finished ``pipeline`` traces roll up into the
registry automatically (:meth:`MetricsRegistry.record_trace`), so the
per-run trace view and the fleet metrics view reconcile by construction.

See DESIGN.md ("Observability" and "Metrics & regression gating") for the
span schema, the timing invariant, and the metric family inventory.
"""

from repro.obs.context import (
    TraceContext,
    activate,
    current,
    current_trace_ids,
    derive_trace_id,
    resolve_trace_ids,
    spans_without_context,
    stamp,
)
from repro.obs.export import (
    metrics_from_trace,
    render_prometheus,
    samples_from_trace,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
    validate_histograms,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    registry,
    set_registry,
    use_registry,
)
from repro.obs.profile import (
    NodeProfile,
    ProfileReport,
    profile_from_trace,
    profile_from_traces,
    render_timeline,
)
# NOTE: the ``recorder()`` accessor is deliberately *not* re-exported here:
# binding that name in the package namespace would shadow the
# ``repro.obs.recorder`` submodule attribute that instrumented layers import
# (``from repro.obs import recorder``).  Use the submodule directly.
from repro.obs.recorder import FlightEvent, FlightRecorder, use_recorder
from repro.obs.tracer import SPAN_KINDS, Span, Tracer, active_tracer, reconcile

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NodeProfile",
    "ProfileReport",
    "SPAN_KINDS",
    "Span",
    "TraceContext",
    "Tracer",
    "activate",
    "active_tracer",
    "current",
    "current_trace_ids",
    "derive_trace_id",
    "metrics_from_trace",
    "profile_from_trace",
    "profile_from_traces",
    "reconcile",
    "registry",
    "render_prometheus",
    "render_timeline",
    "resolve_trace_ids",
    "samples_from_trace",
    "set_registry",
    "spans_without_context",
    "stamp",
    "trace_from_dict",
    "trace_from_json",
    "trace_to_dict",
    "trace_to_json",
    "use_recorder",
    "validate_histograms",
]
