"""Observability: structured tracing + metrics over the simulated clock.

``repro.obs`` replaces the ad-hoc ``ClockWindow`` + ``StageTiming``
bookkeeping the pipelines used to hand-roll.  A :class:`Tracer` bound to a
:class:`~repro.sgx.clock.SimClock` emits nested :class:`Span` records
(pipeline -> stage -> ecall) capturing real seconds, modeled SGX overhead by
category, homomorphic-operation deltas, and enclave-crossing counts; traces
export to JSON or a flat Prometheus-style metrics dict.

The aggregate half is :mod:`repro.obs.metrics`: a process-wide
:class:`MetricsRegistry` of counters, gauges and histograms that every
layer (serve scheduler, fault/recovery, SGX substrate, HE substrate)
instruments, with full Prometheus exposition and a JSON
:class:`MetricsSnapshot`.  Finished ``pipeline`` traces roll up into the
registry automatically (:meth:`MetricsRegistry.record_trace`), so the
per-run trace view and the fleet metrics view reconcile by construction.

See DESIGN.md ("Observability" and "Metrics & regression gating") for the
span schema, the timing invariant, and the metric family inventory.
"""

from repro.obs.export import (
    metrics_from_trace,
    render_prometheus,
    samples_from_trace,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    registry,
    set_registry,
    use_registry,
)
from repro.obs.tracer import SPAN_KINDS, Span, Tracer, reconcile

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SPAN_KINDS",
    "Span",
    "Tracer",
    "metrics_from_trace",
    "reconcile",
    "registry",
    "render_prometheus",
    "samples_from_trace",
    "set_registry",
    "trace_from_dict",
    "trace_from_json",
    "trace_to_dict",
    "trace_to_json",
    "use_registry",
]
