"""Observability: structured tracing + metrics over the simulated clock.

``repro.obs`` replaces the ad-hoc ``ClockWindow`` + ``StageTiming``
bookkeeping the pipelines used to hand-roll.  A :class:`Tracer` bound to a
:class:`~repro.sgx.clock.SimClock` emits nested :class:`Span` records
(pipeline -> stage -> ecall) capturing real seconds, modeled SGX overhead by
category, homomorphic-operation deltas, and enclave-crossing counts; traces
export to JSON or a flat Prometheus-style metrics dict.

See DESIGN.md ("Observability") for the span schema and the timing
invariant the layer makes enforceable.
"""

from repro.obs.export import (
    metrics_from_trace,
    render_prometheus,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)
from repro.obs.tracer import SPAN_KINDS, Span, Tracer, reconcile

__all__ = [
    "SPAN_KINDS",
    "Span",
    "Tracer",
    "metrics_from_trace",
    "reconcile",
    "render_prometheus",
    "trace_from_dict",
    "trace_from_json",
    "trace_to_dict",
    "trace_to_json",
]
