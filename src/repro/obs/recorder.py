"""Bounded flight recorder: the last N structured events before a crash.

Metrics aggregate and traces nest, but neither answers "what exactly
happened, in order, in the seconds before this request died".  The
:class:`FlightRecorder` is a bounded ring buffer of structured events --
admission, flush start/done, fault fires, failovers, pass refusals,
worker deaths and replays -- each with a severity, a monotone sequence
number and a caller-supplied deterministic timestamp (the serving loop's
virtual ``now_s`` or the platform's ``SimClock``; the recorder itself
never reads a wall clock, so chaos tests can pin exact event sequences).

The process-wide accessor mirrors :mod:`repro.obs.metrics`: recording is
**disabled by default** and every hook routes through a shared no-op
recorder, so the disarmed hot path costs one ``is None`` check and the
bit-identity contract (logits, ciphertext bytes, RNG draws) is untouched
either way.  Enable with :func:`enable`, :func:`use_recorder`, the
``REPRO_FLIGHT_RECORDER=1`` environment variable, or
``python -m repro --flight-dump``.

On terminal errors (``RecoveryExhausted``, bench-invariant violations)
instrumented sites call :func:`terminal`, which records an ``error``
event and -- when the recorder was built with ``dump_on_error=True`` --
writes the ordered JSON dump to stderr so the post-mortem ships with the
traceback.
"""

from __future__ import annotations

import json
import os
import sys
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Event severities, least to most severe.
SEVERITIES = ("debug", "info", "warn", "error")

#: Default ring capacity (events retained).
DEFAULT_CAPACITY = 512


@dataclass(frozen=True)
class FlightEvent:
    """One recorded event: what happened, when, and how bad it was."""

    seq: int
    t_s: float | None
    severity: str
    kind: str
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        doc = {"seq": self.seq, "t_s": self.t_s, "severity": self.severity,
               "kind": self.kind}
        doc.update(self.fields)
        return doc


class FlightRecorder:
    """Bounded ring of :class:`FlightEvent`, ordered by monotone ``seq``.

    Args:
        capacity: events retained (oldest dropped first).
        dump_on_error: write the full dump to stderr when
            :meth:`terminal` fires (the ``--flight-dump`` CLI and the
            supervisor's ``RecoveryExhausted`` path use this).
    """

    enabled = True

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, *, dump_on_error: bool = False
    ) -> None:
        if capacity < 1:
            raise ReproError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.dump_on_error = dump_on_error
        self._events: deque[FlightEvent] = deque(maxlen=capacity)
        self._seq = 0

    def record(
        self, kind: str, *, severity: str = "info", t_s: float | None = None, **fields
    ) -> FlightEvent:
        """Append one event; ``t_s`` is the caller's deterministic clock."""
        if severity not in SEVERITIES:
            raise ReproError(
                f"unknown severity {severity!r}; expected one of {SEVERITIES}"
            )
        self._seq += 1
        event = FlightEvent(
            seq=self._seq,
            t_s=None if t_s is None else float(t_s),
            severity=severity,
            kind=str(kind),
            fields=fields,
        )
        self._events.append(event)
        return event

    def terminal(
        self, kind: str, *, t_s: float | None = None, stream=None, **fields
    ) -> FlightEvent:
        """Record a terminal ``error`` event and (optionally) dump.

        Called at unrecoverable points -- ``RecoveryExhausted``, bench
        invariant violations -- so the last-N context rides along with
        the raised error.
        """
        event = self.record(kind, severity="error", t_s=t_s, **fields)
        if self.dump_on_error:
            out = stream if stream is not None else sys.stderr
            out.write(f"=== flight recorder dump ({kind}) ===\n")
            out.write(self.dump_json() + "\n")
        return event

    def events(self) -> list[FlightEvent]:
        """Retained events, oldest first (``seq`` strictly increasing)."""
        return list(self._events)

    def kinds(self) -> list[str]:
        """Just the event kinds, in order -- what chaos tests pin."""
        return [e.kind for e in self._events]

    def dump(self) -> list[dict]:
        """JSON-ready ordered event list."""
        return [e.to_dict() for e in self._events]

    def dump_json(self) -> str:
        """The dump as pretty-printed JSON text."""
        return json.dumps(self.dump(), indent=2, default=str)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class _NullRecorder:
    """Shared no-op standing in when recording is disabled."""

    enabled = False
    dump_on_error = False
    capacity = 0

    def record(self, kind, *, severity="info", t_s=None, **fields):
        return None

    def terminal(self, kind, *, t_s=None, stream=None, **fields):
        return None

    def events(self):
        return []

    def kinds(self):
        return []

    def dump(self):
        return []

    def dump_json(self):
        return "[]"

    def clear(self):
        return None

    def __len__(self):
        return 0


_NULL = _NullRecorder()
_recorder: FlightRecorder | None = None


def recorder() -> FlightRecorder | _NullRecorder:
    """The process-wide recorder (a shared no-op when disabled)."""
    return _recorder if _recorder is not None else _NULL


def set_recorder(rec: FlightRecorder | None) -> FlightRecorder | None:
    """Install ``rec`` process-wide (None disables); returns the previous."""
    global _recorder
    previous = _recorder
    _recorder = rec
    return previous


def enable(
    capacity: int = DEFAULT_CAPACITY, *, dump_on_error: bool = False
) -> FlightRecorder:
    """Install and return a fresh enabled recorder."""
    rec = FlightRecorder(capacity, dump_on_error=dump_on_error)
    set_recorder(rec)
    return rec


def disable() -> FlightRecorder | None:
    """Disable recording; returns the recorder that was installed."""
    return set_recorder(None)


@contextmanager
def use_recorder(rec: FlightRecorder | None = None):
    """Install ``rec`` (default: a fresh recorder) for the block."""
    if rec is None:
        rec = FlightRecorder()
    previous = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)


def record(kind: str, *, severity: str = "info", t_s: float | None = None, **fields):
    """Record on the process-wide recorder (no-op when disabled)."""
    return recorder().record(kind, severity=severity, t_s=t_s, **fields)


def terminal(kind: str, *, t_s: float | None = None, stream=None, **fields):
    """Terminal-error record + optional dump on the process recorder."""
    return recorder().terminal(kind, t_s=t_s, stream=stream, **fields)


if os.environ.get("REPRO_FLIGHT_RECORDER", "").lower() in ("1", "on", "true", "yes"):
    enable()


__all__ = [
    "DEFAULT_CAPACITY",
    "SEVERITIES",
    "FlightEvent",
    "FlightRecorder",
    "disable",
    "enable",
    "record",
    "recorder",
    "set_recorder",
    "terminal",
    "use_recorder",
]
