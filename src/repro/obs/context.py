"""Deterministic trace-context propagation across the serving plane.

A :class:`TraceContext` names one request's place in a process-wide trace
tree: a ``trace_id`` derived deterministically from the issuing client's
session entropy and per-client request counter (no wall clock, no global
randomness -- the same workload always produces the same ids), plus the
``parent_id`` of the span that issued it.  The context rides on
:class:`repro.serve.api.InferenceRequest` / ``InferenceResult``, is
injected by :class:`repro.client.AttestedClient`, threaded through the
serving loop, fleet routing, batch failover, ECALL boundaries and the
parallel worker pool's work-unit headers -- so every span in a trace can
be attributed to the request, replica and generation that produced it.

Propagation rules (DESIGN.md §17):

* Per-request spans (``serve/request``, direct ``infer`` pipelines) carry
  ``attrs["trace_id"]`` / ``attrs["trace_parent"]``.
* Shared spans (a packed flush pipeline serving several requests) carry
  ``attrs["trace_ids"]`` -- the ordered list of member trace ids.
* Every other span *inherits* its nearest annotated ancestor, so the
  whole tree resolves without stamping every leaf
  (:func:`resolve_trace_ids` / :func:`spans_without_context`).

The active-context stack (:func:`activate` / :func:`current`) is how
layers that never see the request object (``EnclaveHandle.ecall``, the
worker pool) pick up the ambient contexts.  With nothing active the stack
is empty and every hook is a cheap no-op -- context propagation adds
attrs only and never touches ciphertext bytes, RNG draws or dispatch
order.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator

from repro.errors import TraceFormatError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Span

#: Length (hex chars) of a derived trace id.
TRACE_ID_HEX = 16

_HEX = frozenset("0123456789abcdef")


def derive_trace_id(seed: bytes | str | int, counter: int) -> str:
    """Deterministic trace id from a request seed and a counter.

    The seed is whatever uniquely names the issuer (the attested client's
    session entropy, a loop's model name); the counter is the issuer's
    monotone request number.  SHA-256 keeps ids stable across processes.
    """
    if isinstance(seed, str):
        seed = seed.encode("utf-8")
    elif isinstance(seed, int):
        seed = str(seed).encode("ascii")
    digest = hashlib.sha256(seed + b":" + str(int(counter)).encode("ascii"))
    return digest.hexdigest()[:TRACE_ID_HEX]


@dataclass(frozen=True)
class TraceContext:
    """One request's identity in the process-wide trace tree.

    Attributes:
        trace_id: deterministic hex id (:func:`derive_trace_id`).
        parent_id: name of the span that issued this context (the
            client-side request span, or the layer that last re-parented
            it via :meth:`child`).
    """

    trace_id: str
    parent_id: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.trace_id, str) or not self.trace_id:
            raise TraceFormatError("TraceContext.trace_id must be a non-empty string")
        if len(self.trace_id) != TRACE_ID_HEX or not _HEX.issuperset(self.trace_id):
            raise TraceFormatError(
                f"TraceContext.trace_id must be {TRACE_ID_HEX} lowercase hex "
                f"chars, got {self.trace_id!r}"
            )
        if not isinstance(self.parent_id, str):
            raise TraceFormatError("TraceContext.parent_id must be a string")

    @classmethod
    def derive(
        cls, seed: bytes | str | int, counter: int, parent_id: str | None = None
    ) -> "TraceContext":
        """Context for the ``counter``-th request issued under ``seed``."""
        if parent_id is None:
            parent_id = f"client/request-{int(counter)}"
        return cls(trace_id=derive_trace_id(seed, counter), parent_id=parent_id)

    def child(self, parent_id: str) -> "TraceContext":
        """Same trace, re-parented under ``parent_id`` (a span name)."""
        return replace(self, parent_id=parent_id)

    def to_wire(self) -> dict:
        """JSON-ready form for work-unit headers and result metadata."""
        return {"trace_id": self.trace_id, "parent_id": self.parent_id}

    @classmethod
    def from_wire(cls, doc) -> "TraceContext":
        """Parse a wire dict, rejecting malformed input as
        :class:`~repro.errors.TraceFormatError`."""
        if not isinstance(doc, dict):
            raise TraceFormatError(
                f"trace context must be a mapping, got {type(doc).__name__}"
            )
        unknown = set(doc) - {"trace_id", "parent_id"}
        if unknown:
            raise TraceFormatError(f"unknown trace context fields {sorted(unknown)}")
        if "trace_id" not in doc:
            raise TraceFormatError("trace context missing required field 'trace_id'")
        return cls(trace_id=doc["trace_id"], parent_id=doc.get("parent_id", ""))


# ----------------------------------------------------------------------
# ambient context stack
# ----------------------------------------------------------------------
_STACK: list[tuple[TraceContext, ...]] = []


@contextmanager
def activate(*contexts: "TraceContext | None"):
    """Make ``contexts`` ambient for the block (``None`` entries dropped).

    A packed flush activates every member request's context at once;
    ECALL spans and parallel work units opened inside pick them up via
    :func:`current`.  With no non-None context the block is a no-op.
    """
    group = tuple(c for c in contexts if c is not None)
    if not group:
        yield ()
        return
    _STACK.append(group)
    try:
        yield group
    finally:
        _STACK.pop()


def current() -> tuple[TraceContext, ...]:
    """The innermost active context group (empty tuple when none)."""
    return _STACK[-1] if _STACK else ()


def current_trace_ids() -> tuple[str, ...]:
    """Trace ids of the innermost active group, in activation order."""
    return tuple(c.trace_id for c in current())


def wire_current() -> list[dict]:
    """The active group as wire dicts (for work-unit headers)."""
    return [c.to_wire() for c in current()]


def stamp(attrs: dict) -> None:
    """Stamp the active context group onto a span's ``attrs`` in place.

    One active context -> ``trace_id`` / ``trace_parent``; several (a
    shared span) -> ``trace_ids``.  No active context -> no-op, so
    stamping is safe on every span-open site.
    """
    group = current()
    if not group:
        return
    if len(group) == 1:
        attrs["trace_id"] = group[0].trace_id
        if group[0].parent_id:
            attrs["trace_parent"] = group[0].parent_id
    else:
        attrs["trace_ids"] = [c.trace_id for c in group]


# ----------------------------------------------------------------------
# span-tree resolution
# ----------------------------------------------------------------------
def _own_ids(span: "Span") -> tuple[str, ...]:
    one = span.attrs.get("trace_id")
    many = span.attrs.get("trace_ids")
    if one is not None:
        return (str(one),)
    if many:
        return tuple(str(t) for t in many)
    return ()


def resolve_trace_ids(root: "Span") -> Iterator[tuple["Span", tuple[str, ...]]]:
    """Yield ``(span, trace_ids)`` for the whole tree, with inheritance.

    A span's ids are its own ``trace_id``/``trace_ids`` attrs if present,
    else its nearest annotated ancestor's.  Spans with no annotated
    ancestor yield ``()``.
    """

    def walk(span: "Span", inherited: tuple[str, ...]):
        ids = _own_ids(span) or inherited
        yield span, ids
        for child in span.children:
            yield from walk(child, ids)

    yield from walk(root, ())


def spans_without_context(root: "Span") -> list["Span"]:
    """Spans that neither carry nor inherit a trace id (CI asserts empty
    for every serving trace)."""
    return [span for span, ids in resolve_trace_ids(root) if not ids]


__all__ = [
    "TRACE_ID_HEX",
    "TraceContext",
    "activate",
    "current",
    "current_trace_ids",
    "derive_trace_id",
    "resolve_trace_ids",
    "spans_without_context",
    "stamp",
    "wire_current",
]
