"""Graph-attributed cost profiler: per-node measured cost from traces.

PR 9's optimizer justifies rewrites with *estimated* noise costs; this
module closes the loop with *measured* ones.  The graph executor stamps
each stage span with the :class:`~repro.graph.ir.GraphNode` signature it
executed (plus the node's op, level and noise annotations), and
:func:`profile_from_trace` folds a finished pipeline trace into a
:class:`ProfileReport` keyed by node signature: virtual-clock real and
overhead seconds, ECALL count and bytes, and noise-headroom watermarks
(the minimum static headroom annotation and the minimum *measured*
invariant noise budget seen at decrypt).

Reports merge across requests into per-op aggregates --
``CompileReport.cite`` attaches them so a compile report can quote
measured, not estimated, savings -- and ``tools/obsctl.py`` renders them
as a sorted cost table plus per-request trace timelines.

Reconciliation (same spirit as :func:`repro.obs.tracer.reconcile`): the
per-node costs attributed by a report must sum to the pipeline spans'
wall clock -- :meth:`ProfileReport.reconcile` enforces *attributed <=
wall* within tolerance, and :meth:`ProfileReport.coverage` reports the
attributed fraction so tests can pin it at ~1.0 for executor-driven
pipelines (every measure window sits inside a stage span).

The profiler is read-only over span trees: it runs after the fact, never
touches the clock, RNG or ciphertexts, and profiled vs unprofiled runs
are bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Span


@dataclass
class NodeProfile:
    """Aggregate measured cost of one graph node (or pipeline stage).

    Attributes:
        key: the node signature (``GraphNode.signature()`` as a string)
            for executor-driven stages, else ``"stage:<name>"``.
        op: node op (``conv``, ``crossing``, ...) or the stage name.
        stage: the stage-span name the cost was measured under.
        count: executions folded into this aggregate.
        real_s / overhead_s: summed virtual-clock deltas.
        ecalls: enclave crossings under this node's stage spans.
        ecall_bytes: marshalled bytes (in + out) across those crossings.
        level: modulus-chain level annotation, when stamped.
        headroom_bits: minimum *static* noise-headroom annotation seen.
        noise_budget_bits: minimum *measured* invariant noise budget seen
            (stamped at decrypt stages) -- the watermark.
    """

    key: str
    op: str
    stage: str
    count: int = 0
    real_s: float = 0.0
    overhead_s: float = 0.0
    ecalls: int = 0
    ecall_bytes: int = 0
    level: int | None = None
    headroom_bits: float | None = None
    noise_budget_bits: float | None = None

    @property
    def elapsed_s(self) -> float:
        return self.real_s + self.overhead_s

    def fold(self, other: "NodeProfile") -> None:
        """Merge ``other`` (same key) into this aggregate."""
        if other.key != self.key:
            raise ReproError(f"cannot fold {other.key!r} into {self.key!r}")
        self.count += other.count
        self.real_s += other.real_s
        self.overhead_s += other.overhead_s
        self.ecalls += other.ecalls
        self.ecall_bytes += other.ecall_bytes
        if other.level is not None:
            self.level = other.level
        for attr in ("headroom_bits", "noise_budget_bits"):
            theirs = getattr(other, attr)
            if theirs is not None:
                mine = getattr(self, attr)
                setattr(self, attr, theirs if mine is None else min(mine, theirs))

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "op": self.op,
            "stage": self.stage,
            "count": self.count,
            "real_s": self.real_s,
            "overhead_s": self.overhead_s,
            "elapsed_s": self.elapsed_s,
            "ecalls": self.ecalls,
            "ecall_bytes": self.ecall_bytes,
            "level": self.level,
            "headroom_bits": self.headroom_bits,
            "noise_budget_bits": self.noise_budget_bits,
        }


def _stage_profile(stage: "Span") -> NodeProfile:
    attrs = stage.attrs
    key = attrs.get("node_signature") or f"stage:{stage.name}"
    ecalls = stage.ecalls()
    prof = NodeProfile(
        key=str(key),
        op=str(attrs.get("node_op", stage.name)),
        stage=stage.name,
        count=1,
        real_s=stage.real_s,
        overhead_s=stage.overhead_s,
        ecalls=len(ecalls),
        ecall_bytes=sum(
            int(e.attrs.get("bytes_in", 0)) + int(e.attrs.get("bytes_out", 0))
            for e in ecalls
        ),
    )
    if "node_level" in attrs:
        prof.level = int(attrs["node_level"])
    if "node_headroom_bits" in attrs:
        prof.headroom_bits = float(attrs["node_headroom_bits"])
    if "noise_budget_bits" in attrs:
        prof.noise_budget_bits = float(attrs["noise_budget_bits"])
    return prof


class ProfileReport:
    """Per-node measured costs merged across one or more pipeline traces."""

    def __init__(self) -> None:
        self.nodes: dict[str, NodeProfile] = {}
        self.pipelines = 0
        self.wall_real_s = 0.0
        self.wall_overhead_s = 0.0
        self.attributed_real_s = 0.0
        self.attributed_overhead_s = 0.0

    # -- construction ---------------------------------------------------
    @classmethod
    def from_trace(cls, root: "Span") -> "ProfileReport":
        report = cls()
        report.add_trace(root)
        return report

    @classmethod
    def from_traces(cls, roots: Iterable["Span"]) -> "ProfileReport":
        report = cls()
        for root in roots:
            report.add_trace(root)
        return report

    def add_trace(self, root: "Span") -> "ProfileReport":
        """Fold one finished pipeline span tree into the report."""
        self.pipelines += 1
        self.wall_real_s += root.real_s
        self.wall_overhead_s += root.overhead_s
        for stage in root.stages():
            prof = _stage_profile(stage)
            self.attributed_real_s += prof.real_s
            self.attributed_overhead_s += prof.overhead_s
            existing = self.nodes.get(prof.key)
            if existing is None:
                self.nodes[prof.key] = prof
            else:
                existing.fold(prof)
        return self

    def merge(self, other: "ProfileReport") -> "ProfileReport":
        """Fold ``other``'s aggregates into this report."""
        self.pipelines += other.pipelines
        self.wall_real_s += other.wall_real_s
        self.wall_overhead_s += other.wall_overhead_s
        self.attributed_real_s += other.attributed_real_s
        self.attributed_overhead_s += other.attributed_overhead_s
        for key, prof in other.nodes.items():
            existing = self.nodes.get(key)
            if existing is None:
                self.nodes[key] = NodeProfile(**prof.__dict__)
            else:
                existing.fold(prof)
        return self

    # -- invariants -----------------------------------------------------
    def reconcile(self, rel_tol: float = 1e-6, abs_tol: float = 1e-9) -> None:
        """Per-node costs must sum to (at most) the pipelines' wall clock.

        Same spirit as :func:`repro.obs.tracer.reconcile`: stage spans are
        disjoint sub-intervals of their pipeline's clock window, so the
        attributed total can never exceed the wall total.
        """
        for kind, attributed, wall in (
            ("real", self.attributed_real_s, self.wall_real_s),
            ("overhead", self.attributed_overhead_s, self.wall_overhead_s),
        ):
            tol = max(abs_tol, rel_tol * max(abs(wall), abs(attributed)))
            if attributed > wall + tol:
                raise ReproError(
                    f"profile: attributed {kind} {attributed:.9f}s exceeds "
                    f"pipeline wall {wall:.9f}s across {self.pipelines} traces"
                )

    def coverage(self) -> float:
        """Fraction of pipeline wall clock attributed to nodes (<= 1)."""
        wall = self.wall_real_s + self.wall_overhead_s
        if wall <= 0.0:
            return 1.0
        return (self.attributed_real_s + self.attributed_overhead_s) / wall

    # -- views ----------------------------------------------------------
    def rows(self) -> list[NodeProfile]:
        """Node aggregates, most expensive (elapsed) first."""
        return sorted(
            self.nodes.values(), key=lambda n: (-n.elapsed_s, n.key)
        )

    def per_op(self) -> dict[str, dict]:
        """Aggregates folded one level further, keyed by node op."""
        ops: dict[str, dict] = {}
        for node in self.rows():
            agg = ops.setdefault(
                node.op,
                {"count": 0, "real_s": 0.0, "overhead_s": 0.0, "elapsed_s": 0.0,
                 "ecalls": 0, "ecall_bytes": 0},
            )
            agg["count"] += node.count
            agg["real_s"] += node.real_s
            agg["overhead_s"] += node.overhead_s
            agg["elapsed_s"] += node.elapsed_s
            agg["ecalls"] += node.ecalls
            agg["ecall_bytes"] += node.ecall_bytes
        return ops

    def savings_vs(self, baseline: "ProfileReport") -> dict[str, float]:
        """Measured per-op elapsed seconds saved vs ``baseline``.

        Both reports are normalized per pipeline so different request
        counts compare; positive values mean this report is cheaper.
        """
        if not self.pipelines or not baseline.pipelines:
            raise ReproError("savings_vs needs at least one pipeline on each side")
        mine = self.per_op()
        theirs = baseline.per_op()
        savings: dict[str, float] = {}
        for op in sorted(set(mine) | set(theirs)):
            ours = mine.get(op, {}).get("elapsed_s", 0.0) / self.pipelines
            base = theirs.get(op, {}).get("elapsed_s", 0.0) / baseline.pipelines
            savings[op] = base - ours
        return savings

    def to_dict(self) -> dict:
        return {
            "pipelines": self.pipelines,
            "wall_real_s": self.wall_real_s,
            "wall_overhead_s": self.wall_overhead_s,
            "attributed_real_s": self.attributed_real_s,
            "attributed_overhead_s": self.attributed_overhead_s,
            "coverage": self.coverage(),
            "nodes": [n.to_dict() for n in self.rows()],
        }

    # -- rendering ------------------------------------------------------
    def render_table(self, top: int | None = None) -> str:
        """Sorted fixed-width cost table (what ``obsctl costs`` prints)."""
        rows = self.rows()
        if top is not None:
            rows = rows[:top]
        header = (
            f"{'op':<12} {'stage':<24} {'n':>4} {'real_ms':>10} "
            f"{'ovh_ms':>10} {'elapsed_ms':>11} {'ecalls':>6} "
            f"{'kB':>8} {'headroom':>9}"
        )
        lines = [header, "-" * len(header)]
        for node in rows:
            headroom = (
                "-"
                if node.noise_budget_bits is None and node.headroom_bits is None
                else f"{(node.noise_budget_bits if node.noise_budget_bits is not None else node.headroom_bits):.1f}"
            )
            lines.append(
                f"{node.op:<12.12} {node.stage:<24.24} {node.count:>4} "
                f"{node.real_s * 1e3:>10.3f} {node.overhead_s * 1e3:>10.3f} "
                f"{node.elapsed_s * 1e3:>11.3f} {node.ecalls:>6} "
                f"{node.ecall_bytes / 1024:>8.1f} {headroom:>9}"
            )
        lines.append(
            f"{self.pipelines} pipeline(s); attributed "
            f"{self.attributed_real_s + self.attributed_overhead_s:.6f}s of "
            f"{self.wall_real_s + self.wall_overhead_s:.6f}s wall "
            f"({self.coverage() * 100:.2f}% coverage)"
        )
        return "\n".join(lines)


def profile_from_trace(root: "Span") -> ProfileReport:
    """One-shot :class:`ProfileReport` for a single pipeline trace."""
    return ProfileReport.from_trace(root)


def profile_from_traces(roots: Iterable["Span"]) -> ProfileReport:
    """Merged :class:`ProfileReport` across many pipeline traces."""
    return ProfileReport.from_traces(roots)


#: Span attrs surfaced on timeline lines, in render order.
_TIMELINE_ATTRS = (
    "trace_id",
    "trace_ids",
    "request_id",
    "replica",
    "generation",
    "model",
    "node_op",
    "unit",
    "worker",
)


def render_timeline(root: "Span", *, indent: int = 2) -> str:
    """Per-request trace timeline: nested spans with virtual-time offsets.

    Offsets are reconstructed by accumulating sibling elapsed time within
    each parent -- exact for this system's sequential virtual clock.
    """
    lines: list[str] = []

    def walk(span: "Span", depth: int, start: float) -> None:
        annotated = " ".join(
            f"{k}={span.attrs[k]}" for k in _TIMELINE_ATTRS if k in span.attrs
        )
        pad = " " * (depth * indent)
        lines.append(
            f"{pad}[{start * 1e3:9.3f}ms +{span.elapsed_s * 1e3:8.3f}ms] "
            f"{span.kind}:{span.name}" + (f"  ({annotated})" if annotated else "")
        )
        offset = start
        for child in span.children:
            walk(child, depth + 1, offset)
            offset += child.elapsed_s

    walk(root, 0, 0.0)
    return "\n".join(lines)


__all__ = [
    "NodeProfile",
    "ProfileReport",
    "profile_from_trace",
    "profile_from_traces",
    "render_timeline",
]
