"""Process-wide metrics registry: counters, gauges and histograms.

Single-run trace trees (:mod:`repro.obs.tracer`) answer "where did *this*
inference spend its time"; they cannot answer the fleet questions the
paper's deployment story raises -- how deep does the queue get, what does
the p99 request latency look like split into queue wait vs compute, how
often does the enclave restart, how much noise-budget headroom does each
layer have.  This module is the aggregate half of observability:

* :class:`Counter` -- monotone accumulations (requests, ecalls, fault
  fires, EPC evictions);
* :class:`Gauge` -- last-written values (queue depth, noise-budget bits,
  active kernel profile);
* :class:`Histogram` -- fixed-bucket distributions with Prometheus
  ``_bucket``/``_sum``/``_count`` exposition and quantile estimation;
  latency histograms share the log-scaled :data:`LATENCY_BUCKETS`.

Every family lives in a :class:`MetricsRegistry`; the process-wide default
(:func:`registry`) is what the instrumented sites across ``repro.serve``,
``repro.faults``, ``repro.sgx`` and ``repro.he`` write to.  A registry can
be disabled, which turns every instrumentation call into a cheap no-op
(sites receive shared null metrics; no children or samples are allocated).

Determinism: metrics record only values the callers derive from the
simulated clock and deterministic counters -- the registry itself never
reads wall time, so two identical runs produce identical snapshots.

The trace and metrics views reconcile by construction:
:meth:`MetricsRegistry.record_trace` replays the exact samples
:func:`repro.obs.export.metrics_from_trace` would flatten a span tree
into, as counter increments -- the tracer calls it automatically whenever
a top-level ``pipeline`` span closes, so per-request traces roll up into
fleet totals without any pipeline knowing about it.

Not thread-safe by design: the simulator is single-threaded, and the
SimClock it meters shares the same assumption.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Iterable

from repro.errors import MetricsError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Span

#: Log-scaled latency buckets (seconds): 100 us doubling up to ~209 s.
#: Shared by every ``*_seconds`` histogram so latency distributions are
#: comparable across serve/faults/sgx families.
LATENCY_BUCKETS: tuple[float, ...] = tuple(1e-4 * 2.0**i for i in range(22))

#: Buckets for occupancy-style ratios in [0, 1] (batch fill fraction).
RATIO_BUCKETS: tuple[float, ...] = (0.03125, 0.0625, 0.125, 0.25, 0.5, 0.75, 1.0)

_METRIC_TYPES = ("counter", "gauge", "histogram")


def escape_label_value(value: object) -> str:
    """Escape a label value for Prometheus exposition.

    Backslash, double-quote and newline are the three characters the
    exposition format requires escaping; hostile span or model names (a
    user-chosen model called ``evil"} 1\\n``) otherwise produce malformed
    lines a scraper would misparse.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_labels(labels: dict[str, object]) -> str:
    """``{k="v",...}`` selector with escaped values, sorted by key;
    empty-valued labels are dropped and an empty set renders as ``""``."""
    inner = ",".join(
        f'{k}="{escape_label_value(v)}"'
        for k, v in sorted(labels.items())
        if str(v) != ""
    )
    return "{" + inner + "}" if inner else ""


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.9g}"


# ----------------------------------------------------------------------
# children: where samples actually live
# ----------------------------------------------------------------------
class Counter:
    """A monotone counter child (one label combination)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if amount < 0:
            raise MetricsError(f"counters are monotone; cannot inc by {amount}")
        self._value += amount


class Gauge:
    """A last-write-wins gauge child (one label combination)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount


class Histogram:
    """A fixed-bucket histogram child (one label combination).

    Buckets are upper bounds (``le`` semantics: a sample lands in the first
    bucket whose bound is >= the value); an implicit ``+Inf`` bucket
    catches overflow.  ``sum``/``count`` accumulate alongside.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def observe(self, value: float) -> None:
        self._sum += value
        self._count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[i] += 1
                return
        self._counts[-1] += 1

    def bucket_counts(self) -> dict[str, int]:
        """Cumulative counts keyed by formatted upper bound (incl. +Inf)."""
        out: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            out[_format_value(bound)] = running
        out["+Inf"] = running + self._counts[-1]
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation inside the
        bucket that crosses it (the ``histogram_quantile`` estimator).

        Returns NaN for an empty histogram.  Quantiles landing in the
        ``+Inf`` bucket clamp to the highest finite bound, exactly as
        Prometheus does -- the estimate cannot exceed what the buckets can
        resolve.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return math.nan
        rank = q * self._count
        running = 0
        lower = 0.0
        for bound, count in zip(self.buckets, self._counts):
            if running + count >= rank and count > 0:
                fraction = (rank - running) / count
                return lower + (bound - lower) * max(0.0, min(1.0, fraction))
            running += count
            lower = bound
        return self.buckets[-1] if self.buckets else math.nan


class _NullMetric:
    """Shared no-op child handed out by a disabled registry."""

    __slots__ = ()

    value = 0.0
    sum = 0.0
    count = 0

    def labels(self, **_labels) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return math.nan


_NULL = _NullMetric()

_CHILD_TYPES = {"counter": Counter, "gauge": Gauge}


class MetricFamily:
    """One named family: fixed label names, one child per label combination.

    Obtained from the registry's :meth:`~MetricsRegistry.counter` /
    ``gauge`` / ``histogram`` accessors (get-or-create).  Unlabeled
    families delegate ``inc``/``set``/``observe`` to a single default
    child, so ``registry.counter("x", "...").inc()`` just works.
    """

    def __init__(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        if type not in _METRIC_TYPES:
            raise MetricsError(f"unknown metric type {type!r}")
        if type == "histogram":
            buckets = tuple(buckets) if buckets is not None else LATENCY_BUCKETS
            if list(buckets) != sorted(set(buckets)):
                raise MetricsError("histogram buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.type = type
        self.labelnames = tuple(labelnames)
        self.buckets = buckets
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def _new_child(self) -> Counter | Gauge | Histogram:
        if self.type == "histogram":
            return Histogram(self.buckets or LATENCY_BUCKETS)
        return _CHILD_TYPES[self.type]()

    def labels(self, **labels: object) -> Counter | Gauge | Histogram:
        """The child for one label combination (created on first use,
        identical object on every subsequent call)."""
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise MetricsError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    # unlabeled convenience surface -----------------------------------
    def _default(self) -> Counter | Gauge | Histogram:
        if self.labelnames:
            raise MetricsError(
                f"metric {self.name!r} is labeled {self.labelnames}; "
                "call .labels(...) first"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        self._default().set(value)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        self._default().observe(value)  # type: ignore[union-attr]

    def quantile(self, q: float) -> float:
        return self._default().quantile(q)  # type: ignore[union-attr]

    def samples(self) -> Iterable[tuple[dict[str, str], Counter | Gauge | Histogram]]:
        for key in sorted(self._children):
            yield dict(zip(self.labelnames, key)), self._children[key]


class MetricsSnapshot:
    """Immutable point-in-time copy of a registry (the JSON dump shape).

    ``families`` is a list of ``{name, type, help, samples}`` dicts where
    each sample is ``{labels, value}`` for counters/gauges and
    ``{labels, sum, count, buckets}`` (cumulative, keyed by ``le``) for
    histograms -- the exact document ``tools/bench_gate.py`` and offline
    dashboards consume.
    """

    def __init__(self, families: list[dict]) -> None:
        self.families = families

    def to_dict(self) -> dict:
        return {"families": self.families}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def family(self, name: str) -> dict | None:
        for family in self.families:
            if family["name"] == name:
                return family
        return None

    def flat(self) -> dict[str, float]:
        """Exposition-keyed flat view: ``name{labels}`` -> value, with
        histograms expanded to ``_bucket``/``_sum``/``_count`` samples.
        The same key format :func:`~repro.obs.export.metrics_from_trace`
        emits, which is what makes the two views directly comparable."""
        out: dict[str, float] = {}
        for family in self.families:
            name = family["name"]
            for sample in family["samples"]:
                labels = dict(sample["labels"])
                if family["type"] == "histogram":
                    for le, count in sample["buckets"].items():
                        out[f"{name}_bucket{format_labels({**labels, 'le': le})}"] = float(count)
                    out[f"{name}_sum{format_labels(labels)}"] = sample["sum"]
                    out[f"{name}_count{format_labels(labels)}"] = float(sample["count"])
                else:
                    out[f"{name}{format_labels(labels)}"] = sample["value"]
        return out


class MetricsRegistry:
    """Owns metric families; get-or-create accessors, snapshot, exposition.

    Args:
        enabled: start enabled (the default) or as a no-op registry.

    A disabled registry hands every accessor the shared :data:`_NULL`
    metric -- instrumentation sites pay one attribute read and a branch,
    allocate nothing, and record nothing, which keeps the "observability
    off" path honest for the zero-overhead chaos tests.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    # family accessors (get-or-create)
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily | _NullMetric:
        if not self.enabled:
            return _NULL
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, help, type, labelnames, buckets)
            self._families[name] = family
            return family
        if family.type != type or family.labelnames != tuple(labelnames):
            raise MetricsError(
                f"metric {name!r} already registered as {family.type} with "
                f"labels {family.labelnames}; cannot re-register as {type} "
                f"with {tuple(labelnames)}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily | _NullMetric:
        return self._family(name, help, "counter", labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily | _NullMetric:
        return self._family(name, help, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily | _NullMetric:
        return self._family(name, help, "histogram", labelnames, buckets)

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def reset(self) -> None:
        """Drop every family (tests; a fresh scrape surface)."""
        self._families.clear()

    # ------------------------------------------------------------------
    # trace bridge
    # ------------------------------------------------------------------
    def record_trace(self, span: "Span", prefix: str = "repro") -> None:
        """Fold one finished pipeline trace into the registry's counters.

        Replays :func:`repro.obs.export.samples_from_trace` -- the exact
        samples the single-trace flat view is built from -- as counter
        increments, so ``metrics_from_trace(span)`` and a fresh registry
        after ``record_trace(span)`` agree sample-for-sample (the
        reconciliation invariant, asserted by
        ``tests/obs/test_metrics.py``).  The tracer calls this on every
        top-level ``pipeline`` span, turning per-run traces into fleet
        aggregates.
        """
        if not self.enabled:
            return
        from repro.obs.export import TRACE_FAMILY_HELP, samples_from_trace

        for family, labels, value in samples_from_trace(span, prefix=prefix):
            help_text = TRACE_FAMILY_HELP.get(
                family.removeprefix(f"{prefix}_"), "bridged from trace spans"
            )
            counter = self.counter(family, help_text, tuple(sorted(labels)))
            counter.labels(**labels).inc(value)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def collect(self) -> MetricsSnapshot:
        families = []
        for name in sorted(self._families):
            family = self._families[name]
            samples = []
            for labels, child in family.samples():
                if isinstance(child, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "sum": child.sum,
                            "count": child.count,
                            "buckets": child.bucket_counts(),
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            families.append(
                {
                    "name": family.name,
                    "type": family.type,
                    "help": family.help,
                    "samples": samples,
                }
            )
        return MetricsSnapshot(families)

    def render_prometheus(self) -> str:
        """Full exposition: ``# HELP``/``# TYPE`` per family, histogram
        ``_bucket{le=}``/``_sum``/``_count`` expansion, escaped labels.
        Histogram samples are consistency-checked first
        (:func:`validate_histogram_sample`)."""
        lines: list[str] = []
        for family in self.collect().families:
            name = family["name"]
            help_text = escape_help(family["help"]) or name
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {family['type']}")
            for sample in family["samples"]:
                labels = dict(sample["labels"])
                if family["type"] == "histogram":
                    validate_histogram_sample(name, sample)
                    for le, count in sample["buckets"].items():
                        selector = format_labels({**labels, "le": le})
                        lines.append(f"{name}_bucket{selector} {count}")
                    lines.append(
                        f"{name}_sum{format_labels(labels)} {_format_value(sample['sum'])}"
                    )
                    lines.append(f"{name}_count{format_labels(labels)} {sample['count']}")
                else:
                    lines.append(
                        f"{name}{format_labels(labels)} {_format_value(sample['value'])}"
                    )
        return "\n".join(lines)


def validate_histogram_sample(name: str, sample: dict) -> None:
    """Assert one collected histogram sample is internally consistent.

    Cumulative bucket counts must be monotone non-decreasing in bound
    order and ``count`` must equal the top (``+Inf``) bucket; a violation
    means corrupted child state and raises :class:`MetricsError` rather
    than letting the exposition publish an uninterpretable series.
    """
    buckets = sample["buckets"]
    previous = None
    for le, count in buckets.items():
        if previous is not None and count < previous:
            raise MetricsError(
                f"histogram {name}{format_labels(dict(sample['labels']))}: bucket "
                f"le={le} count {count} below preceding {previous} (not monotone)"
            )
        previous = count
    top = buckets.get("+Inf")
    if top is not None and top != sample["count"]:
        raise MetricsError(
            f"histogram {name}{format_labels(dict(sample['labels']))}: _count "
            f"{sample['count']} != top bucket {top}"
        )


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and newline only -- quotes
    are legal in help text)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


# ----------------------------------------------------------------------
# the process-wide default registry
# ----------------------------------------------------------------------
_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry every instrumented site writes to."""
    return _registry


def set_registry(reg: MetricsRegistry) -> MetricsRegistry:
    """Install ``reg`` as the process-wide registry; returns the previous
    one (tests swap in a fresh registry and restore the old)."""
    global _registry
    previous = _registry
    _registry = reg
    return previous


class use_registry:
    """Context manager: swap the process registry for a block.

    ::

        with metrics.use_registry(MetricsRegistry()) as reg:
            run_workload()
            snapshot = reg.collect()
    """

    def __init__(self, reg: MetricsRegistry | None = None) -> None:
        self.registry = reg if reg is not None else MetricsRegistry()
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc_info) -> None:
        assert self._previous is not None
        set_registry(self._previous)
