"""Homomorphic operations: Add, Multiply, plain ops and relinearization.

Implements the paper's Section II-B evaluation algorithms:

* ``Add(ct0, ct1)``: component-wise sum.
* ``Multiply(ct0, ct1)``: FV tensor product -- the three cross products are
  computed as *exact* integer negacyclic convolutions (auxiliary-prime CRT),
  scaled by ``t/q`` with true rounding, yielding a size-3 ciphertext.
* ``relinearize``: base-``w`` digit decomposition of ``c2`` against the
  evaluation keys, shrinking size 3 back to 2.

All operations accept batched ciphertexts (leading axes) and most are pure
pointwise numpy work because ciphertexts rest in NTT domain.

The evaluator optionally records operation counts in an
:class:`OperationCounter`; the Fig. 4 benchmark uses these to report the
``C x P`` / ``C + C`` totals the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import KeyMismatchError, ParameterError
from repro.he import arena, kernels
from repro.he.context import Ciphertext, Context, Plaintext
from repro.he.keys import RelinKeys


@dataclass
class OperationCounter:
    """Tally of scalar homomorphic operations (batch-expanded)."""

    counts: dict[str, int] = field(default_factory=dict)

    def record(self, op: str, amount: int = 1) -> None:
        self.counts[op] = self.counts.get(op, 0) + amount

    def get(self, op: str) -> int:
        return self.counts.get(op, 0)

    def reset(self) -> None:
        self.counts.clear()


@dataclass
class PlainOperand:
    """A plaintext pre-transformed to NTT domain for repeated multiplication.

    The CNN pipelines encode model weights once (paper Section IV-B) and
    multiply them into many ciphertexts; caching the NTT form makes each
    reuse a single pointwise product.
    """

    context: Context
    ntt_data: np.ndarray  # shape (..., k, n)

    @property
    def batch_shape(self) -> tuple[int, ...]:
        return self.ntt_data.shape[:-2]


class Evaluator:
    """Performs homomorphic computation within one context."""

    def __init__(self, context: Context, counter: OperationCounter | None = None) -> None:
        self.context = context
        self.counter = counter

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _record(self, op: str, ct: Ciphertext) -> None:
        if self.counter is not None:
            self.counter.record(op, max(1, ct.batch_count))

    def _check(self, *objects) -> None:
        for obj in objects:
            self.context.check_same(obj.context)

    def transform_plain(self, plain: Plaintext) -> PlainOperand:
        """Precompute the NTT form of a plaintext for plain multiplication.

        Coefficients are centered into ``(-t/2, t/2]`` first, which keeps the
        noise growth of ``multiply_plain`` proportional to the *signed*
        magnitude of the encoded values.
        """
        self._check(plain)
        ring = self.context.ring
        return PlainOperand(self.context, ring.ntt(ring.from_signed_small(plain.signed_coeffs())))

    def transform_plain_delta(self, plain: Plaintext) -> PlainOperand:
        """Precompute the NTT form of ``Delta * plain`` -- the exact value
        :meth:`add_plain` adds into the ciphertext body.

        Layer bias constants are the same every inference, so the encoded
        weight tables precompute this operand once instead of re-encoding and
        re-transforming an ``np.full(...)`` plaintext per call; adding the
        cached operand via :meth:`add_plain_operand` is bit-identical to
        :meth:`add_plain` on the same values.
        """
        self._check(plain)
        ring = self.context.ring
        delta_m = ring.ntt(
            ring.mul_scalar(ring.from_int_coeffs(plain.coeffs), self.context.params.delta)
        )
        return PlainOperand(self.context, delta_m)

    # ------------------------------------------------------------------
    # additive operations
    # ------------------------------------------------------------------
    def add(self, ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext:
        """``Add(ct0, ct1)``; operands of different size are zero-padded."""
        self._check(ct0, ct1)
        ct0, ct1 = ct0.to_ntt(), ct1.to_ntt()
        a, b = ct0.data, ct1.data
        if ct0.size != ct1.size:
            if ct0.size < ct1.size:
                a, b = b, a
            pad = a.shape[-3] - b.shape[-3]
            pad_block = np.zeros((*b.shape[:-3], pad, *b.shape[-2:]), dtype=np.int64)
            b = np.concatenate([b, pad_block], axis=-3)
        result = Ciphertext(self.context, self.context.ring.add(a, b), is_ntt=True)
        self._record("ct_add", result)
        return result

    def sub(self, ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext:
        return self.add(ct0, self.negate(ct1))

    def negate(self, ct: Ciphertext) -> Ciphertext:
        self._check(ct)
        return Ciphertext(ct.context, self.context.ring.neg(ct.data), ct.is_ntt)

    def add_plain(self, ct: Ciphertext, plain: Plaintext) -> Ciphertext:
        """Add ``Delta * plain`` into the ciphertext body."""
        self._check(ct, plain)
        ring = self.context.ring
        ct = ct.to_ntt()
        delta_m = ring.ntt(
            ring.mul_scalar(ring.from_int_coeffs(plain.coeffs), self.context.params.delta)
        )
        data = ct.data.copy()
        data[..., 0, :, :] = ring.add(data[..., 0, :, :], delta_m)
        result = Ciphertext(self.context, data, is_ntt=True)
        self._record("plain_add", result)
        return result

    def add_plain_operand(self, ct: Ciphertext, operand: PlainOperand) -> Ciphertext:
        """Add a precomputed ``Delta * m`` operand (broadcast over the batch)
        into the ciphertext body; see :meth:`transform_plain_delta`."""
        self._check(ct, operand)
        ring = self.context.ring
        ct = ct.to_ntt()
        data = ct.data.copy()
        data[..., 0, :, :] = ring.add(data[..., 0, :, :], operand.ntt_data)
        result = Ciphertext(self.context, data, is_ntt=True)
        self._record("plain_add", result)
        return result

    def add_many(self, cts: list[Ciphertext]) -> Ciphertext:
        if not cts:
            raise ParameterError("add_many requires at least one ciphertext")
        if len(cts) == 1:
            return cts[0]
        first = cts[0]
        uniform = all(
            ct.size == first.size and ct.batch_shape == first.batch_shape
            for ct in cts[1:]
        )
        if uniform and kernels.active().fused_layers:
            # One stacked reduction (and one trailing %) instead of a
            # sequential O(len) fold of add() allocations; the op tally
            # matches the fold exactly.  Arena-backed siblings (adjacent
            # blocks, or slices of one staged batch) stack as a strided
            # view -- no materialized intermediate at all.
            self._check(*cts)
            parts = [ct.to_ntt().data for ct in cts]
            stacked = arena.stacked_view(parts)
            if stacked is None:
                stacked = np.stack(parts)
            result = Ciphertext(
                self.context, self.context.ring.reduce_sum(stacked, axis=0), is_ntt=True
            )
            if self.counter is not None:
                self.counter.record("ct_add", (len(cts) - 1) * max(1, result.batch_count))
            return result
        acc = cts[0]
        for ct in cts[1:]:
            acc = self.add(acc, ct)
        return acc

    def sum_batch(self, ct: Ciphertext, axis: int = 0) -> Ciphertext:
        """Sum a batched ciphertext along one batch axis (C + C reduction).

        Equivalent to folding :meth:`add` over that axis but performed as a
        single numpy reduction.
        """
        self._check(ct)
        if not ct.batch_shape:
            raise ParameterError("sum_batch requires a batched ciphertext")
        axis = axis % len(ct.batch_shape)
        ct = ct.to_ntt()
        summed = self.context.ring.reduce_sum(ct.data, axis=axis)
        if self.counter is not None:
            folds = ct.batch_shape[axis] - 1
            lanes = ct.batch_count // max(1, ct.batch_shape[axis])
            self.counter.record("ct_add", folds * max(1, lanes))
        return Ciphertext(self.context, summed, is_ntt=True)

    # ------------------------------------------------------------------
    # multiplicative operations
    # ------------------------------------------------------------------
    def multiply_plain(self, ct: Ciphertext, plain: PlainOperand | Plaintext) -> Ciphertext:
        """Ciphertext x plaintext product (the paper's ``C x P``)."""
        if isinstance(plain, Plaintext):
            plain = self.transform_plain(plain)
        self._check(ct, plain)
        ring = self.context.ring
        ct = ct.to_ntt()
        operand = plain.ntt_data
        if plain.batch_shape:
            operand = operand[..., None, :, :]  # broadcast over ct components
        result = Ciphertext(self.context, ring.pointwise_mul(ct.data, operand), is_ntt=True)
        self._record("ct_plain_mul", result)
        return result

    def multiply_scalar(self, ct: Ciphertext, value: int) -> Ciphertext:
        """Multiply by a small integer constant (no noise-polynomial growth
        beyond the scalar factor).

        The scalar is reduced to its *centered* representative in
        ``(-t/2, t/2]`` so that, e.g., multiplying by ``t - 1`` costs the
        noise of ``x(-1)``, not ``x(t-1)``.
        """
        self._check(ct)
        t = self.context.plain_modulus
        value %= t
        if value > t // 2:
            value -= t
        result = Ciphertext(
            self.context,
            self.context.ring.mul_scalar(ct.data, value),
            ct.is_ntt,
        )
        self._record("ct_plain_mul", result)
        return result

    def multiply(self, ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext:
        """``Multiply(ct0, ct1)``: exact FV tensor product, size 2x2 -> 3."""
        self._check(ct0, ct1)
        if ct0.size != 2 or ct1.size != 2:
            raise ParameterError(
                "multiply expects size-2 operands; relinearize first "
                f"(got sizes {ct0.size} and {ct1.size})"
            )
        ring = self.context.ring
        params = self.context.params
        a = ct0.to_coeff().data
        b = ct1.to_coeff().data
        a0 = ring.to_bigint_centered(a[..., 0, :, :])
        a1 = ring.to_bigint_centered(a[..., 1, :, :])
        b0 = ring.to_bigint_centered(b[..., 0, :, :])
        b1 = ring.to_bigint_centered(b[..., 1, :, :])
        c0 = ring.convolve_exact(a0, b0)
        c1 = ring.convolve_exact(a0, b1) + ring.convolve_exact(a1, b0)
        c2 = ring.convolve_exact(a1, b1)
        t, q = params.plain_modulus, params.coeff_modulus
        parts = [ring.scale_and_round(c, t, q) for c in (c0, c1, c2)]
        data = np.stack(parts, axis=-3)
        result = Ciphertext(self.context, data, is_ntt=False)
        self._record("ct_mul", result)
        return result

    def square(self, ct: Ciphertext) -> Ciphertext:
        """Homomorphic squaring (CryptoNets' activation substitute)."""
        return self.multiply(ct, ct)

    def relinearize(self, ct: Ciphertext, relin_keys: RelinKeys) -> Ciphertext:
        """Reduce a size-3 ciphertext back to size 2 using evaluation keys."""
        self._check(ct, relin_keys)
        if ct.size == 2:
            return ct
        if ct.size != 3:
            raise ParameterError(f"relinearize supports size-3 ciphertexts, got {ct.size}")
        if relin_keys.decomposition_bits != self.context.params.decomposition_bits:
            raise KeyMismatchError("relinearization keys use a different base w")
        ring = self.context.ring
        params = self.context.params
        coeff = ct.to_coeff().data
        c2_big = ring.to_bigint(coeff[..., 2, :, :])  # digits need the [0, q) lift
        base_bits = params.decomposition_bits
        mask = params.decomposition_base - 1
        acc0 = ring.ntt(coeff[..., 0, :, :])
        acc1 = ring.ntt(coeff[..., 1, :, :])
        for i in range(relin_keys.count):
            digits = ((c2_big >> (base_bits * i)) & mask).astype(np.int64)
            d_ntt = ring.ntt(ring.from_signed_small(digits))
            acc0 = ring.add(acc0, ring.pointwise_mul(relin_keys.key0_ntt[i], d_ntt))
            acc1 = ring.add(acc1, ring.pointwise_mul(relin_keys.key1_ntt[i], d_ntt))
        data = np.stack([acc0, acc1], axis=-3)
        result = Ciphertext(self.context, data, is_ntt=True)
        self._record("relinearize", result)
        return result
