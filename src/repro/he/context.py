"""Encryption context plus the Plaintext / Ciphertext value types.

A :class:`Context` binds an :class:`~repro.he.params.EncryptionParams` to the
RNS polynomial machinery and is required by every key generator, encryptor,
decryptor and evaluator.  Ciphertexts carry a reference to their context so
cross-context mixing is caught early.

Both value types are *batched*: a single numpy allocation can hold an entire
feature map of ciphertexts (leading axes before the polynomial axes), which
is what makes the pure-Python pipelines fast enough to run end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KeyMismatchError, ParameterError
from repro.he.params import EncryptionParams
from repro.he.polyring import PolyContext


class Context:
    """Runtime companion of an :class:`EncryptionParams` instance."""

    def __init__(self, params: EncryptionParams) -> None:
        self.params = params
        self.ring = PolyContext(params.poly_degree, params.coeff_primes)

    @property
    def poly_degree(self) -> int:
        return self.params.poly_degree

    @property
    def plain_modulus(self) -> int:
        return self.params.plain_modulus

    @property
    def coeff_modulus(self) -> int:
        return self.params.coeff_modulus

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Context({self.params.describe()})"

    def check_same(self, other: "Context") -> None:
        if other is not self and other.params != self.params:
            raise KeyMismatchError(
                "objects belong to different encryption contexts: "
                f"{self.params.name} vs {other.params.name}"
            )


@dataclass
class Plaintext:
    """A batch of plaintext polynomials with coefficients in ``[0, t)``.

    Attributes:
        context: owning context.
        coeffs: int64 array of shape ``(..., n)``; leading axes batch many
            plaintexts.
    """

    context: Context
    coeffs: np.ndarray

    def __post_init__(self) -> None:
        self.coeffs = np.asarray(self.coeffs, dtype=np.int64)
        n = self.context.poly_degree
        if self.coeffs.shape[-1] != n:
            raise ParameterError(
                f"plaintext degree {self.coeffs.shape[-1]} != ring degree {n}"
            )
        t = self.context.plain_modulus
        if (self.coeffs < 0).any() or (self.coeffs >= t).any():
            self.coeffs = self.coeffs % t

    @property
    def batch_shape(self) -> tuple[int, ...]:
        return self.coeffs.shape[:-1]

    def signed_coeffs(self) -> np.ndarray:
        """Coefficients mapped to the centered range ``(-t/2, t/2]``."""
        t = self.context.plain_modulus
        return np.where(self.coeffs > t // 2, self.coeffs - t, self.coeffs)

    def byte_size(self) -> int:
        return self.coeffs.nbytes


@dataclass
class Ciphertext:
    """A batch of FV ciphertexts.

    Attributes:
        context: owning context.
        data: int64 RNS residues of shape ``(..., size, k, n)`` where ``size``
            is the number of polynomial components (2 for fresh ciphertexts,
            3 after an unrelinearized multiplication).
        is_ntt: True when the polynomials are stored in evaluation (NTT)
            domain -- the library's resting representation, because adds and
            plaintext multiplies are then pure pointwise numpy ops.
    """

    context: Context
    data: np.ndarray
    is_ntt: bool = True

    def __post_init__(self) -> None:
        if self.data.ndim < 3:
            raise ParameterError("ciphertext data must have shape (..., size, k, n)")
        ring = self.context.ring
        if self.data.shape[-1] != ring.n or self.data.shape[-2] != ring.k:
            raise ParameterError(
                f"ciphertext polynomial shape {self.data.shape[-2:]} does not match "
                f"ring (k={ring.k}, n={ring.n})"
            )

    @property
    def size(self) -> int:
        """Number of polynomial components (2 fresh, 3 post-multiply)."""
        return self.data.shape[-3]

    @property
    def batch_shape(self) -> tuple[int, ...]:
        return self.data.shape[:-3]

    @property
    def batch_count(self) -> int:
        count = 1
        for dim in self.batch_shape:
            count *= dim
        return count

    def to_ntt(self) -> "Ciphertext":
        if self.is_ntt:
            return self
        return Ciphertext(self.context, self.context.ring.ntt(self.data), is_ntt=True)

    def to_coeff(self) -> "Ciphertext":
        if not self.is_ntt:
            return self
        return Ciphertext(self.context, self.context.ring.intt(self.data), is_ntt=False)

    def copy(self) -> "Ciphertext":
        return Ciphertext(self.context, self.data.copy(), self.is_ntt)

    def reshape(self, *batch_shape: int) -> "Ciphertext":
        """Reshape the batch axes, leaving the polynomial axes untouched."""
        tail = self.data.shape[-3:]
        return Ciphertext(self.context, self.data.reshape(*batch_shape, *tail), self.is_ntt)

    def __getitem__(self, index) -> "Ciphertext":
        """Slice along the batch axes."""
        if not self.batch_shape:
            raise IndexError("cannot index a scalar ciphertext")
        return Ciphertext(self.context, self.data[index], self.is_ntt)

    def byte_size(self) -> int:
        return self.data.nbytes
