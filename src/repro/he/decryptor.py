"""FV decryption and noise-budget measurement (paper Section II-B).

``Decrypt(sk, ct)`` computes ``m = [round(t/q * [sum_i c_i s^i]_q)]_t``.
Size-2 and size-3 (unrelinearized) ciphertexts are both supported.

The *invariant noise budget* follows SEAL's definition: writing
``(t/q) * [ct(s)]_q = m + v (mod t)``, the budget is ``-log2(2 ||v||)`` bits;
decryption is correct while the budget is positive.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import NoiseBudgetExhausted
from repro.he.context import Ciphertext, Context, Plaintext
from repro.he.keys import SecretKey


class Decryptor:
    """Decrypts ciphertexts with the secret key.

    Args:
        context: the encryption context.
        secret_key: the secret key ``s``.
    """

    def __init__(self, context: Context, secret_key: SecretKey) -> None:
        context.check_same(secret_key.context)
        self.context = context
        self.secret_key = secret_key

    def _dot_with_secret(self, ct: Ciphertext) -> np.ndarray:
        """``[sum_i c_i s^i]_q`` as centered bigint coefficients."""
        self.context.check_same(ct.context)
        ring = self.context.ring
        ct = ct.to_ntt()
        acc = ct.data[..., 0, :, :]
        s_power = self.secret_key.s_ntt
        for i in range(1, ct.size):
            acc = ring.add(acc, ring.pointwise_mul(ct.data[..., i, :, :], s_power))
            if i + 1 < ct.size:
                s_power = ring.pointwise_mul(s_power, self.secret_key.s_ntt)
        return ring.to_bigint_centered(ring.intt(acc))

    def decrypt(self, ct: Ciphertext, check_noise: bool = False) -> Plaintext:
        """Decrypt a (batched) ciphertext.

        Args:
            ct: ciphertext of any size >= 2.
            check_noise: when True, raise :class:`NoiseBudgetExhausted`
                instead of silently returning garbage if the noise overflowed.
        """
        if check_noise and not self.is_decryptable(ct):
            raise NoiseBudgetExhausted(
                "ciphertext noise exceeds the decryptable threshold"
            )
        params = self.context.params
        raw = self._dot_with_secret(ct)
        scaled = raw * params.plain_modulus
        q = params.coeff_modulus
        half = q // 2
        rounded = np.where(
            scaled >= 0, (scaled + half) // q, -((-scaled + half) // q)
        )
        coeffs = (rounded % params.plain_modulus).astype(np.int64)
        return Plaintext(self.context, coeffs)

    def is_decryptable(self, ct: Ciphertext, margin_bits: float = 0.5) -> bool:
        """Statistical correctness test.

        Once noise overflows, the measured residue is uniform and lands
        within a hair of the q/2 ceiling with overwhelming probability, so a
        budget below ``margin_bits`` is treated as overflowed.  (A ciphertext
        whose *true* budget is under half a bit is one operation from death
        anyway.)
        """
        return self.invariant_noise_budget(ct) >= margin_bits

    def _worst_noise(self, ct: Ciphertext) -> int:
        params = self.context.params
        q = params.coeff_modulus
        raw = self._dot_with_secret(ct)
        residue = (raw * params.plain_modulus) % q
        centered = np.where(residue > q // 2, residue - q, residue)
        return int(np.abs(centered).max()) if centered.size else 0

    def invariant_noise_budget(self, ct: Ciphertext) -> float:
        """Remaining noise budget in bits (0 when decryption would fail).

        For batched ciphertexts the *minimum* budget over the batch is
        returned, since one overflowing element already corrupts results.
        """
        q = self.context.params.coeff_modulus
        worst = self._worst_noise(ct)
        if worst == 0:
            return float(q.bit_length() - 1)
        budget = math.log2(q) - math.log2(worst) - 1.0
        return max(0.0, budget)
