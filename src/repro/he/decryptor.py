"""FV decryption and noise-budget measurement (paper Section II-B).

``Decrypt(sk, ct)`` computes ``m = [round(t/q * [sum_i c_i s^i]_q)]_t``.
Size-2 and size-3 (unrelinearized) ciphertexts are both supported.

The *invariant noise budget* follows SEAL's definition: writing
``(t/q) * [ct(s)]_q = m + v (mod t)``, the budget is ``-log2(2 ||v||)`` bits;
decryption is correct while the budget is positive.
"""

from __future__ import annotations

import math

import numpy as np

from repro import faults
from repro.errors import EncodingError, NoiseBudgetExhausted
from repro.he import kernels
from repro.he.context import Ciphertext, Context, Plaintext
from repro.he.keys import SecretKey


class Decryptor:
    """Decrypts ciphertexts with the secret key.

    Args:
        context: the encryption context.
        secret_key: the secret key ``s``.
    """

    def __init__(self, context: Context, secret_key: SecretKey) -> None:
        context.check_same(secret_key.context)
        self.context = context
        self.secret_key = secret_key

    def _dot_ntt(self, ct: Ciphertext) -> np.ndarray:
        """``[sum_i c_i s^i]_q`` as NTT-domain RNS residues ``(..., k, n)``."""
        self.context.check_same(ct.context)
        ring = self.context.ring
        ct = ct.to_ntt()
        acc = ct.data[..., 0, :, :]
        s_power = self.secret_key.s_ntt
        for i in range(1, ct.size):
            acc = ring.add(acc, ring.pointwise_mul(ct.data[..., i, :, :], s_power))
            if i + 1 < ct.size:
                s_power = ring.pointwise_mul(s_power, self.secret_key.s_ntt)
        return acc

    def _dot_with_secret(self, ct: Ciphertext) -> np.ndarray:
        """``[sum_i c_i s^i]_q`` as centered bigint coefficients."""
        ring = self.context.ring
        coeff = ring.intt(self._dot_ntt(ct))
        if kernels.active().fast_decrypt and ring.q_fits_int64:
            # Same integers, lifted with the int64 Garner kernel instead of
            # the object-dtype CRT sum.
            return ring.to_int64_centered(coeff).astype(object)
        return ring.to_bigint_centered(coeff)

    def decrypt_constants(self, ct: Ciphertext) -> np.ndarray:
        """Fast decrypt of *scalar-encoded* ciphertexts: centered int64
        constant coefficients, one O(n) reduction per value.

        Instead of a full inverse NTT (``log n`` butterfly stages) this
        computes only coefficients ``{0, 1, n/2}`` of ``[ct(s)]_q`` as
        weighted sums over the NTT slots
        (:meth:`~repro.he.ntt.StackedNttPlan.inverse_coeff_weights`), lifts
        them with the int64 Garner CRT and applies the exact FV rounding.
        Coefficient 0 is the payload; coefficients 1 and ``n/2`` are probes
        that must decode to 0 for any ScalarEncoder-produced value.  The
        values returned are bit-identical to
        ``ScalarEncoder.decode(decrypt(ct))``; the overflow check is
        probabilistic (two probe coefficients instead of all ``n - 1``, each
        nonzero with probability ``1 - 1/t`` once noise has overflowed).

        Raises:
            EncodingError: if a probe coefficient decodes nonzero -- the
                ciphertext does not hold scalar-encoded values (overflowed
                slot or different encoder).
        """
        if faults.is_armed():
            faults.inject(
                "he.noise.decrypt", NoiseBudgetExhausted, name="decrypt_constants"
            )
        ring = self.context.ring
        params = self.context.params
        acc = self._dot_ntt(ct)
        probes = [0, 1, ring.n // 2] if ring.n > 1 else [0]
        weights = np.stack(
            [ring.stacked.inverse_coeff_weights(i) for i in probes], axis=-2
        )  # (k, len(probes), n)
        prod = acc[..., None, :] * weights  # (..., k, probes, n), < p^2 < 2^62
        for i, p in enumerate(ring.primes):
            prod[..., i, :, :] %= int(p)
        residues = np.add.reduce(prod, axis=-1) % ring.primes[:, None]
        centered = ring.to_int64_centered(residues)  # (..., len(probes))
        # Exact FV rounding round(t * v / q) mod t on the tiny probe array
        # (a few values per ciphertext, so object arithmetic is negligible).
        t, q = params.plain_modulus, params.coeff_modulus
        scaled = centered.astype(object) * t
        half = q // 2
        rounded = np.where(
            scaled >= 0, (scaled + half) // q, -((-scaled + half) // q)
        )
        coeffs = (rounded % t).astype(np.int64)
        if coeffs[..., 1:].any():
            raise EncodingError(
                "plaintext has non-constant coefficients; it was not produced "
                "by ScalarEncoder (or the computation overflowed the slot)"
            )
        constants = coeffs[..., 0]
        return np.where(constants > t // 2, constants - t, constants)

    def decrypt(self, ct: Ciphertext, check_noise: bool = False) -> Plaintext:
        """Decrypt a (batched) ciphertext.

        Args:
            ct: ciphertext of any size >= 2.
            check_noise: when True, raise :class:`NoiseBudgetExhausted`
                instead of silently returning garbage if the noise overflowed.
        """
        if faults.is_armed():
            faults.inject("he.noise.decrypt", NoiseBudgetExhausted, name="decrypt")
        if check_noise and not self.is_decryptable(ct):
            raise NoiseBudgetExhausted(
                "ciphertext noise exceeds the decryptable threshold"
            )
        params = self.context.params
        raw = self._dot_with_secret(ct)
        scaled = raw * params.plain_modulus
        q = params.coeff_modulus
        half = q // 2
        rounded = np.where(
            scaled >= 0, (scaled + half) // q, -((-scaled + half) // q)
        )
        coeffs = (rounded % params.plain_modulus).astype(np.int64)
        return Plaintext(self.context, coeffs)

    def is_decryptable(self, ct: Ciphertext, margin_bits: float = 0.5) -> bool:
        """Statistical correctness test.

        Once noise overflows, the measured residue is uniform and lands
        within a hair of the q/2 ceiling with overwhelming probability, so a
        budget below ``margin_bits`` is treated as overflowed.  (A ciphertext
        whose *true* budget is under half a bit is one operation from death
        anyway.)
        """
        return self.invariant_noise_budget(ct) >= margin_bits

    def _worst_noise(self, ct: Ciphertext) -> int:
        params = self.context.params
        q = params.coeff_modulus
        ring = self.context.ring
        if kernels.active().fast_decrypt and ring.q_fits_int64:
            # [t * ct(s)]_q computed in RNS (scalar multiply per prime) and
            # lifted with the int64 Garner kernel: identical to the object
            # path's (raw * t) % q, without any bigint arithmetic.
            scaled = ring.mul_scalar(self._dot_ntt(ct), params.plain_modulus)
            centered = ring.to_int64_centered(ring.intt(scaled))
            return int(np.abs(centered).max()) if centered.size else 0
        raw = self._dot_with_secret(ct)
        residue = (raw * params.plain_modulus) % q
        centered = np.where(residue > q // 2, residue - q, residue)
        return int(np.abs(centered).max()) if centered.size else 0

    def invariant_noise_budget(self, ct: Ciphertext) -> float:
        """Remaining noise budget in bits (0 when decryption would fail).

        For batched ciphertexts the *minimum* budget over the batch is
        returned, since one overflowing element already corrupts results.
        """
        q = self.context.params.coeff_modulus
        worst = self._worst_noise(ct)
        if worst == 0:
            return float(q.bit_length() - 1)
        budget = math.log2(q) - math.log2(worst) - 1.0
        return max(0.0, budget)


def decrypt_scalar_values(decryptor: Decryptor, encoder, ct: Ciphertext) -> np.ndarray:
    """Decrypt + decode a scalar-encoded ciphertext under the active kernels.

    Under the fused profile (and an int64-liftable ``q``) this takes the
    O(n)-per-value :meth:`Decryptor.decrypt_constants` shortcut; otherwise it
    runs the reference ``encoder.decode(decryptor.decrypt(ct))`` path.  Both
    return the same centered int64 values -- the pipelines' decrypt stages
    dispatch here so the kernel benchmark can compare them in one process.
    """
    ring = decryptor.context.ring
    if kernels.active().fast_decrypt and ring.q_fits_int64:
        return decryptor.decrypt_constants(ct)
    return encoder.decode(decryptor.decrypt(ct))
