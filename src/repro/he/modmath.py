"""Number-theoretic helpers for the FV implementation.

Primality testing, NTT-friendly prime generation, primitive roots of unity,
modular inverses and Chinese-remainder reconstruction.  Everything here works
on plain Python integers; the vectorized hot paths live in
:mod:`repro.he.ntt` and :mod:`repro.he.polyring`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ParameterError

# Deterministic Miller-Rabin witness set, valid for every n < 3.3 * 10^24,
# far beyond the < 2^62 moduli used by this library.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test for ``n < 3.3e24``."""
    if n < 2:
        return False
    for p in _MR_WITNESSES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def ntt_primes(bit_size: int, degree: int, count: int) -> list[int]:
    """Return ``count`` primes ``p = k * 2 * degree + 1`` just below ``2**bit_size``.

    Such primes support a negacyclic NTT of length ``degree`` because the
    multiplicative group contains a ``2 * degree``-th root of unity.

    Args:
        bit_size: target prime width in bits (primes are < ``2**bit_size``).
        degree: NTT length; must be a power of two.
        count: how many distinct primes to return.

    Raises:
        ParameterError: if ``degree`` is not a power of two or not enough
            primes exist below ``2**bit_size``.
    """
    if degree < 2 or degree & (degree - 1):
        raise ParameterError(f"degree must be a power of two, got {degree}")
    if not 2 <= bit_size <= 61:
        raise ParameterError(f"bit_size must be in [2, 61], got {bit_size}")
    modulus = 2 * degree
    found: list[int] = []
    candidate = ((1 << bit_size) - 1) // modulus * modulus + 1
    while candidate > (1 << (bit_size - 1)) and len(found) < count:
        if is_prime(candidate):
            found.append(candidate)
        candidate -= modulus
    if len(found) < count:
        raise ParameterError(
            f"only {len(found)} NTT primes of {bit_size} bits exist for degree {degree}; "
            f"{count} requested"
        )
    return found


def primitive_root(modulus: int) -> int:
    """Smallest primitive root of a prime ``modulus``."""
    if not is_prime(modulus):
        raise ParameterError(f"{modulus} is not prime")
    order = modulus - 1
    factors = _prime_factors(order)
    for g in range(2, modulus):
        if all(pow(g, order // f, modulus) != 1 for f in factors):
            return g
    raise ParameterError(f"no primitive root found for {modulus}")  # pragma: no cover


def root_of_unity(order: int, modulus: int) -> int:
    """A primitive ``order``-th root of unity modulo the prime ``modulus``."""
    if (modulus - 1) % order:
        raise ParameterError(f"{modulus} has no {order}-th root of unity")
    g = primitive_root(modulus)
    root = pow(g, (modulus - 1) // order, modulus)
    # pow(g, (p-1)/order) always has order dividing `order`; verify it is exact.
    if pow(root, order // 2, modulus) == 1:
        raise ParameterError(f"failed to find exact {order}-th root mod {modulus}")
    return root


def invert_mod(a: int, modulus: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``modulus``.

    Raises:
        ParameterError: if ``a`` is not invertible.
    """
    g, x, _ = _extended_gcd(a % modulus, modulus)
    if g != 1:
        raise ParameterError(f"{a} is not invertible mod {modulus}")
    return x % modulus


def crt_reconstruct(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Combine residues under pairwise-coprime moduli into the unique value
    in ``[0, prod(moduli))``."""
    if len(residues) != len(moduli):
        raise ParameterError("residues and moduli must have equal length")
    total = 0
    product = 1
    for m in moduli:
        product *= m
    for r, m in zip(residues, moduli):
        partial = product // m
        total += r * partial * invert_mod(partial, m)
    return total % product


def centered(value: int, modulus: int) -> int:
    """Map ``value mod modulus`` into the centered range ``(-modulus/2, modulus/2]``."""
    value %= modulus
    if value > modulus // 2:
        value -= modulus
    return value


def product(values: Iterable[int]) -> int:
    """Product of an iterable of ints (kept exact with Python bigints)."""
    result = 1
    for v in values:
        result *= v
    return result


def _extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def _prime_factors(n: int) -> list[int]:
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors
