"""Hot-path kernel selection for the HE substrate.

The library carries two implementations of its hottest code paths:

* **reference** -- the original, per-prime / per-tap formulation:
  :class:`~repro.he.ntt.NttPlan` looped over RNS primes, full ``%`` after
  every butterfly, one ``multiply_plain`` + ``add`` per convolution tap,
  the object-array CRT decrypt.  Simple, single-prime, authoritative.
* **fused** -- the vectorized kernel layer: prime-stacked NTT butterflies
  with lazy (deferred) modular reduction, tap-batched conv/dense layer
  kernels, and the int64 Garner/constant-coefficient decrypt shortcut.

Both produce **bit-identical** ciphertexts and plaintexts -- every fused
kernel is an exact algebraic rewrite mod each prime, not an approximation --
so the profile only selects *how* the same values are computed.  The
regression tests and ``benchmarks/bench_hotpath_kernels.py`` hold the two
paths against each other at the ``Ciphertext.data`` level.

The active profile is consulted at call time (module-global, cheap attribute
reads), which lets the benchmark record the pre-change baseline and the
fused path in one process::

    from repro.he import kernels

    with kernels.reference_kernels():
        baseline = pipeline.infer(images)      # original code path
    fused = pipeline.infer(images)             # default: fused kernels
    assert (baseline.logits == fused.logits).all()
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass


@dataclass(frozen=True)
class KernelProfile:
    """Which hot-path implementations are active.

    Attributes:
        stacked_ntt: route ``PolyContext.ntt/intt`` through the prime-stacked
            :class:`~repro.he.ntt.StackedNttPlan` (one butterfly loop over
            all ``k`` residues) instead of ``k`` per-prime ``NttPlan`` passes.
        lazy_reduction: use conditional-subtract / deferred reduction in
            ``PolyContext.add``/``sub`` instead of a full ``%`` pass.
        fused_layers: use the tap-batched conv/dense/pool kernels in
            :mod:`repro.core.heops` instead of the per-tap Python loops.
        fast_decrypt: use the int64 Garner CRT lift and the O(n)
            constant-coefficient decrypt shortcut where applicable.
    """

    stacked_ntt: bool = True
    lazy_reduction: bool = True
    fused_layers: bool = True
    fast_decrypt: bool = True

    @property
    def mode_name(self) -> str:
        flags = (
            self.stacked_ntt,
            self.lazy_reduction,
            self.fused_layers,
            self.fast_decrypt,
        )
        if all(flags):
            return "fused"
        if not any(flags):
            return "reference"
        return "custom"


#: The fully fused profile (library default).
FUSED = KernelProfile()

#: The original pre-kernel-layer code path, kept as the authoritative
#: reference implementation.
REFERENCE = KernelProfile(
    stacked_ntt=False,
    lazy_reduction=False,
    fused_layers=False,
    fast_decrypt=False,
)

_active: KernelProfile = FUSED


def active() -> KernelProfile:
    """The profile hot paths consult at call time."""
    return _active


def record_active_profile() -> None:
    """Publish the active profile as a one-hot gauge family.

    ``repro_he_kernel_profile{mode=...}`` is 1 for the active mode and 0
    for the others, so dashboards can plot FUSED -> REFERENCE degradations
    as a step change.
    """
    from repro.obs import metrics

    registry = metrics.registry()
    if not registry.enabled:
        return
    gauge = registry.gauge(
        "repro_he_kernel_profile",
        "Active hot-path kernel profile (one-hot over modes).",
        ("mode",),
    )
    for mode in ("fused", "reference", "custom"):
        gauge.labels(mode=mode).set(1.0 if mode == _active.mode_name else 0.0)


def configure(profile: KernelProfile) -> KernelProfile:
    """Install ``profile`` globally; returns the previously active one."""
    global _active
    previous = _active
    _active = profile
    record_active_profile()
    return previous


@contextmanager
def use(profile: KernelProfile):
    """Temporarily run under ``profile`` (restores the prior one on exit)."""
    previous = configure(profile)
    try:
        yield profile
    finally:
        configure(previous)


def guard(stage: str) -> None:
    """Runtime equivalence guard for the fused profile.

    Real deployments cross-check fused kernels against the reference path on
    sampled inputs; here the check itself is exact by construction, so the
    only way it trips is through an armed fault plan (site
    ``he.kernels.guard``).  Pipelines call this at the top of an inference
    under the FUSED profile and respond to :class:`KernelGuardError` by
    degrading to REFERENCE and retrying -- graceful degradation instead of
    serving a (hypothetically) wrong answer.
    """
    from repro import faults
    from repro.errors import KernelGuardError

    if not faults.is_armed() or not _active.fused_layers:
        return
    faults.inject("he.kernels.guard", KernelGuardError, name=stage)


def degrade_to_reference() -> KernelProfile:
    """Permanently fall back to the reference profile (returns the prior
    one).  Used by the recovery path after :func:`guard` trips."""
    return configure(REFERENCE)


def reference_kernels():
    """Context manager selecting the original per-prime/per-tap code path."""
    return use(REFERENCE)


def fused_kernels():
    """Context manager selecting the vectorized kernel layer (the default)."""
    return use(FUSED)
