"""CRT (SIMD) batching encoder -- the paper's Section VIII extension.

When the plaintext modulus ``t`` is a prime with ``t ≡ 1 (mod 2n)``, the
plaintext ring factors as ``R_t ≅ Z_t^n`` (Chinese Remainder Theorem), so one
ciphertext carries ``n`` independent *slots*; homomorphic add / multiply act
slot-wise.  The paper notes that with ``n = 1024`` this buys up to 1024x the
throughput; ``benchmarks/bench_ablation_simd.py`` measures exactly that.

The slot isomorphism is realized by the negacyclic NTT modulo ``t``:
``encode`` applies the inverse transform (slot values -> coefficients) and
``decode`` the forward transform.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError
from repro.he.context import Context, Plaintext
from repro.he.ntt import NttPlan


class BatchEncoder:
    """Packs up to ``n`` integers into the slots of a single plaintext.

    Raises:
        EncodingError: if the context's plaintext modulus does not support
            batching (see :meth:`EncryptionParams.supports_batching`).
    """

    def __init__(self, context: Context) -> None:
        if not context.params.supports_batching():
            raise EncodingError(
                f"plain_modulus {context.plain_modulus} is not a batching prime "
                f"(needs prime t ≡ 1 mod {2 * context.poly_degree})"
            )
        self.context = context
        self._plan = NttPlan(context.poly_degree, context.plain_modulus)

    @property
    def slot_count(self) -> int:
        return self.context.poly_degree

    def encode(self, values: np.ndarray) -> Plaintext:
        """Encode slot values (shape ``(..., m)`` with ``m <= n``).

        Shorter vectors are zero-padded; values may be signed and are reduced
        mod ``t``.
        """
        values = np.asarray(values, dtype=np.int64)
        n = self.slot_count
        if values.shape[-1] > n:
            raise EncodingError(
                f"{values.shape[-1]} values exceed the {n} available slots"
            )
        t = self.context.plain_modulus
        slots = np.zeros((*values.shape[:-1], n), dtype=np.int64)
        slots[..., : values.shape[-1]] = values % t
        coeffs = self._plan.inverse(slots)
        return Plaintext(self.context, coeffs)

    def decode(self, plain: Plaintext) -> np.ndarray:
        """Recover all ``n`` slot values, centered into ``(-t/2, t/2]``."""
        self.context.check_same(plain.context)
        slots = self._plan.forward(plain.coeffs)
        t = self.context.plain_modulus
        return np.where(slots > t // 2, slots - t, slots)
