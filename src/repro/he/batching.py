"""CRT (SIMD) batching encoder -- the paper's Section VIII extension.

When the plaintext modulus ``t`` is a prime with ``t ≡ 1 (mod 2n)``, the
plaintext ring factors as ``R_t ≅ Z_t^n`` (Chinese Remainder Theorem), so one
ciphertext carries ``n`` independent *slots*; homomorphic add / multiply act
slot-wise.  The paper notes that with ``n = 1024`` this buys up to 1024x the
throughput; ``benchmarks/bench_ablation_simd.py`` measures exactly that.

The slot isomorphism is realized by the negacyclic NTT modulo ``t``:
``encode`` applies the inverse transform (slot values -> coefficients) and
``decode`` the forward transform.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import EncodingError
from repro.he.context import Ciphertext, Context, Plaintext
from repro.he.ntt import NttPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.he.evaluator import Evaluator


class BatchEncoder:
    """Packs up to ``n`` integers into the slots of a single plaintext.

    Raises:
        EncodingError: if the context's plaintext modulus does not support
            batching (see :meth:`EncryptionParams.supports_batching`).
    """

    def __init__(self, context: Context) -> None:
        if not context.params.supports_batching():
            raise EncodingError(
                f"plain_modulus {context.plain_modulus} is not a batching prime "
                f"(needs prime t ≡ 1 mod {2 * context.poly_degree})"
            )
        self.context = context
        self._plan = NttPlan(context.poly_degree, context.plain_modulus)

    @property
    def slot_count(self) -> int:
        return self.context.poly_degree

    def encode(self, values: np.ndarray) -> Plaintext:
        """Encode slot values (shape ``(..., m)`` with ``m <= n``).

        Shorter vectors are zero-padded; values may be signed and are reduced
        mod ``t``.
        """
        values = np.asarray(values, dtype=np.int64)
        n = self.slot_count
        if values.shape[-1] > n:
            raise EncodingError(
                f"{values.shape[-1]} values exceed the {n} available slots"
            )
        t = self.context.plain_modulus
        slots = np.zeros((*values.shape[:-1], n), dtype=np.int64)
        slots[..., : values.shape[-1]] = values % t
        coeffs = self._plan.inverse(slots)
        return Plaintext(self.context, coeffs)

    def decode(self, plain: Plaintext) -> np.ndarray:
        """Recover all ``n`` slot values, centered into ``(-t/2, t/2]``."""
        self.context.check_same(plain.context)
        slots = self._plan.forward(plain.coeffs)
        t = self.context.plain_modulus
        return np.where(slots > t // 2, slots - t, slots)

    def encode_batch_axis(self, values: np.ndarray) -> Plaintext:
        """Pack axis 0 into the slots: ``(B, *rest)`` values become a
        ``(1, *rest)`` plaintext batch whose slot ``b`` carries row ``b``.

        This is the canonical cross-user packing layout: every pipeline
        position costs one plaintext/ciphertext regardless of ``B``.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim < 1:
            raise EncodingError("encode_batch_axis expects a leading batch axis")
        if values.shape[0] > self.slot_count:
            raise EncodingError(
                f"batch of {values.shape[0]} exceeds the {self.slot_count} "
                "available slots"
            )
        return self.encode(np.moveaxis(values, 0, -1)[None, ...])

    def decode_batch_axis(self, plain: Plaintext, batch: int) -> np.ndarray:
        """Inverse of :meth:`encode_batch_axis`: recover the leading ``batch``
        rows from a ``(1, *rest)`` slot-packed plaintext batch."""
        if batch < 1 or batch > self.slot_count:
            raise EncodingError(
                f"batch must be in [1, {self.slot_count}], got {batch}"
            )
        slots = self.decode(plain)  # (1, *rest, n)
        if slots.shape[0] != 1:
            raise EncodingError(
                "decode_batch_axis expects a (1, *rest) slot-packed plaintext "
                f"batch, got leading axis {slots.shape[0]}"
            )
        return np.moveaxis(slots[0], -1, 0)[:batch]


def pack_coefficients(
    evaluator: "Evaluator", ct: Ciphertext, operand_cache: dict | None = None
) -> Ciphertext:
    """Fold a ciphertext's leading batch axis into polynomial *coefficients*.

    Given scalar-encoded ciphertexts stacked along axis 0 (``(B, *rest)``,
    value in the constant coefficient), homomorphically computes
    ``sum_b ct[b] * x^b`` -- a ``(*rest,)`` ciphertext whose underlying
    plaintext carries value ``b`` in coefficient ``b``.  Pure host-side
    ``C x P`` / ``C + C`` work: no key material, no decryption.

    This is the cheap half of scalar->SIMD conversion: it shrinks the
    payload an enclave must decrypt for slot packing by the factor ``B``
    (both bytes crossed and ciphertexts decrypted), leaving the trusted side
    only one ciphertext per tensor position.  Noise grows by at most
    ``log2(B)`` bits (monomial coefficients are 1), which a fresh encryption
    easily absorbs.

    ``operand_cache`` (optional) memoizes the transformed monomial operand
    across calls keyed by ``B`` -- the transform is a deterministic NTT of
    a constant matrix, so reuse is bit-identical (the graph optimizer's
    ``hoist_ntt`` pass threads a per-pipeline dict through here).

    Raises:
        EncodingError: no batch axis, or ``B`` exceeds the ring degree.
    """
    if not ct.batch_shape:
        raise EncodingError("pack_coefficients expects a leading batch axis")
    b = ct.batch_shape[0]
    n = ct.context.poly_degree
    if b > n:
        raise EncodingError(f"batch of {b} exceeds the ring degree {n}")
    operand = operand_cache.get(b) if operand_cache is not None else None
    if operand is None:
        monomials = np.zeros((b, n), dtype=np.int64)
        monomials[np.arange(b), np.arange(b)] = 1
        operand = evaluator.transform_plain(Plaintext(ct.context, monomials))
        if operand_cache is not None:
            operand_cache[b] = operand
    # Broadcast the (B,)-batched monomial operand over the remaining axes.
    ntt = operand.ntt_data.reshape(
        b, *([1] * (len(ct.batch_shape) - 1)), *operand.ntt_data.shape[-2:]
    )
    shifted = evaluator.multiply_plain(ct, type(operand)(ct.context, ntt))
    return evaluator.sum_batch(shifted, axis=0)
