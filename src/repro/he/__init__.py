"""From-scratch Fan-Vercauteren (FV/BFV) homomorphic encryption.

The HE substrate of the reproduction: RNS polynomial arithmetic over
NTT-friendly primes, the seven algorithms of the paper's Section II-B
(SecretKeyGen, PublicKeyGen, Encrypt, Decrypt, Add, Multiply,
EvaluationKeyGen + relinearization), SEAL-style encoders, and CRT batching.

Typical usage::

    from repro.he import Context, KeyGenerator, Encryptor, Decryptor, Evaluator
    from repro.he import ScalarEncoder, default_parameter_options

    context = Context(default_parameter_options()[2048])
    keys = KeyGenerator(context).generate()
    encoder = ScalarEncoder(context)
    encryptor = Encryptor(context, keys.public)
    evaluator = Evaluator(context)
    decryptor = Decryptor(context, keys.secret)

    ct = encryptor.encrypt(encoder.encode(21))
    ct2 = evaluator.add(ct, ct)
    assert encoder.decode(decryptor.decrypt(ct2)) == 42
"""

from repro.he.arena import Arena, ArenaView, stacked_view
from repro.he.batching import BatchEncoder
from repro.he.context import Ciphertext, Context, Plaintext
from repro.he.decryptor import Decryptor, decrypt_scalar_values
from repro.he.encoders import FractionalEncoder, IntegerEncoder, ScalarEncoder
from repro.he.encryptor import Encryptor, SymmetricEncryptor
from repro.he.evaluator import Evaluator, OperationCounter, PlainOperand
from repro.he.kernels import (
    FUSED,
    REFERENCE,
    KernelProfile,
    fused_kernels,
    reference_kernels,
)
from repro.he.keys import KeyGenerator, KeyPair, PublicKey, RelinKeys, SecretKey
from repro.he.noise import NoiseEstimator
from repro.he.parallel import WorkerPool, active_workers, default_workers
from repro.he.params import (
    EncryptionParams,
    default_parameter_options,
    functional_parameters,
    paper_parameters,
    small_parameter_options,
)

__all__ = [
    "Arena",
    "ArenaView",
    "BatchEncoder",
    "Ciphertext",
    "Context",
    "Decryptor",
    "EncryptionParams",
    "Encryptor",
    "Evaluator",
    "FUSED",
    "FractionalEncoder",
    "IntegerEncoder",
    "KernelProfile",
    "KeyGenerator",
    "KeyPair",
    "NoiseEstimator",
    "OperationCounter",
    "PlainOperand",
    "Plaintext",
    "PublicKey",
    "REFERENCE",
    "RelinKeys",
    "ScalarEncoder",
    "SecretKey",
    "SymmetricEncryptor",
    "WorkerPool",
    "active_workers",
    "decrypt_scalar_values",
    "default_parameter_options",
    "default_workers",
    "stacked_view",
    "functional_parameters",
    "fused_kernels",
    "paper_parameters",
    "reference_kernels",
    "small_parameter_options",
]
