"""Theoretical noise-growth estimates for FV circuits.

The hybrid framework's central noise argument (paper Sections III-A / IV-E)
is that every SGX refresh resets ciphertext noise to fresh-encryption level,
whereas the pure-HE baseline must survive the full circuit depth and pay for
relinearization.  This module provides back-of-envelope estimates, in bits of
invariant-noise budget, that the tests cross-check against the exact budgets
measured by :meth:`repro.he.decryptor.Decryptor.invariant_noise_budget`.

The formulas follow the FV noise analysis (Fan & Vercauteren 2012) in
simplified infinity-norm form; they are upper bounds, not exact predictions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.he.params import EncryptionParams


@dataclass
class NoiseEstimator:
    """Estimates invariant-noise budgets for a parameter set."""

    params: EncryptionParams

    @property
    def _log_q(self) -> float:
        return math.log2(self.params.coeff_modulus)

    def fresh_budget(self) -> float:
        """Budget of a fresh public-key encryption, in bits.

        Fresh invariant noise is about ``t * (2 n B + B) / q`` for noise bound
        ``B = 6 sigma``; the budget is ``-log2(2 ||v||)``.
        """
        n = self.params.poly_degree
        bound = 6.0 * self.params.noise_stddev
        noise = self.params.plain_modulus * bound * (2.0 * n + 1.0)
        return max(0.0, self._log_q - math.log2(2.0 * noise))

    def plain_multiply_cost(self, plain_norm: float, plain_degree: int | None = None) -> float:
        """Budget bits consumed by one ``multiply_plain``.

        Multiplying by a plaintext with ``d`` nonzero coefficients of
        magnitude at most ``||p||`` scales the invariant noise by about
        ``d * ||p||``.
        """
        d = plain_degree if plain_degree is not None else 1
        return math.log2(max(2.0, d * plain_norm))

    def add_cost(self, terms: int) -> float:
        """Budget bits consumed by summing ``terms`` ciphertexts."""
        return math.log2(max(1, terms))

    def multiply_cost(self) -> float:
        """Budget bits consumed by one ciphertext-ciphertext multiply.

        Dominated by ``t * n * (noise growth)``; in budget terms roughly
        ``log2(t) + log2(n) + constant``.
        """
        return (
            math.log2(self.params.plain_modulus)
            + math.log2(self.params.poly_degree)
            + 3.0
        )

    def relinearize_cost(self) -> float:
        """Budget bits consumed by one relinearization.

        Additive noise ``~ L * w * n * B`` relative to the post-multiply
        noise; usually small next to :meth:`multiply_cost`.
        """
        added = (
            self.params.decomposition_count
            * self.params.decomposition_base
            * self.params.poly_degree
            * 6.0
            * self.params.noise_stddev
            * self.params.plain_modulus
        )
        remaining_after = self._log_q - math.log2(2.0 * added)
        return max(0.0, self.fresh_budget() - remaining_after)

    def budget_after(
        self,
        multiplies: int = 0,
        plain_multiplies: int = 0,
        plain_norm: float = 1.0,
        additions: int = 0,
    ) -> float:
        """Estimated remaining budget after a sequence of operations."""
        budget = self.fresh_budget()
        budget -= multiplies * (self.multiply_cost() + self.relinearize_cost())
        budget -= plain_multiplies * self.plain_multiply_cost(plain_norm)
        if additions:
            budget -= self.add_cost(additions)
        return budget

    def layer_headroom(self, quantized) -> dict[str, float]:
        """Per-HE-layer remaining budget, in bits, for the hybrid pipeline.

        Each SGX refresh resets the ciphertext to fresh-encryption noise, so
        every encrypted linear layer starts from :meth:`fresh_budget` and
        only pays for its own plain multiplies and additions.  Returns a
        mapping of layer name to estimated remaining bits -- the values the
        serving layer publishes as ``repro_he_noise_budget_bits``.
        """
        import numpy as np

        # Per-slot noise depth, matching parameters_for_pipeline's sizing
        # convention: each output coefficient sees ONE plain multiply per
        # layer, then log-additive growth over the summed taps/terms.
        k = quantized.conv_weight.shape[-1]
        conv_taps = k * k * quantized.conv_weight.shape[1]
        conv_norm = float(max(1, np.abs(quantized.conv_weight).max()))
        fc_terms = quantized.dense_weight.shape[0]
        fc_norm = float(max(1, np.abs(quantized.dense_weight).max()))
        return {
            "conv": self.budget_after(
                plain_multiplies=1, plain_norm=conv_norm, additions=conv_taps
            ),
            "fc": self.budget_after(
                plain_multiplies=1, plain_norm=fc_norm, additions=fc_terms
            ),
        }

    def supports_circuit(
        self,
        multiplies: int = 0,
        plain_multiplies: int = 0,
        plain_norm: float = 1.0,
        additions: int = 0,
        margin_bits: float = 5.0,
    ) -> bool:
        """True when the parameter set should evaluate the circuit safely."""
        return (
            self.budget_after(multiplies, plain_multiplies, plain_norm, additions)
            >= margin_bits
        )
