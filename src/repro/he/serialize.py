"""Byte-level serialization of FV key material and ciphertexts.

Needed wherever crypto objects cross a trust boundary as raw bytes: the
attested key-delivery channel (paper Section IV-A) and sealed storage.
The format is a small header (magic, CRC32, kind, shape) followed by
little-endian int64 payload; both ends must agree on the encryption
context, which is re-attached on load.

Payloads cross trust boundaries, so the parser is hardened: every load
verifies the CRC before touching the body, and malformed bytes -- bad
magic, truncation, flipped bits, absurd shapes -- raise a typed
:class:`~repro.errors.SerializationError` rather than returning garbage or
dying inside ``struct``/``numpy``.  ``tests/he/test_serialize_fuzz.py``
drives this contract with seeded random corruption.
"""

from __future__ import annotations

import struct
import sys
import zlib

import numpy as np

from repro import faults
from repro.errors import SerializationError
from repro.he.context import Ciphertext, Context
from repro.he.keys import PublicKey, RelinKeys, SecretKey

_MAGIC = b"RPRO"
_KIND_SECRET = 1
_KIND_PUBLIC = 2
_KIND_RELIN = 3
_KIND_CIPHER = 4
_KIND_ARRAYS = 5
_KIND_CIPHER_BATCH = 6

# magic | crc32(rest) | kind, count, extra
_CRC_OFFSET = len(_MAGIC)
_BODY_OFFSET = _CRC_OFFSET + 4
_FIELDS = "<BBI"
_HEADER_LEN = _BODY_OFFSET + struct.calcsize(_FIELDS)
_MAX_NDIM = 8


#: Zero-copy payloads require the wire byte order; big-endian hosts always
#: take the converting fallback.
_NATIVE_IS_WIRE = sys.byteorder == "little"


def _array_payload(arr: np.ndarray) -> "bytes | memoryview":
    """The array's wire bytes -- a zero-copy ``memoryview`` when the array
    is already a contiguous little-endian int64 block (arena views, any
    freshly-built ciphertext data), else the converting copy."""
    if (
        _NATIVE_IS_WIRE
        and isinstance(arr, np.ndarray)
        and arr.ndim >= 1
        and arr.dtype == np.int64
        and arr.dtype.byteorder in ("=", "|", "<")
        and arr.flags.c_contiguous
    ):
        return arr.view(np.uint8).reshape(-1).data
    return np.ascontiguousarray(arr, dtype=np.int64).tobytes()


def _pack(kind: int, arrays: list[np.ndarray], extra: int = 0) -> bytes:
    parts: list[bytes | memoryview] = [struct.pack(_FIELDS, kind, len(arrays), extra)]
    for arr in arrays:
        arr = np.asarray(arr)  # dtype conversion (if any) never changes shape
        parts.append(struct.pack("<B", arr.ndim))
        parts.append(struct.pack(f"<{arr.ndim}q", *arr.shape))
        parts.append(_array_payload(arr))
    body = b"".join(parts)
    return _MAGIC + struct.pack("<I", zlib.crc32(body)) + body


def _unpack(data: bytes, expected_kind: int) -> tuple[list[np.ndarray], int]:
    if len(data) < _HEADER_LEN:
        raise SerializationError(
            f"truncated payload: {len(data)} bytes, header needs {_HEADER_LEN}"
        )
    if data[:_CRC_OFFSET] != _MAGIC:
        raise SerializationError("not a repro-serialized object (bad magic)")
    (crc,) = struct.unpack_from("<I", data, _CRC_OFFSET)
    if zlib.crc32(data[_BODY_OFFSET:]) != crc:
        raise SerializationError(
            "payload failed its integrity check (truncated or bit-flipped)"
        )
    try:
        kind, count, extra = struct.unpack_from(_FIELDS, data, _BODY_OFFSET)
        if kind != expected_kind:
            raise SerializationError(
                f"expected object kind {expected_kind}, found {kind}"
            )
        offset = _HEADER_LEN
        arrays = []
        for _ in range(count):
            (ndim,) = struct.unpack_from("<B", data, offset)
            offset += 1
            if ndim > _MAX_NDIM:
                raise SerializationError(f"implausible array rank {ndim}")
            shape = struct.unpack_from(f"<{ndim}q", data, offset)
            offset += 8 * ndim
            if any(dim < 0 for dim in shape):
                raise SerializationError(f"negative dimension in shape {shape}")
            size = int(np.prod(shape, dtype=object)) * 8
            if offset + size > len(data):
                raise SerializationError(
                    f"array body of {size} bytes overruns a {len(data)}-byte payload"
                )
            arr = np.frombuffer(data[offset : offset + size], dtype="<i8").reshape(shape)
            offset += size
            arrays.append(arr.astype(np.int64))
        if offset != len(data):
            raise SerializationError(
                f"{len(data) - offset} trailing bytes after the last array"
            )
    except (struct.error, ValueError, OverflowError) as exc:
        raise SerializationError(f"malformed payload: {exc}") from exc
    return arrays, extra


def _maybe_corrupt(data: bytes, what: str) -> bytes:
    """Apply the armed plan's ``bitflip``/``truncate`` action to a payload
    about to be parsed (a fault in the untrusted channel, not the parser)."""
    event = faults.poll("he.serialize.deserialize", name=what, bytes=len(data))
    if event is None:
        return data
    if event.rule.error is not None:
        raise event.rule.error(
            f"injected serialization fault for {what} (hit {event.hit}, fire {event.fire})"
        )
    if event.rule.action == "truncate":
        # Deterministic cut somewhere inside the payload, never empty.
        cut = 1 + (event.hit * 7919) % max(1, len(data) - 1)
        return data[:cut]
    # Default corruption: flip one deterministic bit of the body.
    position = (event.hit * 104729) % len(data)
    flipped = bytearray(data)
    flipped[position] ^= 1 << (event.hit % 8)
    return bytes(flipped)


def _load(data: bytes, expected_kind: int, what: str) -> tuple[list[np.ndarray], int]:
    if faults.is_armed():
        data = _maybe_corrupt(data, what)
    return _unpack(data, expected_kind)


def serialize_secret_key(key: SecretKey) -> bytes:
    return _pack(_KIND_SECRET, [key.s_ntt])


def deserialize_secret_key(data: bytes, context: Context) -> SecretKey:
    arrays, _ = _load(data, _KIND_SECRET, "secret_key")
    return SecretKey(context, arrays[0])


def serialize_public_key(key: PublicKey) -> bytes:
    return _pack(_KIND_PUBLIC, [key.p0_ntt, key.p1_ntt])


def deserialize_public_key(data: bytes, context: Context) -> PublicKey:
    arrays, _ = _load(data, _KIND_PUBLIC, "public_key")
    if len(arrays) != 2:
        raise SerializationError(f"public key needs 2 arrays, found {len(arrays)}")
    return PublicKey(context, arrays[0], arrays[1])


def serialize_relin_keys(keys: RelinKeys) -> bytes:
    return _pack(_KIND_RELIN, [keys.key0_ntt, keys.key1_ntt], extra=keys.decomposition_bits)


def deserialize_relin_keys(data: bytes, context: Context) -> RelinKeys:
    arrays, extra = _load(data, _KIND_RELIN, "relin_keys")
    if len(arrays) != 2:
        raise SerializationError(f"relin keys need 2 arrays, found {len(arrays)}")
    return RelinKeys(context, arrays[0], arrays[1], decomposition_bits=extra)


def serialize_int64_arrays(arrays: list[np.ndarray], extra: int = 0) -> bytes:
    """Pack a list of int64 arrays in the library's wire format.

    For payloads that cross a trust boundary but are not key material --
    e.g. a quantized model inside a sealed blob -- so that no ``pickle``
    deserialization ever runs on untrusted bytes.
    """
    return _pack(_KIND_ARRAYS, arrays, extra=extra)


def deserialize_int64_arrays(data: bytes) -> tuple[list[np.ndarray], int]:
    """Inverse of :func:`serialize_int64_arrays`; returns ``(arrays, extra)``."""
    return _load(data, _KIND_ARRAYS, "int64_arrays")


def serialize_ciphertext(ct: Ciphertext) -> bytes:
    return _pack(_KIND_CIPHER, [ct.data], extra=1 if ct.is_ntt else 0)


def serialize_ciphertext_batch(cts: "list[Ciphertext]") -> bytes:
    """Pack many same-domain ciphertexts as one payload.

    With arena-backed ciphertexts this is the arena's serialization story
    made concrete: one header walk (shape per ciphertext) plus one
    zero-copy buffer slice per view -- no ``tobytes`` copies, no per-object
    framing overhead.  All members must share the NTT/coefficient domain
    (stacked flush batches always do).
    """
    if not cts:
        raise SerializationError("ciphertext batch must be non-empty")
    is_ntt = cts[0].is_ntt
    if any(ct.is_ntt != is_ntt for ct in cts):
        raise SerializationError(
            "ciphertext batch mixes NTT and coefficient domains"
        )
    return _pack(_KIND_CIPHER_BATCH, [ct.data for ct in cts], extra=1 if is_ntt else 0)


def deserialize_ciphertext_batch(data: bytes, context: Context) -> "list[Ciphertext]":
    """Inverse of :func:`serialize_ciphertext_batch`."""
    arrays, extra = _load(data, _KIND_CIPHER_BATCH, "ciphertext_batch")
    if not arrays:
        raise SerializationError("ciphertext batch payload holds no arrays")
    return [Ciphertext(context, arr, is_ntt=bool(extra)) for arr in arrays]


def deserialize_ciphertext(data: bytes, context: Context) -> Ciphertext:
    arrays, extra = _load(data, _KIND_CIPHER, "ciphertext")
    if len(arrays) != 1:
        raise SerializationError(f"ciphertext needs 1 array, found {len(arrays)}")
    return Ciphertext(context, arrays[0], is_ntt=bool(extra))
