"""Byte-level serialization of FV key material and ciphertexts.

Needed wherever crypto objects cross a trust boundary as raw bytes: the
attested key-delivery channel (paper Section IV-A) and sealed storage.
The format is a small header (magic, kind, shape) followed by little-endian
int64 payload; both ends must agree on the encryption context, which is
re-attached on load.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import ParameterError
from repro.he.context import Ciphertext, Context
from repro.he.keys import PublicKey, RelinKeys, SecretKey

_MAGIC = b"RPRO"
_KIND_SECRET = 1
_KIND_PUBLIC = 2
_KIND_RELIN = 3
_KIND_CIPHER = 4
_KIND_ARRAYS = 5


def _pack(kind: int, arrays: list[np.ndarray], extra: int = 0) -> bytes:
    parts = [_MAGIC, struct.pack("<BBI", kind, len(arrays), extra)]
    for arr in arrays:
        arr = np.ascontiguousarray(arr, dtype=np.int64)
        parts.append(struct.pack("<B", arr.ndim))
        parts.append(struct.pack(f"<{arr.ndim}q", *arr.shape))
        parts.append(arr.tobytes())
    return b"".join(parts)


def _unpack(data: bytes, expected_kind: int) -> tuple[list[np.ndarray], int]:
    if data[:4] != _MAGIC:
        raise ParameterError("not a repro-serialized object (bad magic)")
    kind, count, extra = struct.unpack_from("<BBI", data, 4)
    if kind != expected_kind:
        raise ParameterError(f"expected object kind {expected_kind}, found {kind}")
    offset = 4 + struct.calcsize("<BBI")
    arrays = []
    for _ in range(count):
        (ndim,) = struct.unpack_from("<B", data, offset)
        offset += 1
        shape = struct.unpack_from(f"<{ndim}q", data, offset)
        offset += 8 * ndim
        size = int(np.prod(shape)) * 8
        arr = np.frombuffer(data[offset : offset + size], dtype="<i8").reshape(shape)
        offset += size
        arrays.append(arr.astype(np.int64))
    return arrays, extra


def serialize_secret_key(key: SecretKey) -> bytes:
    return _pack(_KIND_SECRET, [key.s_ntt])


def deserialize_secret_key(data: bytes, context: Context) -> SecretKey:
    arrays, _ = _unpack(data, _KIND_SECRET)
    return SecretKey(context, arrays[0])


def serialize_public_key(key: PublicKey) -> bytes:
    return _pack(_KIND_PUBLIC, [key.p0_ntt, key.p1_ntt])


def deserialize_public_key(data: bytes, context: Context) -> PublicKey:
    arrays, _ = _unpack(data, _KIND_PUBLIC)
    return PublicKey(context, arrays[0], arrays[1])


def serialize_relin_keys(keys: RelinKeys) -> bytes:
    return _pack(_KIND_RELIN, [keys.key0_ntt, keys.key1_ntt], extra=keys.decomposition_bits)


def deserialize_relin_keys(data: bytes, context: Context) -> RelinKeys:
    arrays, extra = _unpack(data, _KIND_RELIN)
    return RelinKeys(context, arrays[0], arrays[1], decomposition_bits=extra)


def serialize_int64_arrays(arrays: list[np.ndarray], extra: int = 0) -> bytes:
    """Pack a list of int64 arrays in the library's wire format.

    For payloads that cross a trust boundary but are not key material --
    e.g. a quantized model inside a sealed blob -- so that no ``pickle``
    deserialization ever runs on untrusted bytes.
    """
    return _pack(_KIND_ARRAYS, arrays, extra=extra)


def deserialize_int64_arrays(data: bytes) -> tuple[list[np.ndarray], int]:
    """Inverse of :func:`serialize_int64_arrays`; returns ``(arrays, extra)``."""
    return _unpack(data, _KIND_ARRAYS)


def serialize_ciphertext(ct: Ciphertext) -> bytes:
    return _pack(_KIND_CIPHER, [ct.data], extra=1 if ct.is_ntt else 0)


def deserialize_ciphertext(data: bytes, context: Context) -> Ciphertext:
    arrays, extra = _unpack(data, _KIND_CIPHER)
    return Ciphertext(context, arrays[0], is_ntt=bool(extra))
