"""FV key material and key generation (paper Section II-B).

Implements ``SecretKeyGen``, ``PublicKeyGen`` and ``EvaluationKeyGen``:

* ``SecretKeyGen(1^lambda)``: sample ternary ``s``.
* ``PublicKeyGen(sk)``: sample ``a`` uniform in R_q, ``e`` from chi, output
  ``pk = ([-(a s + e)]_q, a)``.
* ``EvaluationKeyGen(sk, w)``: for each base-``w`` digit position ``i``,
  output ``([-(a_i s + e_i) + w^i s^2]_q, a_i)`` -- the relinearization keys.

All key polynomials are stored in NTT domain so that key-dependent products
(encryption, decryption, relinearization) are pointwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.he.context import Context


@dataclass
class SecretKey:
    """The ternary secret ``s`` (NTT domain)."""

    context: Context
    s_ntt: np.ndarray

    def byte_size(self) -> int:
        return self.s_ntt.nbytes


@dataclass
class PublicKey:
    """``pk = (p0, p1) = ([-(a s + e)]_q, a)`` (NTT domain)."""

    context: Context
    p0_ntt: np.ndarray
    p1_ntt: np.ndarray

    def byte_size(self) -> int:
        return self.p0_ntt.nbytes + self.p1_ntt.nbytes


@dataclass
class RelinKeys:
    """Relinearization (evaluation) keys.

    ``key0[i], key1[i]`` hold the pair for digit position ``i`` of the
    base-``w`` decomposition, both in NTT domain with shape ``(L, k, n)``.
    """

    context: Context
    key0_ntt: np.ndarray
    key1_ntt: np.ndarray
    decomposition_bits: int

    @property
    def count(self) -> int:
        return self.key0_ntt.shape[0]

    def byte_size(self) -> int:
        return self.key0_ntt.nbytes + self.key1_ntt.nbytes


@dataclass
class KeyPair:
    """Convenience bundle returned by :meth:`KeyGenerator.generate`."""

    public: PublicKey
    secret: SecretKey


class KeyGenerator:
    """Generates FV key material for a context.

    Args:
        context: the encryption context.
        rng: numpy Generator; pass a seeded generator for reproducible keys.
    """

    def __init__(self, context: Context, rng: np.random.Generator | None = None) -> None:
        self.context = context
        self.rng = rng if rng is not None else np.random.default_rng()

    def generate(self) -> KeyPair:
        """Run ``SecretKeyGen`` followed by ``PublicKeyGen``."""
        secret = self.secret_key()
        return KeyPair(public=self.public_key(secret), secret=secret)

    def secret_key(self) -> SecretKey:
        ring = self.context.ring
        s = ring.sample_ternary(self.rng)
        return SecretKey(self.context, ring.ntt(s))

    def public_key(self, secret: SecretKey) -> PublicKey:
        ring = self.context.ring
        stddev = self.context.params.noise_stddev
        a = ring.sample_uniform(self.rng)
        e = ring.sample_noise(self.rng, stddev)
        a_ntt = ring.ntt(a)
        e_ntt = ring.ntt(e)
        p0 = ring.neg(ring.add(ring.pointwise_mul(a_ntt, secret.s_ntt), e_ntt))
        return PublicKey(self.context, p0, a_ntt)

    def relin_keys(self, secret: SecretKey) -> RelinKeys:
        """``EvaluationKeyGen(sk, w)`` for ``w = 2**decomposition_bits``."""
        ring = self.context.ring
        params = self.context.params
        stddev = params.noise_stddev
        count = params.decomposition_count
        s2 = ring.pointwise_mul(secret.s_ntt, secret.s_ntt)
        key0 = np.empty((count, ring.k, ring.n), dtype=np.int64)
        key1 = np.empty((count, ring.k, ring.n), dtype=np.int64)
        power = 1
        for i in range(count):
            a = ring.ntt(ring.sample_uniform(self.rng))
            e = ring.ntt(ring.sample_noise(self.rng, stddev))
            body = ring.neg(ring.add(ring.pointwise_mul(a, secret.s_ntt), e))
            key0[i] = ring.add(body, ring.mul_scalar(s2, power))
            key1[i] = a
            power *= params.decomposition_base
        return RelinKeys(self.context, key0, key1, params.decomposition_bits)
