"""FV encryption (paper Section II-B, ``Encrypt``).

``Encrypt(pk, m)``: sample ``u`` ternary and ``e1, e2`` from chi, output::

    ct = (c0, c1) = ([p0 u + e1 + Delta m]_q, [p1 u + e2]_q)

The encryptor is batched: a plaintext with leading batch axes produces one
ciphertext object holding independently randomized encryptions for every
element, in a handful of vectorized numpy calls.
"""

from __future__ import annotations

import numpy as np

from repro.he import kernels
from repro.he.context import Ciphertext, Context, Plaintext
from repro.he.keys import PublicKey, SecretKey


class Encryptor:
    """Encrypts plaintexts under a public key.

    Args:
        context: the encryption context.
        public_key: target public key.
        rng: numpy Generator for the encryption randomness.
    """

    def __init__(
        self,
        context: Context,
        public_key: PublicKey,
        rng: np.random.Generator | None = None,
    ) -> None:
        context.check_same(public_key.context)
        self.context = context
        self.public_key = public_key
        self.rng = rng if rng is not None else np.random.default_rng()

    def encrypt(self, plain: Plaintext) -> Ciphertext:
        """Encrypt a (batched) plaintext into a fresh size-2 ciphertext."""
        self.context.check_same(plain.context)
        ring = self.context.ring
        params = self.context.params
        batch = plain.batch_shape
        ternary = ring.sample_ternary(self.rng, *batch)
        e1 = ring.sample_noise(self.rng, params.noise_stddev, *batch)
        e2 = ring.sample_noise(self.rng, params.noise_stddev, *batch)
        delta_m = ring.mul_scalar(ring.from_int_coeffs(plain.coeffs), params.delta)
        if kernels.active().stacked_ntt:
            # One stacked butterfly pass over [u, e1 + Delta m, e2] instead
            # of three transforms -- same values, amortized stage overhead.
            fx = ring.ntt(np.stack([ternary, ring.add(e1, delta_m), e2]))
            u, t1, t2 = fx[0], fx[1], fx[2]
        else:
            u = ring.ntt(ternary)
            t1 = ring.ntt(ring.add(e1, delta_m))
            t2 = ring.ntt(e2)
        c0 = ring.add(ring.pointwise_mul(self.public_key.p0_ntt, u), t1)
        c1 = ring.add(ring.pointwise_mul(self.public_key.p1_ntt, u), t2)
        data = np.stack([c0, c1], axis=-3)
        return Ciphertext(self.context, data, is_ntt=True)

    def encrypt_scalar(self, plain: Plaintext) -> Ciphertext:
        """Encrypt a scalar-encoded (constant-polynomial) plaintext batch.

        Bit-identical to :meth:`encrypt` -- same RNG draws, same output
        bytes -- but ``Delta m`` is computed on the constant-coefficient
        column alone instead of materializing the full degree-``n``
        residue array, which is all a scalar encoding populates.  Falls
        back to :meth:`encrypt` when any higher coefficient is nonzero.
        """
        self.context.check_same(plain.context)
        if plain.coeffs[..., 1:].any():
            return self.encrypt(plain)
        ring = self.context.ring
        params = self.context.params
        batch = plain.batch_shape
        ternary = ring.sample_ternary(self.rng, *batch)
        e1 = ring.sample_noise(self.rng, params.noise_stddev, *batch)
        e2 = ring.sample_noise(self.rng, params.noise_stddev, *batch)
        # Column 0 of the full path's mul_scalar(from_int_coeffs(.), Delta);
        # every other column of Delta m is zero, and adding zero leaves e1's
        # canonical residues untouched under either kernel profile.
        p_col = ring.primes.reshape(-1, 1)
        const = plain.coeffs[..., :1][..., None, :] % p_col
        delta_m0 = (const * ring.scalar_residues(params.delta)) % p_col
        e1[..., :1] = ring.add(e1[..., :1], delta_m0)
        if kernels.active().stacked_ntt:
            fx = ring.ntt(np.stack([ternary, e1, e2]))
            u, t1, t2 = fx[0], fx[1], fx[2]
        else:
            u = ring.ntt(ternary)
            t1 = ring.ntt(e1)
            t2 = ring.ntt(e2)
        c0 = ring.add(ring.pointwise_mul(self.public_key.p0_ntt, u), t1)
        c1 = ring.add(ring.pointwise_mul(self.public_key.p1_ntt, u), t2)
        data = np.stack([c0, c1], axis=-3)
        return Ciphertext(self.context, data, is_ntt=True)

    def encrypt_zero(self, *batch_shape: int) -> Ciphertext:
        """Fresh encryption of zero (useful for refresh and padding)."""
        zeros = Plaintext(
            self.context,
            np.zeros((*batch_shape, self.context.poly_degree), dtype=np.int64),
        )
        return self.encrypt(zeros)


class SymmetricEncryptor:
    """Secret-key encryption: ``ct = ([-(a s + e) + Delta m]_q, a)``.

    Produces slightly less noisy ciphertexts than public-key encryption.
    The enclave uses this form when re-encrypting intermediate CNN state,
    since it holds the secret key anyway (paper Section IV-D).
    """

    def __init__(
        self,
        context: Context,
        secret_key: SecretKey,
        rng: np.random.Generator | None = None,
    ) -> None:
        context.check_same(secret_key.context)
        self.context = context
        self.secret_key = secret_key
        self.rng = rng if rng is not None else np.random.default_rng()

    def encrypt(self, plain: Plaintext) -> Ciphertext:
        self.context.check_same(plain.context)
        ring = self.context.ring
        params = self.context.params
        batch = plain.batch_shape
        uniform = ring.sample_uniform(self.rng, *batch)
        e = ring.sample_noise(self.rng, params.noise_stddev, *batch)
        delta_m = ring.mul_scalar(ring.from_int_coeffs(plain.coeffs), params.delta)
        if kernels.active().stacked_ntt:
            fx = ring.ntt(np.stack([uniform, ring.add(delta_m, e)]))
            a, masked = fx[0], fx[1]
        else:
            a = ring.ntt(uniform)
            masked = ring.ntt(ring.add(delta_m, e))
        body = ring.sub(masked, ring.pointwise_mul(a, self.secret_key.s_ntt))
        data = np.stack([body, a], axis=-3)
        return Ciphertext(self.context, data, is_ntt=True)
