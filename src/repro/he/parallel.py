"""Multicore flush execution: a worker pool over the shared ciphertext arena.

Everything below PR 3's FUSED kernels is one Python process; this module
dispatches the kernels' embarrassingly-parallel halves -- the signed-int64
matmul contractions of the fused conv and dense layers -- to a pool of
forked worker processes over a shared-memory :class:`~repro.he.arena.Arena`.

**Determinism contract.**  Work units are contiguous index ranges over one
axis of the output (batch rows when the batch is stacked, conv output rows
or FC classes for a slot-packed ``B == 1`` flush).  Each unit's arithmetic
is the *same* exact int64 chunk-ordered contraction the in-process kernel
runs for those indices -- integer adds are associative and every partial is
bounds-checked against int64 by the caller -- so the assembled output is
byte-identical to the single-process path regardless of worker count,
scheduling, or completion order.  Workers write results straight into
disjoint slices of the shared output block; assembly is positional, never
order-of-arrival.

**Worker death.**  The ``parallel.worker`` fault site (``name`` = worker
id) SIGKILLs a worker at dispatch.  Recovery retires the *whole* pool --
a killed worker can die holding a queue lock, and a surviving writer from
a torn-down generation must never touch a reused arena -- then replays
every unacknowledged unit in-process through the identical unit executor
(bit-identical by the contract above) and respawns fresh workers for the
next flush.

**Configuration.**  ``configure(workers)`` / ``use(workers)`` mirror
``repro.he.kernels``; ``REPRO_WORKERS`` is the environment default and
``PipelineSpec(workers=...)`` / ``build_pipeline(...)`` route here.  With
``workers <= 1`` no pool exists and every kernel runs its original
in-process path -- the graceful fallback, and the authoritative
implementation the pool is verified against.
"""

from __future__ import annotations

import atexit
import os
import signal
import time
from contextlib import contextmanager

import numpy as np

from repro import faults
from repro.errors import ParallelError
from repro.he.arena import Arena
from repro.obs import context as obs_context
from repro.obs import metrics, recorder
from repro.obs.tracer import Span, active_tracer

#: Fault site consulted once per dispatched unit (``name`` = preferred
#: worker id); a fire SIGKILLs that worker mid-flush.
FAULT_SITE = "parallel.worker"

#: Contiguous units carved per worker per flush (2 gives the shared queue
#: room to balance without shrinking units into IPC noise).
UNITS_PER_WORKER = 2

#: Hard ceiling on one flush's collection phase in real seconds.
RUN_TIMEOUT_S = 120.0

_ENV_WORKERS = "REPRO_WORKERS"


# ----------------------------------------------------------------------
# pool metrics (repro.obs registry families)
# ----------------------------------------------------------------------
def _m_units():
    return metrics.registry().counter(
        "repro_parallel_units_total",
        "Work units dispatched to the shared-memory worker pool.",
        ("kind",),
    )


def _m_steals():
    return metrics.registry().counter(
        "repro_parallel_steals_total",
        "Units completed by a worker other than the dispatch-preferred one.",
    )


def _m_deaths():
    return metrics.registry().counter(
        "repro_parallel_worker_deaths_total",
        "Workers found dead mid-flush (pool retired and respawned).",
    )


def _m_replayed():
    return metrics.registry().counter(
        "repro_parallel_replayed_units_total",
        "Units replayed in-process after a worker death (bit-identical).",
    )


def _m_unit_latency():
    return metrics.registry().histogram(
        "repro_parallel_unit_seconds",
        "Per-unit real execution latency inside pool workers.",
        ("kind",),
        buckets=metrics.LATENCY_BUCKETS,
    )


def _m_busy():
    return metrics.registry().counter(
        "repro_parallel_worker_busy_seconds_total",
        "Real seconds each worker spent executing units (utilization "
        "numerator; flush wall time is the denominator).",
        ("worker",),
    )


def _m_workers():
    return metrics.registry().gauge(
        "repro_parallel_workers",
        "Configured worker count (1 = in-process fallback).",
    )


# ----------------------------------------------------------------------
# configuration (mirrors repro.he.kernels)
# ----------------------------------------------------------------------
_configured: int | None = None
_pool: "WorkerPool | None" = None


def default_workers() -> int:
    """The ``REPRO_WORKERS`` environment default (1 when unset/garbage)."""
    raw = os.environ.get(_ENV_WORKERS, "").strip()
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


def active_workers() -> int:
    """The effective worker count (configured, else the env default)."""
    return _configured if _configured is not None else default_workers()


def configure(workers: int | None) -> int | None:
    """Install a process-wide worker count; returns the previous setting.

    ``None`` reverts to the ``REPRO_WORKERS`` environment default.  A
    change tears down any live pool so the next dispatch builds one at the
    new width.
    """
    global _configured
    if workers is not None and workers < 1:
        raise ParallelError(f"workers must be >= 1, got {workers}")
    previous = _configured
    before = active_workers()
    _configured = workers
    if active_workers() != before:
        shutdown()
    _m_workers().set(active_workers())
    return previous


@contextmanager
def use(workers: int | None):
    """Scoped :func:`configure`; restores the previous setting on exit."""
    previous = configure(workers)
    try:
        yield
    finally:
        configure(previous)


def shutdown() -> None:
    """Tear down the live pool (tests, config changes, interpreter exit)."""
    global _pool
    if _pool is not None:
        pool, _pool = _pool, None
        pool.close()


atexit.register(shutdown)


def active_pool() -> "WorkerPool | None":
    """The lazily-built pool for the active worker count (None when <= 1:
    the in-process fallback stays authoritative)."""
    global _pool
    workers = active_workers()
    if workers <= 1:
        return None
    if _pool is None or _pool.workers != workers:
        shutdown()
        _pool = WorkerPool(workers)
    return _pool


# ----------------------------------------------------------------------
# unit executors (shared verbatim by workers and in-process replay)
# ----------------------------------------------------------------------
def _conv_unit(task: dict, buf: np.ndarray) -> None:
    """One conv work unit: the fused scalar tap contraction for a row range.

    Identical chunk-ordered arithmetic to ``heops._he_conv2d_fused``'s
    scalar path, restricted to ``rows`` of the split axis; exact int64
    adds are associative, so any row split is byte-identical to the full
    contraction.
    """
    in_off, in_shape = task["in_off"], task["in_shape"]
    w_off, w_shape = task["w_off"], task["w_shape"]
    out_off, out_shape = task["out_off"], task["out_shape"]
    data = buf[in_off : in_off + _size(in_shape)].reshape(in_shape)
    wtaps = buf[w_off : w_off + _size(w_shape)].reshape(w_shape)
    out = buf[out_off : out_off + _size(out_shape)].reshape(out_shape)
    k, s, oh, ow = task["k"], task["s"], task["oh"], task["ow"]
    chunk, primes = task["chunk"], task["primes"]
    r0, r1 = task["rows"]
    if task["axis"] == "batch":
        data = data[r0:r1]
        oh0, oh1 = 0, oh
    else:  # conv output rows (the slot-packed B == 1 flush)
        oh0, oh1 = r0, r1
    b, c = data.shape[0], data.shape[1]
    tail = data.shape[-3:]
    f, t = wtaps.shape
    tap_index = [(ci, i, j) for ci in range(c) for i in range(k) for j in range(k)]
    acc = np.zeros((f, b, oh1 - oh0, ow, *tail), dtype=np.int64)
    for start in range(0, t, chunk):
        block = tap_index[start : start + chunk]
        win = np.empty((len(block), *acc.shape[1:]), dtype=np.int64)
        for off, (ci, i, j) in enumerate(block):
            win[off] = data[:, ci, i : i + oh * s : s, j : j + ow * s : s][:, oh0:oh1]
        acc += (
            wtaps[:, start : start + chunk] @ win.reshape(len(block), -1)
        ).reshape(acc.shape)
    for idx, p in enumerate(primes):
        acc[..., idx, :] %= p
    if task["axis"] == "batch":
        out[r0:r1] = np.moveaxis(acc, 0, 1)
    else:
        out[:, :, r0:r1] = np.moveaxis(acc, 0, 1)


def _dense_unit(task: dict, buf: np.ndarray) -> None:
    """One dense work unit: the all-classes FC matmul for a row range
    (batch rows, or output classes when the packed batch is 1)."""
    in_off, in_shape = task["in_off"], task["in_shape"]
    w_off, w_shape = task["w_off"], task["w_shape"]
    out_off, out_shape = task["out_off"], task["out_shape"]
    fd = buf[in_off : in_off + _size(in_shape)].reshape(in_shape)
    wmat = buf[w_off : w_off + _size(w_shape)].reshape(w_shape)
    out = buf[out_off : out_off + _size(out_shape)].reshape(out_shape)
    primes = task["primes"]
    r0, r1 = task["rows"]
    d = fd.shape[1]
    if task["axis"] == "batch":
        fd = fd[r0:r1]
        wmat_rows = wmat
    else:  # output classes
        wmat_rows = wmat[r0:r1]
    b = fd.shape[0]
    moved = np.ascontiguousarray(np.moveaxis(fd, 1, 0)).reshape(d, -1)
    summed = (wmat_rows @ moved).reshape(wmat_rows.shape[0], b, *fd.shape[2:])
    for idx, p in enumerate(primes):
        summed[..., idx, :] %= p
    if task["axis"] == "batch":
        out[r0:r1] = np.moveaxis(summed, 0, 1)
    else:
        out[:, r0:r1] = np.moveaxis(summed, 0, 1)


_EXECUTORS = {"conv": _conv_unit, "dense": _dense_unit}


def _size(shape: tuple[int, ...]) -> int:
    return int(np.prod(shape, dtype=np.int64)) if shape else 1


def _execute_unit(task: dict, buf: np.ndarray) -> None:
    _EXECUTORS[task["kind"]](task, buf)


def _worker_main(worker_id: int, tasks, results) -> None:  # pragma: no cover
    """Worker loop: attach the named segment lazily, execute, ack.

    Runs in forked children; covered by the integration suite, not by
    in-process coverage.  Generation teardown SIGTERMs workers; exiting via
    ``os._exit`` skips interpreter shutdown so the attached segments (whose
    lifetime the parent owns) never trip ``SharedMemory.__del__``.
    """
    signal.signal(signal.SIGTERM, lambda signum, frame: os._exit(0))
    attached: dict[str, tuple] = {}
    while True:
        task = tasks.get()
        if task is None:
            break
        started = time.perf_counter()
        _execute_unit(task, _attach_buffer(task["shm"], attached))
        results.put((worker_id, task["unit"], time.perf_counter() - started))
    while attached:
        shm, arr = attached.popitem()[1]
        del arr  # drop the frombuffer export before closing the mapping
        try:
            shm.close()
        except BufferError:
            pass
    os._exit(0)


def _attach_buffer(name: str, cache: dict) -> np.ndarray:  # pragma: no cover
    if name not in cache:
        from multiprocessing import shared_memory

        # The parent owns the segment's lifetime (its unlink clears the
        # resource tracker entry); the child only maps it.
        shm = shared_memory.SharedMemory(name=name)
        cache[name] = (shm, np.frombuffer(shm.buf, dtype=np.int64))
    return cache[name][1]


def _unit_ranges(length: int, units: int) -> list[tuple[int, int]]:
    """Deterministic contiguous split of ``range(length)`` into ``units``."""
    units = max(1, min(length, units))
    bounds = np.linspace(0, length, units + 1, dtype=np.int64)
    return [(int(a), int(b)) for a, b in zip(bounds, bounds[1:]) if b > a]


class WorkerPool:
    """Forked process pool executing kernel units over a shared arena."""

    def __init__(self, workers: int, *, capacity_words: int = 1 << 18) -> None:
        if workers < 2:
            raise ParallelError("WorkerPool needs >= 2 workers; use the "
                                "in-process fallback below that")
        import multiprocessing as mp

        self.workers = workers
        self._mp = mp.get_context("fork")
        self.arena = Arena(capacity_words, shared=True, auto_grow=True)
        self._procs: dict[int, object] = {}
        self._tasks = None
        self._results = None
        self._unit_seq = 0
        self.deaths = 0
        self.replayed_units = 0
        self.dispatched_units = 0
        self.stolen_units = 0
        self._spawn_all()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn_all(self) -> None:
        self._tasks = self._mp.SimpleQueue()
        self._results = self._mp.SimpleQueue()
        self._procs = {}
        for wid in range(self.workers):
            proc = self._mp.Process(
                target=_worker_main,
                args=(wid, self._tasks, self._results),
                daemon=True,
                name=f"repro-parallel-{wid}",
            )
            proc.start()
            self._procs[wid] = proc

    def _teardown_procs(self) -> None:
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs.values():
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck terminate
                proc.kill()
                proc.join(timeout=2.0)
        self._procs = {}
        for queue in (self._tasks, self._results):
            if queue is not None:
                queue.close()
        self._tasks = self._results = None

    def close(self) -> None:
        if self._tasks is not None:
            try:
                for _ in self._procs:
                    self._tasks.put(None)
            except Exception:  # pragma: no cover - broken pipe after a kill
                pass
        self._teardown_procs()
        self.arena.close()

    # ------------------------------------------------------------------
    # kernel entry points
    # ------------------------------------------------------------------
    def run_conv(
        self,
        data: np.ndarray,
        wtaps: np.ndarray,
        *,
        k: int,
        s: int,
        oh: int,
        ow: int,
        primes: list[int],
        chunk: int,
    ) -> np.ndarray | None:
        """Fused scalar conv over the pool; returns ``(B, F, OH, OW, *tail)``
        or None when there is nothing to split (single row on both axes)."""
        b = data.shape[0]
        axis, length = ("batch", b) if b > 1 else ("rows", oh)
        if length < 2:
            return None
        f = wtaps.shape[0]
        out_shape = (b, f, oh, ow, *data.shape[-3:])
        common = {"k": k, "s": s, "oh": oh, "ow": ow, "chunk": chunk}
        return self._run_kernel("conv", data, wtaps, out_shape, axis, length, common, primes)

    def run_dense(
        self, fd: np.ndarray, wmat: np.ndarray, *, primes: list[int]
    ) -> np.ndarray | None:
        """Fused scalar dense over the pool; returns ``(B, O, *tail)`` or
        None when there is nothing to split."""
        b, o = fd.shape[0], wmat.shape[0]
        axis, length = ("batch", b) if b > 1 else ("classes", o)
        if length < 2:
            return None
        out_shape = (b, o, *fd.shape[2:])
        return self._run_kernel("dense", fd, wmat, out_shape, axis, length, {}, primes)

    def _run_kernel(
        self,
        kind: str,
        data: np.ndarray,
        weights: np.ndarray,
        out_shape: tuple[int, ...],
        axis: str,
        length: int,
        common: dict,
        primes: list[int],
    ) -> np.ndarray:
        self.arena.reset()
        in_view = self.arena.place(data)
        w_view = self.arena.place(weights)
        out_view = self.arena.alloc(out_shape)
        tasks = []
        trace_header = obs_context.wire_current()
        for r0, r1 in _unit_ranges(length, self.workers * UNITS_PER_WORKER):
            tasks.append(
                {
                    "unit": self._unit_seq,
                    "trace": trace_header,
                    "kind": kind,
                    "shm": self.arena.name,
                    "in_off": in_view.offset,
                    "in_shape": in_view.shape,
                    "w_off": w_view.offset,
                    "w_shape": w_view.shape,
                    "out_off": out_view.offset,
                    "out_shape": out_view.shape,
                    "axis": axis,
                    "rows": (r0, r1),
                    "primes": tuple(int(p) for p in primes),
                    **common,
                }
            )
            self._unit_seq += 1
        self._run_units(tasks)
        return out_view.array.copy()

    # ------------------------------------------------------------------
    # dispatch / collection
    # ------------------------------------------------------------------
    def _run_units(self, tasks: list[dict]) -> None:
        units = _m_units()
        preferred: dict[int, int] = {}
        armed = faults.is_armed()
        killed: list[int] = []
        for index, task in enumerate(tasks):
            wid = index % self.workers
            preferred[task["unit"]] = wid
            if armed and not killed:
                event = faults.poll(FAULT_SITE, name=str(wid), units=len(tasks))
                if event is not None:
                    self._kill_worker(wid)
                    killed.append(wid)
            if killed:
                # A known-dead worker may hold a queue lock, and survivors
                # could drain its units and mask the loss; stop dispatching
                # and recover the whole generation deterministically.
                continue
            self._tasks.put(task)
            self.dispatched_units += 1
            units.labels(kind=task["kind"]).inc()
        pending = {task["unit"]: task for task in tasks}
        if killed:
            self._recover(killed, pending)
            return
        latency = _m_unit_latency()
        deadline = time.monotonic() + RUN_TIMEOUT_S
        while pending:
            if self._poll_results(0.05):
                wid, unit, elapsed = self._results.get()
                task = pending.pop(unit, None)
                if task is None:
                    continue  # stale ack from a superseded generation
                latency.labels(kind=task["kind"]).observe(elapsed)
                _m_busy().labels(worker=str(wid)).inc(elapsed)
                if wid != preferred[unit]:
                    self.stolen_units += 1
                    _m_steals().inc()
                self._annotate_unit(task, wid, elapsed)
                continue
            dead = [w for w, proc in self._procs.items() if not proc.is_alive()]
            if dead:
                self._recover(dead, pending)
                pending = {}
            elif time.monotonic() > deadline:
                raise ParallelError(
                    f"worker pool stalled: {len(pending)} unit(s) pending "
                    f"past {RUN_TIMEOUT_S:.0f}s with all workers alive"
                )

    def _annotate_unit(self, task: dict, wid: int, elapsed: float) -> None:
        """Re-attach a completed work unit to the open trace, if any.

        The unit ran out-of-process where no tracer exists, so its ack
        becomes a zero-cost annotation span under whatever span is open
        (the kernel's stage): simulated time is untouched -- the host-side
        seconds ride along as an attr -- and the request contexts from the
        work-unit header re-stamp so fan-out stays attributable per user.
        """
        tracer = active_tracer()
        parent = tracer.current if tracer is not None else None
        if parent is None:
            return
        span = Span(
            name=f"parallel/{task['kind']}_unit",
            kind="span",
            attrs={
                "unit": task["unit"],
                "worker": wid,
                "rows": list(task["rows"]),
                "host_elapsed_s": elapsed,
            },
        )
        header = task.get("trace") or []
        if len(header) == 1:
            span.attrs["trace_id"] = header[0]["trace_id"]
            if header[0].get("parent_id"):
                span.attrs["trace_parent"] = header[0]["parent_id"]
        elif header:
            span.attrs["trace_ids"] = [h["trace_id"] for h in header]
        parent.children.append(span)

    def _poll_results(self, timeout: float) -> bool:
        reader = getattr(self._results, "_reader", None)
        if reader is not None:
            return reader.poll(timeout)
        time.sleep(timeout)  # pragma: no cover - SimpleQueue without _reader
        return not self._results.empty()  # pragma: no cover

    def _kill_worker(self, wid: int) -> None:
        proc = self._procs.get(wid)
        if proc is not None and proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=2.0)

    def _recover(self, dead: list[int], pending: dict[int, dict]) -> None:
        """Retire the pool generation and replay pending units in-process.

        The whole generation goes, not just the dead worker: a SIGKILLed
        worker can die holding a queue lock, and a surviving worker still
        executing a unit from this flush must never write into the arena
        after it is reused.  Replay runs the identical unit executor over
        the parent's own mapping, in ascending unit order -- bit-identical
        output by the determinism contract.
        """
        self.deaths += len(dead)
        _m_deaths().inc(len(dead))
        recorder.record(
            "parallel.worker_death",
            severity="error",
            workers=sorted(dead),
            pending_units=sorted(pending),
        )
        self._teardown_procs()
        replay = _m_replayed()
        for unit in sorted(pending):
            _execute_unit(pending[unit], self.arena.buffer)
            self.replayed_units += 1
            replay.inc()
        recorder.record(
            "parallel.replay",
            severity="warn",
            units=sorted(pending),
            replayed_units=self.replayed_units,
        )
        self._spawn_all()


# ----------------------------------------------------------------------
# kernel-facing dispatch helpers (None -> caller runs in-process)
# ----------------------------------------------------------------------
def dispatch_conv(
    data: np.ndarray,
    wtaps: np.ndarray,
    *,
    k: int,
    s: int,
    oh: int,
    ow: int,
    primes: list[int],
    chunk: int,
) -> np.ndarray | None:
    """Pool-dispatch the fused scalar conv contraction, or None to fall
    back in-process (workers <= 1, or nothing to split)."""
    pool = active_pool()
    if pool is None:
        return None
    return pool.run_conv(data, wtaps, k=k, s=s, oh=oh, ow=ow, primes=primes, chunk=chunk)


def dispatch_dense(
    fd: np.ndarray, wmat: np.ndarray, *, primes: list[int]
) -> np.ndarray | None:
    """Pool-dispatch the fused scalar dense contraction, or None to fall
    back in-process."""
    pool = active_pool()
    if pool is None:
        return None
    return pool.run_dense(fd, wmat, primes=primes)


# ----------------------------------------------------------------------
# flush batch staging
# ----------------------------------------------------------------------
_stage_arena: Arena | None = None


def stage_batch(arrays: list[np.ndarray]) -> np.ndarray:
    """Concatenate a flush's request ciphertext data along axis 0 into the
    process staging arena (one reused block per flush: no per-flush
    allocation, and the stacked batch serializes as one buffer slice).
    The view is valid until the next flush stages."""
    global _stage_arena
    if len(arrays) == 1:
        return arrays[0]
    if _stage_arena is None:
        _stage_arena = Arena(1 << 14, shared=False, auto_grow=True)
    _stage_arena.reset()
    return _stage_arena.concat(arrays, axis=0).array
