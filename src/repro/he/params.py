"""Encryption parameters and SEAL-2.1-style presets.

The paper configures SEAL 2.1 with the polynomial ``x^1024 + 1``, plaintext
modulus ``t = 4`` and a coefficient modulus picked by
``ChooserEvaluator::default_parameter_options().at(1024)``.
:func:`default_parameter_options` mirrors that API: it maps the polynomial
degree to a ready-made :class:`EncryptionParams`.

The quoted ``t = 4`` is reproduced verbatim in the ``paper_1024`` preset for
the micro-benchmarks, but a plaintext space of 4 values cannot hold CNN
activations, so the end-to-end pipelines use the ``functional_*`` presets
(documented per experiment in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import ParameterError
from repro.he import modmath

#: Default error distribution width, matching SEAL's 3.19 rounded.
DEFAULT_NOISE_STDDEV = 3.2

#: Default relinearization decomposition bit count (base w = 2^16).
DEFAULT_DECOMPOSITION_BITS = 16

# Rough security table: minimum log2(q) that keeps >= 128-bit security for a
# ternary-secret RLWE instance of the given degree (homomorphicencryption.org
# standard, interpolated).  Used only for advisory estimates.
_SECURITY_128_MAX_LOGQ = {1024: 27, 2048: 54, 4096: 109, 8192: 218, 16384: 438}


@dataclass(frozen=True)
class EncryptionParams:
    """Immutable FV parameter set.

    Attributes:
        poly_degree: ring degree ``n`` (power of two); the ring is
            ``Z[x]/(x^n + 1)``.
        coeff_primes: word-size NTT primes whose product is ``q``.
        plain_modulus: plaintext modulus ``t``.
        noise_stddev: standard deviation of the error distribution chi.
        decomposition_bits: relinearization decomposes ciphertexts into
            base ``w = 2**decomposition_bits`` digits.
        name: preset label used in logs and benchmark tables.
    """

    poly_degree: int
    coeff_primes: tuple[int, ...]
    plain_modulus: int
    noise_stddev: float = DEFAULT_NOISE_STDDEV
    decomposition_bits: int = DEFAULT_DECOMPOSITION_BITS
    name: str = field(default="custom")

    def __post_init__(self) -> None:
        n = self.poly_degree
        if n < 8 or n & (n - 1):
            raise ParameterError(f"poly_degree must be a power of two >= 8, got {n}")
        if not self.coeff_primes:
            raise ParameterError("at least one coefficient prime is required")
        for p in self.coeff_primes:
            if not modmath.is_prime(p):
                raise ParameterError(f"coefficient modulus factor {p} is not prime")
            if (p - 1) % (2 * n):
                raise ParameterError(f"prime {p} is not NTT-friendly for degree {n}")
            if p >= 1 << 31:
                raise ParameterError(f"prime {p} exceeds the 31-bit word limit")
        if len(set(self.coeff_primes)) != len(self.coeff_primes):
            raise ParameterError("coefficient primes must be distinct")
        if self.plain_modulus < 2:
            raise ParameterError("plain_modulus must be >= 2")
        if self.plain_modulus >= self.coeff_modulus:
            raise ParameterError("plain_modulus must be smaller than coeff modulus")
        if self.noise_stddev <= 0:
            raise ParameterError("noise_stddev must be positive")
        if not 1 <= self.decomposition_bits <= 30:
            raise ParameterError("decomposition_bits must be in [1, 30]")

    @property
    def coeff_modulus(self) -> int:
        """The full coefficient modulus ``q``."""
        return modmath.product(self.coeff_primes)

    @property
    def delta(self) -> int:
        """The FV scaling factor ``Delta = floor(q / t)``."""
        return self.coeff_modulus // self.plain_modulus

    @property
    def decomposition_base(self) -> int:
        return 1 << self.decomposition_bits

    @property
    def decomposition_count(self) -> int:
        """Number of base-``w`` digits needed to cover ``q``."""
        bits = self.coeff_modulus.bit_length()
        return -(-bits // self.decomposition_bits)

    def supports_batching(self) -> bool:
        """True when the plaintext modulus admits CRT (SIMD) batching."""
        return (
            modmath.is_prime(self.plain_modulus)
            and (self.plain_modulus - 1) % (2 * self.poly_degree) == 0
        )

    def estimated_security_bits(self) -> int:
        """Advisory security estimate (128 if within the standard table,
        proportionally less as log2(q) grows beyond it)."""
        max_logq = _SECURITY_128_MAX_LOGQ.get(self.poly_degree)
        if max_logq is None:
            return 0
        logq = self.coeff_modulus.bit_length()
        if logq <= max_logq:
            return 128
        return max(0, int(128 * max_logq / logq))

    def describe(self) -> str:
        return (
            f"{self.name}: n={self.poly_degree}, log2(q)="
            f"{self.coeff_modulus.bit_length()}, t={self.plain_modulus}, "
            f"sigma={self.noise_stddev}, w=2^{self.decomposition_bits}"
        )


def _preset(
    name: str,
    degree: int,
    prime_bits: int,
    prime_count: int,
    plain_modulus: int,
) -> EncryptionParams:
    primes = modmath.ntt_primes(prime_bits, degree, prime_count)
    return EncryptionParams(
        poly_degree=degree,
        coeff_primes=tuple(primes),
        plain_modulus=plain_modulus,
        name=name,
    )


@lru_cache(maxsize=None)
def default_parameter_options() -> dict[int, EncryptionParams]:
    """Presets keyed by polynomial degree, mirroring SEAL 2.1's
    ``ChooserEvaluator::default_parameter_options()``.

    ``.at(1024)`` reproduces the paper's configuration: ``x^1024 + 1`` with a
    ~48-bit coefficient modulus and the quoted plaintext modulus ``t = 4``.
    """
    return {
        1024: _preset("paper_1024", 1024, 24, 2, 4),
        2048: _preset("functional_2048", 2048, 30, 3, 65537),
        4096: _preset("functional_4096", 4096, 30, 4, 786433),
    }


@lru_cache(maxsize=None)
def small_parameter_options() -> dict[int, EncryptionParams]:
    """Reduced presets for fast unit tests (not secure, functionally exact)."""
    return {
        256: _preset("test_256", 256, 28, 2, 65537),
        512: _preset("test_512", 512, 28, 2, 12289),
    }


def paper_parameters() -> EncryptionParams:
    """The paper's quoted SEAL 2.1 configuration (Section V-A)."""
    return default_parameter_options()[1024]


def functional_parameters(plain_bits: int = 20) -> EncryptionParams:
    """Parameters sized for end-to-end CNN inference.

    Picks the smallest functional preset whose plaintext modulus spans at
    least ``plain_bits`` bits (quantized CNN values must fit in ``t``).
    """
    for degree in (2048, 4096):
        preset = default_parameter_options()[degree]
        if preset.plain_modulus.bit_length() >= plain_bits:
            return preset
    raise ParameterError(
        f"no functional preset offers a {plain_bits}-bit plaintext modulus; "
        "construct EncryptionParams explicitly"
    )
