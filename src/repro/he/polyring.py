"""RNS arithmetic in the ciphertext ring ``R_q = Z_q[x] / (x^n + 1)``.

The coefficient modulus ``q`` is a product of word-size NTT-friendly primes.
A ring element is stored as an int64 numpy array of per-prime residues with
shape ``(..., k, n)`` where ``k = len(primes)``; leading axes batch many
polynomials so whole ciphertext images can be processed in single numpy
calls.  Elements exist in either *coefficient* or *NTT (evaluation)* domain;
the domain is tracked by the caller (see :class:`repro.he.context.Ciphertext`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.he import kernels, modmath
from repro.he.ntt import NttPlan, StackedNttPlan, negacyclic_convolve_exact

#: Elementwise cap on chunked fused multiply-reduce intermediates (~256 MB).
_MUL_SUM_CHUNK_ELEMS = 1 << 25


class PolyContext:
    """Vectorized RNS polynomial arithmetic for a fixed ``(n, primes)`` pair.

    Args:
        n: polynomial degree, a power of two.
        primes: distinct NTT-friendly primes (each ``≡ 1 mod 2n``, < 2^31)
            whose product is the coefficient modulus ``q``.
    """

    def __init__(self, n: int, primes: Sequence[int]) -> None:
        if len(set(primes)) != len(primes):
            raise ParameterError("coefficient primes must be distinct")
        self.n = n
        self.primes = np.array(sorted(primes), dtype=np.int64)
        self.k = len(primes)
        self.q = modmath.product(primes)
        self.plans = [NttPlan(n, int(p)) for p in self.primes]
        self.stacked = StackedNttPlan(n, self.primes, plans=self.plans)
        self._p_col = self.primes.reshape(self.k, 1)
        self._prime_list = [int(p) for p in self.primes]
        self._p_max = max(self._prime_list)
        # Deferred-reduction overflow bound: a sum of fully reduced residues
        # (each < p_max < 2^31) stays int64-exact for up to this many terms;
        # reduce_sum / pointwise_mul_sum enforce it.
        self.max_sum_terms = ((1 << 63) - 1) // (self._p_max - 1)
        # Per-value scalar residue cache (mul_scalar / from_scalar): weights,
        # Delta and bias constants recur across every inference.
        self._scalar_cache: dict[int, np.ndarray] = {}
        # CRT lift weights: w_i = (q / p_i) * inv(q / p_i, p_i), so that
        # value = sum(r_i * w_i) mod q.
        self._crt_weights = np.array(
            [
                (self.q // int(p)) * modmath.invert_mod(self.q // int(p), int(p))
                for p in self.primes
            ],
            dtype=object,
        )
        # Garner (mixed-radix) lift constants for the int64 CRT fast path:
        # x = r_0 + p_0 * t_1 + p_0 p_1 * t_2 + ...; every intermediate stays
        # below q, so the lift is exact in int64 whenever q < 2^62.
        self.q_fits_int64 = self.q < (1 << 62)
        if self.q_fits_int64:
            prods: list[int] = [1]
            invs: list[int] = [0]
            partial = 1
            for i in range(1, self.k):
                partial *= self._prime_list[i - 1]
                prods.append(partial)
                invs.append(
                    modmath.invert_mod(
                        partial % self._prime_list[i], self._prime_list[i]
                    )
                )
            self._garner_prods = prods
            self._garner_invs = invs

    # ------------------------------------------------------------------
    # construction / sampling
    # ------------------------------------------------------------------
    def zeros(self, *leading: int) -> np.ndarray:
        """A zero element (or batch of them) in RNS form."""
        return np.zeros((*leading, self.k, self.n), dtype=np.int64)

    def from_int_coeffs(self, coeffs: np.ndarray) -> np.ndarray:
        """Reduce integer coefficients (shape ``(..., n)``, possibly signed
        Python bigints) into RNS residues of shape ``(..., k, n)``."""
        coeffs = np.asarray(coeffs)
        if coeffs.shape[-1] != self.n:
            raise ParameterError(f"expected degree {self.n}, got {coeffs.shape[-1]}")
        out = np.empty((*coeffs.shape[:-1], self.k, self.n), dtype=np.int64)
        if coeffs.dtype == object:
            for i, p in enumerate(self.primes):
                out[..., i, :] = (coeffs % int(p)).astype(np.int64)
        else:
            coeffs = coeffs.astype(np.int64)
            for i, p in enumerate(self.primes):
                out[..., i, :] = coeffs % int(p)
        return out

    def scalar_residues(self, value: int) -> np.ndarray:
        """Cached, read-only ``(k, 1)`` residue column of an integer scalar."""
        value = int(value)
        cached = self._scalar_cache.get(value)
        if cached is None:
            if len(self._scalar_cache) > 4096:
                self._scalar_cache.clear()
            cached = np.array(
                [value % p for p in self._prime_list], dtype=np.int64
            ).reshape(self.k, 1)
            cached.flags.writeable = False
            self._scalar_cache[value] = cached
        return cached

    def from_scalar(self, value: int) -> np.ndarray:
        """Constant polynomial ``value`` in RNS form."""
        out = self.zeros()
        out[:, 0] = self.scalar_residues(value)[:, 0]
        return out

    def sample_uniform(self, rng: np.random.Generator, *leading: int) -> np.ndarray:
        """Uniform element of R_q (independent residue per prime)."""
        out = np.empty((*leading, self.k, self.n), dtype=np.int64)
        for i, p in enumerate(self.primes):
            out[..., i, :] = rng.integers(0, int(p), size=(*leading, self.n))
        return out

    def sample_noise(
        self, rng: np.random.Generator, stddev: float, *leading: int
    ) -> np.ndarray:
        """Truncated discrete Gaussian error polynomial (the scheme's chi)."""
        bound = int(6 * stddev)
        raw = np.rint(rng.normal(0.0, stddev, size=(*leading, self.n))).astype(np.int64)
        np.clip(raw, -bound, bound, out=raw)
        return self.from_signed_small(raw)

    def sample_ternary(self, rng: np.random.Generator, *leading: int) -> np.ndarray:
        """Uniform ternary polynomial with coefficients in {-1, 0, 1}."""
        raw = rng.integers(-1, 2, size=(*leading, self.n)).astype(np.int64)
        return self.from_signed_small(raw)

    def from_signed_small(self, coeffs: np.ndarray) -> np.ndarray:
        """RNS form of small signed int64 coefficients (|c| < min prime)."""
        coeffs = np.asarray(coeffs, dtype=np.int64)
        if not kernels.active().lazy_reduction:
            return coeffs[..., None, :] % self._p_col
        # |c| < p, so one branch-free conditional add replaces the division:
        # (c >> 63) is an all-ones mask exactly for negative coefficients.
        out = np.empty((*coeffs.shape[:-1], self.k, self.n), dtype=np.int64)
        neg = (coeffs >> 63)
        for i, p in enumerate(self._prime_list):
            out[..., i, :] = coeffs + (neg & p)
        return out

    # ------------------------------------------------------------------
    # ring operations (domain-agnostic: valid in both coeff and NTT form)
    # ------------------------------------------------------------------
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if not kernels.active().lazy_reduction:
            return (a + b) % self._p_col
        # Conditional subtract: inputs are reduced residues in [0, p), so the
        # sum is in [0, 2p) and one subtract-and-fixup replaces the division
        # of a full ``%``.  (s >> 63) is an all-ones mask exactly when the
        # speculative subtraction went negative.
        s = a + b
        s -= self._p_col
        s += (s >> 63) & self._p_col
        return s

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if not kernels.active().lazy_reduction:
            return (a - b) % self._p_col
        d = a - b  # in (-p, p); one conditional add restores [0, p)
        d += (d >> 63) & self._p_col
        return d

    def neg(self, a: np.ndarray) -> np.ndarray:
        return (-a) % self._p_col

    def mul_scalar(self, a: np.ndarray, value: int) -> np.ndarray:
        out = a * self.scalar_residues(value)
        return self._reduce_product(out)

    def pointwise_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Coefficient-wise product; this is ring multiplication iff both
        operands are in NTT domain."""
        return self._reduce_product(a * b)

    def _reduce_product(self, prod: np.ndarray) -> np.ndarray:
        """Reduce a freshly materialized ``(..., k, n)`` product in place.

        Under lazy-reduction kernels each prime's plane is reduced with a
        scalar modulus (measurably faster than one broadcast array ``%``);
        the reference profile keeps the broadcast form.  Same values either
        way."""
        if not kernels.active().lazy_reduction:
            return prod % self._p_col
        for i, p in enumerate(self._prime_list):
            prod[..., i, :] %= p
        return prod

    def reduce_sum(self, a: np.ndarray, axis: int) -> np.ndarray:
        """Sum a batch of ring elements along one leading (batch) axis.

        Equivalent to folding :meth:`add` over that axis but performed as a
        single numpy reduction with one trailing ``%``: fully reduced
        residues are < 2^31, so up to :attr:`max_sum_terms` (>= 2^32) terms
        accumulate exactly in int64 before the deferred reduction.
        """
        axis = axis % a.ndim
        if axis >= a.ndim - 2:
            raise ParameterError(
                "reduce_sum operates on batch axes; the trailing two axes "
                "are the RNS residue and coefficient dimensions"
            )
        if a.shape[axis] > self.max_sum_terms:
            raise ParameterError(
                f"deferred reduction overflow: summing {a.shape[axis]} residues "
                f"< {self._p_max} exceeds int64 (max {self.max_sum_terms} terms)"
            )
        return np.add.reduce(a, axis=axis) % self._p_col

    def pointwise_mul_sum(self, a: np.ndarray, b: np.ndarray, axis: int) -> np.ndarray:
        """Fused ``reduce_sum(pointwise_mul(a, b), axis)`` with bounded memory.

        The broadcast product is materialized in chunks along ``axis``; each
        chunk's products are reduced mod p (products of two residues can
        reach ~2^62, so they cannot be accumulated lazily) and the reduced
        terms -- each < p_max < 2^31 -- are summed exactly in int64 with one
        trailing ``%`` per prime.  This is the conv/dense tap-batch kernel:
        one multiply pass + one reduction instead of a Python loop of
        ``multiply_plain`` / ``add`` allocations.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        out_shape = np.broadcast_shapes(a.shape, b.shape)
        axis = axis % len(out_shape)
        if axis >= len(out_shape) - 2:
            raise ParameterError(
                "pointwise_mul_sum reduces a batch axis; the trailing two "
                "axes are the RNS residue and coefficient dimensions"
            )
        terms = out_shape[axis]
        if terms > self.max_sum_terms:
            raise ParameterError(
                f"deferred reduction overflow: summing {terms} residues "
                f"< {self._p_max} exceeds int64 (max {self.max_sum_terms} terms)"
            )
        slice_elems = 1
        for i, dim in enumerate(out_shape):
            if i != axis:
                slice_elems *= dim
        chunk = max(1, _MUL_SUM_CHUNK_ELEMS // max(1, slice_elems))
        a_full = np.broadcast_to(a, out_shape)
        b_full = np.broadcast_to(b, out_shape)
        index: list = [slice(None)] * len(out_shape)
        acc: np.ndarray | None = None
        for start in range(0, terms, chunk):
            index[axis] = slice(start, start + chunk)
            prod = a_full[tuple(index)] * b_full[tuple(index)]
            for i, p in enumerate(self._prime_list):
                prod[..., i, :] %= p
            partial = np.add.reduce(prod, axis=axis)
            acc = partial if acc is None else acc + partial
        assert acc is not None  # terms >= 1 always holds for layer kernels
        return acc % self._p_col

    # ------------------------------------------------------------------
    # domain conversion
    # ------------------------------------------------------------------
    def ntt(self, a: np.ndarray) -> np.ndarray:
        if kernels.active().stacked_ntt:
            return self.stacked.forward(a)
        out = np.empty_like(a)
        for i, plan in enumerate(self.plans):
            out[..., i, :] = plan.forward(a[..., i, :])
        return out

    def intt(self, a: np.ndarray) -> np.ndarray:
        if kernels.active().stacked_ntt:
            return self.stacked.inverse(a)
        out = np.empty_like(a)
        for i, plan in enumerate(self.plans):
            out[..., i, :] = plan.inverse(a[..., i, :])
        return out

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full ring multiplication of coefficient-domain operands."""
        return self.intt(self.pointwise_mul(self.ntt(a), self.ntt(b)))

    # ------------------------------------------------------------------
    # big-integer bridge (decrypt, tensor product, relinearization digits)
    # ------------------------------------------------------------------
    def to_bigint(self, a: np.ndarray) -> np.ndarray:
        """CRT-lift RNS residues to object-array coefficients in ``[0, q)``.

        Input shape ``(..., k, n)`` -> output shape ``(..., n)``.
        """
        acc = np.zeros((*a.shape[:-2], self.n), dtype=object)
        for i in range(self.k):
            acc = acc + a[..., i, :].astype(object) * self._crt_weights[i]
        return acc % self.q

    def to_bigint_centered(self, a: np.ndarray) -> np.ndarray:
        """Like :meth:`to_bigint` but mapped into ``(-q/2, q/2]``."""
        lifted = self.to_bigint(a)
        return np.where(lifted > self.q // 2, lifted - self.q, lifted)

    def to_int64_centered(self, a: np.ndarray) -> np.ndarray:
        """Exact centered CRT lift as int64 (requires ``q < 2^62``).

        Garner's mixed-radix reconstruction: every intermediate stays below
        ``q``, so for ``q < 2^62`` the whole lift runs in int64 -- no
        object-dtype arithmetic.  Bit-identical (after ``astype(object)``)
        to :meth:`to_bigint_centered`.
        """
        if not self.q_fits_int64:
            raise ParameterError(
                f"q has {self.q.bit_length()} bits; the int64 CRT lift "
                "requires q < 2^62 (use to_bigint_centered)"
            )
        acc = a[..., 0, :].astype(np.int64, copy=True)
        for i in range(1, self.k):
            p = self._prime_list[i]
            d = (a[..., i, :] - acc) % p
            d *= self._garner_invs[i]
            d %= p
            acc += self._garner_prods[i] * d
        return np.where(acc > self.q // 2, acc - self.q, acc)

    def convolve_exact(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Exact signed negacyclic convolution of centered bigint coefficient
        arrays (used by the FV tensor product)."""
        return negacyclic_convolve_exact(a, b, self.n, self.q // 2 + 1)

    def scale_and_round(self, coeffs: np.ndarray, numer: int, denom: int) -> np.ndarray:
        """Round ``coeffs * numer / denom`` to nearest integer and reduce to RNS.

        Implements FV's ``round(t/q * .)`` step on exact integer coefficients.
        """
        scaled = coeffs * numer
        half = denom // 2
        rounded = np.where(
            scaled >= 0, (scaled + half) // denom, -((-scaled + half) // denom)
        )
        return self.from_int_coeffs(rounded)
